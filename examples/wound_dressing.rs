//! Smart wound dressing: serial vs parallel vs lookup tradeoffs.
//!
//! The paper's healthcare scenario: a printed dressing classifying wound
//! state from its sensors ([48]). Latency hardly matters (a reading per
//! hour is plenty) but the dressing must be *small* and run from a
//! harvester or thin battery, so this example walks the tree-architecture
//! tradeoff space — serial (small, slow), parallel (fast, big), lookup
//! (deep trees only) — at several depths, then sanity-checks the chosen
//! engine cycle by cycle in the functional simulator.
//!
//! ```text
//! cargo run --release --example wound_dressing
//! ```

use printed_ml::core::flow::{TreeArch, TreeFlow};
use printed_ml::core::LookupConfig;
use printed_ml::ml::synth::Application;
use printed_ml::netlist::Simulator;
use printed_ml::pdk::Technology;

fn main() {
    println!("== smart wound dressing: tree architecture tradeoffs ==\n");

    // Cardiotocography stands in for the dressing's multi-sensor readout
    // (3 condition classes: healing / stalled / deteriorating).
    for depth in [2usize, 4, 8] {
        let flow = TreeFlow::new(Application::Cardio, depth, 7);
        println!(
            "depth {depth}: {:.3} quantized accuracy at {} bits, {} nodes",
            flow.choice.accuracy,
            flow.choice.bits,
            flow.qt.comparison_count()
        );
        for (name, arch) in [
            ("bespoke-serial", TreeArch::BespokeSerial),
            ("bespoke-parallel", TreeArch::BespokeParallel),
            ("lookup+opt", TreeArch::Lookup(LookupConfig::optimized())),
        ] {
            let r = flow.report(arch, Technology::Egt);
            println!(
                "  {:>16}: latency {:>10}, area {:>11}, power {:>10} -> {}",
                name,
                r.latency.to_string(),
                r.area.to_string(),
                r.power.to_string(),
                r.feasibility().source_name()
            );
        }
        println!();
    }

    // Drive the serial engine cycle by cycle for one reading, the way the
    // dressing's sequencer would.
    let flow = TreeFlow::new(Application::Cardio, 4, 7);
    let module = flow
        .module(TreeArch::BespokeSerial)
        .expect("digital design");
    let mut sim = Simulator::new(&module);
    let row = &flow.test.x[0];
    let codes = flow.fq.code_row(row);
    sim.reset();
    for (slot, &f) in flow.qt.used_features().iter().enumerate() {
        sim.set(&format!("f{slot}"), codes[f]);
    }
    println!("serial engine trace (one inference):");
    for cycle in 0..flow.qt.depth().max(1) {
        sim.step();
        sim.settle();
        println!(
            "  cycle {:>2}: done={} class-so-far={}",
            cycle + 1,
            sim.get("done"),
            sim.get("class")
        );
    }
    let hw = sim.get("class") as usize;
    let sw = flow.qt.predict(&codes);
    println!("hardware says class {hw}, software model says {sw}");
    assert_eq!(hw, sw);
}
