//! Full design-space sweep for one application.
//!
//! The paper's Fig. 1 overview, as a program: for a chosen application,
//! sweep every architecture family across all three technologies and print
//! the whole landscape — with the silicon sanity check from §VII (an
//! EGT design is never competitive with CMOS on PPA; the case for printing
//! is cost, conformity and time-to-market).
//!
//! ```text
//! cargo run --release --example design_space [dataset]
//! ```
//!
//! `dataset` is one of `arrhythmia cardio gasid har pendigits redwine
//! whitewine` (default `pendigits`).

use printed_ml::analog::AnalogTreeConfig;
use printed_ml::core::flow::{SvmArch, SvmFlow, TreeArch, TreeFlow};
use printed_ml::core::LookupConfig;
use printed_ml::ml::synth::Application;
use printed_ml::pdk::Technology;

fn pick_app() -> Application {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "pendigits".into());
    Application::ALL
        .into_iter()
        .find(|a| a.name() == name)
        .unwrap_or_else(|| {
            eprintln!("unknown dataset {name}, using pendigits");
            Application::Pendigits
        })
}

fn main() {
    let app = pick_app();
    println!("== design space for {} ==\n", app.name());

    let flow = TreeFlow::new(app, 4, 7);
    println!(
        "decision tree: depth {}, {} nodes, {} bits, accuracy {:.3}",
        flow.qt.depth(),
        flow.qt.comparison_count(),
        flow.choice.bits,
        flow.choice.accuracy
    );
    let tree_archs: Vec<(&str, TreeArch, Vec<Technology>)> = vec![
        (
            "conv-serial",
            TreeArch::ConventionalSerial,
            Technology::ALL.to_vec(),
        ),
        (
            "conv-parallel",
            TreeArch::ConventionalParallel,
            Technology::ALL.to_vec(),
        ),
        (
            "bespoke-serial",
            TreeArch::BespokeSerial,
            Technology::ALL.to_vec(),
        ),
        (
            "bespoke-parallel",
            TreeArch::BespokeParallel,
            Technology::ALL.to_vec(),
        ),
        (
            "lookup+opt",
            TreeArch::Lookup(LookupConfig::optimized()),
            Technology::ALL.to_vec(),
        ),
        (
            "analog",
            TreeArch::Analog(AnalogTreeConfig::default()),
            vec![Technology::Egt],
        ),
    ];
    println!(
        "\n{:>17} {:>9} {:>12} {:>12} {:>12} {:>18}",
        "architecture", "tech", "latency", "area", "power", "powered by"
    );
    for (name, arch, techs) in &tree_archs {
        for &tech in techs {
            let r = flow.report(*arch, tech);
            println!(
                "{:>17} {:>9} {:>12} {:>12} {:>12} {:>18}",
                name,
                tech.to_string(),
                r.latency.to_string(),
                r.area.to_string(),
                r.power.to_string(),
                if tech.is_printed() {
                    r.feasibility().source_name()
                } else {
                    "-"
                }
            );
        }
    }

    // §VII's sober note: silicon wins PPA outright.
    let egt = flow.report(TreeArch::BespokeParallel, Technology::Egt);
    let si = flow.report(TreeArch::BespokeParallel, Technology::Tsmc40);
    println!(
        "\nsilicon check: EGT is {:.0}x larger and {:.0}x slower than TSMC-40nm — \
         the argument for printing is cost/conformity/toxicity, never PPA",
        egt.area.ratio(si.area),
        egt.latency.ratio(si.latency)
    );

    let svm = SvmFlow::new(app, 7);
    println!(
        "\nSVM-R: {} MAC terms, {} bits, accuracy {:.3}",
        svm.qs.mac_count(),
        svm.choice.bits,
        svm.choice.accuracy
    );
    for (name, arch) in [
        ("bespoke", SvmArch::Bespoke),
        ("lookup+opt", SvmArch::Lookup(LookupConfig::optimized())),
        ("analog", SvmArch::Analog),
    ] {
        let r = svm.report(arch, Technology::Egt);
        println!(
            "{:>17} {:>9} {:>12} {:>12} {:>12} {:>18}",
            name,
            "EGT",
            r.latency.to_string(),
            r.area.to_string(),
            r.power.to_string(),
            r.feasibility().source_name()
        );
    }
}
