//! Quickstart: train a classifier, print it, power it.
//!
//! Walks the paper's headline flow end to end for one application:
//! train a decision tree, pick a bespoke datapath width, generate the
//! bespoke parallel architecture, verify the netlist bit-for-bit against
//! the software model, price it in all three technologies, and check which
//! printed power source can run it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use printed_ml::core::flow::{TreeArch, TreeFlow};
use printed_ml::ml::synth::Application;
use printed_ml::netlist::{to_verilog, Simulator};
use printed_ml::pdk::Technology;

fn main() {
    println!("== printed-ml quickstart: cardiotocography monitor ==\n");

    // 1. Train + quantize (70/30 split, standardized features, §IV-A
    //    4/8/12/16-bit width search).
    let flow = TreeFlow::new(Application::Cardio, 4, 7);
    println!(
        "trained depth-{} tree: {} comparisons over {} features",
        flow.qt.depth(),
        flow.qt.comparison_count(),
        flow.qt.used_features().len()
    );
    println!(
        "accuracy: {:.3} float / {:.3} quantized at {} bits\n",
        flow.float_accuracy, flow.choice.accuracy, flow.choice.bits
    );

    // 2. Generate the bespoke parallel architecture and verify it against
    //    the software model on the test set.
    let module = flow
        .module(TreeArch::BespokeParallel)
        .expect("digital design");
    let mut sim = Simulator::new(&module);
    let used = flow.qt.used_features();
    let mut agree = 0usize;
    for row in &flow.test.x {
        let codes = flow.fq.code_row(row);
        for (slot, &f) in used.iter().enumerate() {
            sim.set(&format!("f{slot}"), codes[f]);
        }
        sim.settle();
        agree += (sim.get("class") as usize == flow.qt.predict(&codes)) as usize;
    }
    println!(
        "netlist vs software model: {}/{} test rows agree ({} gates)\n",
        agree,
        flow.test.x.len(),
        module.gate_count()
    );
    assert_eq!(
        agree,
        flow.test.x.len(),
        "hardware must match the model exactly"
    );

    // 3. Price it everywhere.
    for tech in Technology::ALL {
        let r = flow.report(TreeArch::BespokeParallel, tech);
        println!("{tech:>9}: {r}");
    }

    // 4. Who can power the printed version?
    let egt = flow.report(TreeArch::BespokeParallel, Technology::Egt);
    println!("\npower budget: {} -> {}", egt.power, egt.feasibility());

    // 5. The artifact a fab would consume.
    let verilog = to_verilog(&module);
    let preview: String = verilog.lines().take(8).collect::<Vec<_>>().join("\n");
    println!(
        "\nstructural Verilog ({} lines), head:\n{preview}",
        verilog.lines().count()
    );
}
