//! Item-level tagging economics: why bespoke printing is viable at all.
//!
//! §I/§IV: item-level FMCG tags must cost less than a barcode (sub-cent),
//! and printing's negligible NRE is what lets *every trained model* become
//! its own circuit. This example prices a bespoke classifier tag across
//! technologies and production volumes — the economic argument behind the
//! whole paper, made runnable.
//!
//! ```text
//! cargo run --release --example fleet_tagging
//! ```

use printed_ml::core::flow::{TreeArch, TreeFlow};
use printed_ml::core::{ClassifierSystem, FeatureExtraction};
use printed_ml::ml::synth::Application;
use printed_ml::pdk::{FabModel, Technology};

fn main() {
    println!("== fleet tagging: the sub-cent economics of bespoke printing ==\n");

    // A produce-quality tag: gas-sensor classifier on every crate.
    let flow = TreeFlow::new(Application::GasId, 4, 7);
    println!(
        "gas-ID tree: {} nodes, {} bits, accuracy {:.3}\n",
        flow.qt.comparison_count(),
        flow.choice.bits,
        flow.choice.accuracy
    );

    // The same bespoke design, in print and in silicon.
    let printed = flow.report(TreeArch::BespokeParallel, Technology::Egt);
    let silicon = flow.report(TreeArch::BespokeParallel, Technology::Tsmc40);

    println!(
        "bespoke tag area: {} printed vs {} in 40nm CMOS\n",
        printed.area, silicon.area
    );

    println!(
        "{:>10} {:>12} {:>8} {:>12} {:>12} {:>12}",
        "tech", "die", "yield", "@1 unit", "@10k units", "@10M units"
    );
    for (tech, report) in [(Technology::Egt, &printed), (Technology::Tsmc40, &silicon)] {
        let fab = FabModel::for_technology(tech);
        println!(
            "{:>10} {:>12} {:>7.1}% {:>12} {:>12} {:>12}",
            tech.to_string(),
            report.area.to_string(),
            fab.yield_of(report.area) * 100.0,
            format!("${:.4}", fab.unit_cost_usd(report.area, 1)),
            format!("${:.4}", fab.unit_cost_usd(report.area, 10_000)),
            format!("${:.6}", fab.unit_cost_usd(report.area, 10_000_000)),
        );
    }

    // Barcode-parity check: the whole printed *system* (sensors included)
    // at volume one.
    let system = ClassifierSystem::digital(
        printed.clone(),
        flow.qt.used_features().len(),
        flow.choice.bits.clamp(2, 8),
        FeatureExtraction::None,
    );
    let fab = FabModel::for_technology(Technology::Egt);
    let unit = fab.unit_cost_usd(system.area(), 1);
    println!(
        "\nfull printed system ({}): ${unit:.4} per tag at volume ONE — {}",
        system.area(),
        if unit < 0.01 {
            "sub-cent, barcode-competitive"
        } else {
            "above the barcode bar"
        }
    );

    // The silicon counterfactual: what volume would CMOS need to match?
    let si_fab = FabModel::for_technology(Technology::Tsmc40);
    match si_fab.break_even_volume(silicon.area, 0.01) {
        Some(v) => println!(
            "silicon needs a committed volume of {v} units before its unit cost drops under a cent \
             — per-model bespoke silicon is uneconomical below that"
        ),
        None => println!("silicon can never reach sub-cent for this die"),
    }
}
