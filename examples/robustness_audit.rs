//! Robustness audit: would this classifier survive being *printed*?
//!
//! Before committing a bespoke design to ink, a designer wants to know
//! how it behaves off-nominal: printed-resistor tolerance (analog),
//! sensor calibration drift (all), stuck-at manufacturing defects
//! (digital), and the bent-to-10-mm deployment corner from §VII. This
//! example runs all four audits on one workload.
//!
//! ```text
//! cargo run --release --example robustness_audit [dataset]
//! ```

use printed_ml::analog::analyze_tree_variation;
use printed_ml::core::flow::{TreeArch, TreeFlow};
use printed_ml::ml::metrics::accuracy;
use printed_ml::ml::synth::Application;
use printed_ml::netlist::{analyze, fault_coverage, max_logic_levels};
use printed_ml::pdk::{classify, CellLibrary, Technology};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "har".into());
    let app = Application::ALL
        .into_iter()
        .find(|a| a.name() == name)
        .unwrap_or(Application::Har);
    println!("== robustness audit: {} ==\n", app.name());

    let flow = TreeFlow::new(app, 4, 7);
    let module = flow
        .module(TreeArch::BespokeParallel)
        .expect("digital design");
    println!(
        "design under audit: bespoke parallel tree, {} nodes, {} bits, {} gates, {} logic levels\n",
        flow.qt.comparison_count(),
        flow.choice.bits,
        module.gate_count(),
        max_logic_levels(&module)
    );

    // 1. Analog print tolerance.
    println!("1. printed-resistor tolerance (analog realization)");
    let rows: Vec<Vec<u64>> = flow
        .test
        .x
        .iter()
        .take(150)
        .map(|r| flow.fq.code_row(r))
        .collect();
    for sigma in [0.02, 0.05, 0.1, 0.2] {
        let r = analyze_tree_variation(&flow.qt, &rows, sigma, 16, 7);
        println!(
            "   sigma {:>4.0}%: mean agreement {:.3}, worst {:.3}",
            sigma * 100.0,
            r.mean_agreement,
            r.worst_agreement
        );
    }

    // 2. Sensor drift.
    println!("\n2. sensor calibration drift (digital accuracy)");
    for drift in [0.0, 0.1, 0.25, 0.5] {
        let drifted = flow.test.with_drift(drift, 7);
        let acc = accuracy(
            drifted
                .x
                .iter()
                .map(|r| flow.qt.predict(&flow.fq.code_row(r))),
            drifted.y.iter().copied(),
        )
        .unwrap();
        println!("   drift {drift:>4.2} sigma: accuracy {acc:.3}");
    }

    // 3. Manufacturing test.
    println!("\n3. stuck-at fault coverage of the functional test set");
    let used = flow.qt.used_features();
    let vectors: Vec<Vec<u64>> = flow
        .test
        .x
        .iter()
        .take(120)
        .map(|row| {
            let codes = flow.fq.code_row(row);
            used.iter().map(|&f| codes[f]).collect()
        })
        .collect();
    let cov = fault_coverage(&module, &vectors);
    println!(
        "   {} vectors detect {}/{} faults ({:.0}%) — augment with structural \
         patterns before shipping",
        vectors.len(),
        cov.detected,
        cov.total,
        cov.coverage() * 100.0
    );

    // 4. Bent corner.
    println!("\n4. bent-to-10mm deployment corner (§VII)");
    let nominal = CellLibrary::for_technology(Technology::Egt);
    let bent = nominal.bent_corner();
    let p0 = analyze(&module, &nominal);
    let p1 = analyze(&module, &bent);
    println!(
        "   nominal: {} / {} -> {}",
        p0.latency(1),
        p0.power,
        classify(p0.power).source_name()
    );
    println!(
        "   bent:    {} / {} -> {}",
        p1.latency(1),
        p1.power,
        classify(p1.power).source_name()
    );
}
