//! Re-runs the paper's three fabricated prototypes in simulation.
//!
//! 1. §IV-C — the 2-bit, depth-2 **bespoke digital decision tree** with
//!    threshold 102 scaled into the 2-bit domain: exhaustive input sweep,
//!    checking exactly one class line is active at a time (Fig. 5's
//!    transient measurement, as a truth table).
//! 2. §V-B — the **4×1 one-time-programmable multi-level ROM** (2 bits per
//!    dot-resistor element): DC read-out levels and the scope-style
//!    transient of a 4-row read sweep (Fig. 14c).
//! 3. §VI-B — the **2-level analog decision tree** (11 EGTs, 3 printed
//!    resistors): transient node voltages for all input combinations and
//!    the worst-case output margin against the measured 405 mV (Fig. 15c).
//!
//! ```text
//! cargo run --release --example prototypes
//! ```

use printed_ml::analog::{digital_tree_transients, two_level_tree_transients, MultiLevelRom};
use printed_ml::core::bespoke::bespoke_parallel;
use printed_ml::ml::quant::{QNode, QuantizedTree};
use printed_ml::netlist::Simulator;

/// Hand-built 2-bit full depth-2 tree mirroring the fabricated prototype:
/// root tests x1, both split nodes test x2; thresholds at the 2-bit
/// mid-scale (the paper's "threshold 102" lives in an 8-bit domain; at 2
/// bits that is code 1). Classes C1..C4 are the four leaves.
fn prototype_tree() -> QuantizedTree {
    // Build via the public QNode structure by quantizing a hand-made
    // DecisionTree is roundabout; instead construct the QuantizedTree by
    // quantizing a trivially trained tree would not guarantee the shape.
    // The ml crate exposes QuantizedTree only through quantization, so we
    // assemble a dataset that trains to exactly this full tree.
    use printed_ml::ml::quant::FeatureQuantizer;
    use printed_ml::ml::tree::{DecisionTree, TreeParams};
    use printed_ml::ml::Dataset;
    // 2 features in [0,3]; class = 2*(x1>1) + (x2>1).
    let mut x = Vec::new();
    let mut y = Vec::new();
    for a in 0..4 {
        for b in 0..4 {
            for _ in 0..4 {
                x.push(vec![a as f64, b as f64]);
                y.push(2 * ((a > 1) as usize) + ((b > 1) as usize));
            }
        }
    }
    let data = Dataset::new("proto", x, y, 4);
    let tree = DecisionTree::fit(&data, TreeParams::with_depth(2));
    let fq = FeatureQuantizer::fit(&data, 2);
    let qt = QuantizedTree::from_tree(&tree, &fq);
    assert_eq!(
        qt.comparison_count(),
        3,
        "prototype must be a full depth-2 tree"
    );
    qt
}

fn main() {
    println!("== prototype 1: bespoke digital depth-2 decision tree (§IV-C) ==\n");
    let qt = prototype_tree();
    if let QNode::Split {
        feature, threshold, ..
    } = &qt.nodes()[0]
    {
        println!("root: x{} > {threshold}", feature + 1);
    }
    let module = bespoke_parallel(&qt);
    println!(
        "printed netlist: {} gates, {} transistors\n",
        module.gate_count(),
        module.transistor_count()
    );
    let mut sim = Simulator::new(&module);
    println!("x1 x2 | C1 C2 C3 C4   (exactly one class line active)");
    for x1 in 0..4u64 {
        for x2 in 0..4u64 {
            sim.set("f0", x1);
            sim.set("f1", x2);
            sim.settle();
            let class = sim.get("class");
            let onehot: Vec<&str> = (0..4)
                .map(|c| if c == class { " 1" } else { " 0" })
                .collect();
            println!(" {x1}  {x2} |{}", onehot.join(" "));
            assert_eq!(class as usize, qt.predict(&[x1, x2]));
        }
    }
    println!("fully functional: hardware matches the trained tree on all 16 inputs");

    // Scope-style transient of one input step (Fig. 5, right panel).
    sim.set("f0", 0);
    sim.set("f1", 3);
    sim.settle();
    let class = sim.get("class");
    let mut levels = [false; 4];
    levels[class as usize] = true;
    let traces = digital_tree_transients(levels, 12e-3, 120);
    println!("transient after input step (class {class} active):");
    for (c, w) in traces.iter().enumerate() {
        println!(
            "  C{}: settles to {:.2} V in {:.1} ms",
            c + 1,
            w.settled(),
            w.settling_time(0.05) * 1e3
        );
    }
    println!();

    println!("== prototype 2: 4x1 multi-level printed ROM (§V-B) ==\n");
    let rom = MultiLevelRom::paper_prototype();
    println!("row | R (vs Rsense) | Vout  | decoded bits");
    for (row, label) in ["2*Rs", "inf (not printed)", "Rs/2", "~0 (max dot)"]
        .iter()
        .enumerate()
    {
        println!(
            "  {row} | {label:>17} | {:.2} V | {:02b}",
            rom.read_voltage(row),
            rom.read(row)
        );
    }
    println!(
        "whole array: 0b{:08b} (8 bits in 4 elements)",
        rom.read_all()
    );
    let sweep = rom.read_transient(20e-3, 200);
    println!(
        "transient read sweep: {} samples over {:.0} ms, settles to {:.2} V",
        sweep.times.len(),
        sweep.times.last().unwrap() * 1e3,
        sweep.settled()
    );
    println!(
        "measured prototype: area {}, read power {}, read delay {}\n",
        rom.area(),
        rom.read_power(),
        rom.read_delay()
    );

    println!("== prototype 3: 2-level analog decision tree (§VI-B) ==\n");
    println!("x1  x2  | S1 S2 | C3 C4");
    for (x1, x2) in [(0.9, 0.9), (0.9, 0.1), (0.1, 0.9), (0.1, 0.1)] {
        let (s1, s2, c3, c4) = two_level_tree_transients(x1, x2, 30e-3, 200);
        println!(
            "{x1:.1} {x2:.1} |  {:.0}  {:.0} |  {:.0}  {:.0}",
            s1.settled(),
            s2.settled(),
            c3.settled(),
            c4.settled()
        );
    }
    let (s1, s2, _, _) = two_level_tree_transients(0.9, 0.5, 30e-3, 200);
    let margin = s1.margin_against(&s2);
    println!(
        "\nworst-case settled output margin: {:.0} mV (fabricated prototype measured 405 mV)",
        margin * 1e3
    );
    assert!(margin > 0.405);
}
