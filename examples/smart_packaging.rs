//! Smart packaging: a sub-cent wine-quality tag.
//!
//! The paper's motivating FMCG scenario ("is this milk bad?", "is this
//! wine any good?"): a printed in-situ sensor plus classifier on the
//! package itself. Wine quality is ordinal, so this is SVM-regression
//! territory (§III). The example compares every SVM architecture family —
//! conventional, bespoke, lookup (plain and optimized), analog — and picks
//! the one a printed battery can actually power for the product's shelf
//! life.
//!
//! ```text
//! cargo run --release --example smart_packaging
//! ```

#![allow(clippy::print_literal)] // aligned table headers

use printed_ml::core::flow::{SvmArch, SvmFlow};
use printed_ml::core::LookupConfig;
use printed_ml::ml::synth::Application;
use printed_ml::pdk::{PowerSource, Technology};

fn main() {
    println!("== smart packaging: printed wine-quality tag ==\n");

    let flow = SvmFlow::new(Application::RedWine, 7);
    println!(
        "SVM-R over {} pH/metal-trace features, {} classes",
        flow.n_features,
        flow.qs.n_classes()
    );
    println!(
        "accuracy: {:.3} float / {:.3} quantized at {} bits",
        flow.float_accuracy, flow.choice.accuracy, flow.choice.bits
    );
    println!(
        "{} integer MACs after quantization ({} positive, {} negative terms)\n",
        flow.qs.mac_count(),
        flow.qs.pos_terms().len(),
        flow.qs.neg_terms().len()
    );

    let candidates = [
        ("conventional", SvmArch::Conventional),
        ("bespoke", SvmArch::Bespoke),
        ("lookup", SvmArch::Lookup(LookupConfig::baseline())),
        ("lookup+opt", SvmArch::Lookup(LookupConfig::optimized())),
        ("analog", SvmArch::Analog),
    ];
    println!(
        "{:>14}  {:>12}  {:>12}  {:>12}  {}",
        "architecture", "latency", "area", "power", "powered by"
    );
    let mut best: Option<(String, printed_ml::core::DesignReport)> = None;
    for (name, arch) in candidates {
        let r = flow.report(arch, Technology::Egt);
        println!(
            "{:>14}  {:>12}  {:>12}  {:>12}  {}",
            name,
            r.latency.to_string(),
            r.area.to_string(),
            r.power.to_string(),
            r.feasibility().source_name()
        );
        let replace = match &best {
            None => r.feasibility().is_powerable(),
            Some((_, b)) => r.feasibility().is_powerable() && r.power < b.power,
        };
        if replace {
            best = Some((name.to_string(), r));
        }
    }

    let (name, chosen) = best.expect("some architecture must be powerable");
    println!("\nchosen architecture: {name}");

    // Shelf-life check: a Blue Spark 30 mAh printed cell, duty-cycled to
    // one inference per minute (the tag sleeps between measurements; we
    // charge the full static power only while evaluating).
    let battery = PowerSource::blue_spark_30mah();
    let duty = (chosen.latency.as_secs() / 60.0).min(1.0);
    let average_draw = chosen.power * duty;
    match battery.lifetime_hours(average_draw) {
        Some(hours) => println!(
            "one inference per minute from a {}: {:.0} days of shelf life",
            battery.name,
            hours / 24.0
        ),
        None => println!("the {} cannot power this tag", battery.name),
    }
}
