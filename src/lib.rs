#![warn(missing_docs)]

//! # printed-ml — Printed Machine Learning Classifiers, reproduced in Rust
//!
//! A full reproduction of *Printed Machine Learning Classifiers*
//! (Mubarik, Weller et al., MICRO 2020): bespoke, lookup-based and analog
//! classifier architectures for low-voltage printed electronics, together
//! with every substrate the paper's evaluation rests on — calibrated
//! EGT / CNT-TFT / TSMC-40nm cell libraries, a gate-level netlist flow
//! with logic optimization and functional simulation, from-scratch
//! classifier training, and an analog circuit layer with transient
//! simulation.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`pdk`] — technologies, cell libraries, ROM macros, power sources;
//! * [`netlist`] — IR, generators, optimizer, PPA analysis, simulator;
//! * [`ml`] — datasets, classifiers, quantization, op counting;
//! * [`analog`] — device models, analog comparators/crossbars, transients;
//! * [`core`] (crate `printed-core`) — the classifier architecture
//!   generators and end-to-end flows;
//! * [`exec`] — the deterministic parallel execution substrate (work
//!   pool, seed streams, PRNG) every Monte Carlo sweep runs on;
//! * [`obs`] — the unified observability layer (span timers, counters,
//!   gauges and the `obs-report-v1` report every bench binary emits);
//! * [`cache`] — the content-addressed artifact cache memoizing trained
//!   models, optimized netlists and PPA results across runs (opt-in;
//!   see `docs/caching.md`).
//!
//! ## Quickstart
//!
//! ```
//! use printed_ml::core::flow::{TreeArch, TreeFlow};
//! use printed_ml::ml::synth::Application;
//! use printed_ml::pdk::Technology;
//!
//! // Train a depth-2 tree for a human-activity tag, generate the bespoke
//! // parallel architecture, and price it in printed EGT technology.
//! let flow = TreeFlow::new(Application::Har, 2, 7);
//! let report = flow.report(TreeArch::BespokeParallel, Technology::Egt);
//! assert!(report.feasibility().is_powerable());
//! ```
//!
//! See `examples/` for complete application walkthroughs and
//! `crates/bench` for the binaries regenerating every table and figure of
//! the paper.

pub use analog;
pub use cache;
pub use exec;
pub use ml;
pub use netlist;
pub use obs;
pub use pdk;
pub use printed_core as core;
