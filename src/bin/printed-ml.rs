//! `printed-ml` — command-line front end for the classifier generator.
//!
//! The flow a downstream user actually wants: pick a dataset (or bring
//! your own via the library), pick an architecture and technology, get a
//! PPA report, a power-source verdict, and optionally the Verilog plus a
//! self-checking testbench.
//!
//! ```text
//! printed-ml list
//! printed-ml report    --app cardio --depth 4 --arch bespoke-parallel --tech egt
//! printed-ml generate  --app cardio --depth 4 --arch bespoke-parallel \
//!                      --verilog tree.v --testbench tb.v
//! printed-ml sweep     --app redwine --depth 4
//! ```

#![allow(clippy::print_literal)] // aligned table headers

use std::collections::HashMap;
use std::process::ExitCode;

use printed_ml::analog::AnalogTreeConfig;
use printed_ml::core::flow::{SvmArch, SvmFlow, TreeArch, TreeFlow};
use printed_ml::core::LookupConfig;
use printed_ml::ml::synth::Application;
use printed_ml::netlist::{to_testbench, to_verilog};
use printed_ml::pdk::Technology;

fn usage() -> &'static str {
    "printed-ml — printed machine-learning classifier generator\n\
     \n\
     USAGE:\n\
       printed-ml list\n\
       printed-ml report    --app <dataset> [--depth N] [--arch ARCH] [--tech TECH] [--svm]\n\
       printed-ml generate  --app <dataset> [--depth N] [--arch ARCH] [--svm]\n\
                            [--verilog PATH] [--testbench PATH]\n\
       printed-ml sweep     --app <dataset> [--depth N]\n\
       printed-ml variation --app <dataset> [--depth N] [--svm] [--sigmas S1,S2,..]\n\
                            [--trials N] [--rows N] [--seed N]\n\
       printed-ml cache     stats | clear\n\
     \n\
     ARCH (trees): conv-serial | conv-parallel | bespoke-serial |\n\
                   bespoke-parallel | lookup | lookup-opt | analog\n\
     ARCH (--svm): conv | bespoke | lookup | lookup-opt | analog\n\
     TECH:         egt | cnt | tsmc40\n\
     \n\
     Defaults: --depth 4, --arch bespoke-parallel (trees) / bespoke (svm),\n\
               --tech egt, seed 7; variation: --sigmas 0.02,0.05,0.1,0.2,\n\
               --trials 100, --rows 100.\n\
     \n\
     Trained models, optimized netlists and PPA results are memoized in a\n\
     content-addressed cache (bench/out/cache/ by default; override with\n\
     PRINTED_ML_CACHE_DIR). Disable per run with --no-cache or\n\
     PRINTED_ML_NO_CACHE=1; inspect with `cache stats`, wipe with\n\
     `cache clear`."
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            if name == "svm" || name == "no-cache" {
                flags.insert(name.to_string(), "true".to_string());
                i += 1;
            } else {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--{name} requires a value"))?;
                flags.insert(name.to_string(), value.clone());
                i += 2;
            }
        } else {
            return Err(format!("unexpected argument {a}"));
        }
    }
    Ok(flags)
}

fn parse_app(flags: &HashMap<String, String>) -> Result<Application, String> {
    let name = flags.get("app").ok_or("--app is required")?;
    Application::ALL
        .into_iter()
        .find(|a| a.name() == name.as_str())
        .ok_or_else(|| {
            format!(
                "unknown dataset {name}; available: {}",
                Application::ALL.map(|a| a.name()).join(" ")
            )
        })
}

fn parse_tech(flags: &HashMap<String, String>) -> Result<Technology, String> {
    match flags.get("tech").map(String::as_str).unwrap_or("egt") {
        "egt" => Ok(Technology::Egt),
        "cnt" | "cnt-tft" => Ok(Technology::CntTft),
        "tsmc40" | "si" | "silicon" => Ok(Technology::Tsmc40),
        other => Err(format!("unknown technology {other}")),
    }
}

fn parse_tree_arch(name: &str) -> Result<TreeArch, String> {
    Ok(match name {
        "conv-serial" => TreeArch::ConventionalSerial,
        "conv-parallel" => TreeArch::ConventionalParallel,
        "bespoke-serial" => TreeArch::BespokeSerial,
        "bespoke-parallel" => TreeArch::BespokeParallel,
        "lookup" => TreeArch::Lookup(LookupConfig::baseline()),
        "lookup-opt" => TreeArch::Lookup(LookupConfig::optimized()),
        "analog" => TreeArch::Analog(AnalogTreeConfig::default()),
        other => return Err(format!("unknown tree architecture {other}")),
    })
}

fn parse_svm_arch(name: &str) -> Result<SvmArch, String> {
    Ok(match name {
        "conv" => SvmArch::Conventional,
        "bespoke" => SvmArch::Bespoke,
        "lookup" => SvmArch::Lookup(LookupConfig::baseline()),
        "lookup-opt" => SvmArch::Lookup(LookupConfig::optimized()),
        "analog" => SvmArch::Analog,
        other => return Err(format!("unknown svm architecture {other}")),
    })
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        println!("{}", usage());
        return Ok(());
    };
    match command.as_str() {
        "list" => {
            println!("datasets:");
            for app in Application::ALL {
                let d = app.generate(7);
                println!(
                    "  {:<11} {:>4} features, {:>2} classes, {:>5} samples",
                    app.name(),
                    d.n_features(),
                    d.n_classes,
                    d.len()
                );
            }
            Ok(())
        }
        "cache" => {
            // Point at the store without enabling lookups: stats/clear
            // are administrative and must work even under
            // PRINTED_ML_NO_CACHE=1.
            let root = std::env::var("PRINTED_ML_CACHE_DIR")
                .unwrap_or_else(|_| printed_ml::cache::DEFAULT_DISK_ROOT.to_string());
            printed_ml::cache::set_disk_root(Some(root.clone().into()));
            match args.get(1).map(String::as_str) {
                Some("stats") => {
                    match printed_ml::cache::disk_stats() {
                        Some(stats) if !stats.is_empty() => {
                            println!("{:<20} {:>8} {:>12}", "domain", "entries", "bytes");
                            let (mut entries, mut bytes) = (0, 0);
                            for d in &stats {
                                println!("{:<20} {:>8} {:>12}", d.domain, d.entries, d.bytes);
                                entries += d.entries;
                                bytes += d.bytes;
                            }
                            println!("{:<20} {:>8} {:>12}", "total", entries, bytes);
                        }
                        _ => println!("cache at {root} is empty"),
                    }
                    Ok(())
                }
                Some("clear") => {
                    let removed =
                        printed_ml::cache::clear().map_err(|e| format!("clearing {root}: {e}"))?;
                    println!("removed {removed} entries from {root}");
                    Ok(())
                }
                other => Err(format!(
                    "cache takes `stats` or `clear`, got {}",
                    other.unwrap_or("nothing")
                )),
            }
        }
        "report" | "generate" | "sweep" | "variation" => {
            let flags = parse_flags(&args[1..])?;
            if !flags.contains_key("no-cache") {
                printed_ml::cache::enable_default();
            }
            let app = parse_app(&flags)?;
            let depth: usize = flags
                .get("depth")
                .map(|d| d.parse().map_err(|_| format!("bad depth {d}")))
                .transpose()?
                .unwrap_or(4);
            let tech = parse_tech(&flags)?;
            let is_svm = flags.contains_key("svm");
            match command.as_str() {
                "report" => {
                    if is_svm {
                        let arch = parse_svm_arch(
                            flags.get("arch").map(String::as_str).unwrap_or("bespoke"),
                        )?;
                        let flow = SvmFlow::new(app, 7);
                        println!(
                            "model: SVM-R, {} terms, {} bits, accuracy {:.3}",
                            flow.qs.mac_count(),
                            flow.choice.bits,
                            flow.choice.accuracy
                        );
                        let r = flow.report(arch, tech);
                        println!("{r}");
                        println!("power: {}", r.feasibility());
                    } else {
                        let arch = parse_tree_arch(
                            flags
                                .get("arch")
                                .map(String::as_str)
                                .unwrap_or("bespoke-parallel"),
                        )?;
                        let flow = TreeFlow::new(app, depth, 7);
                        println!(
                            "model: DT-{depth}, {} nodes, {} bits, accuracy {:.3}",
                            flow.qt.comparison_count(),
                            flow.choice.bits,
                            flow.choice.accuracy
                        );
                        let r = flow.report(arch, tech);
                        println!("{r}");
                        println!("power: {}", r.feasibility());
                    }
                    Ok(())
                }
                "generate" => {
                    let module = if is_svm {
                        let arch = parse_svm_arch(
                            flags.get("arch").map(String::as_str).unwrap_or("bespoke"),
                        )?;
                        SvmFlow::new(app, 7)
                            .module(arch)
                            .ok_or("analog designs have no netlist; use `report`")?
                    } else {
                        let arch = parse_tree_arch(
                            flags
                                .get("arch")
                                .map(String::as_str)
                                .unwrap_or("bespoke-parallel"),
                        )?;
                        TreeFlow::new(app, depth, 7)
                            .module(arch)
                            .ok_or("analog designs have no netlist; use `report`")?
                    };
                    println!(
                        "generated {}: {} gates, {} ROMs, {} nets",
                        module.name,
                        module.gate_count(),
                        module.roms.len(),
                        module.net_count()
                    );
                    if let Some(path) = flags.get("verilog") {
                        std::fs::write(path, to_verilog(&module))
                            .map_err(|e| format!("writing {path}: {e}"))?;
                        println!("wrote {path}");
                    }
                    if let Some(path) = flags.get("testbench") {
                        // A small smoke set: zero, all-ones, and ramps.
                        let width_max: u64 = module
                            .inputs
                            .iter()
                            .map(|p| (1u64 << p.width().min(16)) - 1)
                            .max()
                            .unwrap_or(1);
                        let n = module.inputs.len();
                        let vectors: Vec<Vec<u64>> = (0..8u64)
                            .map(|k| {
                                (0..n)
                                    .map(|i| (k * 37 + i as u64 * 11) % (width_max + 1))
                                    .collect()
                            })
                            .collect();
                        std::fs::write(path, to_testbench(&module, &vectors, depth.max(1)))
                            .map_err(|e| format!("writing {path}: {e}"))?;
                        println!("wrote {path}");
                    }
                    Ok(())
                }
                "sweep" => {
                    let flow = TreeFlow::new(app, depth, 7);
                    println!(
                        "{:<18} {:<9} {:>12} {:>12} {:>12}  {}",
                        "architecture", "tech", "latency", "area", "power", "powered by"
                    );
                    for (name, arch) in [
                        ("conv-serial", TreeArch::ConventionalSerial),
                        ("conv-parallel", TreeArch::ConventionalParallel),
                        ("bespoke-serial", TreeArch::BespokeSerial),
                        ("bespoke-parallel", TreeArch::BespokeParallel),
                        ("lookup-opt", TreeArch::Lookup(LookupConfig::optimized())),
                        ("analog", TreeArch::Analog(AnalogTreeConfig::default())),
                    ] {
                        let techs: &[Technology] = if matches!(arch, TreeArch::Analog(_)) {
                            &[Technology::Egt]
                        } else {
                            &[tech]
                        };
                        for &t in techs {
                            let r = flow.report(arch, t);
                            println!(
                                "{:<18} {:<9} {:>12} {:>12} {:>12}  {}",
                                name,
                                t.to_string(),
                                r.latency.to_string(),
                                r.area.to_string(),
                                r.power.to_string(),
                                r.feasibility().source_name()
                            );
                        }
                    }
                    Ok(())
                }
                "variation" => {
                    let sigmas: Vec<f64> = flags
                        .get("sigmas")
                        .map(String::as_str)
                        .unwrap_or("0.02,0.05,0.1,0.2")
                        .split(',')
                        .map(|s| {
                            s.trim()
                                .parse::<f64>()
                                .ok()
                                .filter(|v| *v >= 0.0)
                                .ok_or_else(|| format!("bad sigma {s}"))
                        })
                        .collect::<Result<_, _>>()?;
                    let parse_n = |key: &str, default: usize| -> Result<usize, String> {
                        flags
                            .get(key)
                            .map(|v| {
                                v.parse::<usize>()
                                    .ok()
                                    .filter(|n| *n > 0)
                                    .ok_or_else(|| format!("bad {key} {v}"))
                            })
                            .transpose()
                            .map(|n| n.unwrap_or(default))
                    };
                    let trials = parse_n("trials", 100)?;
                    let rows = parse_n("rows", 100)?;
                    let seed: u64 = flags
                        .get("seed")
                        .map(|v| v.parse().map_err(|_| format!("bad seed {v}")))
                        .transpose()?
                        .unwrap_or(7);
                    let (model, reports) = if is_svm {
                        let flow = SvmFlow::new(app, 7);
                        let model = format!(
                            "SVM-R, {} terms, {} bits",
                            flow.qs.mac_count(),
                            flow.choice.bits
                        );
                        (model, flow.variation_sweep(&sigmas, trials, rows, seed))
                    } else {
                        let flow = TreeFlow::new(app, depth, 7);
                        let model = format!(
                            "DT-{depth}, {} nodes, {} bits",
                            flow.qt.comparison_count(),
                            flow.choice.bits
                        );
                        (model, flow.variation_sweep(&sigmas, trials, rows, seed))
                    };
                    println!("model: {model}; {trials} trials, seed {seed}");
                    println!(
                        "{:<8} {:>16} {:>17}",
                        "sigma", "mean agreement", "worst agreement"
                    );
                    for r in reports {
                        println!(
                            "{:<8} {:>16.3} {:>17.3}",
                            r.sigma, r.mean_agreement, r.worst_agreement
                        );
                    }
                    Ok(())
                }
                _ => unreachable!(),
            }
        }
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other}\n\n{}", usage())),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
