//! Seed-driven random input generation.
//!
//! Everything here is a pure function of its `u64` seed: the same seed
//! always yields the same netlist, vector set or dataset, on any
//! machine at any thread count. That is the property the whole fuzzing
//! subsystem leans on — a failing case is its seed, and a corpus entry
//! can pin a bug class with eight bytes.
//!
//! Netlists are *acyclic by construction*: gates only ever read signals
//! that already exist (input bits, constants, earlier gate outputs, ROM
//! data bits), so every generated module is a valid combinational
//! circuit the five engines must agree on. Cyclic and sequential
//! rejection paths are exercised separately ([`random_sequential_module`]
//! and the hand-mutated corpus fixtures).

use exec::rng::StdRng;
use ml::Dataset;
use netlist::builder::NetlistBuilder;
use netlist::{Module, Signal};
use pdk::RomStyle;

/// Upper bound on gates per generated module — small enough that a
/// smoke run of hundreds of cases stays in milliseconds, large enough
/// to cover every cell kind and multi-level structure.
pub const MAX_GATES: usize = 40;

/// Builds a random combinational module: 1–3 input ports (1–6 bits),
/// a soup of up to [`MAX_GATES`] gates over every 1- and 2-input cell
/// kind plus muxes, an optional crossbar/bespoke ROM, and 1–2 output
/// ports sampling arbitrary internal signals.
pub fn random_module(seed: u64) -> Module {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetlistBuilder::new(format!("fuzz_{seed:016x}"));
    let mut pool: Vec<Signal> = Vec::new();
    let n_ports = rng.gen_range(1..=3usize);
    for p in 0..n_ports {
        let width = rng.gen_range(1..=6usize);
        pool.extend(b.input(format!("in{p}"), width));
    }
    // Constants participate like any other signal, so constant-input
    // gates (the optimizer's favorite food) appear organically.
    pool.push(Signal::Const(false));
    pool.push(Signal::Const(true));

    let n_gates = rng.gen_range(1..=MAX_GATES);
    for _ in 0..n_gates {
        let a = pool[rng.gen_range(0..pool.len())];
        let c = pool[rng.gen_range(0..pool.len())];
        let s = pool[rng.gen_range(0..pool.len())];
        let out = match rng.gen_range(0..9usize) {
            0 => b.not(a),
            1 => b.buf(a),
            2 => b.and(a, c),
            3 => b.or(a, c),
            4 => b.nand(a, c),
            5 => b.nor(a, c),
            6 => b.xor(a, c),
            7 => b.xnor(a, c),
            _ => b.mux(s, a, c),
        };
        pool.push(out);
    }

    if rng.gen_bool(0.3) {
        let addr_bits = rng.gen_range(1..=3usize);
        let addr: Vec<Signal> = (0..addr_bits)
            .map(|_| pool[rng.gen_range(0..pool.len())])
            .collect();
        let data_bits = rng.gen_range(1..=4usize);
        let mask = (1u64 << data_bits) - 1;
        let contents: Vec<u64> = (0..(1usize << addr_bits))
            .map(|_| rng.next_u64() & mask)
            .collect();
        let style = if rng.gen_bool(0.5) {
            RomStyle::Crossbar
        } else {
            RomStyle::BespokeDots
        };
        pool.extend(b.rom(&addr, contents, data_bits, style));
    }

    let n_outputs = rng.gen_range(1..=2usize);
    for o in 0..n_outputs {
        let width = rng.gen_range(1..=6usize);
        let bits: Vec<Signal> = (0..width)
            .map(|_| pool[rng.gen_range(0..pool.len())])
            .collect();
        b.output(format!("out{o}"), &bits);
    }
    match b.try_finish() {
        Ok(m) => m,
        Err(e) => unreachable!("generator produced an invalid module for seed {seed:#x}: {e}"),
    }
}

/// A [`random_module`] with one D flip-flop appended, making it
/// sequential. The combinational engines must all *reject* it — with the
/// same error kind — rather than mis-simulate it.
pub fn random_sequential_module(seed: u64) -> Module {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetlistBuilder::new(format!("fuzz_seq_{seed:016x}"));
    let x = b.input("in0", rng.gen_range(1..=4usize));
    let q = b.dff(x[0], rng.gen_bool(0.5));
    let y = b.xor(q, x[x.len() - 1]);
    b.output("out0", &[y]);
    match b.try_finish() {
        Ok(m) => m,
        Err(e) => unreachable!("generator produced an invalid module for seed {seed:#x}: {e}"),
    }
}

/// Random input vectors for `module`: one masked value per input port.
pub fn random_vectors(seed: u64, module: &Module, n: usize) -> Vec<Vec<u64>> {
    let mut rng = StdRng::seed_from_u64(exec::seed::mix64(seed ^ SEED_0F_VECTORS));
    let widths: Vec<usize> = module.inputs.iter().map(|p| p.width()).collect();
    (0..n)
        .map(|_| {
            widths
                .iter()
                .map(|&w| {
                    let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
                    rng.next_u64() & mask
                })
                .collect()
        })
        .collect()
}

/// Builds a small random classification dataset: 2–5 features, 2–3
/// classes with well-separated random centers plus uniform noise —
/// learnable enough that fitted models have real structure, small
/// enough (≤ 60 rows) that a fit costs well under a millisecond.
pub fn random_dataset(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = rng.gen_range(2..=5usize);
    let k = rng.gen_range(2..=3usize);
    let rows_per_class = rng.gen_range(10..=20usize);
    let centers: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..d).map(|_| rng.next_f64() * 4.0 - 2.0).collect())
        .collect();
    let mut x = Vec::with_capacity(k * rows_per_class);
    let mut y = Vec::with_capacity(k * rows_per_class);
    for (class, center) in centers.iter().enumerate() {
        for _ in 0..rows_per_class {
            x.push(
                center
                    .iter()
                    .map(|&c| c + (rng.next_f64() - 0.5) * 1.2)
                    .collect(),
            );
            y.push(class);
        }
    }
    Dataset::new(format!("fuzz_data_{seed:08x}"), x, y, k)
}

/// Salt for the vector stream so vectors are decorrelated from the
/// module structure drawn from the same case seed.
const SEED_0F_VECTORS: u64 = 0x76EC_7025;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_a_pure_function_of_the_seed() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            assert_eq!(random_module(seed), random_module(seed));
            let m = random_module(seed);
            assert_eq!(random_vectors(seed, &m, 8), random_vectors(seed, &m, 8));
            let a = random_dataset(seed);
            let b = random_dataset(seed);
            assert_eq!(a.x, b.x);
            assert_eq!(a.y, b.y);
        }
    }

    #[test]
    fn generated_modules_are_valid_and_combinational() {
        for seed in 0..50u64 {
            let m = random_module(seed);
            assert!(m.validate().is_ok(), "seed {seed}");
            assert!(m.is_combinational(), "seed {seed}");
        }
    }

    #[test]
    fn sequential_modules_are_actually_sequential() {
        for seed in 0..10u64 {
            assert!(!random_sequential_module(seed).is_combinational());
        }
    }
}
