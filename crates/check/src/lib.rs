#![warn(missing_docs)]

//! # check — deterministic differential fuzzing
//!
//! This repository deliberately keeps *redundant implementations* of
//! its hot paths: a scalar simulator next to three lane-parallel
//! engines, a scalar analog-variation analyzer next to compiled tapes,
//! an optimizer whose output is miter-verified against its input, a
//! hand-rolled serde shim, and a content-addressed artifact cache.
//! Redundancy is only a safety net if something *diffs* the redundant
//! pairs continuously — that is this crate.
//!
//! * [`gen`] — seed-driven random netlists, vectors and datasets;
//! * [`oracle`] — the five differential oracles;
//! * [`shrink`] — greedy reproducer minimization;
//! * [`corpus`] — pinned minimized reproducers, replayed in CI.
//!
//! Everything is a pure function of a root seed, sharded over
//! [`exec::parallel_map`] with per-case [`exec::task_seed`] streams, so
//! a run's outcomes — and its aggregate [`digest`] — are bit-identical
//! at any thread count. `cargo run --bin check_fuzz -- --smoke` is the
//! CI entry point; see `docs/fuzzing.md` for the seed protocol and the
//! corpus re-pin workflow.

pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod shrink;

pub use oracle::OracleKind;

/// Outcome of one fuzz case.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseOutcome {
    /// Case index within the run (drives the seed stream).
    pub index: u64,
    /// The case seed, `task_seed(root_seed, index)`.
    pub seed: u64,
    /// Which oracle pair the case exercised.
    pub oracle: OracleKind,
    /// Hash of the observed behavior (outputs, reports, encodings).
    /// Zero when the case mismatched.
    pub fingerprint: u64,
    /// The oracle's mismatch report, if the redundant pair disagreed.
    pub mismatch: Option<String>,
}

/// Runs `cases` fuzz cases under `root_seed`, sharded across the
/// [`exec`] thread pool. Case `i` draws seed `task_seed(root_seed, i)`
/// and exercises oracle `i % 5`, so a fixed `(root_seed, cases)` block
/// covers all five oracle pairs with a deterministic case list —
/// results are in case order and bit-identical at any thread count.
pub fn run_cases(root_seed: u64, cases: u64) -> Vec<CaseOutcome> {
    let indices: Vec<u64> = (0..cases).collect();
    exec::parallel_map(&indices, |_, &index| run_case(root_seed, index))
}

/// Runs the single case `index` of the `root_seed` stream.
pub fn run_case(root_seed: u64, index: u64) -> CaseOutcome {
    let seed = exec::task_seed(root_seed, index);
    let oracle = OracleKind::ALL[(index % OracleKind::ALL.len() as u64) as usize];
    match oracle::run_oracle(oracle, seed) {
        Ok(fingerprint) => CaseOutcome {
            index,
            seed,
            oracle,
            fingerprint,
            mismatch: None,
        },
        Err(detail) => CaseOutcome {
            index,
            seed,
            oracle,
            fingerprint: 0,
            mismatch: Some(detail),
        },
    }
}

/// Order-sensitive digest of a run's outcomes. Two runs of the same
/// `(root_seed, cases)` block must produce the same digest regardless
/// of thread count — the thread-invariance contract CI enforces.
pub fn digest(outcomes: &[CaseOutcome]) -> u64 {
    let mut d = 0x_C4EC_D16E_5EED_0001u64;
    for o in outcomes {
        d = exec::seed::mix64(d ^ o.seed ^ o.fingerprint.rotate_left(17));
        d = exec::seed::mix64(d ^ (o.mismatch.is_some() as u64));
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_block_runs_clean_across_all_oracles() {
        let outcomes = run_cases(0xC0FFEE, 10);
        assert_eq!(outcomes.len(), 10);
        for o in &outcomes {
            assert!(
                o.mismatch.is_none(),
                "case {} ({}) mismatched: {}",
                o.index,
                o.oracle.name(),
                o.mismatch.as_deref().unwrap_or("")
            );
            assert_ne!(o.fingerprint, 0);
        }
        // All five oracles were exercised.
        let kinds: std::collections::HashSet<_> = outcomes.iter().map(|o| o.oracle).collect();
        assert_eq!(kinds.len(), 5);
    }

    #[test]
    fn digests_are_reproducible() {
        let a = run_cases(42, 10);
        let b = run_cases(42, 10);
        assert_eq!(a, b);
        assert_eq!(digest(&a), digest(&b));
        // Different seed, different digest.
        assert_ne!(digest(&a), digest(&run_cases(43, 10)));
    }
}
