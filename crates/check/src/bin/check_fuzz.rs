//! Differential fuzzing driver.
//!
//! ```text
//! check_fuzz --smoke                 # the fixed CI block: seed 0xC0FFEE, 250 cases
//! check_fuzz --seed 7 --cases 1000   # a custom block
//! check_fuzz --threads 4             # pin the shard pool (default: all cores)
//! check_fuzz --json                  # machine-readable summary on stdout
//! check_fuzz --replay                # replay the committed corpus and exit
//! check_fuzz --repin-corpus          # regenerate the seeded bug-class fixtures
//! ```
//!
//! Exit status is non-zero iff any oracle pair disagreed (or a corpus
//! entry regressed). On a mismatch the failing case is shrunk and the
//! minimized reproducer written into the corpus directory so it can be
//! committed as a pinned regression test.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use check::corpus::{self, Reproducer};
use check::{digest, oracle, shrink, CaseOutcome, OracleKind};

/// The fixed CI smoke block: every CI run fuzzes exactly these cases,
/// so a red fuzz job is reproducible with one command.
const SMOKE_SEED: u64 = 0xC0FFEE;
/// Smoke case count — 50 cases per oracle pair.
const SMOKE_CASES: u64 = 250;
/// Smoke wall-clock budget: the run aborts (cleanly, between batches)
/// rather than wedge a CI lane.
const SMOKE_BUDGET_SECS: u64 = 55;

/// Cases per scheduling batch: small enough that a time budget is
/// honored promptly, large enough to keep every worker busy.
const BATCH: u64 = 50;

struct Options {
    seed: u64,
    cases: u64,
    threads: Option<usize>,
    json: bool,
    replay: bool,
    repin: bool,
    no_shrink: bool,
    budget_secs: Option<u64>,
    corpus_dir: PathBuf,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        seed: SMOKE_SEED,
        cases: SMOKE_CASES,
        threads: None,
        json: false,
        replay: false,
        repin: false,
        no_shrink: false,
        budget_secs: None,
        corpus_dir: corpus::default_dir(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--smoke" => {
                opts.seed = SMOKE_SEED;
                opts.cases = SMOKE_CASES;
                opts.budget_secs = Some(SMOKE_BUDGET_SECS);
            }
            "--seed" => opts.seed = parse_u64(&value("--seed")?)?,
            "--cases" => opts.cases = parse_u64(&value("--cases")?)?,
            "--threads" => {
                opts.threads = Some(parse_u64(&value("--threads")?)? as usize);
            }
            "--budget-secs" => opts.budget_secs = Some(parse_u64(&value("--budget-secs")?)?),
            "--corpus-dir" => opts.corpus_dir = PathBuf::from(value("--corpus-dir")?),
            "--json" => opts.json = true,
            "--replay" => opts.replay = true,
            "--repin-corpus" => opts.repin = true,
            "--no-shrink" => opts.no_shrink = true,
            "--help" | "-h" => {
                println!(
                    "usage: check_fuzz [--smoke] [--seed N] [--cases N] [--threads N] \
                     [--budget-secs N] [--corpus-dir DIR] [--json] [--replay] \
                     [--repin-corpus] [--no-shrink]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

fn parse_u64(s: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|e| format!("bad number {s:?}: {e}"))
}

fn replay_corpus(dir: &std::path::Path, json: bool) -> ExitCode {
    let entries = match corpus::load_all(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("check_fuzz: cannot read corpus {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    let mut failures = 0usize;
    for (path, repro) in &entries {
        if let Err(e) = repro.replay() {
            eprintln!("check_fuzz: corpus regression {}: {e}", path.display());
            failures += 1;
        }
    }
    if json {
        println!(
            "{{\"corpus\": {}, \"regressions\": {failures}}}",
            entries.len()
        );
    } else {
        println!(
            "check_fuzz: replayed {} corpus entries, {failures} regressions",
            entries.len()
        );
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn repin_corpus(dir: &std::path::Path) -> ExitCode {
    for fixture in corpus::seeded_fixtures() {
        match corpus::save(dir, &fixture) {
            Ok(path) => println!("check_fuzz: pinned {}", path.display()),
            Err(e) => {
                eprintln!("check_fuzz: cannot write fixture: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Shrinks a mismatching engines/optimizer case and writes the
/// minimized reproducer. Seed-driven oracles (variation) and value
/// oracles (serde, cache) pin the bare seed.
fn write_reproducer(opts: &Options, outcome: &CaseOutcome) -> Option<PathBuf> {
    let module = match outcome.oracle {
        OracleKind::Engines | OracleKind::Optimizer | OracleKind::Serde | OracleKind::CacheKey => {
            let raw = if outcome.oracle == OracleKind::Engines && outcome.seed % 8 == 3 {
                check::gen::random_sequential_module(outcome.seed)
            } else {
                check::gen::random_module(outcome.seed)
            };
            let seed = outcome.seed;
            let still_fails = |m: &netlist::Module| -> bool {
                let r = match outcome.oracle {
                    OracleKind::Engines => oracle::engines_agree(m, seed),
                    OracleKind::Optimizer => oracle::optimizer_holds(m),
                    OracleKind::Serde => oracle::serde_round_trip_module(m),
                    OracleKind::CacheKey => oracle::cache_key_stable_module(m),
                    OracleKind::Variation => unreachable!("variation has no module"),
                };
                r.is_err()
            };
            if opts.no_shrink {
                Some(raw)
            } else {
                Some(shrink::shrink_module(&raw, &still_fails))
            }
        }
        OracleKind::Variation => None,
    };
    let repro = Reproducer {
        oracle: outcome.oracle.name().to_string(),
        seed: outcome.seed,
        note: format!(
            "fuzzer-found mismatch: {}",
            outcome.mismatch.as_deref().unwrap_or("")
        ),
        module,
    };
    match corpus::save(&opts.corpus_dir, &repro) {
        Ok(path) => Some(path),
        Err(e) => {
            eprintln!("check_fuzz: cannot write reproducer: {e}");
            None
        }
    }
}

fn fuzz(opts: &Options) -> ExitCode {
    let start = Instant::now();
    let mut outcomes: Vec<CaseOutcome> = Vec::with_capacity(opts.cases as usize);
    let mut truncated = false;
    let mut next = 0u64;
    while next < opts.cases {
        if let Some(budget) = opts.budget_secs {
            if start.elapsed().as_secs() >= budget {
                truncated = true;
                break;
            }
        }
        let end = (next + BATCH).min(opts.cases);
        let indices: Vec<u64> = (next..end).collect();
        outcomes.extend(exec::parallel_map(&indices, |_, &i| {
            check::run_case(opts.seed, i)
        }));
        next = end;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let d = digest(&outcomes);
    let mut per_oracle = [0usize; 5];
    let mut mismatches: Vec<&CaseOutcome> = Vec::new();
    for o in &outcomes {
        let slot = OracleKind::ALL
            .iter()
            .position(|k| *k == o.oracle)
            .unwrap_or(0);
        per_oracle[slot] += 1;
        if o.mismatch.is_some() {
            mismatches.push(o);
        }
    }
    for m in &mismatches {
        eprintln!(
            "check_fuzz: MISMATCH oracle={} index={} seed={:#018x}: {}",
            m.oracle.name(),
            m.index,
            m.seed,
            m.mismatch.as_deref().unwrap_or("")
        );
        if let Some(path) = write_reproducer(opts, m) {
            eprintln!(
                "check_fuzz: minimized reproducer written to {}",
                path.display()
            );
        }
    }
    if opts.json {
        let per: Vec<String> = OracleKind::ALL
            .iter()
            .zip(per_oracle)
            .map(|(k, n)| format!("\"{}\": {n}", k.name()))
            .collect();
        println!(
            "{{\"seed\": {}, \"cases\": {}, \"digest\": \"{d:#018x}\", \
             \"mismatches\": {}, \"truncated\": {truncated}, \
             \"elapsed_secs\": {elapsed:.3}, \"per_oracle\": {{{}}}}}",
            opts.seed,
            outcomes.len(),
            mismatches.len(),
            per.join(", ")
        );
    } else {
        let per: Vec<String> = OracleKind::ALL
            .iter()
            .zip(per_oracle)
            .map(|(k, n)| format!("{}={n}", k.name()))
            .collect();
        println!(
            "check_fuzz: seed={:#x} cases={} digest={d:#018x} {} mismatches={}{} \
             elapsed={elapsed:.2}s",
            opts.seed,
            outcomes.len(),
            per.join(" "),
            mismatches.len(),
            if truncated { " (budget hit)" } else { "" },
        );
    }
    if mismatches.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("check_fuzz: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.repin {
        return repin_corpus(&opts.corpus_dir);
    }
    let run = || {
        if opts.replay {
            replay_corpus(&opts.corpus_dir, opts.json)
        } else {
            fuzz(&opts)
        }
    };
    match opts.threads {
        Some(n) => exec::with_threads(n, run),
        None => run(),
    }
}
