//! Minimized-reproducer corpus.
//!
//! Every mismatch the fuzzer ever finds is distilled (via
//! [`crate::shrink`]) into a [`Reproducer`] and written under
//! `crates/check/corpus/` as JSON. The corpus is committed: the replay
//! test (`tests/corpus_replay.rs`) runs every entry through its oracle
//! on every CI build, so a fixed bug stays fixed forever. Entries can
//! also encode *bug classes* seeded by hand — a cyclic module, a
//! constant-folding identity, a ROM round-trip — pinning behavior the
//! random generator only reaches probabilistically.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use netlist::Module;
use serde::{Deserialize, Serialize};

use crate::oracle::{self, OracleKind};

/// One pinned reproducer: the oracle it targets, the case seed, and —
/// when the minimized input is a netlist — the module itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reproducer {
    /// Oracle name ([`OracleKind::name`]).
    pub oracle: String,
    /// Case seed (drives vectors / datasets / Monte-Carlo streams).
    pub seed: u64,
    /// What bug class this pins, for humans reading the corpus.
    pub note: String,
    /// Minimized module, when the failing input was a netlist. `None`
    /// replays the oracle from the seed alone.
    pub module: Option<Module>,
}

impl Reproducer {
    /// Canonical corpus file name for this entry.
    pub fn file_name(&self) -> String {
        format!("{}_{:016x}.json", self.oracle, self.seed)
    }

    /// Replays the reproducer through its oracle. `Ok(())` means the
    /// bug it pins is still fixed; `Err` carries the oracle's mismatch
    /// report.
    pub fn replay(&self) -> Result<(), String> {
        let kind = OracleKind::from_name(&self.oracle)
            .ok_or_else(|| format!("unknown oracle {:?}", self.oracle))?;
        match (&self.module, kind) {
            (Some(m), OracleKind::Engines) => oracle::engines_agree(m, self.seed).map(|_| ()),
            (Some(m), OracleKind::Optimizer) => oracle::optimizer_holds(m).map(|_| ()),
            (Some(m), OracleKind::Serde) => oracle::serde_round_trip_module(m).map(|_| ()),
            (Some(m), OracleKind::CacheKey) => oracle::cache_key_stable_module(m).map(|_| ()),
            (Some(_), OracleKind::Variation) => {
                Err("variation reproducers are seed-driven; drop the module field".to_string())
            }
            (None, kind) => oracle::run_oracle(kind, self.seed).map(|_| ()),
        }
    }
}

/// Writes `repro` into `dir` (created if missing). Returns the path.
pub fn save(dir: &Path, repro: &Reproducer) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(repro.file_name());
    let json = serde_json::to_string_pretty(repro)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
    fs::write(&path, json + "\n")?;
    Ok(path)
}

/// Loads every `*.json` reproducer under `dir`, sorted by file name so
/// replay order (and failure reports) are stable.
pub fn load_all(dir: &Path) -> io::Result<Vec<(PathBuf, Reproducer)>> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    for path in paths {
        let text = fs::read_to_string(&path)?;
        let repro: Reproducer = serde_json::from_str(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e:?}", path.display()),
            )
        })?;
        out.push((path, repro));
    }
    Ok(out)
}

/// The committed corpus directory of this crate.
pub fn default_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus"))
}

/// Builds the hand-seeded bug-class fixtures. Deterministic: running
/// `check_fuzz --repin-corpus` always regenerates byte-identical files.
pub fn seeded_fixtures() -> Vec<Reproducer> {
    use netlist::builder::NetlistBuilder;
    use netlist::Signal;

    // 1. A combinational cycle: two inverters feeding each other. The
    //    builder cannot express this (it is acyclic by construction), so
    //    the loop is closed by rewiring after finish() — exactly the
    //    kind of module that reaches the engines through serde, where
    //    every engine must agree on rejection instead of hanging or
    //    diverging.
    let mut b = NetlistBuilder::new("pinned_cycle");
    let x = b.input("in0", 1);
    let g0 = b.not(x[0]);
    let g1 = b.not(g0);
    b.output("out0", &[g1]);
    let mut cyclic = b.finish();
    let feedback = cyclic.gates[1].output;
    cyclic.gates[0].inputs[0] = Signal::Net(feedback);
    let cycle_fixture = Reproducer {
        oracle: "engines".to_string(),
        seed: 0x0001,
        note: "all engines must reject a combinational cycle with the same error kind \
               (CombinationalCycle), never diverge or loop"
            .to_string(),
        module: Some(cyclic),
    };

    // 2. Constant-folding identities: xor(a, a), and(x, 1), or(y, 0) —
    //    the PR 3 optimizer class. The optimizer must fold these without
    //    changing the function, proven by the miter.
    let mut b = NetlistBuilder::new("pinned_identities");
    let x = b.input("in0", 2);
    let zero = b.xor(x[0], x[0]);
    let pass = b.and(x[1], Signal::Const(true));
    let keep = b.or(pass, Signal::Const(false));
    let mix = b.or(zero, keep);
    b.output("out0", &[zero, pass, keep, mix]);
    let identities_fixture = Reproducer {
        oracle: "optimizer".to_string(),
        seed: 0x0002,
        note: "constant-folding identities (xor(a,a), and(x,1), or(y,0)) must optimize \
               to an equivalent circuit"
            .to_string(),
        module: Some(b.finish()),
    };

    // 3. A ROM with non-trivial contents: the serde path must preserve
    //    contents, word width and style, and the cache key must not
    //    drift across the round-trip (the PR 9 artifact-cache class).
    let mut b = NetlistBuilder::new("pinned_rom");
    let a = b.input("in0", 2);
    let data = b.rom(
        &a,
        vec![0b101, 0b010, 0b111, 0b000],
        3,
        pdk::RomStyle::BespokeDots,
    );
    b.output("out0", &data);
    let rom_fixture = Reproducer {
        oracle: "serde".to_string(),
        seed: 0x0003,
        note: "ROM contents/width/style must survive a serde round-trip and re-encode \
               canonically"
            .to_string(),
        module: Some(b.finish()),
    };

    // 4. The same ROM module through the cache-key oracle.
    let rom_key_fixture = Reproducer {
        oracle: "cache".to_string(),
        seed: 0x0004,
        note: "structural and serialized-form cache keys of a ROM module must be \
               invariant under a serde re-encode"
            .to_string(),
        module: rom_fixture.module.clone(),
    };

    vec![
        cycle_fixture,
        identities_fixture,
        rom_fixture,
        rom_key_fixture,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_fixtures_are_deterministic_and_replayable() {
        let a = seeded_fixtures();
        let b = seeded_fixtures();
        assert_eq!(a, b);
        for f in &a {
            f.replay().unwrap_or_else(|e| {
                unreachable!("seeded fixture {} regressed: {e}", f.file_name())
            });
        }
    }

    #[test]
    fn reproducers_round_trip_through_the_shim() {
        for f in seeded_fixtures() {
            let json = serde_json::to_string_pretty(&f).unwrap();
            let back: Reproducer = serde_json::from_str(&json).unwrap();
            assert_eq!(back, f);
        }
    }
}
