//! Greedy reproducer minimization.
//!
//! When an oracle reports a mismatch, the raw reproducer is a 40-gate
//! random soup — correct but useless to a human. The shrinker walks the
//! structure removing one element at a time (a gate, a ROM, an output
//! port; a dataset row or feature), re-running the failing oracle after
//! every candidate edit and keeping the edit only if the mismatch
//! survives. The result is a local minimum: removing any single
//! remaining element makes the bug disappear.
//!
//! The predicate is the *oracle*, not a recorded value comparison, so a
//! shrunk case fails for the same reason the original did.

use ml::Dataset;
use netlist::{Module, NetId, Signal};

/// Hard cap on candidate evaluations per shrink, so shrinking a slow
/// oracle can never dominate a fuzzing run.
const MAX_CANDIDATES: usize = 400;

/// Replaces every *reader* of `net` with a constant-zero signal: gate
/// inputs, ROM address bits and output port bits. The driver itself is
/// expected to be removed by the caller.
fn retarget_readers(m: &mut Module, net: NetId) {
    let subst = |s: &mut Signal| {
        if *s == Signal::Net(net) {
            *s = Signal::Const(false);
        }
    };
    for g in &mut m.gates {
        g.inputs.iter_mut().for_each(subst);
    }
    for r in &mut m.roms {
        r.addr.iter_mut().for_each(subst);
    }
    for p in &mut m.outputs {
        p.bits.iter_mut().for_each(subst);
    }
}

/// One candidate with gate `index` deleted; its output net reads as 0.
fn without_gate(m: &Module, index: usize) -> Module {
    let mut c = m.clone();
    let net = c.gates.remove(index).output;
    retarget_readers(&mut c, net);
    c
}

/// One candidate with ROM `index` deleted; its data nets read as 0.
fn without_rom(m: &Module, index: usize) -> Module {
    let mut c = m.clone();
    let rom = c.roms.remove(index);
    for net in rom.data {
        retarget_readers(&mut c, net);
    }
    c
}

/// Greedily minimizes a failing module under `still_fails` (true means
/// the oracle still reports the mismatch). Returns the smallest module
/// reached within the candidate budget.
pub fn shrink_module(module: &Module, still_fails: &dyn Fn(&Module) -> bool) -> Module {
    let mut best = module.clone();
    let mut tried = 0usize;
    let mut progress = true;
    while progress && tried < MAX_CANDIDATES {
        progress = false;
        // Gates last-to-first: later gates are more likely to be pure
        // fan-out that dies without invalidating earlier structure.
        for gi in (0..best.gates.len()).rev() {
            if tried >= MAX_CANDIDATES {
                break;
            }
            tried += 1;
            let candidate = without_gate(&best, gi);
            if candidate.validate().is_ok() && still_fails(&candidate) {
                best = candidate;
                progress = true;
            }
        }
        for ri in (0..best.roms.len()).rev() {
            if tried >= MAX_CANDIDATES {
                break;
            }
            tried += 1;
            let candidate = without_rom(&best, ri);
            if candidate.validate().is_ok() && still_fails(&candidate) {
                best = candidate;
                progress = true;
            }
        }
        // Drop whole output ports while more than one remains.
        while best.outputs.len() > 1 && tried < MAX_CANDIDATES {
            tried += 1;
            let mut candidate = best.clone();
            candidate.outputs.pop();
            if candidate.validate().is_ok() && still_fails(&candidate) {
                best = candidate;
                progress = true;
            } else {
                break;
            }
        }
    }
    best
}

/// Greedily minimizes a failing dataset: drops rows, then features,
/// while `still_fails` keeps returning true. Every candidate is
/// revalidated through [`Dataset::new`]'s shape invariants by
/// construction (rows stay rectangular, labels stay in range).
pub fn shrink_dataset(data: &Dataset, still_fails: &dyn Fn(&Dataset) -> bool) -> Dataset {
    let mut best = data.clone();
    let mut tried = 0usize;
    let mut progress = true;
    while progress && tried < MAX_CANDIDATES {
        progress = false;
        for row in (0..best.x.len()).rev() {
            if tried >= MAX_CANDIDATES || best.x.len() <= 2 {
                break;
            }
            tried += 1;
            let mut candidate = best.clone();
            candidate.x.remove(row);
            candidate.y.remove(row);
            if still_fails(&candidate) {
                best = candidate;
                progress = true;
            }
        }
        let n_features = best.x.first().map_or(0, |r| r.len());
        for f in (0..n_features).rev() {
            if tried >= MAX_CANDIDATES || best.x.first().map_or(0, |r| r.len()) <= 1 {
                break;
            }
            tried += 1;
            let mut candidate = best.clone();
            for row in &mut candidate.x {
                row.remove(f);
            }
            if still_fails(&candidate) {
                best = candidate;
                progress = true;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn shrinking_a_gate_predicate_reaches_a_local_minimum() {
        // Predicate: "module still contains an XOR gate". The shrinker
        // must strip everything else and keep exactly the load-bearing
        // structure.
        let m = gen::random_module(7);
        let has_xor = |m: &Module| m.gates.iter().any(|g| g.kind == pdk::CellKind::Xor2);
        if !has_xor(&m) {
            return; // seed draws no XOR; nothing to shrink against
        }
        let shrunk = shrink_module(&m, &has_xor);
        assert!(has_xor(&shrunk), "shrinker lost the failing property");
        assert!(shrunk.gates.len() <= m.gates.len());
        // Local minimum: removing any remaining gate kills the property
        // or validity.
        for gi in 0..shrunk.gates.len() {
            let c = without_gate(&shrunk, gi);
            assert!(
                c.validate().is_err() || !has_xor(&c),
                "shrinker stopped early: gate {gi} was removable"
            );
        }
    }

    #[test]
    fn shrunk_modules_stay_valid() {
        for seed in 0..10u64 {
            let m = gen::random_module(seed);
            let always = |_: &Module| true;
            let shrunk = shrink_module(&m, &always);
            assert!(shrunk.validate().is_ok(), "seed {seed}");
            assert!(
                shrunk.gates.is_empty(),
                "seed {seed}: greedy pass incomplete"
            );
        }
    }

    #[test]
    fn dataset_shrinking_respects_shape_invariants() {
        let d = gen::random_dataset(11);
        let always = |_: &Dataset| true;
        let shrunk = shrink_dataset(&d, &always);
        assert!(shrunk.x.len() >= 2);
        assert!(shrunk.x.iter().all(|r| r.len() == shrunk.x[0].len()));
        assert_eq!(shrunk.x.len(), shrunk.y.len());
    }
}
