//! The five differential oracles.
//!
//! Each oracle cross-checks a pair (or more) of independently
//! implemented paths that must agree bit-for-bit:
//!
//! 1. **Engines** — scalar [`netlist::Simulator`], the interpreted
//!    64-lane reference, the compiled [`netlist::BatchSimulator`] and the
//!    256-lane [`netlist::WideSim`]`<4>`, with and without an injected
//!    stuck-at fault; plus agreement on *rejecting* sequential and
//!    cyclic inputs with the same [`netlist::SimError`] kind.
//! 2. **Variation** — the scalar `analog::variation::reference`
//!    analyzers against the compiled lane-batched tapes.
//! 3. **Optimizer** — `netlist::optimize` output proven equivalent to
//!    the raw netlist through the miter verifier.
//! 4. **Serde** — round-trips through the in-repo `serde_json` shim
//!    must reproduce the value and re-encode to the same bytes.
//! 5. **Cache keys** — [`cache::key_for`] must be stable across a serde
//!    re-encode of the artifact (a drifting key silently invalidates —
//!    or worse, aliases — the content-addressed artifact cache).
//!
//! Every oracle returns `Ok(fingerprint)` on agreement, where the
//! fingerprint hashes the *observed behavior* (output words, reports,
//! encodings). Aggregated fingerprints make whole runs comparable
//! across thread counts: sharding may reorder execution, never results.

use std::sync::Arc;

use exec::rng::StdRng;
use ml::quant::{FeatureQuantizer, QuantizedSvm, QuantizedTree};
use ml::tree::{DecisionTree, TreeParams};
use ml::SvmRegressor;
use netlist::batch::reference::InterpretedSimulator;
use netlist::{
    check_equivalence, optimize, BatchSimulator, CompiledNetlist, Equivalence, Fault, Module,
    SimError, Simulator, WideSim,
};

use crate::gen;

/// Identifies one of the five oracle pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OracleKind {
    /// Digital simulation engines (scalar / interpreted / compiled / wide).
    Engines,
    /// Analog variation: scalar reference vs compiled tapes.
    Variation,
    /// Optimizer output vs raw netlist through the miter verifier.
    Optimizer,
    /// Serde shim round-trips.
    Serde,
    /// Content-addressed cache key stability.
    CacheKey,
}

impl OracleKind {
    /// All oracles, in the round-robin order cases are assigned.
    pub const ALL: [OracleKind; 5] = [
        OracleKind::Engines,
        OracleKind::Variation,
        OracleKind::Optimizer,
        OracleKind::Serde,
        OracleKind::CacheKey,
    ];

    /// Stable name used in corpus file names and reports.
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::Engines => "engines",
            OracleKind::Variation => "variation",
            OracleKind::Optimizer => "optimizer",
            OracleKind::Serde => "serde",
            OracleKind::CacheKey => "cache",
        }
    }

    /// Inverse of [`OracleKind::name`].
    pub fn from_name(name: &str) -> Option<OracleKind> {
        OracleKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// Vectors per engine-oracle case: one interpreted-engine pass (≤ 64
/// lanes) and a quarter of a wide pass, while still crossing every
/// port-width boundary.
const ENGINE_VECTORS: usize = 48;

fn hasher(domain: &str) -> cache::StableHasher {
    cache::StableHasher::new(domain)
}

fn key_word(k: cache::Key) -> u64 {
    u64::from_le_bytes(k.0[..8].try_into().expect("key is 16 bytes"))
}

/// Classifies a [`SimError`] for rejection-agreement checks: engines
/// must reject an input for the *same reason*, though the messages may
/// carry engine-specific context.
fn error_kind(e: &SimError) -> &'static str {
    match e {
        SimError::InvalidModule { .. } => "invalid",
        SimError::CombinationalCycle { .. } => "cycle",
        SimError::Sequential { .. } => "sequential",
        SimError::UnknownPort { .. } => "unknown-port",
        SimError::TooManyLanes { .. } => "too-many-lanes",
        SimError::VectorArity { .. } => "vector-arity",
        SimError::ImageLength { .. } => "image-length",
    }
}

/// Runs every simulation engine over `module` and demands bit-identical
/// outputs — or, for inadmissible modules (sequential, cyclic), the
/// same rejection kind from every fallible constructor.
///
/// `vec_seed` drives the input vectors and the fault-site choice.
pub fn engines_agree(module: &Module, vec_seed: u64) -> Result<u64, String> {
    let interp = InterpretedSimulator::try_new(module);
    let compiled = CompiledNetlist::try_compile(module);
    let batch = BatchSimulator::try_new(module);
    match (interp, compiled, batch) {
        (Err(e1), Err(e2), Err(e3)) => {
            let kinds = [error_kind(&e1), error_kind(&e2), error_kind(&e3)];
            if kinds[0] == kinds[1] && kinds[1] == kinds[2] {
                let mut h = hasher("check.engines.reject");
                h.write_str(kinds[0]);
                Ok(key_word(h.finish()))
            } else {
                Err(format!(
                    "engines disagree on why the input is rejected: \
                     interpreted={e1}, compiled={e2}, batch={e3}"
                ))
            }
        }
        (i, c, b) => {
            let mut interp = match i {
                Ok(s) => s,
                Err(e) => return Err(format!("only the interpreted engine rejected: {e}")),
            };
            let compiled = match c {
                Ok(s) => Arc::new(s),
                Err(e) => return Err(format!("only the compiled engine rejected: {e}")),
            };
            let mut batch = match b {
                Ok(s) => s,
                Err(e) => return Err(format!("only the batch engine rejected: {e}")),
            };
            let vectors = gen::random_vectors(vec_seed, module, ENGINE_VECTORS);
            let lanes = vectors.len();
            let out_names: Vec<&str> = module.outputs.iter().map(|p| p.name.as_str()).collect();

            // Scalar oracle: one settle per vector.
            let mut scalar = Simulator::try_new(module)
                .map_err(|e| format!("scalar engine rejected a valid module: {e}"))?;
            let mut expected: Vec<Vec<u64>> = vec![Vec::with_capacity(lanes); out_names.len()];
            for v in &vectors {
                for (port, &value) in module.inputs.iter().zip(v) {
                    scalar
                        .try_set(&port.name, value)
                        .map_err(|e| format!("scalar set failed: {e}"))?;
                }
                scalar.settle();
                for (o, name) in out_names.iter().enumerate() {
                    expected[o].push(
                        scalar
                            .try_get(name)
                            .map_err(|e| format!("scalar get failed: {e}"))?,
                    );
                }
            }

            // Lane-parallel engines: one settle for the whole block.
            for (p, port) in module.inputs.iter().enumerate() {
                let column: Vec<u64> = vectors.iter().map(|v| v[p]).collect();
                interp
                    .try_set_lanes(&port.name, &column)
                    .map_err(|e| format!("interpreted set_lanes failed: {e}"))?;
                batch
                    .try_set_lanes(&port.name, &column)
                    .map_err(|e| format!("batch set_lanes failed: {e}"))?;
            }
            interp.settle();
            batch.settle();
            let mut wide: WideSim<4> = WideSim::new(Arc::clone(&compiled));
            let image = wide
                .try_pack_vectors(&vectors)
                .map_err(|e| format!("wide pack_vectors failed: {e}"))?;
            wide.try_load_packed(&image)
                .map_err(|e| format!("wide load_packed failed: {e}"))?;
            wide.settle();

            let mut h = hasher("check.engines");
            for (o, name) in out_names.iter().enumerate() {
                let i_out = interp
                    .try_lanes(name, lanes)
                    .map_err(|e| format!("interpreted lanes failed: {e}"))?;
                let b_out = batch
                    .try_lanes(name, lanes)
                    .map_err(|e| format!("batch lanes failed: {e}"))?;
                let w_out = wide
                    .try_lanes(name, lanes)
                    .map_err(|e| format!("wide lanes failed: {e}"))?;
                for lane in 0..lanes {
                    let want = expected[o][lane];
                    for (engine, got) in [
                        ("interpreted", i_out[lane]),
                        ("batch", b_out[lane]),
                        ("wide", w_out[lane]),
                    ] {
                        if got != want {
                            return Err(format!(
                                "{engine} engine disagrees with the scalar simulator on \
                                 output {name} for vector {lane}: got {got:#x}, want {want:#x} \
                                 (inputs {:?})",
                                vectors[lane]
                            ));
                        }
                    }
                    h.write_u64(want);
                }
            }

            // Fault pass: in-place lane-word pinning vs reference clone
            // injection.
            if !module.gates.is_empty() {
                let mut rng = StdRng::seed_from_u64(exec::seed::mix64(vec_seed ^ 0xFA17));
                let gate = rng.gen_range(0..module.gates.len());
                let fault = Fault {
                    net: module.gates[gate].output,
                    stuck_at: rng.gen_bool(0.5),
                };
                let faulty = netlist::faults::inject(module, fault);
                let mut ref_sim = Simulator::try_new(&faulty)
                    .map_err(|e| format!("reference fault injection broke the module: {e}"))?;
                batch.inject_fault(fault.net, fault.stuck_at);
                batch.settle();
                for name in out_names.iter() {
                    let b_out = batch
                        .try_lanes(name, lanes)
                        .map_err(|e| format!("faulty batch lanes failed: {e}"))?;
                    for (lane, v) in vectors.iter().enumerate() {
                        for (port, &value) in faulty.inputs.iter().zip(v) {
                            ref_sim
                                .try_set(&port.name, value)
                                .map_err(|e| format!("faulty scalar set failed: {e}"))?;
                        }
                        ref_sim.settle();
                        let want = ref_sim
                            .try_get(name)
                            .map_err(|e| format!("faulty scalar get failed: {e}"))?;
                        if b_out[lane] != want {
                            return Err(format!(
                                "fault pinning diverges from reference injection on net \
                                 {:?} stuck at {}: output {name} vector {lane} got {:#x}, \
                                 want {want:#x}",
                                fault.net, fault.stuck_at, b_out[lane]
                            ));
                        }
                        h.write_u64(want);
                    }
                }
                batch.clear_fault();
            }
            Ok(key_word(h.finish()))
        }
    }
}

/// Engines oracle over a generated case seed.
pub fn engines_case(seed: u64) -> Result<u64, String> {
    // One case in eight exercises the rejection-agreement path.
    if seed % 8 == 3 {
        engines_agree(&gen::random_sequential_module(seed), seed)
    } else {
        engines_agree(&gen::random_module(seed), seed)
    }
}

/// Variation oracle: compiled analog tapes vs the scalar reference
/// analyzers, on a tree and (half the time) an SVM fitted to a random
/// dataset. Reports must match bit-for-bit.
pub fn variation_case(seed: u64) -> Result<u64, String> {
    let mut rng = StdRng::seed_from_u64(exec::seed::mix64(seed ^ 0x7A21A7));
    let data = gen::random_dataset(seed);
    let bits = rng.gen_range(4..=8usize);
    let fq = FeatureQuantizer::fit(&data, bits);
    let rows: Vec<Vec<u64>> = data.x.iter().take(12).map(|r| fq.code_row(r)).collect();
    let sigma = [0.02, 0.05, 0.1][rng.gen_range(0..3usize)];
    let trials = rng.gen_range(4..=10usize);
    let mut h = hasher("check.variation");

    let tree = DecisionTree::fit(&data, TreeParams::with_depth(rng.gen_range(2..=3usize)));
    let qt = QuantizedTree::from_tree(&tree, &fq);
    if qt.comparison_count() > 0 {
        let compiled = analog::variation::analyze_tree_variation(&qt, &rows, sigma, trials, seed);
        let reference =
            analog::variation::reference::analyze_tree_variation(&qt, &rows, sigma, trials, seed);
        if compiled != reference {
            return Err(format!(
                "compiled tree variation diverges from the scalar reference at sigma \
                 {sigma}, {trials} trials: compiled {compiled:?}, reference {reference:?}"
            ));
        }
        h.write_f64(compiled.mean_agreement);
        h.write_f64(compiled.worst_agreement);
    }

    if rng.gen_bool(0.5) {
        let svm = SvmRegressor::fit(&data, 40, 1e-4);
        let qs = QuantizedSvm::from_svm(&svm, &fq);
        let n = data.n_features();
        let compiled = analog::variation::analyze_svm_variation(&qs, n, &rows, sigma, trials, seed);
        let reference =
            analog::variation::reference::analyze_svm_variation(&qs, n, &rows, sigma, trials, seed);
        if compiled != reference {
            return Err(format!(
                "compiled SVM variation diverges from the scalar reference at sigma \
                 {sigma}, {trials} trials: compiled {compiled:?}, reference {reference:?}"
            ));
        }
        h.write_f64(compiled.mean_agreement);
        h.write_f64(compiled.worst_agreement);
    }
    Ok(key_word(h.finish()))
}

/// Optimizer oracle over an explicit module: `optimize` must produce a
/// miter-verified equivalent circuit.
pub fn optimizer_holds(module: &Module) -> Result<u64, String> {
    let opt = optimize(module);
    match check_equivalence(module, &opt, 12, 128) {
        Ok(Equivalence::Equivalent {
            vectors,
            exhaustive,
        }) => {
            let mut h = hasher("check.optimizer");
            h.write_usize(vectors);
            h.write_bool(exhaustive);
            h.write_usize(opt.gates.len());
            Ok(key_word(h.finish()))
        }
        Ok(Equivalence::CounterExample(v)) => Err(format!(
            "optimizer changed the function: inputs {v:?} distinguish the optimized \
             module ({} gates) from the original ({} gates)",
            opt.gates.len(),
            module.gates.len()
        )),
        Err(e) => Err(format!(
            "miter verification of an optimized module failed outright: {e}"
        )),
    }
}

/// Optimizer oracle over a generated case seed.
pub fn optimizer_case(seed: u64) -> Result<u64, String> {
    optimizer_holds(&gen::random_module(seed))
}

fn round_trip<T>(what: &str, value: &T, h: &mut cache::StableHasher) -> Result<(), String>
where
    T: serde::Serialize + serde::Deserialize + PartialEq + std::fmt::Debug,
{
    let encoded =
        serde_json::to_string(value).map_err(|e| format!("{what}: encode failed: {e:?}"))?;
    let decoded: T =
        serde_json::from_str(&encoded).map_err(|e| format!("{what}: decode failed: {e:?}"))?;
    if &decoded != value {
        return Err(format!("{what}: round-trip changed the value"));
    }
    let re_encoded =
        serde_json::to_string(&decoded).map_err(|e| format!("{what}: re-encode failed: {e:?}"))?;
    if re_encoded != encoded {
        return Err(format!(
            "{what}: encoding is not canonical — re-encoding the decoded value \
             produced different bytes"
        ));
    }
    h.write_str(&encoded);
    Ok(())
}

/// Serde oracle over an explicit module.
pub fn serde_round_trip_module(module: &Module) -> Result<u64, String> {
    let mut h = hasher("check.serde");
    round_trip("Module", module, &mut h)?;
    Ok(key_word(h.finish()))
}

/// Serde oracle: every serializable artifact class must survive a
/// round-trip through the in-repo shim unchanged and re-encode to
/// identical bytes.
pub fn serde_case(seed: u64) -> Result<u64, String> {
    let mut h = hasher("check.serde");
    let module = gen::random_module(seed);
    round_trip("Module", &module, &mut h)?;

    let data = gen::random_dataset(seed);
    round_trip("Dataset", &data, &mut h)?;

    let tree = DecisionTree::fit(&data, TreeParams::with_depth(3));
    round_trip("DecisionTree", &tree, &mut h)?;
    let fq = FeatureQuantizer::fit(&data, 6);
    round_trip("FeatureQuantizer", &fq, &mut h)?;
    let qt = QuantizedTree::from_tree(&tree, &fq);
    round_trip("QuantizedTree", &qt, &mut h)?;
    let svm = SvmRegressor::fit(&data, 20, 1e-4);
    round_trip("SvmRegressor", &svm, &mut h)?;
    let qs = QuantizedSvm::from_svm(&svm, &fq);
    round_trip("QuantizedSvm", &qs, &mut h)?;
    Ok(key_word(h.finish()))
}

/// Cache-key oracle over an explicit module: [`cache::key_for`] must be
/// invariant under a serde re-encode of the module.
pub fn cache_key_stable_module(module: &Module) -> Result<u64, String> {
    let k1 = cache::key_for("check.fuzz.module", module);
    let encoded = serde_json::to_string(module).map_err(|e| format!("encode failed: {e:?}"))?;
    let decoded: Module =
        serde_json::from_str(&encoded).map_err(|e| format!("decode failed: {e:?}"))?;
    let k2 = cache::key_for("check.fuzz.module", &decoded);
    if k1 != k2 {
        return Err(format!(
            "module cache key drifted across a serde round-trip: {k1:?} vs {k2:?}"
        ));
    }
    let k3 = cache::key_for_serialized("check.fuzz.module.json", module);
    let k4 = cache::key_for_serialized("check.fuzz.module.json", &decoded);
    if k3 != k4 {
        return Err(format!(
            "serialized-form cache key drifted across a round-trip: {k3:?} vs {k4:?}"
        ));
    }
    let mut h = hasher("check.cache");
    h.write_bytes(&k1.0);
    h.write_bytes(&k3.0);
    Ok(key_word(h.finish()))
}

/// Cache-key oracle: structural and serialized-form keys of modules and
/// datasets must be stable across re-encodes (and across repeat
/// hashing — [`cache::StableHasher`] has no hidden state).
pub fn cache_case(seed: u64) -> Result<u64, String> {
    let module = gen::random_module(seed);
    let fp = cache_key_stable_module(&module)?;
    let data = gen::random_dataset(seed);
    let k1 = cache::key_for("check.fuzz.dataset", &data);
    let k2 = cache::key_for("check.fuzz.dataset", &data);
    if k1 != k2 {
        return Err(format!(
            "dataset cache key is not deterministic: {k1:?} vs {k2:?}"
        ));
    }
    let encoded = serde_json::to_string(&data).map_err(|e| format!("encode failed: {e:?}"))?;
    let decoded: ml::Dataset =
        serde_json::from_str(&encoded).map_err(|e| format!("decode failed: {e:?}"))?;
    let k3 = cache::key_for("check.fuzz.dataset", &decoded);
    if k1 != k3 {
        return Err(format!(
            "dataset cache key drifted across a serde round-trip: {k1:?} vs {k3:?}"
        ));
    }
    let mut h = hasher("check.cache.case");
    h.write_u64(fp);
    h.write_bytes(&k1.0);
    Ok(key_word(h.finish()))
}

/// Dispatches a case seed to its oracle.
pub fn run_oracle(kind: OracleKind, seed: u64) -> Result<u64, String> {
    match kind {
        OracleKind::Engines => engines_case(seed),
        OracleKind::Variation => variation_case(seed),
        OracleKind::Optimizer => optimizer_case(seed),
        OracleKind::Serde => serde_case(seed),
        OracleKind::CacheKey => cache_case(seed),
    }
}
