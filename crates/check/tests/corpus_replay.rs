//! Replays the committed corpus: every minimized reproducer under
//! `crates/check/corpus/` pins a bug class that must stay fixed. A
//! failure here means a previously-fixed divergence between redundant
//! engines has come back.

use check::corpus;

#[test]
fn every_corpus_entry_replays_clean() {
    let entries = corpus::load_all(&corpus::default_dir()).expect("corpus directory readable");
    assert!(
        entries.len() >= 4,
        "corpus lost its seeded fixtures (found {})",
        entries.len()
    );
    for (path, repro) in &entries {
        repro
            .replay()
            .unwrap_or_else(|e| unreachable!("corpus regression {}: {e}", path.display()));
    }
}

#[test]
fn committed_fixtures_match_the_seeded_generators() {
    // `--repin-corpus` must be a no-op on a clean tree: the committed
    // files are byte-identical to what the generator produces today.
    let entries = corpus::load_all(&corpus::default_dir()).expect("corpus directory readable");
    for fixture in corpus::seeded_fixtures() {
        let committed = entries
            .iter()
            .find(|(p, _)| {
                p.file_name()
                    .is_some_and(|n| n == fixture.file_name().as_str())
            })
            .map(|(_, r)| r);
        assert_eq!(
            committed,
            Some(&fixture),
            "fixture {} drifted from its generator — run `check_fuzz --repin-corpus`",
            fixture.file_name()
        );
    }
}
