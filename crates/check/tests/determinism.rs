//! The thread-invariance contract: a fuzz block's outcomes — and its
//! aggregate digest — are a pure function of `(root_seed, cases)`,
//! never of the shard pool's size.

use check::{digest, run_cases};

const SEED: u64 = 0xC0FFEE;
const CASES: u64 = 60; // 12 cases per oracle pair

#[test]
fn outcomes_are_bit_identical_at_1_4_and_8_threads() {
    let one = exec::with_threads(1, || run_cases(SEED, CASES));
    let four = exec::with_threads(4, || run_cases(SEED, CASES));
    let eight = exec::with_threads(8, || run_cases(SEED, CASES));
    assert_eq!(one, four, "1-thread and 4-thread outcomes diverge");
    assert_eq!(four, eight, "4-thread and 8-thread outcomes diverge");
    assert_eq!(digest(&one), digest(&eight));
    for o in &one {
        assert!(
            o.mismatch.is_none(),
            "case {} ({}) mismatched: {}",
            o.index,
            o.oracle.name(),
            o.mismatch.as_deref().unwrap_or("")
        );
    }
}

#[test]
fn digest_is_sensitive_to_any_outcome_change() {
    let base = run_cases(SEED, 20);
    let mut tweaked = base.clone();
    tweaked[7].fingerprint ^= 1;
    assert_ne!(digest(&base), digest(&tweaked));
    let mut flagged = base.clone();
    flagged[3].mismatch = Some("synthetic".to_string());
    assert_ne!(digest(&base), digest(&flagged));
}
