//! Compiled wide-lane simulation kernel.
//!
//! The interpreted [`crate::batch::BatchSimulator`] pays an enum dispatch,
//! a `Signal` match and three bounds-checked `HashMap`-era indirections
//! per gate per settle pass. Every downstream pipeline — equivalence
//! sign-off, stuck-at fault grading, the analog variation Monte Carlo —
//! bottoms out in that loop, so this module compiles a levelized module
//! *once* into a flat instruction tape and then replays the tape over
//! wide lane words:
//!
//! * [`CompiledNetlist`] — a dense SoA tape: one opcode byte, three
//!   pre-resolved operand value-slot indices and one output slot per
//!   gate, in levelized order. Output inversions (`Nand`/`Nor`/`Xnor`/
//!   `Inv`) are folded into a per-instruction XOR mask, so the kernel
//!   needs only five base opcodes. Constants occupy two dedicated value
//!   slots (all-zeros / all-ones), so constant operands cost the same
//!   indexed load as nets. ROM macros are compiled to a schedule entry
//!   plus a strategy: small ROMs are evaluated *bitwise* (row-select
//!   masks expanded over the address words, then OR-accumulated per data
//!   column), large ROMs fall back to per-lane addressing.
//! * [`WideSim`] — a lane-width-generic evaluator whose net values are
//!   `[u64; W]` blocks (64·W vectors per settle; `W = 1` and `W = 4`
//!   are the shipped widths). The per-instruction word loop is written
//!   so LLVM auto-vectorizes it. In-place stuck-at fault injection keeps
//!   the interpreter's semantics: the faulty slot is pinned to a
//!   broadcast word before the pass and every write to it is skipped.
//!
//! The tape is immutable after compilation, so one `Arc<CompiledNetlist>`
//! is shared across all [`exec::parallel_map`] shards in
//! [`crate::verify`] and [`crate::faults`] — shards no longer re-levelize
//! (or re-hash) the module. Compilation itself is timed under the
//! `netlist.sim.compile` span and counted by `netlist.sim.compiles`, so
//! the observability report splits compile time from settle time; settle
//! volume lands in the `netlist.sim.settles` / `netlist.sim.vectors`
//! counters published batch-wise by the callers.
//!
//! Bit-identity with the scalar [`crate::sim::Simulator`] (and with the
//! retained interpreter, [`crate::batch::reference`]) is pinned by unit
//! tests here and the workspace property tests at lane counts straddling
//! every word boundary, with and without injected faults.

use std::collections::HashMap;
use std::sync::Arc;

use pdk::CellKind;

use crate::error::SimError;
use crate::ir::{Module, NetId, Port, Signal};

/// Compilations performed (one per [`CompiledNetlist::compile`]).
static COMPILES: obs::Counter = obs::Counter::new("netlist.sim.compiles");
/// Gates flattened into instruction tapes across all compilations.
static COMPILED_GATES: obs::Counter = obs::Counter::new("netlist.sim.gates");
/// Wall-clock nanoseconds spent compiling tapes — with
/// [`COMPILED_GATES`] this yields a compile gates/sec rate, and against
/// the settle counters it splits compile time from simulation time.
static COMPILE_NS: obs::Counter = obs::Counter::new("netlist.sim.compile_ns");

/// Settle passes executed through [`WideSim`]; hot loops tally locally
/// and publish per batch via [`record_settles`].
static SETTLES: obs::Counter = obs::Counter::new("netlist.sim.settles");
/// Lane-vectors evaluated (lanes × settles), same publishing discipline.
static VECTORS: obs::Counter = obs::Counter::new("netlist.sim.vectors");

/// Publishes a batch of settle-pass volume to the `netlist.sim.*`
/// counters. Callers running many small settles (verify spans, fault
/// shards) tally locally and call this once per shard, keeping the
/// registry lock off the per-settle path.
pub fn record_settles(settles: u64, lane_vectors: u64) {
    SETTLES.add(settles);
    VECTORS.add(lane_vectors);
}

/// Value-slot index of the all-zeros constant word.
const SLOT_ZERO: u32 = 0;
/// Value-slot index of the all-ones constant word.
const SLOT_ONE: u32 = 1;
/// Slots reserved for constants before the first net slot.
const CONST_SLOTS: u32 = 2;

/// Maximum address width (in bits) for which a ROM is compiled to the
/// bitwise row-select strategy; wider ROMs use per-lane addressing. At
/// 10 bits the select scratch tops out at 1024 lane blocks.
const ROM_MASK_ADDR_LIMIT: usize = 10;

/// Base opcodes of the instruction tape. Inverting cells are folded
/// into the per-instruction XOR mask, so five opcodes cover the whole
/// [`CellKind`] combinational set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum Opcode {
    /// `out = a & b` (also `Nand2` with the inversion mask set).
    And = 0,
    /// `out = a | b` (also `Nor2`).
    Or = 1,
    /// `out = a ^ b` (also `Xnor2`).
    Xor = 2,
    /// `out = (!a & b) | (a & c)` — `a` is the select.
    Mux = 3,
    /// `out = a` (also `Inv` with the inversion mask set).
    Buf = 4,
}

/// How a compiled ROM is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RomStrategy {
    /// Bitwise: expand row-select lane masks over the address words
    /// (one AND per row per address bit, by recursive doubling), then
    /// OR each selected row's set data bits into the data columns.
    Mask,
    /// Per-lane scalar addressing (the interpreter's scheme), for ROMs
    /// whose address space is too large to expand.
    PerLane,
}

/// One compiled ROM macro.
#[derive(Debug, Clone)]
struct CompiledRom {
    /// Address operand slots, little-endian.
    addr: Vec<u32>,
    /// Data output slots, little-endian.
    data: Vec<u32>,
    /// Row contents (addresses beyond the vector read as zero).
    contents: Vec<u64>,
    /// Chosen evaluation strategy.
    strategy: RomStrategy,
}

/// One port's compiled slot map.
#[derive(Debug, Clone)]
struct CompiledPort {
    /// Port name (the simulator API key).
    name: String,
    /// Value slot per bit, little-endian. Input bits are always net
    /// slots; output bits may be the constant slots.
    slots: Vec<u32>,
}

/// A combinational module flattened into an immutable instruction tape.
///
/// Build one with [`CompiledNetlist::compile`], then evaluate it with any
/// number of [`WideSim`] instances — typically one per worker shard over
/// a shared `Arc`:
///
/// ```
/// use std::sync::Arc;
/// use netlist::builder::NetlistBuilder;
/// use netlist::compile::{CompiledNetlist, WideSim};
///
/// let mut b = NetlistBuilder::new("xor");
/// let x = b.input("x", 2);
/// let y = b.xor(x[0], x[1]);
/// b.output("y", &[y]);
/// let compiled = Arc::new(CompiledNetlist::compile(&b.finish()));
///
/// let mut sim: WideSim<1> = WideSim::new(Arc::clone(&compiled));
/// sim.set_lanes("x", &[0b00, 0b01, 0b10, 0b11]);
/// sim.settle();
/// assert_eq!(sim.lanes("y", 4), vec![0, 1, 1, 0]);
/// ```
#[derive(Debug, Clone)]
pub struct CompiledNetlist {
    /// Value slots (nets + the two constant slots).
    slots: usize,
    /// SoA tape: opcode per instruction…
    ops: Vec<Opcode>,
    /// …operand slots (unused operands point at [`SLOT_ZERO`])…
    srcs: Vec<[u32; 3]>,
    /// …output slot…
    outs: Vec<u32>,
    /// …and folded output-inversion mask (`0` or `u64::MAX`).
    inv: Vec<u64>,
    /// Compiled ROM macros.
    roms: Vec<CompiledRom>,
    /// ROM schedule: `(tape position, rom index)` — ROMs at position `p`
    /// evaluate before instruction `p`.
    rom_order: Vec<(usize, usize)>,
    /// Largest row-select scratch any [`RomStrategy::Mask`] ROM needs.
    max_mask_rows: usize,
    /// Largest data width over all ROMs.
    max_rom_data: usize,
    /// Input ports in declaration order.
    inputs: Vec<CompiledPort>,
    /// Output ports in declaration order.
    outputs: Vec<CompiledPort>,
    /// All input-port slots flattened port-major, bit-minor (the packed
    /// image layout of [`WideSim::pack_vectors`]).
    input_slots: Vec<u32>,
    /// Creation-order slot (`slot_of`) → execution-order slot. Value
    /// slots are renumbered into definition order at compile time for
    /// cache locality; API entry points addressed by [`NetId`] (fault
    /// injection) translate through this table.
    slot_map: Vec<u32>,
}

/// Resolves a [`Signal`] to its value slot.
fn slot_of(s: Signal) -> u32 {
    match s {
        Signal::Const(false) => SLOT_ZERO,
        Signal::Const(true) => SLOT_ONE,
        Signal::Net(n) => n.0 + CONST_SLOTS,
    }
}

impl CompiledNetlist {
    /// Levelizes and flattens a *combinational* module into a tape.
    ///
    /// # Panics
    /// Panics if the module is sequential, invalid, or contains a
    /// combinational cycle. Use [`CompiledNetlist::try_compile`] to
    /// handle those as errors.
    pub fn compile(module: &Module) -> Self {
        match Self::try_compile(module) {
            Ok(c) => c,
            Err(e) => e.raise(),
        }
    }

    /// Fallible compilation: reports sequential or invalid modules and
    /// combinational cycles as [`SimError`] instead of panicking.
    pub fn try_compile(module: &Module) -> Result<Self, SimError> {
        let _span = obs::span("netlist.sim.compile");
        COMPILE_NS.time(|| Self::compile_inner(module))
    }

    fn compile_inner(module: &Module) -> Result<Self, SimError> {
        if !module.is_combinational() {
            return Err(SimError::Sequential {
                module: module.name.clone(),
            });
        }
        module
            .validate()
            .map_err(|reason| SimError::InvalidModule {
                module: module.name.clone(),
                reason,
            })?;
        let (order, rom_order) = levelize(module)?;

        let mut ops = Vec::with_capacity(order.len());
        let mut srcs = Vec::with_capacity(order.len());
        let mut outs = Vec::with_capacity(order.len());
        let mut inv = Vec::with_capacity(order.len());
        for &gi in &order {
            let g = &module.gates[gi];
            let (op, invert) = match g.kind {
                CellKind::And2 => (Opcode::And, false),
                CellKind::Nand2 => (Opcode::And, true),
                CellKind::Or2 => (Opcode::Or, false),
                CellKind::Nor2 => (Opcode::Or, true),
                CellKind::Xor2 => (Opcode::Xor, false),
                CellKind::Xnor2 => (Opcode::Xor, true),
                CellKind::Mux2 => (Opcode::Mux, false),
                CellKind::Buf => (Opcode::Buf, false),
                CellKind::Inv => (Opcode::Buf, true),
                CellKind::Dff | CellKind::RomBit | CellKind::RomDot => {
                    unreachable!("not combinational cells")
                }
            };
            let mut s = [SLOT_ZERO; 3];
            for (i, &sig) in g.inputs.iter().enumerate() {
                s[i] = slot_of(sig);
            }
            ops.push(op);
            srcs.push(s);
            outs.push(slot_of(Signal::Net(g.output)));
            inv.push(if invert { u64::MAX } else { 0 });
        }

        let mut max_mask_rows = 0usize;
        let mut max_rom_data = 0usize;
        let mut roms: Vec<CompiledRom> = module
            .roms
            .iter()
            .map(|r| {
                let strategy = if r.addr.len() <= ROM_MASK_ADDR_LIMIT {
                    max_mask_rows = max_mask_rows.max(1 << r.addr.len());
                    RomStrategy::Mask
                } else {
                    RomStrategy::PerLane
                };
                max_rom_data = max_rom_data.max(r.data.len());
                CompiledRom {
                    addr: r.addr.iter().map(|&s| slot_of(s)).collect(),
                    data: r.data.iter().map(|&n| slot_of(Signal::Net(n))).collect(),
                    contents: r.contents.clone(),
                    strategy,
                }
            })
            .collect();

        let compiled_port = |p: &Port| CompiledPort {
            name: p.name.clone(),
            slots: p.bits.iter().map(|&s| slot_of(s)).collect(),
        };
        let mut inputs: Vec<CompiledPort> = module.inputs.iter().map(compiled_port).collect();
        let mut outputs: Vec<CompiledPort> = module.outputs.iter().map(compiled_port).collect();
        let mut input_slots: Vec<u32> = inputs
            .iter()
            .flat_map(|p| p.slots.iter().copied())
            .collect();

        // Renumber value slots into definition order: constants, then
        // input bits, then every instruction/ROM output in the order the
        // settle pass computes it. Net-creation order scatters reads and
        // writes across the whole slot array, which on large modules
        // (megabytes of lane words) makes every access a latency-bound
        // cache miss; definition order makes the write stream sequential
        // and keeps operands hot, since most instructions read values
        // defined moments earlier on the tape.
        let slots = module.net_count() + CONST_SLOTS as usize;
        let mut remap: Vec<u32> = vec![u32::MAX; slots];
        {
            let mut next: u32 = 0;
            let mut assign = |slot: u32| {
                if remap[slot as usize] == u32::MAX {
                    remap[slot as usize] = next;
                    next += 1;
                }
            };
            assign(SLOT_ZERO);
            assign(SLOT_ONE);
            for &s in &input_slots {
                assign(s);
            }
            // Mirror the settle loop's schedule: ROMs due at position
            // `p` define their data slots just before instruction `p`.
            let mut rc = 0usize;
            for (pos, &out) in outs.iter().enumerate() {
                while rc < rom_order.len() && rom_order[rc].0 <= pos {
                    for &d in &roms[rom_order[rc].1].data {
                        assign(d);
                    }
                    rc += 1;
                }
                assign(out);
            }
            while rc < rom_order.len() {
                for &d in &roms[rom_order[rc].1].data {
                    assign(d);
                }
                rc += 1;
            }
            // Undriven, unused nets (validate allows them) get the tail
            // slots so the table stays total — fault injection may still
            // name them.
            for m in remap.iter_mut() {
                if *m == u32::MAX {
                    *m = next;
                    next += 1;
                }
            }
            debug_assert_eq!(next as usize, slots);
        }
        let map = |s: u32| remap[s as usize];
        for s in srcs.iter_mut() {
            for x in s.iter_mut() {
                *x = map(*x);
            }
        }
        for o in outs.iter_mut() {
            *o = map(*o);
        }
        for r in roms.iter_mut() {
            for a in r.addr.iter_mut() {
                *a = map(*a);
            }
            for d in r.data.iter_mut() {
                *d = map(*d);
            }
        }
        for p in inputs.iter_mut().chain(outputs.iter_mut()) {
            for s in p.slots.iter_mut() {
                *s = map(*s);
            }
        }
        for s in input_slots.iter_mut() {
            *s = map(*s);
        }

        COMPILES.incr();
        COMPILED_GATES.add(ops.len() as u64);
        Ok(CompiledNetlist {
            slots,
            ops,
            srcs,
            outs,
            inv,
            roms,
            rom_order,
            max_mask_rows,
            max_rom_data,
            inputs,
            outputs,
            input_slots,
            slot_map: remap,
        })
    }

    /// Instructions on the tape (compiled combinational gates).
    pub fn tape_len(&self) -> usize {
        self.ops.len()
    }

    /// Input port widths in declaration order.
    pub fn input_widths(&self) -> Vec<usize> {
        self.inputs.iter().map(|p| p.slots.len()).collect()
    }

    /// Number of input ports.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Total output-port bits (the length unit of response images).
    pub fn output_bits(&self) -> usize {
        self.outputs.iter().map(|p| p.slots.len()).sum()
    }

    fn output_port(&self, name: &str) -> Result<&CompiledPort, SimError> {
        self.outputs
            .iter()
            .find(|p| p.name == name)
            .ok_or_else(|| SimError::UnknownPort {
                direction: "output",
                name: name.to_string(),
            })
    }
}

/// Kahn/DFS levelization shared by the tape compiler: a topological
/// order of gate indices plus the ROM schedule (`(position, rom)`
/// pairs; ROMs at position `p` evaluate before the `p`-th ordered gate).
/// A combinational cycle is reported as [`SimError::CombinationalCycle`].
#[allow(clippy::type_complexity)]
fn levelize(module: &Module) -> Result<(Vec<usize>, Vec<(usize, usize)>), SimError> {
    let mut driver: HashMap<NetId, usize> = HashMap::new();
    let mut rom_driver: HashMap<NetId, usize> = HashMap::new();
    for (i, g) in module.gates.iter().enumerate() {
        driver.insert(g.output, i);
    }
    for (i, r) in module.roms.iter().enumerate() {
        for n in &r.data {
            rom_driver.insert(*n, i);
        }
    }
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let n_items = module.gates.len() + module.roms.len();
    let mut marks = vec![Mark::White; n_items];
    let item_of_net = |n: NetId| -> Option<usize> {
        driver
            .get(&n)
            .copied()
            .or_else(|| rom_driver.get(&n).map(|r| module.gates.len() + r))
    };
    let inputs_of = |item: usize| -> &[Signal] {
        if item < module.gates.len() {
            &module.gates[item].inputs
        } else {
            &module.roms[item - module.gates.len()].addr
        }
    };
    let mut order = Vec::new();
    let mut rom_order = Vec::new();
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for root in 0..n_items {
        if marks[root] != Mark::White {
            continue;
        }
        marks[root] = Mark::Grey;
        stack.push((root, 0));
        while let Some(&mut (item, ref mut next)) = stack.last_mut() {
            let ins = inputs_of(item);
            if *next < ins.len() {
                let idx = *next;
                *next += 1;
                let Signal::Net(n) = ins[idx] else { continue };
                let Some(dep) = item_of_net(n) else { continue };
                match marks[dep] {
                    Mark::Black => {}
                    Mark::Grey => {
                        return Err(SimError::CombinationalCycle {
                            module: module.name.clone(),
                            net: n.index(),
                        })
                    }
                    Mark::White => {
                        marks[dep] = Mark::Grey;
                        stack.push((dep, 0));
                    }
                }
            } else {
                marks[item] = Mark::Black;
                if item < module.gates.len() {
                    order.push(item);
                } else {
                    rom_order.push((order.len(), item - module.gates.len()));
                }
                stack.pop();
            }
        }
    }
    Ok((order, rom_order))
}

/// Lane-masked word: the first `lanes` bits of word `w` in a `W`-word
/// block ( `lanes` counts across the whole block).
fn word_mask(w: usize, lanes: usize) -> u64 {
    let base = w * 64;
    if lanes >= base + 64 {
        u64::MAX
    } else if lanes <= base {
        0
    } else {
        (1u64 << (lanes - base)) - 1
    }
}

/// A wide-lane evaluator over a shared [`CompiledNetlist`] tape.
///
/// Each value slot holds a `[u64; W]` block: bit *k* of word *w* is the
/// slot's value under input vector `64·w + k`, so one settle pass
/// evaluates `64·W` vectors. `W = 1` reproduces the classic 64-lane
/// arrangement; `W = 4` settles 256 vectors per pass and LLVM lowers the
/// per-instruction word loop to vector instructions.
#[derive(Debug, Clone)]
pub struct WideSim<const W: usize> {
    compiled: Arc<CompiledNetlist>,
    /// Per-slot lane blocks; slots 0/1 permanently hold the constants.
    values: Vec<[u64; W]>,
    /// Row-select scratch for [`RomStrategy::Mask`] ROMs.
    sel_scratch: Vec<[u64; W]>,
    /// Data-column scratch shared by both ROM strategies.
    data_scratch: Vec<[u64; W]>,
    /// In-place stuck-at fault: the pinned slot (`u32::MAX` when
    /// fault-free) and the broadcast word it is pinned to.
    fault_slot: u32,
    fault_word: u64,
}

impl<const W: usize> WideSim<W> {
    /// Lanes (input vectors) one settle pass evaluates.
    pub const LANES: usize = 64 * W;

    /// Creates an evaluator over `compiled`, all nets at zero.
    pub fn new(compiled: Arc<CompiledNetlist>) -> Self {
        let mut values = vec![[0u64; W]; compiled.slots];
        values[SLOT_ONE as usize] = [u64::MAX; W];
        let sel_scratch = vec![[0u64; W]; compiled.max_mask_rows];
        let data_scratch = vec![[0u64; W]; compiled.max_rom_data];
        WideSim {
            compiled,
            values,
            sel_scratch,
            data_scratch,
            fault_slot: u32::MAX,
            fault_word: 0,
        }
    }

    /// The shared tape this evaluator replays.
    pub fn compiled(&self) -> &CompiledNetlist {
        &self.compiled
    }

    /// Drives input port `name` with up to `64·W` per-lane values.
    ///
    /// # Panics
    /// Panics if the port does not exist or more than `64·W` lanes are
    /// given. Use [`WideSim::try_set_lanes`] to handle those as errors.
    pub fn set_lanes(&mut self, name: &str, lane_values: &[u64]) {
        if let Err(e) = self.try_set_lanes(name, lane_values) {
            e.raise()
        }
    }

    /// Fallible lane binding: reports unknown ports and over-wide lane
    /// counts as [`SimError`].
    pub fn try_set_lanes(&mut self, name: &str, lane_values: &[u64]) -> Result<(), SimError> {
        let Some(port_index) = self.compiled.inputs.iter().position(|p| p.name == name) else {
            return Err(SimError::UnknownPort {
                direction: "input",
                name: name.to_string(),
            });
        };
        self.try_set_port_lanes(port_index, lane_values)
    }

    /// [`Self::set_lanes`] by input-port index (declaration order) —
    /// the hot-loop variant, no name lookup.
    ///
    /// # Panics
    /// Panics if more than `64·W` lanes are given. Use
    /// [`WideSim::try_set_port_lanes`] to handle that as an error.
    pub fn set_port_lanes(&mut self, port_index: usize, lane_values: &[u64]) {
        if let Err(e) = self.try_set_port_lanes(port_index, lane_values) {
            e.raise()
        }
    }

    /// Fallible [`Self::set_port_lanes`]: reports an over-wide lane count
    /// as [`SimError::TooManyLanes`].
    pub fn try_set_port_lanes(
        &mut self,
        port_index: usize,
        lane_values: &[u64],
    ) -> Result<(), SimError> {
        if lane_values.len() > Self::LANES {
            return Err(SimError::TooManyLanes {
                given: lane_values.len(),
                max: Self::LANES,
            });
        }
        let compiled = Arc::clone(&self.compiled);
        let port = &compiled.inputs[port_index];
        for (bit, &slot) in port.slots.iter().enumerate() {
            let mut block = [0u64; W];
            for (lane, &v) in lane_values.iter().enumerate() {
                if (v >> bit) & 1 == 1 {
                    block[lane / 64] |= 1 << (lane % 64);
                }
            }
            self.values[slot as usize] = block;
        }
        Ok(())
    }

    /// Transposes a chunk of up to `64·W` input vectors (one value per
    /// input port, in port order) into per-input-net lane blocks. The
    /// returned image replays cheaply via [`Self::load_packed`] — fault
    /// grading packs every vector chunk once and reloads it per fault.
    ///
    /// # Panics
    /// Panics if more than `64·W` vectors are given or a vector's arity
    /// is wrong. Use [`WideSim::try_pack_vectors`] to handle those as
    /// errors.
    pub fn pack_vectors(&self, chunk: &[Vec<u64>]) -> Vec<[u64; W]> {
        match self.try_pack_vectors(chunk) {
            Ok(image) => image,
            Err(e) => e.raise(),
        }
    }

    /// Fallible transpose: reports over-wide chunks and arity mismatches
    /// as [`SimError`].
    pub fn try_pack_vectors(&self, chunk: &[Vec<u64>]) -> Result<Vec<[u64; W]>, SimError> {
        if chunk.len() > Self::LANES {
            return Err(SimError::TooManyLanes {
                given: chunk.len(),
                max: Self::LANES,
            });
        }
        for (i, v) in chunk.iter().enumerate() {
            if v.len() != self.compiled.inputs.len() {
                return Err(SimError::VectorArity {
                    index: i,
                    got: v.len(),
                    want: self.compiled.inputs.len(),
                });
            }
        }
        let mut image = vec![[0u64; W]; self.compiled.input_slots.len()];
        let mut base = 0usize;
        for (pi, port) in self.compiled.inputs.iter().enumerate() {
            for (lane, v) in chunk.iter().enumerate() {
                let value = v[pi];
                for bit in 0..port.slots.len() {
                    if (value >> bit) & 1 == 1 {
                        image[base + bit][lane / 64] |= 1 << (lane % 64);
                    }
                }
            }
            base += port.slots.len();
        }
        Ok(image)
    }

    /// Loads an input image produced by [`Self::pack_vectors`].
    ///
    /// # Panics
    /// Panics if the image length does not match the module's input
    /// bits. Use [`WideSim::try_load_packed`] to handle that as an error.
    pub fn load_packed(&mut self, image: &[[u64; W]]) {
        if let Err(e) = self.try_load_packed(image) {
            e.raise()
        }
    }

    /// Fallible image load: reports a wrong block count as
    /// [`SimError::ImageLength`].
    pub fn try_load_packed(&mut self, image: &[[u64; W]]) -> Result<(), SimError> {
        if image.len() != self.compiled.input_slots.len() {
            return Err(SimError::ImageLength {
                got: image.len(),
                want: self.compiled.input_slots.len(),
            });
        }
        for (&slot, block) in self.compiled.input_slots.iter().zip(image) {
            self.values[slot as usize] = *block;
        }
        Ok(())
    }

    /// Pins `net` to a stuck-at constant across all lanes: every
    /// subsequent [`Self::settle`] forces the net before evaluation and
    /// skips writes to it, without touching the shared tape. Replaces
    /// any previously injected fault.
    pub fn inject_fault(&mut self, net: NetId, stuck_at: bool) {
        self.fault_slot = self.compiled.slot_map[slot_of(Signal::Net(net)) as usize];
        self.fault_word = if stuck_at { u64::MAX } else { 0 };
    }

    /// Removes the injected fault, returning to fault-free simulation.
    pub fn clear_fault(&mut self) {
        self.fault_slot = u32::MAX;
    }

    /// Replays the tape once (levelized order), honoring any injected
    /// stuck-at fault.
    pub fn settle(&mut self) {
        if self.fault_slot != u32::MAX {
            self.values[self.fault_slot as usize] = [self.fault_word; W];
        }
        let compiled = Arc::clone(&self.compiled);
        let fault = self.fault_slot;
        let mut rom_cursor = 0usize;
        for pos in 0..compiled.ops.len() {
            while rom_cursor < compiled.rom_order.len() && compiled.rom_order[rom_cursor].0 <= pos {
                let ri = compiled.rom_order[rom_cursor].1;
                self.eval_rom(&compiled.roms[ri]);
                rom_cursor += 1;
            }
            let out = compiled.outs[pos];
            if out == fault {
                continue;
            }
            let [a, b, c] = compiled.srcs[pos];
            let inv = compiled.inv[pos];
            let va = self.values[a as usize];
            let mut v = [0u64; W];
            match compiled.ops[pos] {
                Opcode::And => {
                    let vb = self.values[b as usize];
                    for w in 0..W {
                        v[w] = (va[w] & vb[w]) ^ inv;
                    }
                }
                Opcode::Or => {
                    let vb = self.values[b as usize];
                    for w in 0..W {
                        v[w] = (va[w] | vb[w]) ^ inv;
                    }
                }
                Opcode::Xor => {
                    let vb = self.values[b as usize];
                    for w in 0..W {
                        v[w] = (va[w] ^ vb[w]) ^ inv;
                    }
                }
                Opcode::Mux => {
                    let vb = self.values[b as usize];
                    let vc = self.values[c as usize];
                    for w in 0..W {
                        v[w] = ((!va[w] & vb[w]) | (va[w] & vc[w])) ^ inv;
                    }
                }
                Opcode::Buf => {
                    for w in 0..W {
                        v[w] = va[w] ^ inv;
                    }
                }
            }
            self.values[out as usize] = v;
        }
        while rom_cursor < compiled.rom_order.len() {
            let ri = compiled.rom_order[rom_cursor].1;
            self.eval_rom(&compiled.roms[ri]);
            rom_cursor += 1;
        }
    }

    fn eval_rom(&mut self, rom: &CompiledRom) {
        let d = rom.data.len();
        for block in self.data_scratch[..d].iter_mut() {
            *block = [0u64; W];
        }
        match rom.strategy {
            RomStrategy::Mask => self.eval_rom_mask(rom),
            RomStrategy::PerLane => self.eval_rom_per_lane(rom),
        }
        for (j, &slot) in rom.data.iter().enumerate() {
            if slot == self.fault_slot {
                continue;
            }
            self.values[slot as usize] = self.data_scratch[j];
        }
    }

    /// Bitwise ROM evaluation: recursive-doubling expansion of the
    /// row-select lane masks over the address words, then one
    /// OR-accumulate per set data bit per nonzero row. All `64·W` lanes
    /// resolve in `O(2^k + set_bits)` word operations instead of a
    /// per-lane scalar address loop.
    fn eval_rom_mask(&mut self, rom: &CompiledRom) {
        let rows = 1usize << rom.addr.len();
        let sels = &mut self.sel_scratch[..rows];
        sels[0] = [u64::MAX; W];
        let mut size = 1usize;
        for &aslot in &rom.addr {
            let a = self.values[aslot as usize];
            // Address bits are little-endian, so each new bit is the MSB
            // of the row index built so far: set → rows `idx + size`,
            // clear → rows `idx`.
            for idx in 0..size {
                let s = sels[idx];
                let mut hi = [0u64; W];
                let mut lo = [0u64; W];
                for w in 0..W {
                    hi[w] = s[w] & a[w];
                    lo[w] = s[w] & !a[w];
                }
                sels[idx + size] = hi;
                sels[idx] = lo;
            }
            size *= 2;
        }
        let d = rom.data.len();
        let data_mask = if d >= 64 { u64::MAX } else { (1u64 << d) - 1 };
        for (a, &row) in rom.contents.iter().take(rows).enumerate() {
            let mut bits = row & data_mask;
            if bits == 0 {
                continue;
            }
            let sel = sels[a];
            while bits != 0 {
                let j = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let acc = &mut self.data_scratch[j];
                for w in 0..W {
                    acc[w] |= sel[w];
                }
            }
        }
    }

    /// Per-lane ROM evaluation for address spaces too large to expand:
    /// assemble each lane's address scalar-wise and scatter the read
    /// word's bits — the interpreter's exact scheme, per 64-lane word.
    fn eval_rom_per_lane(&mut self, rom: &CompiledRom) {
        let d = rom.data.len();
        for w in 0..W {
            for lane in 0..64 {
                let mut addr = 0usize;
                for (bit, &aslot) in rom.addr.iter().enumerate() {
                    if (self.values[aslot as usize][w] >> lane) & 1 == 1 {
                        addr |= 1 << bit;
                    }
                }
                let word = rom.contents.get(addr).copied().unwrap_or(0);
                for (j, acc) in self.data_scratch[..d].iter_mut().enumerate() {
                    if (word >> j) & 1 == 1 {
                        acc[w] |= 1 << lane;
                    }
                }
            }
        }
    }

    fn read(&self, slot: u32) -> [u64; W] {
        self.values[slot as usize]
    }

    fn read_lane(&self, slot: u32, lane: usize) -> bool {
        (self.values[slot as usize][lane / 64] >> (lane % 64)) & 1 == 1
    }

    /// Reads output port `name` for the first `lanes` lanes.
    ///
    /// # Panics
    /// Panics if the port does not exist. Use [`WideSim::try_lanes`] to
    /// handle that as an error.
    pub fn lanes(&self, name: &str, lanes: usize) -> Vec<u64> {
        match self.try_lanes(name, lanes) {
            Ok(v) => v,
            Err(e) => e.raise(),
        }
    }

    /// Fallible port read: reports an unknown output name as
    /// [`SimError::UnknownPort`].
    pub fn try_lanes(&self, name: &str, lanes: usize) -> Result<Vec<u64>, SimError> {
        let port = self.compiled.output_port(name)?;
        Ok((0..lanes)
            .map(|lane| {
                let mut v = 0u64;
                for (bit, &slot) in port.slots.iter().enumerate() {
                    if self.read_lane(slot, lane) {
                        v |= 1 << bit;
                    }
                }
                v
            })
            .collect())
    }

    /// Lane words of every output-port bit, flattened port-major,
    /// bit-minor, word-minor (`W` words per bit), masked to the first
    /// `lanes` lanes — the module's full response image, in the layout
    /// [`Self::outputs_match`] compares against.
    pub fn output_words(&self, lanes: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.compiled.output_bits() * W);
        for port in &self.compiled.outputs {
            for &slot in &port.slots {
                let block = self.read(slot);
                for (w, &word) in block.iter().enumerate() {
                    out.push(word & word_mask(w, lanes));
                }
            }
        }
        out
    }

    /// Compares the current response image against `expected` (produced
    /// by [`Self::output_words`] with the same `lanes`) without
    /// allocating — the detection test in the fault-grading hot loop.
    pub fn outputs_match(&self, expected: &[u64], lanes: usize) -> bool {
        let mut it = expected.iter();
        for port in &self.compiled.outputs {
            for &slot in &port.slots {
                let block = self.read(slot);
                for (w, &word) in block.iter().enumerate() {
                    let Some(&want) = it.next() else { return false };
                    if word & word_mask(w, lanes) != want {
                        return false;
                    }
                }
            }
        }
        it.next().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::sim::Simulator;
    use pdk::RomStyle;

    fn compile(m: &Module) -> Arc<CompiledNetlist> {
        Arc::new(CompiledNetlist::compile(m))
    }

    #[test]
    fn wide_sim_matches_scalar_on_an_adder_at_256_lanes() {
        let mut b = NetlistBuilder::new("add");
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        let s = crate::arith::add(&mut b, &x, &y);
        b.output("s", &s);
        let m = b.finish();
        let mut sim: WideSim<4> = WideSim::new(compile(&m));
        let xs: Vec<u64> = (0..256).collect();
        let ys: Vec<u64> = (0..256).map(|v| (v * 37) % 256).collect();
        sim.set_lanes("x", &xs);
        sim.set_lanes("y", &ys);
        sim.settle();
        let got = sim.lanes("s", 256);
        let mut scalar = Simulator::new(&m);
        for lane in 0..256 {
            scalar.set("x", xs[lane]);
            scalar.set("y", ys[lane]);
            scalar.settle();
            assert_eq!(got[lane], scalar.get("s"), "lane {lane}");
        }
    }

    #[test]
    fn folded_inversions_cover_every_cell_kind() {
        let mut b = NetlistBuilder::new("kinds");
        let x = b.input("x", 3);
        let outs = vec![
            b.gate(CellKind::And2, &[x[0], x[1]]),
            b.gate(CellKind::Nand2, &[x[0], x[1]]),
            b.gate(CellKind::Or2, &[x[1], x[2]]),
            b.gate(CellKind::Nor2, &[x[1], x[2]]),
            b.gate(CellKind::Xor2, &[x[0], x[2]]),
            b.gate(CellKind::Xnor2, &[x[0], x[2]]),
            b.gate(CellKind::Mux2, &[x[0], x[1], x[2]]),
            b.gate(CellKind::Buf, &[x[1]]),
            b.gate(CellKind::Inv, &[x[2]]),
        ];
        b.output("o", &outs);
        let m = b.finish();
        let mut sim: WideSim<1> = WideSim::new(compile(&m));
        let vs: Vec<u64> = (0..8).collect();
        sim.set_lanes("x", &vs);
        sim.settle();
        let got = sim.lanes("o", 8);
        let mut scalar = Simulator::new(&m);
        for (lane, &v) in vs.iter().enumerate() {
            scalar.set("x", v);
            scalar.settle();
            assert_eq!(got[lane], scalar.get("o"), "x={v}");
        }
    }

    #[test]
    fn mask_strategy_matches_per_lane_strategy() {
        // Same ROM compiled both ways must read identically, including
        // addresses beyond the stored contents (which read zero).
        let mut b = NetlistBuilder::new("rom");
        let a = b.input("a", 4);
        let contents: Vec<u64> = vec![9, 1, 4, 7, 2, 8, 5, 3, 6, 0];
        let d = b.rom(&a, contents, 4, RomStyle::Crossbar);
        b.output("d", &d);
        let m = b.finish();
        let compiled = CompiledNetlist::compile(&m);
        assert_eq!(compiled.roms[0].strategy, RomStrategy::Mask);
        let mut forced = compiled.clone();
        forced.roms[0].strategy = RomStrategy::PerLane;
        let addrs: Vec<u64> = (0..16).collect();
        let mut mask_sim: WideSim<1> = WideSim::new(Arc::new(compiled));
        let mut lane_sim: WideSim<1> = WideSim::new(Arc::new(forced));
        mask_sim.set_lanes("a", &addrs);
        lane_sim.set_lanes("a", &addrs);
        mask_sim.settle();
        lane_sim.settle();
        assert_eq!(mask_sim.lanes("d", 16), lane_sim.lanes("d", 16));
        assert_eq!(
            mask_sim.lanes("d", 16),
            vec![9, 1, 4, 7, 2, 8, 5, 3, 6, 0, 0, 0, 0, 0, 0, 0]
        );
    }

    #[test]
    fn wide_roms_fall_back_to_per_lane() {
        let mut b = NetlistBuilder::new("bigrom");
        let a = b.input("a", ROM_MASK_ADDR_LIMIT + 1);
        let contents: Vec<u64> = (0..64u64).map(|v| v * 3 % 17).collect();
        let d = b.rom(&a, contents, 5, RomStyle::Crossbar);
        b.output("d", &d);
        let m = b.finish();
        let compiled = compile(&m);
        assert_eq!(compiled.roms[0].strategy, RomStrategy::PerLane);
        let mut sim: WideSim<1> = WideSim::new(compiled);
        let addrs: Vec<u64> = (0..64).map(|v| v * 31 % 2048).collect();
        sim.set_lanes("a", &addrs);
        sim.settle();
        let got = sim.lanes("d", 64);
        let mut scalar = Simulator::new(&m);
        for (lane, &v) in addrs.iter().enumerate() {
            scalar.set("a", v);
            scalar.settle();
            assert_eq!(got[lane], scalar.get("d"), "addr {v}");
        }
    }

    #[test]
    fn injected_faults_pin_nets_and_skip_writes() {
        let mut b = NetlistBuilder::new("mix");
        let x = b.input("x", 3);
        let a = b.and(x[0], x[1]);
        let o = b.xor(a, x[2]);
        let n = b.not(o);
        b.output("o", &[o, n]);
        let m = b.finish();
        let compiled = compile(&m);
        let vectors: Vec<Vec<u64>> = (0..8).map(|v| vec![v]).collect();
        let mut sim: WideSim<2> = WideSim::new(compiled);
        let image = sim.pack_vectors(&vectors);
        for fault in crate::faults::fault_sites(&m) {
            sim.inject_fault(fault.net, fault.stuck_at);
            sim.load_packed(&image);
            sim.settle();
            let got = sim.lanes("o", 8);
            let faulty = crate::faults::inject(&m, fault);
            let mut reference = Simulator::new(&faulty);
            for (lane, v) in vectors.iter().enumerate() {
                reference.set("x", v[0]);
                reference.settle();
                assert_eq!(got[lane], reference.get("o"), "{fault:?} lane {lane}");
            }
        }
        sim.clear_fault();
        sim.load_packed(&image);
        sim.settle();
        let mut clean = Simulator::new(&m);
        for (lane, v) in vectors.iter().enumerate() {
            clean.set("x", v[0]);
            clean.settle();
            assert_eq!(sim.lanes("o", 8)[lane], clean.get("o"));
        }
    }

    #[test]
    fn rom_data_faults_survive_both_strategies() {
        let mut b = NetlistBuilder::new("rom");
        let a = b.input("a", 2);
        let d = b.rom(&a, vec![0, 1, 2, 3], 2, RomStyle::Crossbar);
        b.output("d", &d);
        let m = b.finish();
        for force_per_lane in [false, true] {
            let mut compiled = CompiledNetlist::compile(&m);
            if force_per_lane {
                compiled.roms[0].strategy = RomStrategy::PerLane;
            }
            let mut sim: WideSim<1> = WideSim::new(Arc::new(compiled));
            sim.inject_fault(m.roms[0].data[0], true);
            sim.set_lanes("a", &[0, 1, 2, 3]);
            sim.settle();
            assert_eq!(sim.lanes("d", 4), vec![1, 1, 3, 3]);
        }
    }

    #[test]
    fn output_words_and_matching_span_word_boundaries() {
        let mut b = NetlistBuilder::new("wide");
        let x = b.input("x", 1);
        let o = b.not(x[0]);
        b.output("o", &[o, x[0]]);
        let m = b.finish();
        let mut sim: WideSim<2> = WideSim::new(compile(&m));
        let vs: Vec<u64> = (0..100).map(|v| v & 1).collect();
        sim.set_lanes("x", &vs);
        sim.settle();
        for lanes in [1usize, 63, 64, 65, 100] {
            let image = sim.output_words(lanes);
            assert_eq!(image.len(), 2 * 2, "2 bits x 2 words");
            assert!(sim.outputs_match(&image, lanes));
            // A flipped bit inside the lane window must be detected …
            let mut bad = image.clone();
            bad[0] ^= 1;
            assert!(!sim.outputs_match(&bad, lanes));
            // … while bits beyond the window are masked out.
            if lanes < 64 {
                let mut beyond = image.clone();
                beyond[0] |= 1 << lanes;
                assert!(!sim.outputs_match(&beyond, lanes), "expected image differs");
            }
        }
    }

    #[test]
    fn constants_occupy_dedicated_slots() {
        let mut b = NetlistBuilder::new("c");
        let x = b.input("x", 1);
        let y = b.and(x[0], Signal::ONE);
        let z = b.or(y, Signal::ZERO);
        b.output("z", &[z, Signal::ONE]);
        let m = b.finish();
        let mut sim: WideSim<1> = WideSim::new(compile(&m));
        sim.set_lanes("x", &[0, 1, 1, 0]);
        sim.settle();
        assert_eq!(sim.lanes("z", 4), vec![0b10, 0b11, 0b11, 0b10]);
    }

    #[test]
    #[should_panic(expected = "combinational-only")]
    fn sequential_modules_are_rejected() {
        let mut b = NetlistBuilder::new("seq");
        let x = b.input("x", 1);
        let q = b.dff(x[0], false);
        b.output("q", &[q]);
        let _ = CompiledNetlist::compile(&b.finish());
    }
}
