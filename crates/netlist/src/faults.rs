//! Stuck-at fault analysis.
//!
//! §VI notes that replacing digital logic with analog circuits
//! "introduces additional verification and test challenges"; for the
//! *digital* printed classifiers the standard manufacturing-test question
//! applies directly: given a set of test vectors, what fraction of
//! stuck-at faults do they detect? Printed circuits are tested right on
//! the printer's output tray, so cheap high-coverage vector sets matter.
//!
//! The model is classic single-stuck-at: one gate output (or module
//! input bit) is forced to 0 or 1, and a fault is *detected* by a vector
//! if any output port differs from the fault-free response.

use std::collections::HashMap;
use std::sync::Arc;

use crate::compile::{record_settles, CompiledNetlist, WideSim};
use crate::error::SimError;
use crate::ir::{Module, NetId, Signal};

/// Lane width of the fault-grading shards.
const FAULT_W: usize = 4;

/// One single-stuck-at fault site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// The net forced to a constant.
    pub net: NetId,
    /// The value it is stuck at.
    pub stuck_at: bool,
}

/// Result of a fault-coverage run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCoverage {
    /// Total fault sites considered (2 per driven net).
    pub total: usize,
    /// Faults detected by at least one vector.
    pub detected: usize,
    /// Undetected faults (possibly redundant logic or insufficient
    /// vectors).
    pub undetected: Vec<Fault>,
}

impl FaultCoverage {
    /// Detected / total, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.detected as f64 / self.total as f64
        }
    }
}

/// All fault sites of a module: every gate output and ROM data net, plus
/// every input port bit, each stuck at 0 and at 1.
pub fn fault_sites(module: &Module) -> Vec<Fault> {
    let mut nets: Vec<NetId> = Vec::new();
    for port in &module.inputs {
        for bit in &port.bits {
            if let Signal::Net(n) = bit {
                nets.push(*n);
            }
        }
    }
    for g in &module.gates {
        nets.push(g.output);
    }
    for r in &module.roms {
        nets.extend(r.data.iter().copied());
    }
    nets.iter()
        .flat_map(|&net| {
            [
                Fault {
                    net,
                    stuck_at: false,
                },
                Fault {
                    net,
                    stuck_at: true,
                },
            ]
        })
        .collect()
}

/// Builds a copy of `module` with `fault` injected: the faulty net's
/// driver still exists but every *reader* (gate inputs, ROM addresses,
/// output ports) sees the stuck constant.
///
/// This is the *reference* injection semantics. The production grading
/// path ([`coverage`]) never clones: it pins the stuck net's lane word in
/// place via [`crate::batch::BatchSimulator::inject_fault`], which the
/// batch-simulator tests check against this function site-by-site.
pub fn inject(module: &Module, fault: Fault) -> Module {
    let mut m = module.clone();
    let stuck = Signal::Const(fault.stuck_at);
    let subst: HashMap<NetId, Signal> = [(fault.net, stuck)].into_iter().collect();
    let resolve = |s: &mut Signal| {
        if let Signal::Net(n) = s {
            if let Some(&r) = subst.get(n) {
                *s = r;
            }
        }
    };
    for g in &mut m.gates {
        for s in &mut g.inputs {
            resolve(s);
        }
    }
    for r in &mut m.roms {
        for s in &mut r.addr {
            resolve(s);
        }
    }
    for p in &mut m.outputs {
        for s in &mut p.bits {
            resolve(s);
        }
    }
    m
}

/// Fault sites per [`exec::parallel_map`] work item. Fixed (rather than
/// derived from the thread count) so the shard boundaries — and therefore
/// any behavior that could leak through them — are identical at every
/// thread count.
const SITES_PER_SHARD: usize = 32;

/// Measures single-stuck-at coverage of `vectors` over a *combinational*
/// module. Each vector lists one value per input port, in port order.
///
/// Runs on the compiled wide-lane kernel ([`WideSim`]`<4>` over one
/// shared [`CompiledNetlist`]), so each fault is exercised against 256
/// vectors per settle pass — the standard parallel-pattern fault
/// simulation arrangement — and faults are injected *in place* (a
/// lane-word pin on the stuck net's slot via [`WideSim::inject_fault`])
/// instead of cloning and re-compiling the module per site. Detected
/// faults are dropped: a fault stops simulating at its first detecting
/// vector chunk (detection verdicts are chunk-width independent — a
/// fault is detected iff *any* vector distinguishes it). Fault sites are
/// sharded across the [`exec`] thread pool in fixed-size blocks (one
/// evaluator per shard over the shared tape) and the verdict list is
/// reassembled in site order, so the report does not depend on the
/// thread count.
///
/// # Panics
/// Panics if the module is sequential (run the vectors through your own
/// clocking harness instead) or a vector's arity is wrong. Use
/// [`try_coverage`] to handle those as errors.
pub fn coverage(module: &Module, vectors: &[Vec<u64>]) -> FaultCoverage {
    match try_coverage(module, vectors) {
        Ok(c) => c,
        Err(e) => e.raise(),
    }
}

/// Fallible [`coverage`]: reports sequential/invalid modules,
/// combinational cycles and vector-arity mismatches as [`SimError`].
pub fn try_coverage(module: &Module, vectors: &[Vec<u64>]) -> Result<FaultCoverage, SimError> {
    let _span = obs::span("netlist.faults.coverage");
    if !module.is_combinational() {
        return Err(SimError::Sequential {
            module: module.name.clone(),
        });
    }
    for (i, v) in vectors.iter().enumerate() {
        if v.len() != module.inputs.len() {
            return Err(SimError::VectorArity {
                index: i,
                got: v.len(),
                want: module.inputs.len(),
            });
        }
    }
    // Compile once; every shard below replays the same shared tape.
    let compiled = Arc::new(CompiledNetlist::try_compile(module)?);
    // Pack every ≤256-vector chunk once and record the fault-free
    // response image; each fault replays the same images.
    let mut sim: WideSim<FAULT_W> = WideSim::new(Arc::clone(&compiled));
    let chunks: Vec<(Vec<[u64; FAULT_W]>, usize)> = vectors
        .chunks(WideSim::<FAULT_W>::LANES)
        .map(|c| (sim.pack_vectors(c), c.len()))
        .collect();
    let good: Vec<Vec<u64>> = chunks
        .iter()
        .map(|(image, lanes)| {
            sim.load_packed(image);
            sim.settle();
            sim.output_words(*lanes)
        })
        .collect();
    record_settles(chunks.len() as u64, vectors.len() as u64);

    let sites = fault_sites(module);
    let shards: Vec<&[Fault]> = sites.chunks(SITES_PER_SHARD).collect();
    let verdicts: Vec<Vec<bool>> = exec::parallel_map(&shards, |_, shard| {
        let mut sim: WideSim<FAULT_W> = WideSim::new(Arc::clone(&compiled));
        let mut settles = 0u64;
        let mut lane_vectors = 0u64;
        let out: Vec<bool> = shard
            .iter()
            .map(|&fault| {
                sim.inject_fault(fault.net, fault.stuck_at);
                // Fault dropping: `any` stops at the first detecting chunk.
                chunks.iter().zip(&good).any(|((image, lanes), expected)| {
                    sim.load_packed(image);
                    sim.settle();
                    settles += 1;
                    lane_vectors += *lanes as u64;
                    !sim.outputs_match(expected, *lanes)
                })
            })
            .collect();
        record_settles(settles, lane_vectors);
        out
    });
    let verdicts: Vec<bool> = verdicts.concat();
    let detected = verdicts.iter().filter(|&&d| d).count();
    obs::counter_add("netlist.faults.sites", sites.len() as u64);
    obs::counter_add("netlist.faults.detected", detected as u64);
    obs::counter_add("netlist.faults.vectors", vectors.len() as u64);
    let undetected = sites
        .iter()
        .zip(&verdicts)
        .filter(|&(_, &d)| !d)
        .map(|(&f, _)| f)
        .collect();
    Ok(FaultCoverage {
        total: sites.len(),
        detected,
        undetected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::sim::Simulator;

    fn and_module() -> Module {
        let mut b = NetlistBuilder::new("and");
        let x = b.input("x", 2);
        let y = b.and(x[0], x[1]);
        b.output("y", &[y]);
        b.finish()
    }

    #[test]
    fn exhaustive_vectors_catch_every_fault_in_irredundant_logic() {
        let m = and_module();
        let vectors: Vec<Vec<u64>> = (0..4).map(|v| vec![v]).collect();
        let c = coverage(&m, &vectors);
        assert_eq!(c.coverage(), 1.0, "undetected: {:?}", c.undetected);
        // 2 input bits + 1 gate output = 3 nets x 2 polarities.
        assert_eq!(c.total, 6);
    }

    #[test]
    fn weak_vector_sets_miss_faults() {
        let m = and_module();
        // Only the all-zeros vector: a stuck-at-0 on the output is
        // indistinguishable.
        let c = coverage(&m, &[vec![0]]);
        assert!(c.coverage() < 1.0);
        assert!(c.undetected.contains(&Fault {
            net: m.gates[0].output,
            stuck_at: false
        }));
    }

    #[test]
    fn injection_forces_readers_to_the_constant() {
        let m = and_module();
        let f = Fault {
            net: m.inputs[0].bits[0].net().unwrap(),
            stuck_at: true,
        };
        let faulty = inject(&m, f);
        let mut sim = Simulator::new(&faulty);
        // x0 stuck at 1: output follows x1 regardless of driven x0.
        sim.set("x", 0b10);
        sim.settle();
        assert_eq!(sim.get("y"), 1);
        sim.set("x", 0b00);
        sim.settle();
        assert_eq!(sim.get("y"), 0);
    }

    #[test]
    fn bespoke_tree_vectors_reach_high_coverage() {
        use crate::comb::unsigned_le;
        // A bespoke comparator node: walk all 16 codes; expect full
        // coverage of the folded logic.
        let mut b = NetlistBuilder::new("node");
        let x = b.input("x", 4);
        let tau = b.const_word(9, 4);
        let le = unsigned_le(&mut b, &x, &tau);
        b.output("le", &[le]);
        let m = crate::opt::optimize(&b.finish());
        let vectors: Vec<Vec<u64>> = (0..16).map(|v| vec![v]).collect();
        let c = coverage(&m, &vectors);
        // Exhaustive vectors detect every *detectable* fault; what remains
        // is structural redundancy the optimizer leaves behind (a real
        // property worth surfacing — redundant logic is untestable logic).
        assert!(c.coverage() > 0.8, "coverage {}", c.coverage());
        // And the undetected set must indeed be undetectable: injecting
        // any of them never changes any exhaustive response (already
        // established by how they ended up in `undetected`).
        assert!(c.detected + c.undetected.len() == c.total);
    }
}
