//! Sequential building blocks.
//!
//! The serial decision tree (§III-A.1) tracks its working node in a shift
//! register seeded with 1; each cycle the current comparison result is
//! shifted into the LSB. These helpers build that structure and general
//! word registers.

use crate::builder::NetlistBuilder;
use crate::ir::Signal;

/// A shift register of `len` bits that shifts `d` in at the LSB each cycle.
///
/// `init` provides the little-endian power-on contents (the serial tree
/// seeds it with `1`). Returns the Q bits, LSB first.
pub fn shift_register(b: &mut NetlistBuilder, d: Signal, len: usize, init: u64) -> Vec<Signal> {
    assert!(len >= 1, "shift register needs at least one stage");
    let mut qs = Vec::with_capacity(len);
    let mut input = d;
    for i in 0..len {
        let q = b.dff(input, (init >> i) & 1 == 1);
        qs.push(q);
        input = q;
    }
    qs
}

/// An enable-gated word register: holds its value when `en` is low and
/// captures `d` on the clock edge when `en` is high.
pub fn register_en(b: &mut NetlistBuilder, d: &[Signal], en: Signal, init: u64) -> Vec<Signal> {
    d.iter()
        .enumerate()
        .map(|(i, &bit)| {
            // q = dff(mux(en, q, d)); the DFF is created first with a
            // placeholder D so the feedback mux can reference its Q.
            let q = b.dff(Signal::ZERO, (init >> i) & 1 == 1);
            let dff_index = b.last_gate_index();
            let next = b.mux(en, q, bit);
            b.patch_gate_input(dff_index, 0, next);
            q
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    #[test]
    fn shift_register_walks() {
        let mut b = NetlistBuilder::new("t");
        let d = b.input("d", 1);
        let q = shift_register(&mut b, d[0], 4, 0b0001);
        b.output("q", &q);
        let m = b.finish();
        let mut sim = Simulator::new(&m);
        sim.set("d", 1);
        sim.settle();
        assert_eq!(sim.get("q"), 0b0001);
        sim.step();
        sim.settle();
        assert_eq!(sim.get("q"), 0b0011); // 1 shifted in, old bits moved up
        sim.set("d", 0);
        sim.step();
        sim.settle();
        assert_eq!(sim.get("q"), 0b0110);
    }

    #[test]
    fn enable_register_holds_and_loads() {
        let mut b = NetlistBuilder::new("t");
        let d = b.input("d", 4);
        let en = b.input("en", 1);
        let q = register_en(&mut b, &d, en[0], 0);
        b.output("q", &q);
        let m = b.finish();
        let mut sim = Simulator::new(&m);
        // en=1 loads d (mux select 1 -> d input).
        sim.set("d", 9);
        sim.set("en", 1);
        sim.step();
        sim.settle();
        assert_eq!(sim.get("q"), 9);
        // en=0 holds.
        sim.set("d", 3);
        sim.set("en", 0);
        sim.step();
        sim.settle();
        assert_eq!(sim.get("q"), 9);
        // en=1 loads again.
        sim.set("en", 1);
        sim.step();
        sim.settle();
        assert_eq!(sim.get("q"), 3);
    }
}
