//! Combinational equivalence checking.
//!
//! The bespoke flow rewrites netlists aggressively (constant folding,
//! absorption, CSE, lookup replacement); a synthesis flow would sign this
//! off with logic equivalence checking. This module provides the same
//! safety net: a classic *miter* construction (XOR corresponding outputs,
//! OR the differences) plus exhaustive or sampled proving on the compiled
//! wide-lane kernel — the miter is compiled once into a shared
//! [`CompiledNetlist`] tape and every [`WideSim`]`<4>` settle pass tries
//! 256 input vectors. Vector spans are sharded across the [`exec`] pool
//! in fixed-size blocks so the verdict (and any counter-example) is
//! identical at every thread count; widening the settle chunk from 64 to
//! 256 lanes subdivides spans differently but preserves the vector
//! order, the per-span sample streams and the first-difference witness.

use std::fmt;
use std::sync::Arc;

use crate::builder::NetlistBuilder;
use crate::compile::{record_settles, CompiledNetlist, WideSim};
use crate::error::SimError;
use crate::ir::{Module, Signal};

/// Lane width of the verification shards (one `WideSim<VERIFY_W>` per
/// work item over the shared compiled miter).
const VERIFY_W: usize = 4;
/// Vectors per settle pass at that width.
const VERIFY_LANES: usize = 64 * VERIFY_W;

/// Root seed of the deterministic sampling stream (golden-ratio constant,
/// kept from the original scalar checker).
const SAMPLE_ROOT: u64 = 0x9e3779b97f4a7c15;

/// Samples per [`exec::parallel_map`] work item in sampled mode, and
/// packed vectors per work item in exhaustive mode. Fixed (not derived
/// from the thread count) so span boundaries — and the per-span RNG
/// streams — are identical at every thread count.
const SAMPLE_SPAN: usize = 1024;
const EXHAUSTIVE_SPAN: u64 = 1 << 16;

/// Why a miter could not be built: the two modules do not present the
/// same interface, so there is no shared input space to compare them
/// over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MiterError {
    /// One of the modules is sequential.
    Sequential {
        /// Name of the offending module.
        module: String,
    },
    /// The modules disagree on input/output port count.
    PortCount {
        /// `"input"` or `"output"`.
        direction: &'static str,
        /// Port count of module `a`.
        a: usize,
        /// Port count of module `b`.
        b: usize,
    },
    /// A corresponding port pair differs in name or width.
    PortShape {
        /// `"input"` or `"output"`.
        direction: &'static str,
        /// Index of the mismatched port pair.
        index: usize,
        /// `name[width]` of module `a`'s port.
        a: String,
        /// `name[width]` of module `b`'s port.
        b: String,
    },
}

impl fmt::Display for MiterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MiterError::Sequential { module } => {
                write!(
                    f,
                    "module {module} is sequential; miter needs combinational modules"
                )
            }
            MiterError::PortCount { direction, a, b } => {
                write!(f, "{direction} port count differs: {a} vs {b}")
            }
            MiterError::PortShape {
                direction,
                index,
                a,
                b,
            } => write!(f, "{direction} port {index} differs: {a} vs {b}"),
        }
    }
}

impl std::error::Error for MiterError {}

/// Why an equivalence check could not produce a verdict: either the two
/// modules present incompatible interfaces ([`MiterError`]) or the miter
/// could not be simulated ([`SimError`] — e.g. a combinational cycle in
/// one of the inputs). Both propagate as errors instead of aborting so
/// differential harnesses can classify rejected inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The miter could not be built.
    Miter(MiterError),
    /// The miter could not be compiled or simulated.
    Sim(SimError),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Miter(e) => e.fmt(f),
            VerifyError::Sim(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<MiterError> for VerifyError {
    fn from(e: MiterError) -> Self {
        VerifyError::Miter(e)
    }
}

impl From<SimError> for VerifyError {
    fn from(e: SimError) -> Self {
        VerifyError::Sim(e)
    }
}

/// Outcome of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Equivalence {
    /// All tried inputs agree; exhaustive proofs cover the whole space.
    Equivalent {
        /// Number of input vectors evaluated.
        vectors: usize,
        /// True when every possible input was covered.
        exhaustive: bool,
    },
    /// A distinguishing input was found (values per input port of `a`).
    CounterExample(Vec<u64>),
}

impl Equivalence {
    /// True for the equivalent verdicts.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, Equivalence::Equivalent { .. })
    }

    /// Number of vectors evaluated before the verdict (0 for a
    /// counter-example).
    pub fn vectors(&self) -> usize {
        match self {
            Equivalence::Equivalent { vectors, .. } => *vectors,
            Equivalence::CounterExample(_) => 0,
        }
    }
}

/// Builds a miter over two combinational modules with identical port
/// shapes: shared inputs, one `diff` output that is 1 iff any output bit
/// differs.
///
/// # Errors
/// Returns a [`MiterError`] if the modules' port names/widths differ or
/// either is sequential.
pub fn miter(a: &Module, b: &Module) -> Result<Module, MiterError> {
    for m in [a, b] {
        if !m.is_combinational() {
            return Err(MiterError::Sequential {
                module: m.name.clone(),
            });
        }
    }
    let shape = |p: &crate::ir::Port| format!("{}[{}]", p.name, p.width());
    for (direction, pa, pb) in [
        ("input", &a.inputs, &b.inputs),
        ("output", &a.outputs, &b.outputs),
    ] {
        if pa.len() != pb.len() {
            return Err(MiterError::PortCount {
                direction,
                a: pa.len(),
                b: pb.len(),
            });
        }
        for (index, (x, y)) in pa.iter().zip(pb.iter()).enumerate() {
            if x.name != y.name || x.width() != y.width() {
                return Err(MiterError::PortShape {
                    direction,
                    index,
                    a: shape(x),
                    b: shape(y),
                });
            }
        }
    }

    let mut m = NetlistBuilder::new(format!("miter_{}_{}", a.name, b.name));
    // Shared inputs.
    let shared: Vec<Vec<Signal>> = a
        .inputs
        .iter()
        .map(|p| m.input(p.name.clone(), p.width()))
        .collect();

    // Instantiate a copy of `src` into the miter, remapping nets.
    fn instantiate(
        m: &mut NetlistBuilder,
        src: &Module,
        shared: &[Vec<Signal>],
    ) -> Vec<Vec<Signal>> {
        use std::collections::HashMap;
        let mut map: HashMap<crate::ir::NetId, Signal> = HashMap::new();
        for (pi, port) in src.inputs.iter().enumerate() {
            for (bi, bit) in port.bits.iter().enumerate() {
                if let Signal::Net(n) = bit {
                    map.insert(*n, shared[pi][bi]);
                }
            }
        }
        let remap = |map: &HashMap<crate::ir::NetId, Signal>, s: Signal| -> Signal {
            match s {
                Signal::Const(_) => s,
                Signal::Net(n) => *map.get(&n).expect("source net mapped"),
            }
        };
        // Pass 1: allocate a fresh net per gate/ROM output (gates may
        // reference each other in any order, so all outputs are mapped
        // before any gate is emitted).
        let mut out_map: HashMap<crate::ir::NetId, Signal> = HashMap::new();
        for g in &src.gates {
            let fresh = m.fresh_net();
            out_map.insert(g.output, Signal::Net(fresh));
        }
        for r in &src.roms {
            for d in &r.data {
                let fresh = m.fresh_net();
                out_map.insert(*d, Signal::Net(fresh));
            }
        }
        map.extend(out_map.iter().map(|(k, v)| (*k, *v)));
        // Pass 2: emit gates wired through the map.
        for g in &src.gates {
            let inputs: Vec<Signal> = g.inputs.iter().map(|&s| remap(&map, s)).collect();
            let out = map[&g.output].net().expect("allocated net");
            m.push_raw_gate(g.kind, inputs, out);
        }
        for r in &src.roms {
            let addr: Vec<Signal> = r.addr.iter().map(|&s| remap(&map, s)).collect();
            let data: Vec<crate::ir::NetId> = r
                .data
                .iter()
                .map(|d| map[d].net().expect("allocated net"))
                .collect();
            m.push_raw_rom(addr, data, r.contents.clone(), r.style);
        }
        src.outputs
            .iter()
            .map(|p| p.bits.iter().map(|&s| remap(&map, s)).collect())
            .collect()
    }

    let outs_a = instantiate(&mut m, a, &shared);
    let outs_b = instantiate(&mut m, b, &shared);

    let mut diffs = Vec::new();
    for (wa, wb) in outs_a.iter().zip(&outs_b) {
        for (&ba, &bb) in wa.iter().zip(wb) {
            diffs.push(m.xor(ba, bb));
        }
    }
    let diff = if diffs.is_empty() {
        Signal::ZERO
    } else {
        m.or_reduce(&diffs)
    };
    m.output("diff", &[diff]);
    Ok(m.finish())
}

/// A full-width mask for a `w`-bit input port (`w = 64` must keep bit 63 —
/// the original scalar checker's `w.min(63)` mask silently pinned it to
/// 0, hiding any divergence confined to the top bit).
fn width_mask(w: usize) -> u64 {
    match w {
        0 => 0,
        1..=63 => (1u64 << w) - 1,
        _ => u64::MAX,
    }
}

/// One shared lane scratchpad: per-port lane value buffers, reused across
/// chunks.
struct LaneBuffer {
    /// `per_port[p][lane]` is port `p`'s value under vector `lane`.
    per_port: Vec<Vec<u64>>,
}

impl LaneBuffer {
    fn new(n_ports: usize) -> Self {
        LaneBuffer {
            per_port: vec![vec![0u64; VERIFY_LANES]; n_ports],
        }
    }

    /// Drives `sim` with the first `lanes` columns (ports are loaded by
    /// declaration index — no name lookups in the chunk loop).
    fn load(&self, sim: &mut WideSim<VERIFY_W>, lanes: usize) {
        for (p, col) in self.per_port.iter().enumerate() {
            sim.set_port_lanes(p, &col[..lanes]);
        }
    }

    /// The input vector carried by `lane` (values per port, in order).
    fn vector(&self, lane: usize) -> Vec<u64> {
        self.per_port.iter().map(|col| col[lane]).collect()
    }
}

/// Checks equivalence of two combinational modules on the 64-lane batch
/// simulator.
///
/// With `total_input_bits <= exhaustive_limit` (and below the 64-bit
/// packing window) every input combination is tried — a proof; otherwise
/// `samples` pseudo-random vectors are tried — a falsification attempt.
/// The first mismatch in deterministic vector order is returned as a
/// counter-example regardless of thread count.
///
/// Passing `exhaustive_limit >= 64` cannot enumerate `2^64` packed
/// vectors in a `u64`; exhaustive proving is clamped to modules with
/// fewer than 64 total input bits and wider interfaces fall back to
/// sampling (with a note on stderr).
///
/// # Errors
/// Returns [`VerifyError::Miter`] when the two modules' port shapes
/// differ and [`VerifyError::Sim`] when the miter cannot be compiled
/// (e.g. a combinational cycle in one of the inputs).
pub fn check_equivalence(
    a: &Module,
    b: &Module,
    exhaustive_limit: u32,
    samples: usize,
) -> Result<Equivalence, VerifyError> {
    let _span = obs::span("netlist.verify.equivalence");
    let result = check_equivalence_inner(a, b, exhaustive_limit, samples);
    if let Ok(eq) = &result {
        obs::counter_add("netlist.verify.checks", 1);
        obs::counter_add("netlist.verify.vectors", eq.vectors() as u64);
    }
    result
}

fn check_equivalence_inner(
    a: &Module,
    b: &Module,
    exhaustive_limit: u32,
    samples: usize,
) -> Result<Equivalence, VerifyError> {
    let m = miter(a, b)?;
    let total_bits: u32 = m.inputs.iter().map(|p| p.width() as u32).sum();

    // One compilation, shared by every shard below.
    let compiled = Arc::new(CompiledNetlist::try_compile(&m)?);
    if total_bits < 64 && total_bits <= exhaustive_limit {
        Ok(prove_exhaustive(&compiled, total_bits))
    } else {
        if total_bits >= 64 && exhaustive_limit >= 64 {
            eprintln!(
                "[verify] {}: {total_bits} input bits exceed the 63-bit exhaustive \
                 window; falling back to {samples} sampled vectors",
                m.name
            );
        }
        Ok(prove_sampled(&compiled, samples))
    }
}

/// Exhaustive proof: all `2^total_bits` packed input vectors, 256 lanes
/// per settle, sharded over fixed `EXHAUSTIVE_SPAN` ranges.
fn prove_exhaustive(compiled: &Arc<CompiledNetlist>, total_bits: u32) -> Equivalence {
    let count = 1u64 << total_bits;
    let widths: Vec<usize> = compiled.input_widths();
    let spans: Vec<u64> = (0..count.div_ceil(EXHAUSTIVE_SPAN)).collect();
    let failures: Vec<Option<Vec<u64>>> = exec::parallel_map(&spans, |_, &span| {
        let mut sim: WideSim<VERIFY_W> = WideSim::new(Arc::clone(compiled));
        let mut lanes = LaneBuffer::new(widths.len());
        let mut settles = 0u64;
        let mut lane_vectors = 0u64;
        let start = span * EXHAUSTIVE_SPAN;
        let end = (start + EXHAUSTIVE_SPAN).min(count);
        let mut base = start;
        let mut witness = None;
        while base < end {
            let n = ((end - base) as usize).min(VERIFY_LANES);
            for lane in 0..n {
                let mut rest = base + lane as u64;
                for (p, &w) in widths.iter().enumerate() {
                    lanes.per_port[p][lane] = rest & width_mask(w);
                    rest >>= w;
                }
            }
            lanes.load(&mut sim, n);
            sim.settle();
            settles += 1;
            lane_vectors += n as u64;
            if let Some(lane) = first_diff_lane(&sim, n) {
                witness = Some(lanes.vector(lane));
                break;
            }
            base += n as u64;
        }
        record_settles(settles, lane_vectors);
        witness
    });
    match failures.into_iter().flatten().next() {
        Some(values) => Equivalence::CounterExample(values),
        None => Equivalence::Equivalent {
            vectors: count as usize,
            exhaustive: true,
        },
    }
}

/// Sampled falsification: `samples` deterministic pseudo-random vectors,
/// 256 lanes per settle, sharded over fixed `SAMPLE_SPAN` ranges with
/// per-span seed streams (`exec::task_seed`), so the tried vectors do not
/// depend on the thread count. Draws advance per (vector, port) — the
/// stream is a function of the vector index alone, so the chunk width
/// does not shift it.
fn prove_sampled(compiled: &Arc<CompiledNetlist>, samples: usize) -> Equivalence {
    let widths: Vec<usize> = compiled.input_widths();
    let spans: Vec<usize> = (0..samples.div_ceil(SAMPLE_SPAN)).collect();
    let failures: Vec<Option<Vec<u64>>> = exec::parallel_map(&spans, |_, &span| {
        let mut sim: WideSim<VERIFY_W> = WideSim::new(Arc::clone(compiled));
        let mut lanes = LaneBuffer::new(widths.len());
        let mut settles = 0u64;
        let mut lane_vectors = 0u64;
        // xorshift needs a nonzero state; task_seed(root, span) == 0 is a
        // 1-in-2^64 fluke but would freeze the stream entirely.
        let mut state = exec::task_seed(SAMPLE_ROOT, span as u64).max(1);
        let mut next = move || {
            // xorshift64, seeded per span.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let start = span * SAMPLE_SPAN;
        let end = (start + SAMPLE_SPAN).min(samples);
        let mut base = start;
        let mut witness = None;
        while base < end {
            let n = (end - base).min(VERIFY_LANES);
            for lane in 0..n {
                for (p, &w) in widths.iter().enumerate() {
                    lanes.per_port[p][lane] = next() & width_mask(w);
                }
            }
            lanes.load(&mut sim, n);
            sim.settle();
            settles += 1;
            lane_vectors += n as u64;
            if let Some(lane) = first_diff_lane(&sim, n) {
                witness = Some(lanes.vector(lane));
                break;
            }
            base += n;
        }
        record_settles(settles, lane_vectors);
        witness
    });
    match failures.into_iter().flatten().next() {
        Some(values) => Equivalence::CounterExample(values),
        None => Equivalence::Equivalent {
            vectors: samples,
            exhaustive: false,
        },
    }
}

/// Lowest lane (vector) whose `diff` output is raised, if any — the
/// miter has a single 1-bit output, so its response image is exactly
/// `VERIFY_W` lane words.
fn first_diff_lane(sim: &WideSim<VERIFY_W>, lanes: usize) -> Option<usize> {
    let words = sim.output_words(lanes);
    words
        .iter()
        .enumerate()
        .find(|(_, &w)| w != 0)
        .map(|(i, &w)| i * 64 + w.trailing_zeros() as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comb::unsigned_le;
    use crate::opt::optimize;

    #[test]
    fn optimizer_output_proves_equivalent() {
        let mut b = NetlistBuilder::new("node");
        let x = b.input("x", 6);
        let tau = b.const_word(23, 6);
        let le = unsigned_le(&mut b, &x, &tau);
        b.output("le", &[le]);
        let original = b.finish();
        let optimized = optimize(&original);
        let verdict = check_equivalence(&original, &optimized, 16, 0).unwrap();
        assert!(
            matches!(
                verdict,
                Equivalence::Equivalent {
                    exhaustive: true,
                    ..
                }
            ),
            "{verdict:?}"
        );
    }

    #[test]
    fn different_circuits_yield_a_counterexample() {
        let build = |tau: u64| {
            let mut b = NetlistBuilder::new("node");
            let x = b.input("x", 4);
            let t = b.const_word(tau, 4);
            let le = unsigned_le(&mut b, &x, &t);
            b.output("le", &[le]);
            b.finish()
        };
        let a = build(5);
        let bb = build(6);
        let verdict = check_equivalence(&a, &bb, 16, 0).unwrap();
        match verdict {
            Equivalence::CounterExample(v) => {
                // The circuits disagree exactly at x = 6.
                assert_eq!(v, vec![6]);
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn sampled_mode_covers_wide_inputs() {
        let mut b = NetlistBuilder::new("wide");
        let x = b.input("x", 20);
        let y = b.input("y", 20);
        let s = crate::arith::add(&mut b, &x, &y);
        b.output("s", &s);
        let a = b.finish();
        let opt = optimize(&a);
        let verdict = check_equivalence(&a, &opt, 16, 200).unwrap();
        assert!(
            matches!(
                verdict,
                Equivalence::Equivalent {
                    exhaustive: false,
                    vectors: 200
                }
            ),
            "{verdict:?}"
        );
    }

    #[test]
    fn rom_modules_participate_in_miters() {
        use pdk::RomStyle;
        let build = |style: RomStyle| {
            let mut b = NetlistBuilder::new("rom");
            let a = b.input("a", 3);
            let d = b.rom(&a, vec![1, 5, 2, 7, 0, 3, 6, 4], 3, style);
            b.output("d", &d);
            b.finish()
        };
        let crossbar = build(RomStyle::Crossbar);
        let dots = build(RomStyle::BespokeDots);
        // Same contents, different implementation style: equivalent.
        let verdict = check_equivalence(&crossbar, &dots, 8, 0).unwrap();
        assert!(verdict.is_equivalent());
    }

    #[test]
    fn mismatched_ports_are_reported_not_panicked() {
        let mut b1 = NetlistBuilder::new("a");
        let x = b1.input("x", 2);
        b1.output("o", &[x[0]]);
        let mut b2 = NetlistBuilder::new("b");
        let y = b2.input("x", 3);
        b2.output("o", &[y[0]]);
        let err = miter(&b1.finish(), &b2.finish()).unwrap_err();
        assert_eq!(
            err,
            MiterError::PortShape {
                direction: "input",
                index: 0,
                a: "x[2]".into(),
                b: "x[3]".into(),
            }
        );
        assert!(err.to_string().contains("input port 0 differs"));
    }

    #[test]
    fn sequential_modules_are_reported() {
        let mut b = NetlistBuilder::new("seq");
        let x = b.input("x", 1);
        let q = b.dff(x[0], false);
        b.output("q", &[q]);
        let seq = b.finish();
        let err = miter(&seq, &seq).unwrap_err();
        assert!(matches!(err, MiterError::Sequential { .. }));
    }

    /// Regression: the scalar checker's sampled path masked each port with
    /// `w.min(63)` bits, so bit 63 of a 64-bit port was never driven to 1
    /// and two modules differing only there sampled as "equivalent".
    #[test]
    fn sampling_exercises_bit_63_of_a_64_bit_port() {
        let mut b1 = NetlistBuilder::new("top_bit");
        let x = b1.input("x", 64);
        let top = b1.buf(x[63]);
        b1.output("o", &[top]);
        let a = b1.finish();
        let mut b2 = NetlistBuilder::new("zero");
        let _ = b2.input("x", 64);
        let zero = b2.and(Signal::ZERO, Signal::ZERO);
        b2.output("o", &[zero]);
        let bb = b2.finish();
        // 64 total input bits: sampled mode. Half of all random vectors
        // set bit 63, so a handful of samples must find the divergence.
        let verdict = check_equivalence(&a, &bb, 16, 256).unwrap();
        match verdict {
            Equivalence::CounterExample(v) => {
                assert_eq!(v.len(), 1);
                assert!(v[0] >> 63 == 1, "witness must set bit 63: {:#x}", v[0]);
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    /// Regression: `1u64 << total_bits` wrapped when a caller passed
    /// `exhaustive_limit >= 64`, claiming an exhaustive proof over zero
    /// vectors. Wide interfaces must clamp to sampling instead.
    #[test]
    fn exhaustive_limit_at_or_above_64_bits_falls_back_to_sampling() {
        let mut b1 = NetlistBuilder::new("wide_a");
        let x = b1.input("x", 64);
        let o = b1.xor(x[0], x[63]);
        b1.output("o", &[o]);
        let a = b1.finish();
        let opt = optimize(&a);
        let verdict = check_equivalence(&a, &opt, 64, 100).unwrap();
        assert_eq!(
            verdict,
            Equivalence::Equivalent {
                vectors: 100,
                exhaustive: false
            }
        );
    }

    #[test]
    fn counterexamples_are_thread_count_invariant() {
        // Divergence only at one specific wide input; the reported witness
        // must be identical at any thread count.
        let build = |tweak: bool| {
            let mut b = NetlistBuilder::new("w");
            let x = b.input("x", 24);
            let y = b.input("y", 24);
            let mut acc = b.xor(x[0], y[0]);
            for i in 1..24 {
                let t = b.xor(x[i], y[i]);
                acc = b.and(acc, t);
            }
            if tweak {
                acc = b.not(acc);
            }
            b.output("o", &[acc]);
            b.finish()
        };
        let a = build(false);
        let bb = build(true);
        let one = exec::with_threads(1, || check_equivalence(&a, &bb, 8, 4096).unwrap());
        let many = exec::with_threads(8, || check_equivalence(&a, &bb, 8, 4096).unwrap());
        assert_eq!(one, many);
        assert!(!one.is_equivalent());
    }
}
