//! Combinational equivalence checking.
//!
//! The bespoke flow rewrites netlists aggressively (constant folding,
//! absorption, CSE, lookup replacement); a synthesis flow would sign this
//! off with logic equivalence checking. This module provides the same
//! safety net: a classic *miter* construction (XOR corresponding outputs,
//! OR the differences) plus exhaustive or sampled proving via the
//! functional simulator.

use crate::builder::NetlistBuilder;
use crate::ir::{Module, Signal};
use crate::sim::Simulator;

/// Outcome of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Equivalence {
    /// All tried inputs agree; exhaustive proofs cover the whole space.
    Equivalent {
        /// Number of input vectors evaluated.
        vectors: usize,
        /// True when every possible input was covered.
        exhaustive: bool,
    },
    /// A distinguishing input was found (values per input port of `a`).
    CounterExample(Vec<u64>),
}

impl Equivalence {
    /// True for the equivalent verdicts.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, Equivalence::Equivalent { .. })
    }
}

/// Builds a miter over two combinational modules with identical port
/// shapes: shared inputs, one `diff` output that is 1 iff any output bit
/// differs.
///
/// # Panics
/// Panics if the modules' port names/widths differ or either is
/// sequential.
pub fn miter(a: &Module, b: &Module) -> Module {
    assert!(
        a.is_combinational() && b.is_combinational(),
        "miter needs combinational modules"
    );
    assert_eq!(a.inputs.len(), b.inputs.len(), "input port count differs");
    for (pa, pb) in a.inputs.iter().zip(&b.inputs) {
        assert_eq!(pa.name, pb.name, "input port name differs");
        assert_eq!(pa.width(), pb.width(), "input port width differs");
    }
    assert_eq!(
        a.outputs.len(),
        b.outputs.len(),
        "output port count differs"
    );
    for (pa, pb) in a.outputs.iter().zip(&b.outputs) {
        assert_eq!(pa.name, pb.name, "output port name differs");
        assert_eq!(pa.width(), pb.width(), "output port width differs");
    }

    let mut m = NetlistBuilder::new(format!("miter_{}_{}", a.name, b.name));
    // Shared inputs.
    let shared: Vec<Vec<Signal>> = a
        .inputs
        .iter()
        .map(|p| m.input(p.name.clone(), p.width()))
        .collect();

    // Instantiate a copy of `src` into the miter, remapping nets.
    fn instantiate(
        m: &mut NetlistBuilder,
        src: &Module,
        shared: &[Vec<Signal>],
    ) -> Vec<Vec<Signal>> {
        use std::collections::HashMap;
        let mut map: HashMap<crate::ir::NetId, Signal> = HashMap::new();
        for (pi, port) in src.inputs.iter().enumerate() {
            for (bi, bit) in port.bits.iter().enumerate() {
                if let Signal::Net(n) = bit {
                    map.insert(*n, shared[pi][bi]);
                }
            }
        }
        let remap = |map: &HashMap<crate::ir::NetId, Signal>, s: Signal| -> Signal {
            match s {
                Signal::Const(_) => s,
                Signal::Net(n) => *map.get(&n).expect("source net mapped"),
            }
        };
        // Pass 1: allocate a fresh net per gate/ROM output (gates may
        // reference each other in any order, so all outputs are mapped
        // before any gate is emitted).
        let mut out_map: HashMap<crate::ir::NetId, Signal> = HashMap::new();
        for g in &src.gates {
            let fresh = m.fresh_net();
            out_map.insert(g.output, Signal::Net(fresh));
        }
        for r in &src.roms {
            for d in &r.data {
                let fresh = m.fresh_net();
                out_map.insert(*d, Signal::Net(fresh));
            }
        }
        map.extend(out_map.iter().map(|(k, v)| (*k, *v)));
        // Pass 2: emit gates wired through the map.
        for g in &src.gates {
            let inputs: Vec<Signal> = g.inputs.iter().map(|&s| remap(&map, s)).collect();
            let out = map[&g.output].net().expect("allocated net");
            m.push_raw_gate(g.kind, inputs, out);
        }
        for r in &src.roms {
            let addr: Vec<Signal> = r.addr.iter().map(|&s| remap(&map, s)).collect();
            let data: Vec<crate::ir::NetId> = r
                .data
                .iter()
                .map(|d| map[d].net().expect("allocated net"))
                .collect();
            m.push_raw_rom(addr, data, r.contents.clone(), r.style);
        }
        src.outputs
            .iter()
            .map(|p| p.bits.iter().map(|&s| remap(&map, s)).collect())
            .collect()
    }

    let outs_a = instantiate(&mut m, a, &shared);
    let outs_b = instantiate(&mut m, b, &shared);

    let mut diffs = Vec::new();
    for (wa, wb) in outs_a.iter().zip(&outs_b) {
        for (&ba, &bb) in wa.iter().zip(wb) {
            diffs.push(m.xor(ba, bb));
        }
    }
    let diff = if diffs.is_empty() {
        Signal::ZERO
    } else {
        m.or_reduce(&diffs)
    };
    m.output("diff", &[diff]);
    m.finish()
}

/// Checks equivalence of two combinational modules.
///
/// With `total_input_bits <= exhaustive_limit` every input combination is
/// tried (a proof); otherwise `samples` pseudo-random vectors are tried
/// (a falsification attempt). The first mismatch is returned as a
/// counter-example.
pub fn check_equivalence(
    a: &Module,
    b: &Module,
    exhaustive_limit: u32,
    samples: usize,
) -> Equivalence {
    let m = miter(a, b);
    let mut sim = Simulator::new(&m);
    let widths: Vec<usize> = m.inputs.iter().map(|p| p.width()).collect();
    let total_bits: u32 = widths.iter().map(|w| *w as u32).sum();

    let try_vector = |sim: &mut Simulator, values: &[u64]| -> bool {
        for (p, &v) in m.inputs.iter().zip(values) {
            sim.set(&p.name, v);
        }
        sim.settle();
        sim.get("diff") == 0
    };

    if total_bits <= exhaustive_limit {
        let count = 1u64 << total_bits;
        for packed in 0..count {
            let mut rest = packed;
            let values: Vec<u64> = widths
                .iter()
                .map(|&w| {
                    let v = rest & ((1u64 << w) - 1);
                    rest >>= w;
                    v
                })
                .collect();
            if !try_vector(&mut sim, &values) {
                return Equivalence::CounterExample(values);
            }
        }
        Equivalence::Equivalent {
            vectors: count as usize,
            exhaustive: true,
        }
    } else {
        // Deterministic xorshift sampling.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..samples {
            let values: Vec<u64> = widths
                .iter()
                .map(|&w| next() & ((1u64 << w.min(63)) - 1))
                .collect();
            if !try_vector(&mut sim, &values) {
                return Equivalence::CounterExample(values);
            }
        }
        Equivalence::Equivalent {
            vectors: samples,
            exhaustive: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comb::unsigned_le;
    use crate::opt::optimize;

    #[test]
    fn optimizer_output_proves_equivalent() {
        let mut b = NetlistBuilder::new("node");
        let x = b.input("x", 6);
        let tau = b.const_word(23, 6);
        let le = unsigned_le(&mut b, &x, &tau);
        b.output("le", &[le]);
        let original = b.finish();
        let optimized = optimize(&original);
        let verdict = check_equivalence(&original, &optimized, 16, 0);
        assert!(
            matches!(
                verdict,
                Equivalence::Equivalent {
                    exhaustive: true,
                    ..
                }
            ),
            "{verdict:?}"
        );
    }

    #[test]
    fn different_circuits_yield_a_counterexample() {
        let build = |tau: u64| {
            let mut b = NetlistBuilder::new("node");
            let x = b.input("x", 4);
            let t = b.const_word(tau, 4);
            let le = unsigned_le(&mut b, &x, &t);
            b.output("le", &[le]);
            b.finish()
        };
        let a = build(5);
        let bb = build(6);
        let verdict = check_equivalence(&a, &bb, 16, 0);
        match verdict {
            Equivalence::CounterExample(v) => {
                // The circuits disagree exactly at x = 6.
                assert_eq!(v, vec![6]);
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn sampled_mode_covers_wide_inputs() {
        let mut b = NetlistBuilder::new("wide");
        let x = b.input("x", 20);
        let y = b.input("y", 20);
        let s = crate::arith::add(&mut b, &x, &y);
        b.output("s", &s);
        let a = b.finish();
        let opt = optimize(&a);
        let verdict = check_equivalence(&a, &opt, 16, 200);
        assert!(
            matches!(
                verdict,
                Equivalence::Equivalent {
                    exhaustive: false,
                    vectors: 200
                }
            ),
            "{verdict:?}"
        );
    }

    #[test]
    fn rom_modules_participate_in_miters() {
        use pdk::RomStyle;
        let build = |style: RomStyle| {
            let mut b = NetlistBuilder::new("rom");
            let a = b.input("a", 3);
            let d = b.rom(&a, vec![1, 5, 2, 7, 0, 3, 6, 4], 3, style);
            b.output("d", &d);
            b.finish()
        };
        let crossbar = build(RomStyle::Crossbar);
        let dots = build(RomStyle::BespokeDots);
        // Same contents, different implementation style: equivalent.
        let verdict = check_equivalence(&crossbar, &dots, 8, 0);
        assert!(verdict.is_equivalent());
    }

    #[test]
    #[should_panic(expected = "width differs")]
    fn mismatched_ports_are_rejected() {
        let mut b1 = NetlistBuilder::new("a");
        let x = b1.input("x", 2);
        b1.output("o", &[x[0]]);
        let mut b2 = NetlistBuilder::new("b");
        let y = b2.input("x", 3);
        b2.output("o", &[y[0]]);
        let _ = miter(&b1.finish(), &b2.finish());
    }
}
