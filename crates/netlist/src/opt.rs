//! Logic optimization: constant folding, identity simplification, common
//! sub-expression elimination and dead-gate removal.
//!
//! This pass is what turns a *bespoke* netlist (trained thresholds and
//! coefficients hard-wired as [`Signal::Const`] inputs) into the radically
//! smaller circuit the paper reports: "now that the actual trained
//! threshold values are hardwired, the comparators have only one variable
//! input which greatly simplifies overall design" (§IV-A). Conventional
//! architectures pass through nearly unchanged (their operands arrive from
//! registers, so nothing folds), which is exactly the asymmetry the
//! bespoke-vs-conventional comparison measures.
//!
//! # Engine
//!
//! The optimizer is an incremental worklist engine rather than a global
//! fixpoint loop:
//!
//! * a **union-find** over [`NetId`]s (path-compressed) records every
//!   alias a rewrite creates, so substitution chains cost amortized O(α);
//! * a **fanout index** (seeded from [`crate::fanout`]) re-enqueues only
//!   the readers of a changed net instead of rescanning the module;
//! * a **structural-hash table** (strash) merges structurally identical
//!   gates the moment their inputs canonicalize to the same key, which is
//!   CSE without a separate pass;
//! * dead-gate elimination runs **once** at the end as a reachability
//!   sweep from the output ports.
//!
//! The worklist drains when no rewrite is applicable anywhere — a true
//! fixpoint, with no iteration cap. The rewrite rule set (constant
//! folding, identities, double-inverter/inverted-pair, absorption and
//! redundancy, CSE) is unchanged, so optimized netlists are bit-identical
//! in function to the previous engine's output.

use std::collections::{HashMap, VecDeque};
use std::time::Instant;

use pdk::CellKind;
use serde::Serialize;

use crate::fanout::gate_reader_index;
use crate::ir::{Gate, Module, NetId, Signal};

/// Statistics from one [`optimize_with_stats`] call.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct OptStats {
    /// Gates in the input module.
    pub gates_in: usize,
    /// Gates in the optimized module.
    pub gates_out: usize,
    /// Gates folded away by aliasing their output to another signal
    /// (constant folds, identities, absorption).
    pub aliased: usize,
    /// Gates rewritten in place to a cheaper kind (e.g. `nand(a,a)` to an
    /// inverter, mux collapses, redundancy).
    pub rewritten: usize,
    /// Gates merged into a structural twin by the hash-consing table.
    pub merged: usize,
    /// Gates removed by the final dead-code sweep (unobservable logic,
    /// including gates orphaned by the rewrites above).
    pub dead: usize,
    /// Wall-clock seconds of the whole optimization.
    pub seconds: f64,
}

impl OptStats {
    /// Total rewrite-rule applications (aliases + in-place + merges).
    pub fn rewrites(&self) -> usize {
        self.aliased + self.rewritten + self.merged
    }

    /// Input gates processed per second.
    pub fn gates_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.gates_in as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// Process-wide cumulative optimizer statistics (see [`cumulative_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct OptCumulative {
    /// Number of `optimize` calls.
    pub calls: u64,
    /// Total gates across all input modules.
    pub gates_in: u64,
    /// Total gates across all optimized modules.
    pub gates_out: u64,
    /// Total rewrite-rule applications.
    pub rewrites: u64,
    /// Total wall-clock seconds spent optimizing.
    pub seconds: f64,
}

impl OptCumulative {
    /// Aggregate throughput: input gates per optimizer second.
    pub fn gates_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.gates_in as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// Process-wide optimizer metrics, kept in the [`obs`] observability
/// layer (the former private atomics, absorbed so every binary's report
/// shares one substrate).
static OPT_CALLS: obs::Counter = obs::Counter::new("netlist.opt.calls");
static OPT_GATES_IN: obs::Counter = obs::Counter::new("netlist.opt.gates_in");
static OPT_GATES_OUT: obs::Counter = obs::Counter::new("netlist.opt.gates_out");
static OPT_REWRITES: obs::Counter = obs::Counter::new("netlist.opt.rewrites");
static OPT_NS: obs::Counter = obs::Counter::new("netlist.opt.ns");

/// Cumulative statistics over every [`optimize`] call in this process,
/// across all threads — a snapshot of the `netlist.opt.*` [`obs`]
/// counters (zeros while `obs::set_enabled(false)` suppresses
/// collection). `repro_all --json` reports this as its `optimizer`
/// section alongside the unified obs `report`.
pub fn cumulative_stats() -> OptCumulative {
    OptCumulative {
        calls: OPT_CALLS.get(),
        gates_in: OPT_GATES_IN.get(),
        gates_out: OPT_GATES_OUT.get(),
        rewrites: OPT_REWRITES.get(),
        seconds: OPT_NS.get() as f64 * 1e-9,
    }
}

/// Optimizes `module` to a fixpoint and returns the result.
///
/// Applies, until no rewrite is applicable: constant folding and boolean
/// identities (including double-inverter and inverted-pair rules), CSE over
/// structurally identical gates, and dead-gate elimination seeded from the
/// output ports.
///
/// ```
/// use netlist::builder::NetlistBuilder;
/// use netlist::ir::Signal;
/// use netlist::opt::optimize;
///
/// let mut b = NetlistBuilder::new("t");
/// let x = b.input("x", 1);
/// let y = b.and(x[0], Signal::ONE); // folds to x
/// let z = b.or(y, Signal::ZERO);    // folds to x
/// b.output("z", &[z]);
/// let m = optimize(&b.finish());
/// assert_eq!(m.gate_count(), 0);
/// ```
pub fn optimize(module: &Module) -> Module {
    if !cache::enabled() {
        return optimize_with_stats(module).0;
    }
    // Keyed by the pre-optimization structural hash: a warm run returns
    // the stored optimized module without running the engine at all.
    let key = cache::key_for("netlist.opt", module);
    cache::get_or_compute("netlist.opt", key, || optimize_with_stats(module).0)
}

/// Like [`optimize`], additionally returning per-call [`OptStats`].
pub fn optimize_with_stats(module: &Module) -> (Module, OptStats) {
    let _span = obs::span("netlist.optimize");
    let start = Instant::now();
    let mut engine = Engine::new(module);
    engine.run();
    let (m, dead) = engine.finish(module);
    let stats = OptStats {
        gates_in: module.gate_count(),
        gates_out: m.gate_count(),
        aliased: engine.aliased,
        rewritten: engine.rewritten,
        merged: engine.merged,
        dead,
        seconds: start.elapsed().as_secs_f64(),
    };
    OPT_CALLS.incr();
    OPT_GATES_IN.add(stats.gates_in as u64);
    OPT_GATES_OUT.add(stats.gates_out as u64);
    OPT_REWRITES.add(stats.rewrites() as u64);
    OPT_NS.add((stats.seconds * 1e9) as u64);
    debug_assert!(m.validate().is_ok(), "optimizer produced invalid module");
    #[cfg(debug_assertions)]
    assert_fixpoint(&m);
    (m, stats)
}

enum Action {
    Keep,
    /// Replace the gate's output everywhere with this signal; delete gate.
    Alias(Signal),
    /// Rewrite the gate in place.
    Rewrite(CellKind, Vec<Signal>),
    /// Rewrite into `kind(inv(extra), other)`: used for mux collapses that
    /// need one inverted operand.
    RewriteInverted(CellKind, Signal, Signal),
}

/// Canonical ordering key for strash input normalization.
fn sig_key(s: Signal) -> (u8, u64) {
    match s {
        Signal::Const(false) => (0, 0),
        Signal::Const(true) => (0, 1),
        Signal::Net(n) => (1, n.index() as u64),
    }
}

/// Structural hash key of a gate: kind, normalized inputs, DFF init.
type CseKey = (CellKind, Vec<(u8, u64)>, bool);

/// Sentinel for "net has no gate driver" in the dense driver index.
const NO_GATE: u32 = u32::MAX;

struct Engine {
    gates: Vec<Gate>,
    alive: Vec<bool>,
    /// Union-find: `subst[net] = Some(sig)` means the net was replaced.
    /// Roots have `None`; [`Engine::resolve`] path-compresses.
    subst: Vec<Option<Signal>>,
    /// Net -> index of the driving gate (`NO_GATE` for inputs/ROM data).
    driver: Vec<u32>,
    /// Net -> gate indices reading it. May hold stale or duplicate
    /// entries; `alive` and `in_queue` filter them on wake-up.
    readers: Vec<Vec<u32>>,
    /// Structural-hash table: key -> canonical gate index. Entries always
    /// point at live gates whose current key matches (`key_of` mirror).
    strash: HashMap<CseKey, u32>,
    key_of: Vec<Option<CseKey>>,
    queue: VecDeque<u32>,
    in_queue: Vec<bool>,
    net_count: u32,
    aliased: usize,
    rewritten: usize,
    merged: usize,
}

impl Engine {
    fn new(module: &Module) -> Self {
        let gates = module.gates.clone();
        let n_nets = module.net_count();
        let n_gates = gates.len();
        let mut driver = vec![NO_GATE; n_nets];
        for (gi, g) in gates.iter().enumerate() {
            driver[g.output.index()] = gi as u32;
        }
        let mut queue = VecDeque::with_capacity(n_gates);
        queue.extend(0..n_gates as u32);
        Engine {
            alive: vec![true; n_gates],
            subst: vec![None; n_nets],
            driver,
            readers: gate_reader_index(module),
            strash: HashMap::with_capacity(n_gates),
            key_of: vec![None; n_gates],
            queue,
            in_queue: vec![true; n_gates],
            net_count: module.net_count() as u32,
            gates,
            aliased: 0,
            rewritten: 0,
            merged: 0,
        }
    }

    /// Follows the substitution chain to its root, compressing the path.
    fn resolve(&mut self, s: Signal) -> Signal {
        let Signal::Net(start) = s else { return s };
        let Some(mut root) = self.subst[start.index()] else {
            return s;
        };
        while let Signal::Net(n) = root {
            match self.subst[n.index()] {
                Some(next) => root = next,
                None => break,
            }
        }
        let mut cur = start;
        while let Some(Signal::Net(next)) = self.subst[cur.index()] {
            if Signal::Net(next) == root {
                break;
            }
            self.subst[cur.index()] = Some(root);
            cur = next;
        }
        root
    }

    /// If `s` is driven by a live inverter, its (resolved) input.
    fn inv_input(&mut self, s: Signal) -> Option<Signal> {
        let Signal::Net(n) = s else { return None };
        let gi = self.driver[n.index()];
        if gi == NO_GATE {
            return None;
        }
        let g = &self.gates[gi as usize];
        if g.kind != CellKind::Inv || !self.alive[gi as usize] {
            return None;
        }
        let inp = g.inputs[0];
        Some(self.resolve(inp))
    }

    /// True when one operand is the inversion of the other.
    fn complementary(&mut self, a: Signal, b: Signal) -> bool {
        self.inv_input(a) == Some(b) || self.inv_input(b) == Some(a)
    }

    /// Resolved operands of the `kind` gate driving `s`, if any.
    fn binop_operands(&mut self, s: Signal, kind: CellKind) -> Option<(Signal, Signal)> {
        let Signal::Net(n) = s else { return None };
        let gi = self.driver[n.index()];
        if gi == NO_GATE {
            return None;
        }
        let g = &self.gates[gi as usize];
        if g.kind != kind || !self.alive[gi as usize] {
            return None;
        }
        let (x, y) = (g.inputs[0], g.inputs[1]);
        Some((self.resolve(x), self.resolve(y)))
    }

    /// Absorption: `a & (a | x) = a`, `a | (a & x) = a`.
    /// Redundancy: `a | (!a & x) = a | x`, `a & (!a | x) = a & x`.
    fn absorb(&mut self, kind: CellKind, a: Signal, b: Signal) -> Option<Action> {
        let inner = match kind {
            CellKind::And2 => CellKind::Or2,
            CellKind::Or2 => CellKind::And2,
            _ => return None,
        };
        // Check both operand orders: one side plain, the other a compound.
        for (plain, compound) in [(a, b), (b, a)] {
            let Some((x, y)) = self.binop_operands(compound, inner) else {
                continue;
            };
            // Absorption: plain appears inside the dual-op compound.
            if x == plain || y == plain {
                return Some(Action::Alias(plain));
            }
            // Redundancy: `plain OP (!plain DUAL x)` rewrites to
            // `plain OP x`.
            let other = if self.complementary(x, plain) {
                Some(y)
            } else if self.complementary(y, plain) {
                Some(x)
            } else {
                None
            };
            if let Some(x_only) = other {
                return Some(Action::Rewrite(kind, vec![plain, x_only]));
            }
        }
        None
    }

    /// The rewrite applicable to gate `gi` (inputs already canonical).
    fn action_for(&mut self, gi: usize) -> Action {
        use CellKind::*;
        use Signal::Const as C;
        let kind = self.gates[gi].kind;
        if matches!(kind, And2 | Or2) {
            let (a, b) = (self.gates[gi].inputs[0], self.gates[gi].inputs[1]);
            if let Some(action) = self.absorb(kind, a, b) {
                return action;
            }
        }
        let i0 = self.gates[gi].inputs.first().copied();
        let i1 = self.gates[gi].inputs.get(1).copied();
        let i2 = self.gates[gi].inputs.get(2).copied();
        match kind {
            Inv => match i0.unwrap() {
                C(v) => Action::Alias(C(!v)),
                s => match self.inv_input(s) {
                    Some(orig) => Action::Alias(orig), // !!x = x
                    None => Action::Keep,
                },
            },
            Buf => Action::Alias(i0.unwrap()),
            And2 => match (i0.unwrap(), i1.unwrap()) {
                (C(false), _) | (_, C(false)) => Action::Alias(Signal::ZERO),
                (C(true), x) | (x, C(true)) => Action::Alias(x),
                (a, b) if a == b => Action::Alias(a),
                (a, b) if self.complementary(a, b) => Action::Alias(Signal::ZERO),
                _ => Action::Keep,
            },
            Or2 => match (i0.unwrap(), i1.unwrap()) {
                (C(true), _) | (_, C(true)) => Action::Alias(Signal::ONE),
                (C(false), x) | (x, C(false)) => Action::Alias(x),
                (a, b) if a == b => Action::Alias(a),
                (a, b) if self.complementary(a, b) => Action::Alias(Signal::ONE),
                _ => Action::Keep,
            },
            Nand2 => match (i0.unwrap(), i1.unwrap()) {
                (C(false), _) | (_, C(false)) => Action::Alias(Signal::ONE),
                (C(true), x) | (x, C(true)) => Action::Rewrite(Inv, vec![x]),
                (a, b) if a == b => Action::Rewrite(Inv, vec![a]),
                (a, b) if self.complementary(a, b) => Action::Alias(Signal::ONE),
                _ => Action::Keep,
            },
            Nor2 => match (i0.unwrap(), i1.unwrap()) {
                (C(true), _) | (_, C(true)) => Action::Alias(Signal::ZERO),
                (C(false), x) | (x, C(false)) => Action::Rewrite(Inv, vec![x]),
                (a, b) if a == b => Action::Rewrite(Inv, vec![a]),
                (a, b) if self.complementary(a, b) => Action::Alias(Signal::ZERO),
                _ => Action::Keep,
            },
            Xor2 => match (i0.unwrap(), i1.unwrap()) {
                (C(x), C(y)) => Action::Alias(C(x ^ y)),
                (C(false), x) | (x, C(false)) => Action::Alias(x),
                (C(true), x) | (x, C(true)) => Action::Rewrite(Inv, vec![x]),
                (a, b) if a == b => Action::Alias(Signal::ZERO),
                (a, b) if self.complementary(a, b) => Action::Alias(Signal::ONE),
                _ => Action::Keep,
            },
            Xnor2 => match (i0.unwrap(), i1.unwrap()) {
                (C(x), C(y)) => Action::Alias(C(!(x ^ y))),
                (C(true), x) | (x, C(true)) => Action::Alias(x),
                (C(false), x) | (x, C(false)) => Action::Rewrite(Inv, vec![x]),
                (a, b) if a == b => Action::Alias(Signal::ONE),
                (a, b) if self.complementary(a, b) => Action::Alias(Signal::ZERO),
                _ => Action::Keep,
            },
            Mux2 => {
                let (s, a, b) = (i0.unwrap(), i1.unwrap(), i2.unwrap());
                match (s, a, b) {
                    (C(false), a, _) => Action::Alias(a),
                    (C(true), _, b) => Action::Alias(b),
                    (_, a, b) if a == b => Action::Alias(a),
                    (s, C(false), C(true)) => Action::Alias(s),
                    (s, C(true), C(false)) => Action::Rewrite(Inv, vec![s]),
                    (s, a, C(true)) => Action::Rewrite(Or2, vec![s, a]),
                    (s, C(false), b) => Action::Rewrite(And2, vec![s, b]),
                    // mux(s, a, 0) = !s & a ; mux(s, 1, b) = !s | b
                    (s, a, C(false)) => Action::RewriteInverted(And2, s, a),
                    (s, C(true), b) => Action::RewriteInverted(Or2, s, b),
                    _ => Action::Keep,
                }
            }
            Dff => Action::Keep,
            RomBit | RomDot => Action::Keep,
        }
    }

    fn make_key(&self, gi: usize) -> CseKey {
        let gate = &self.gates[gi];
        let commutative = matches!(
            gate.kind,
            CellKind::And2
                | CellKind::Or2
                | CellKind::Nand2
                | CellKind::Nor2
                | CellKind::Xor2
                | CellKind::Xnor2
        );
        let mut key_inputs: Vec<(u8, u64)> = gate.inputs.iter().map(|&s| sig_key(s)).collect();
        if commutative {
            key_inputs.sort_unstable();
        }
        (gate.kind, key_inputs, gate.init)
    }

    fn enqueue(&mut self, gi: u32) {
        let i = gi as usize;
        if self.alive[i] && !self.in_queue[i] {
            self.in_queue[i] = true;
            self.queue.push_back(gi);
        }
    }

    /// Drops the gate's strash entry (inputs changed or gate retired).
    fn unkey(&mut self, gi: usize) {
        if let Some(key) = self.key_of[gi].take() {
            if self.strash.get(&key) == Some(&(gi as u32)) {
                self.strash.remove(&key);
            }
        }
    }

    /// Retires gate `gi`, substituting its output with `target`
    /// everywhere, and wakes the readers of the dead net.
    fn retire(&mut self, gi: usize, target: Signal) {
        self.unkey(gi);
        self.alive[gi] = false;
        let out = self.gates[gi].output;
        debug_assert!(
            target != Signal::Net(out),
            "self-alias would create a substitution cycle"
        );
        self.driver[out.index()] = NO_GATE;
        self.subst[out.index()] = Some(target);
        // The net is dead: its reader list is never needed again (readers
        // re-register on the root when they canonicalize), so drain it.
        for gi in std::mem::take(&mut self.readers[out.index()]) {
            self.enqueue(gi);
        }
    }

    /// Wakes the readers of a live net whose driver was rewritten (rules
    /// at the readers inspect this gate's kind and operands).
    fn wake_readers(&mut self, net: NetId) {
        let mut i = 0;
        while i < self.readers[net.index()].len() {
            let gi = self.readers[net.index()][i];
            self.enqueue(gi);
            i += 1;
        }
    }

    fn fresh_net(&mut self) -> NetId {
        let n = NetId(self.net_count);
        self.net_count += 1;
        self.subst.push(None);
        self.driver.push(NO_GATE);
        self.readers.push(Vec::new());
        n
    }

    fn add_gate(&mut self, gate: Gate) {
        let gi = self.gates.len() as u32;
        self.driver[gate.output.index()] = gi;
        for s in &gate.inputs {
            if let Signal::Net(n) = s {
                self.readers[n.index()].push(gi);
            }
        }
        self.gates.push(gate);
        self.alive.push(true);
        self.key_of.push(None);
        self.in_queue.push(true);
        self.queue.push_back(gi);
    }

    /// Rewrites gate `gi` in place and re-enqueues it and its readers.
    fn rewrite_in_place(&mut self, gi: usize, kind: CellKind, inputs: Vec<Signal>) {
        self.unkey(gi);
        for s in &inputs {
            // Redundancy rewrites pull in operands the gate never read
            // before (they come from the compound's driver), so register
            // the gate as a reader of every new input.
            if let Signal::Net(n) = s {
                self.readers[n.index()].push(gi as u32);
            }
        }
        let out = self.gates[gi].output;
        let g = &mut self.gates[gi];
        g.kind = kind;
        g.inputs = inputs;
        g.init = false;
        self.rewritten += 1;
        self.enqueue(gi as u32);
        self.wake_readers(out);
    }

    /// Inserts the gate's structural key; merges into a live twin if one
    /// already owns the key (hash-consing CSE).
    fn hash_cons(&mut self, gi: usize) {
        let key = self.make_key(gi);
        match self.strash.get(&key) {
            Some(&canon) if canon as usize != gi && self.alive[canon as usize] => {
                let twin = Signal::Net(self.gates[canon as usize].output);
                self.retire(gi, twin);
                self.merged += 1;
            }
            _ => {
                self.strash.insert(key.clone(), gi as u32);
                self.key_of[gi] = Some(key);
            }
        }
    }

    /// Canonicalizes the gate's stored inputs through the union-find,
    /// registering it as a reader of any new root nets. When an operand
    /// actually changes, the gate's own readers are woken too: absorption
    /// and inverted-pair rules at a reader look *through* this gate at
    /// its operands, so a new operand set can newly enable them.
    fn canonicalize_inputs(&mut self, gi: usize) {
        let n = self.gates[gi].inputs.len();
        let mut changed = false;
        for pin in 0..n {
            let s = self.gates[gi].inputs[pin];
            let r = self.resolve(s);
            if r != s {
                self.gates[gi].inputs[pin] = r;
                changed = true;
                if let Signal::Net(net) = r {
                    self.readers[net.index()].push(gi as u32);
                }
            }
        }
        if changed {
            self.unkey(gi);
            let out = self.gates[gi].output;
            self.wake_readers(out);
        }
    }

    /// Drains the worklist: each gate is canonicalized, matched against
    /// the rule set, and its fanout re-enqueued when it changes.
    fn run(&mut self) {
        while let Some(gi) = self.queue.pop_front() {
            let gi = gi as usize;
            self.in_queue[gi] = false;
            if !self.alive[gi] {
                continue;
            }
            self.canonicalize_inputs(gi);
            match self.action_for(gi) {
                Action::Keep => self.hash_cons(gi),
                Action::Alias(target) => {
                    let target = self.resolve(target);
                    self.retire(gi, target);
                    self.aliased += 1;
                }
                Action::Rewrite(kind, inputs) => self.rewrite_in_place(gi, kind, inputs),
                Action::RewriteInverted(kind, to_invert, other) => {
                    let region = self.gates[gi].region;
                    let helper = self.fresh_net();
                    self.add_gate(Gate {
                        kind: CellKind::Inv,
                        inputs: vec![to_invert],
                        output: helper,
                        init: false,
                        region,
                    });
                    self.rewrite_in_place(gi, kind, vec![Signal::Net(helper), other]);
                }
            }
        }
    }

    /// Builds the output module: live gates (inputs already canonical),
    /// ROM addresses and output ports resolved, then one dead-code sweep.
    /// Returns the module and the number of gates DCE removed.
    fn finish(&mut self, original: &Module) -> (Module, usize) {
        let mut m = Module::new(original.name.clone());
        m.inputs = original.inputs.clone();
        m.regions = original.regions.clone();
        m.net_count = self.net_count;
        m.outputs = original.outputs.clone();
        for port in &mut m.outputs {
            for s in &mut port.bits {
                *s = self.resolve(*s);
            }
        }
        m.roms = original.roms.clone();
        for rom in &mut m.roms {
            for s in &mut rom.addr {
                *s = self.resolve(*s);
            }
        }
        let mut alive = std::mem::take(&mut self.alive).into_iter();
        let mut gates = std::mem::take(&mut self.gates);
        gates.retain(|_| alive.next().unwrap());
        m.gates = gates;
        let before = m.gate_count();
        dce(&mut m);
        let dead = before - m.gate_count();
        (m, dead)
    }
}

/// Dead-code elimination: liveness over nets, seeded from output ports,
/// traced through gate inputs and ROM address pins.
fn dce(m: &mut Module) {
    let mut live = vec![false; m.net_count as usize];
    let mut work: Vec<NetId> = Vec::new();
    let mark = |s: Signal, live: &mut Vec<bool>, work: &mut Vec<NetId>| {
        if let Signal::Net(n) = s {
            if !live[n.index()] {
                live[n.index()] = true;
                work.push(n);
            }
        }
    };
    for port in &m.outputs {
        for &s in &port.bits {
            mark(s, &mut live, &mut work);
        }
    }
    let mut gate_of: HashMap<NetId, usize> = HashMap::with_capacity(m.gates.len());
    for (i, g) in m.gates.iter().enumerate() {
        gate_of.insert(g.output, i);
    }
    let mut rom_of: HashMap<NetId, usize> = HashMap::new();
    for (i, r) in m.roms.iter().enumerate() {
        for net in &r.data {
            rom_of.insert(*net, i);
        }
    }
    while let Some(n) = work.pop() {
        if let Some(&gi) = gate_of.get(&n) {
            for &s in &m.gates[gi].inputs.clone() {
                mark(s, &mut live, &mut work);
            }
        } else if let Some(&ri) = rom_of.get(&n) {
            for &s in &m.roms[ri].addr.clone() {
                mark(s, &mut live, &mut work);
            }
        }
    }
    m.gates.retain(|g| live[g.output.index()]);
    m.roms.retain(|r| r.data.iter().any(|n| live[n.index()]));
}

/// Debug-build audit that the worklist really drained to a fixpoint: on
/// the finished module (where every net is its own root) no rewrite rule
/// may match any gate, and no two gates may share a structural key.
#[cfg(debug_assertions)]
fn assert_fixpoint(m: &Module) {
    let mut engine = Engine::new(m);
    let mut seen: HashMap<CseKey, usize> = HashMap::with_capacity(m.gate_count());
    for gi in 0..engine.gates.len() {
        assert!(
            matches!(engine.action_for(gi), Action::Keep),
            "gate {gi} ({:?}) still has an applicable rewrite after optimize",
            engine.gates[gi].kind
        );
        let key = engine.make_key(gi);
        assert!(
            seen.insert(key, gi).is_none(),
            "gate {gi} ({:?}) has an unmerged structural twin after optimize",
            engine.gates[gi].kind
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::comb::unsigned_le;
    use crate::sim::Simulator;
    use pdk::Technology;

    /// Optimized and original modules must agree on every input we try.
    fn assert_equivalent_exhaustive(original: &Module, optimized: &Module, width: usize) {
        let mut s0 = Simulator::new(original);
        let mut s1 = Simulator::new(optimized);
        let names: Vec<String> = original.inputs.iter().map(|p| p.name.clone()).collect();
        assert_eq!(names.len(), 1, "helper supports single-input modules");
        for v in 0..(1u64 << width) {
            s0.set(&names[0], v);
            s1.set(&names[0], v);
            s0.settle();
            s1.settle();
            for port in &original.outputs {
                assert_eq!(s0.get(&port.name), s1.get(&port.name), "input {v}");
            }
        }
    }

    #[test]
    fn constant_comparator_shrinks_but_stays_correct() {
        // The bespoke decision-tree node: x <= 102 with 8-bit x.
        let mut b = NetlistBuilder::new("node");
        let x = b.input("x", 8);
        let tau = b.const_word(102, 8);
        let le = unsigned_le(&mut b, &x, &tau);
        b.output("le", &[le]);
        let original = b.finish();
        let optimized = optimize(&original);
        assert!(
            optimized.gate_count() * 2 < original.gate_count(),
            "expected >2x shrink, got {} -> {}",
            original.gate_count(),
            optimized.gate_count()
        );
        assert_equivalent_exhaustive(&original, &optimized, 8);
    }

    #[test]
    fn double_inverters_cancel() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x", 1);
        let a = b.not(x[0]);
        let bb = b.not(a);
        let c = b.not(bb);
        let d = b.not(c);
        b.output("o", &[d]);
        let m = optimize(&b.finish());
        assert_eq!(m.gate_count(), 0);
        assert_eq!(
            m.outputs[0].bits[0],
            Signal::Net(m.inputs[0].bits[0].net().unwrap())
        );
    }

    #[test]
    fn deep_inverter_ladder_reaches_true_fixpoint() {
        // A rewrite chain far deeper than the old engine's 64-round cap:
        // 300 chained inverters must collapse to wire (even length) in one
        // worklist drain. The old fixpoint loop silently stopped early on
        // chains like this; the worklist engine terminates naturally and
        // the debug fixpoint audit (assert_fixpoint) proves nothing is
        // left applicable.
        let mut b = NetlistBuilder::new("ladder");
        let x = b.input("x", 1);
        let mut s = x[0];
        for _ in 0..300 {
            s = b.not(s);
        }
        b.output("o", &[s]);
        let m = optimize(&b.finish());
        assert_eq!(m.gate_count(), 0, "even inverter ladder must vanish");
        assert_eq!(
            m.outputs[0].bits[0], m.inputs[0].bits[0],
            "output must collapse onto the input net"
        );
        // Odd-length ladder: exactly one inverter survives.
        let mut b = NetlistBuilder::new("ladder_odd");
        let x = b.input("x", 1);
        let mut s = x[0];
        for _ in 0..301 {
            s = b.not(s);
        }
        b.output("o", &[s]);
        let m = optimize(&b.finish());
        assert_eq!(m.gate_count(), 1);
        assert_eq!(m.gates[0].kind, CellKind::Inv);
    }

    #[test]
    fn inverted_pairs_collapse() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x", 1);
        let nx = b.not(x[0]);
        let z = b.and(x[0], nx);
        let o = b.or(x[0], nx);
        b.output("z", &[z]);
        b.output("o", &[o]);
        let m = optimize(&b.finish());
        assert_eq!(m.gate_count(), 0);
        assert_eq!(m.outputs[0].bits[0], Signal::ZERO);
        assert_eq!(m.outputs[1].bits[0], Signal::ONE);
    }

    #[test]
    fn cse_merges_structural_duplicates() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x", 2);
        let a1 = b.and(x[0], x[1]);
        let a2 = b.and(x[1], x[0]); // commutative duplicate
        let o = b.xor(a1, a2); // x ^ x = 0 after CSE
        b.output("o", &[o]);
        let m = optimize(&b.finish());
        assert_eq!(m.gate_count(), 0);
        assert_eq!(m.outputs[0].bits[0], Signal::ZERO);
    }

    #[test]
    fn dce_removes_unobservable_logic() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x", 2);
        let _dead = b.xor(x[0], x[1]);
        let live = b.and(x[0], x[1]);
        b.output("o", &[live]);
        let m = optimize(&b.finish());
        assert_eq!(m.gate_count(), 1);
    }

    #[test]
    fn mux_collapses() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x", 2);
        let s = x[0];
        let d = x[1];
        let m01 = b.mux(s, Signal::ZERO, Signal::ONE); // = s
        let m10 = b.mux(s, Signal::ONE, Signal::ZERO); // = !s
        let ma0 = b.mux(s, d, Signal::ZERO); // = !s & d
        let ma1 = b.mux(s, d, Signal::ONE); // = s | d
        b.output("o", &[m01, m10, ma0, ma1]);
        let original = b.finish();
        let optimized = optimize(&original);
        assert!(optimized.gates_of(CellKind::Mux2).count() == 0);
        assert_equivalent_exhaustive(&original, &optimized, 2);
    }

    #[test]
    fn constant_free_logic_is_untouched() {
        // No constants, no duplicates, everything observable: the optimizer
        // must leave the circuit alone.
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x", 3);
        let (s, c) = crate::arith::full_adder(&mut b, x[0], x[1], x[2]);
        b.output("s", &[s]);
        b.output("c", &[c]);
        let original = b.finish();
        let optimized = optimize(&original);
        assert_eq!(original.gate_count(), optimized.gate_count());
    }

    #[test]
    fn variable_comparator_only_loses_its_seed_carry() {
        // A comparator over two register-fed (variable) operands keeps its
        // per-bit structure; only the constant-zero seed carry of the first
        // ripple stage folds. This is the conventional-architecture case.
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x", 8);
        let (lo, hi) = x.split_at(4);
        let le = unsigned_le(&mut b, lo, hi);
        b.output("le", &[le]);
        let original = b.finish();
        let optimized = optimize(&original);
        assert!(optimized.gate_count() >= original.gate_count() - 4);
        assert_equivalent_exhaustive(&original, &optimized, 8);
    }

    #[test]
    fn optimized_ppa_improves_for_bespoke_node() {
        use crate::analysis::analyze;
        let lib = pdk::CellLibrary::for_technology(Technology::Egt);
        let mut b = NetlistBuilder::new("node");
        let x = b.input("x", 8);
        let tau = b.const_word(77, 8);
        let le = unsigned_le(&mut b, &x, &tau);
        b.output("le", &[le]);
        let original = b.finish();
        let optimized = optimize(&original);
        let p0 = analyze(&original, &lib);
        let p1 = analyze(&optimized, &lib);
        assert!(p1.area < p0.area);
        assert!(p1.power < p0.power);
        assert!(p1.delay <= p0.delay);
    }

    #[test]
    fn stats_account_for_every_gate() {
        let mut b = NetlistBuilder::new("node");
        let x = b.input("x", 8);
        let tau = b.const_word(102, 8);
        let le = unsigned_le(&mut b, &x, &tau);
        b.output("le", &[le]);
        let original = b.finish();
        let before = cumulative_stats();
        let (optimized, stats) = optimize_with_stats(&original);
        assert_eq!(stats.gates_in, original.gate_count());
        assert_eq!(stats.gates_out, optimized.gate_count());
        assert!(stats.rewrites() > 0, "bespoke node must fold");
        assert!(stats.seconds >= 0.0);
        // Aliased + merged + dead gates all left the module; rewrites in
        // place and helper inverters stay. The counters must cover at
        // least the net shrink.
        assert!(stats.aliased + stats.merged + stats.dead >= stats.gates_in - stats.gates_out);
        let after = cumulative_stats();
        assert!(after.calls > before.calls);
        assert!(after.gates_in >= before.gates_in + stats.gates_in as u64);
    }
}

#[cfg(test)]
mod absorption_tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::comb::unsigned_le;
    use crate::sim::Simulator;

    #[test]
    fn absorption_folds_a_and_a_or_b() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x", 2);
        let or = b.or(x[0], x[1]);
        let and = b.and(x[0], or); // a & (a | b) = a
        b.output("o", &[and]);
        let m = optimize(&b.finish());
        assert_eq!(m.gate_count(), 0);
        assert_eq!(m.outputs[0].bits[0], m.inputs[0].bits[0]);
    }

    #[test]
    fn absorption_folds_a_or_a_and_b() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x", 2);
        let and = b.and(x[0], x[1]);
        let or = b.or(and, x[0]); // (a & b) | a = a
        b.output("o", &[or]);
        let m = optimize(&b.finish());
        assert_eq!(m.gate_count(), 0);
    }

    #[test]
    fn redundancy_folds_a_or_nota_and_b() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x", 2);
        let na = b.not(x[0]);
        let and = b.and(na, x[1]);
        let or = b.or(x[0], and); // a | (!a & b) = a | b
        b.output("o", &[or]);
        let original = b.finish();
        let optimized = optimize(&original);
        // One OR gate should remain (the inverter and AND die).
        assert_eq!(optimized.gate_count(), 1);
        assert_eq!(optimized.gates[0].kind, CellKind::Or2);
        let mut s0 = Simulator::new(&original);
        let mut s1 = Simulator::new(&optimized);
        for v in 0..4u64 {
            s0.set("x", v);
            s1.set("x", v);
            s0.settle();
            s1.settle();
            assert_eq!(s0.get("o"), s1.get("o"), "v={v}");
        }
    }

    #[test]
    fn redundancy_folds_a_and_nota_or_b() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x", 2);
        let na = b.not(x[0]);
        let or = b.or(na, x[1]);
        let and = b.and(x[0], or); // a & (!a | b) = a & b
        b.output("o", &[and]);
        let original = b.finish();
        let optimized = optimize(&original);
        assert_eq!(optimized.gate_count(), 1);
        assert_eq!(optimized.gates[0].kind, CellKind::And2);
        let mut s0 = Simulator::new(&original);
        let mut s1 = Simulator::new(&optimized);
        for v in 0..4u64 {
            s0.set("x", v);
            s1.set("x", v);
            s0.settle();
            s1.settle();
            assert_eq!(s0.get("o"), s1.get("o"), "v={v}");
        }
    }

    #[test]
    fn constant_comparator_shrinks_further_with_redundancy() {
        // The bespoke tree node again: the τ-bit-0 per-bit logic is
        // exactly the a | (!a & p) shape the redundancy rule targets.
        let mut b = NetlistBuilder::new("node");
        let x = b.input("x", 8);
        let tau = b.const_word(0b01010101, 8);
        let le = unsigned_le(&mut b, &x, &tau);
        b.output("le", &[le]);
        let original = b.finish();
        let optimized = optimize(&original);
        // With 4 zero bits, the redundancy rule kills one inverter + one
        // AND per zero bit relative to plain constant folding: expect well
        // under 2.5 gates per bit.
        assert!(
            optimized.gate_count() <= 20,
            "expected tight folding, got {} gates",
            optimized.gate_count()
        );
        // Equivalence on every input.
        let mut s0 = Simulator::new(&original);
        let mut s1 = Simulator::new(&optimized);
        for v in 0..256u64 {
            s0.set("x", v);
            s1.set("x", v);
            s0.settle();
            s1.settle();
            assert_eq!(s0.get("le"), s1.get("le"), "v={v}");
        }
    }
}
