//! Logic optimization: constant folding, identity simplification, common
//! sub-expression elimination and dead-gate removal.
//!
//! This pass is what turns a *bespoke* netlist (trained thresholds and
//! coefficients hard-wired as [`Signal::Const`] inputs) into the radically
//! smaller circuit the paper reports: "now that the actual trained
//! threshold values are hardwired, the comparators have only one variable
//! input which greatly simplifies overall design" (§IV-A). Conventional
//! architectures pass through nearly unchanged (their operands arrive from
//! registers, so nothing folds), which is exactly the asymmetry the
//! bespoke-vs-conventional comparison measures.

use std::collections::HashMap;

use pdk::CellKind;

use crate::ir::{Gate, Module, NetId, Signal};

/// Optimizes `module` to a fixpoint and returns the result.
///
/// Applies, in a loop until no change: constant folding and boolean
/// identities (including double-inverter and inverted-pair rules), CSE over
/// structurally identical gates, and dead-gate elimination seeded from the
/// output ports.
///
/// ```
/// use netlist::builder::NetlistBuilder;
/// use netlist::ir::Signal;
/// use netlist::opt::optimize;
///
/// let mut b = NetlistBuilder::new("t");
/// let x = b.input("x", 1);
/// let y = b.and(x[0], Signal::ONE); // folds to x
/// let z = b.or(y, Signal::ZERO);    // folds to x
/// b.output("z", &[z]);
/// let m = optimize(&b.finish());
/// assert_eq!(m.gate_count(), 0);
/// ```
pub fn optimize(module: &Module) -> Module {
    let mut m = module.clone();
    for _round in 0..64 {
        let mut changed = false;
        changed |= simplify_pass(&mut m);
        changed |= cse_pass(&mut m);
        changed |= dce_pass(&mut m);
        if !changed {
            break;
        }
    }
    debug_assert!(m.validate().is_ok(), "optimizer produced invalid module");
    m
}

/// Follows a substitution chain to its final signal.
fn resolve(subst: &HashMap<NetId, Signal>, mut sig: Signal) -> Signal {
    while let Signal::Net(n) = sig {
        match subst.get(&n) {
            Some(&next) => sig = next,
            None => break,
        }
    }
    sig
}

/// Applies `subst` to every signal reference in the module.
fn apply_subst(m: &mut Module, subst: &HashMap<NetId, Signal>) {
    if subst.is_empty() {
        return;
    }
    for gate in &mut m.gates {
        for s in &mut gate.inputs {
            *s = resolve(subst, *s);
        }
    }
    for rom in &mut m.roms {
        for s in &mut rom.addr {
            *s = resolve(subst, *s);
        }
    }
    for port in &mut m.outputs {
        for s in &mut port.bits {
            *s = resolve(subst, *s);
        }
    }
}

enum Action {
    Keep,
    /// Replace the gate's output everywhere with this signal; delete gate.
    Alias(Signal),
    /// Rewrite the gate in place.
    Rewrite(CellKind, Vec<Signal>),
    /// Rewrite into `kind(inv(extra), other)`: used for mux collapses that
    /// need one inverted operand.
    RewriteInverted(CellKind, Signal, Signal),
}

fn simplify_pass(m: &mut Module) -> bool {
    // Map: net -> input of the inverter driving it (for !!x and x&!x rules).
    let mut inv_of: HashMap<NetId, Signal> = HashMap::new();
    // Maps: net -> operands of the AND/OR driving it (absorption and
    // redundancy rules).
    let mut and_of: HashMap<NetId, (Signal, Signal)> = HashMap::new();
    let mut or_of: HashMap<NetId, (Signal, Signal)> = HashMap::new();
    for gate in &m.gates {
        match gate.kind {
            CellKind::Inv => {
                inv_of.insert(gate.output, gate.inputs[0]);
            }
            CellKind::And2 => {
                and_of.insert(gate.output, (gate.inputs[0], gate.inputs[1]));
            }
            CellKind::Or2 => {
                or_of.insert(gate.output, (gate.inputs[0], gate.inputs[1]));
            }
            _ => {}
        }
    }
    let complementary = |a: Signal, b: Signal| -> bool {
        match (a, b) {
            (Signal::Net(na), _) if inv_of.get(&na) == Some(&b) => true,
            (_, Signal::Net(nb)) if inv_of.get(&nb) == Some(&a) => true,
            _ => false,
        }
    };
    // Absorption: a & (a | x) = a, a | (a & x) = a.
    // Redundancy: a | (!a & x) = a | x, a & (!a | x) = a & x.
    // Returns the simplified replacement for `op(a, b)`, if any.
    let absorb = |kind: CellKind, a: Signal, b: Signal| -> Option<Action> {
        let (inner_map, _other) = match kind {
            CellKind::And2 => (&or_of, &and_of),
            CellKind::Or2 => (&and_of, &or_of),
            _ => return None,
        };
        // Check both operand orders: one side plain, the other a compound.
        for (plain, compound) in [(a, b), (b, a)] {
            let Signal::Net(cn) = compound else { continue };
            let Some(&(x, y)) = inner_map.get(&cn) else {
                continue;
            };
            // Absorption: plain appears inside the dual-op compound.
            if x == plain || y == plain {
                return Some(Action::Alias(plain));
            }
            // Redundancy: !plain appears inside the same-op compound on the
            // dual map is not applicable here; handle `plain OP (!plain
            // DUAL x)` by rewriting to `plain OP x`.
            let other_operand = if complementary(x, plain) {
                Some(y)
            } else if complementary(y, plain) {
                Some(x)
            } else {
                None
            };
            if let Some(x_only) = other_operand {
                return Some(Action::Rewrite(kind, vec![plain, x_only]));
            }
        }
        None
    };

    let mut subst: HashMap<NetId, Signal> = HashMap::new();
    let mut new_gates: Vec<Gate> = Vec::new();
    let mut changed = false;

    let mut keep = Vec::with_capacity(m.gates.len());
    let gates = std::mem::take(&mut m.gates);
    for mut gate in gates {
        for s in &mut gate.inputs {
            let r = resolve(&subst, *s);
            if r != *s {
                *s = r;
                changed = true;
            }
        }
        let action = match gate.kind {
            CellKind::And2 | CellKind::Or2 => absorb(gate.kind, gate.inputs[0], gate.inputs[1])
                .unwrap_or_else(|| simplify_gate(&gate, &inv_of, &complementary)),
            _ => simplify_gate(&gate, &inv_of, &complementary),
        };
        match action {
            Action::Keep => keep.push(gate),
            Action::Alias(target) => {
                // Avoid self-alias loops (target must not be the own output;
                // simplify_gate never produces that).
                subst.insert(gate.output, resolve(&subst, target));
                changed = true;
            }
            Action::Rewrite(kind, inputs) => {
                changed = true;
                keep.push(Gate {
                    kind,
                    inputs,
                    output: gate.output,
                    init: false,
                    region: gate.region,
                });
            }
            Action::RewriteInverted(kind, to_invert, other) => {
                changed = true;
                // Allocate a net for the helper inverter.
                let helper = NetId(m.net_count);
                m.net_count += 1;
                new_gates.push(Gate {
                    kind: CellKind::Inv,
                    inputs: vec![to_invert],
                    output: helper,
                    init: false,
                    region: gate.region,
                });
                keep.push(Gate {
                    kind,
                    inputs: vec![Signal::Net(helper), other],
                    output: gate.output,
                    init: false,
                    region: gate.region,
                });
            }
        }
    }
    keep.extend(new_gates);
    m.gates = keep;
    apply_subst(m, &subst);
    changed
}

fn simplify_gate(
    gate: &Gate,
    inv_of: &HashMap<NetId, Signal>,
    complementary: &impl Fn(Signal, Signal) -> bool,
) -> Action {
    use CellKind::*;
    use Signal::Const as C;
    let i = &gate.inputs;
    match gate.kind {
        Inv => match i[0] {
            C(v) => Action::Alias(C(!v)),
            Signal::Net(n) => match inv_of.get(&n) {
                Some(&orig) => Action::Alias(orig), // !!x = x
                None => Action::Keep,
            },
        },
        Buf => Action::Alias(i[0]),
        And2 => match (i[0], i[1]) {
            (C(false), _) | (_, C(false)) => Action::Alias(Signal::ZERO),
            (C(true), x) | (x, C(true)) => Action::Alias(x),
            (a, b) if a == b => Action::Alias(a),
            (a, b) if complementary(a, b) => Action::Alias(Signal::ZERO),
            _ => Action::Keep,
        },
        Or2 => match (i[0], i[1]) {
            (C(true), _) | (_, C(true)) => Action::Alias(Signal::ONE),
            (C(false), x) | (x, C(false)) => Action::Alias(x),
            (a, b) if a == b => Action::Alias(a),
            (a, b) if complementary(a, b) => Action::Alias(Signal::ONE),
            _ => Action::Keep,
        },
        Nand2 => match (i[0], i[1]) {
            (C(false), _) | (_, C(false)) => Action::Alias(Signal::ONE),
            (C(true), x) | (x, C(true)) => Action::Rewrite(Inv, vec![x]),
            (a, b) if a == b => Action::Rewrite(Inv, vec![a]),
            (a, b) if complementary(a, b) => Action::Alias(Signal::ONE),
            _ => Action::Keep,
        },
        Nor2 => match (i[0], i[1]) {
            (C(true), _) | (_, C(true)) => Action::Alias(Signal::ZERO),
            (C(false), x) | (x, C(false)) => Action::Rewrite(Inv, vec![x]),
            (a, b) if a == b => Action::Rewrite(Inv, vec![a]),
            (a, b) if complementary(a, b) => Action::Alias(Signal::ZERO),
            _ => Action::Keep,
        },
        Xor2 => match (i[0], i[1]) {
            (C(x), C(y)) => Action::Alias(C(x ^ y)),
            (C(false), x) | (x, C(false)) => Action::Alias(x),
            (C(true), x) | (x, C(true)) => Action::Rewrite(Inv, vec![x]),
            (a, b) if a == b => Action::Alias(Signal::ZERO),
            (a, b) if complementary(a, b) => Action::Alias(Signal::ONE),
            _ => Action::Keep,
        },
        Xnor2 => match (i[0], i[1]) {
            (C(x), C(y)) => Action::Alias(C(!(x ^ y))),
            (C(true), x) | (x, C(true)) => Action::Alias(x),
            (C(false), x) | (x, C(false)) => Action::Rewrite(Inv, vec![x]),
            (a, b) if a == b => Action::Alias(Signal::ONE),
            (a, b) if complementary(a, b) => Action::Alias(Signal::ZERO),
            _ => Action::Keep,
        },
        Mux2 => {
            let (s, a, b) = (i[0], i[1], i[2]);
            match (s, a, b) {
                (C(false), a, _) => Action::Alias(a),
                (C(true), _, b) => Action::Alias(b),
                (_, a, b) if a == b => Action::Alias(a),
                (s, C(false), C(true)) => Action::Alias(s),
                (s, C(true), C(false)) => Action::Rewrite(Inv, vec![s]),
                (s, a, C(true)) => Action::Rewrite(Or2, vec![s, a]),
                (s, C(false), b) => Action::Rewrite(And2, vec![s, b]),
                // mux(s, a, 0) = !s & a ; mux(s, 1, b) = !s | b
                (s, a, C(false)) => Action::RewriteInverted(And2, s, a),
                (s, C(true), b) => Action::RewriteInverted(Or2, s, b),
                _ => Action::Keep,
            }
        }
        Dff => Action::Keep,
        RomBit | RomDot => Action::Keep,
    }
}

/// Canonical ordering key for CSE input normalization.
fn sig_key(s: Signal) -> (u8, u64) {
    match s {
        Signal::Const(false) => (0, 0),
        Signal::Const(true) => (0, 1),
        Signal::Net(n) => (1, n.index() as u64),
    }
}

/// Structural hash key of a gate: kind, normalized inputs, DFF init.
type CseKey = (CellKind, Vec<(u8, u64)>, bool);

fn cse_pass(m: &mut Module) -> bool {
    let mut seen: HashMap<CseKey, NetId> = HashMap::new();
    let mut subst: HashMap<NetId, Signal> = HashMap::new();
    let mut keep = Vec::with_capacity(m.gates.len());
    let mut changed = false;
    let gates = std::mem::take(&mut m.gates);
    for mut gate in gates {
        for s in &mut gate.inputs {
            *s = resolve(&subst, *s);
        }
        let commutative = matches!(
            gate.kind,
            CellKind::And2
                | CellKind::Or2
                | CellKind::Nand2
                | CellKind::Nor2
                | CellKind::Xor2
                | CellKind::Xnor2
        );
        let mut key_inputs: Vec<(u8, u64)> = gate.inputs.iter().map(|&s| sig_key(s)).collect();
        if commutative {
            key_inputs.sort_unstable();
        }
        let key = (gate.kind, key_inputs, gate.init);
        match seen.get(&key) {
            Some(&existing) => {
                subst.insert(gate.output, Signal::Net(existing));
                changed = true;
            }
            None => {
                seen.insert(key, gate.output);
                keep.push(gate);
            }
        }
    }
    m.gates = keep;
    apply_subst(m, &subst);
    changed
}

fn dce_pass(m: &mut Module) -> bool {
    // Liveness over nets, seeded from output ports.
    let mut live = vec![false; m.net_count as usize];
    let mut work: Vec<NetId> = Vec::new();
    let mark = |s: Signal, live: &mut Vec<bool>, work: &mut Vec<NetId>| {
        if let Signal::Net(n) = s {
            if !live[n.index()] {
                live[n.index()] = true;
                work.push(n);
            }
        }
    };
    for port in &m.outputs {
        for &s in &port.bits {
            mark(s, &mut live, &mut work);
        }
    }
    // Driver lookup.
    let mut gate_of: HashMap<NetId, usize> = HashMap::new();
    for (i, g) in m.gates.iter().enumerate() {
        gate_of.insert(g.output, i);
    }
    let mut rom_of: HashMap<NetId, usize> = HashMap::new();
    for (i, r) in m.roms.iter().enumerate() {
        for net in &r.data {
            rom_of.insert(*net, i);
        }
    }
    while let Some(n) = work.pop() {
        if let Some(&gi) = gate_of.get(&n) {
            for &s in &m.gates[gi].inputs.clone() {
                mark(s, &mut live, &mut work);
            }
        } else if let Some(&ri) = rom_of.get(&n) {
            for &s in &m.roms[ri].addr.clone() {
                mark(s, &mut live, &mut work);
            }
        }
    }
    let before = m.gates.len() + m.roms.len();
    m.gates.retain(|g| live[g.output.index()]);
    m.roms.retain(|r| r.data.iter().any(|n| live[n.index()]));
    before != m.gates.len() + m.roms.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::comb::unsigned_le;
    use crate::sim::Simulator;
    use pdk::Technology;

    /// Optimized and original modules must agree on every input we try.
    fn assert_equivalent_exhaustive(original: &Module, optimized: &Module, width: usize) {
        let mut s0 = Simulator::new(original);
        let mut s1 = Simulator::new(optimized);
        let names: Vec<String> = original.inputs.iter().map(|p| p.name.clone()).collect();
        assert_eq!(names.len(), 1, "helper supports single-input modules");
        for v in 0..(1u64 << width) {
            s0.set(&names[0], v);
            s1.set(&names[0], v);
            s0.settle();
            s1.settle();
            for port in &original.outputs {
                assert_eq!(s0.get(&port.name), s1.get(&port.name), "input {v}");
            }
        }
    }

    #[test]
    fn constant_comparator_shrinks_but_stays_correct() {
        // The bespoke decision-tree node: x <= 102 with 8-bit x.
        let mut b = NetlistBuilder::new("node");
        let x = b.input("x", 8);
        let tau = b.const_word(102, 8);
        let le = unsigned_le(&mut b, &x, &tau);
        b.output("le", &[le]);
        let original = b.finish();
        let optimized = optimize(&original);
        assert!(
            optimized.gate_count() * 2 < original.gate_count(),
            "expected >2x shrink, got {} -> {}",
            original.gate_count(),
            optimized.gate_count()
        );
        assert_equivalent_exhaustive(&original, &optimized, 8);
    }

    #[test]
    fn double_inverters_cancel() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x", 1);
        let a = b.not(x[0]);
        let bb = b.not(a);
        let c = b.not(bb);
        let d = b.not(c);
        b.output("o", &[d]);
        let m = optimize(&b.finish());
        assert_eq!(m.gate_count(), 0);
        assert_eq!(
            m.outputs[0].bits[0],
            Signal::Net(m.inputs[0].bits[0].net().unwrap())
        );
    }

    #[test]
    fn inverted_pairs_collapse() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x", 1);
        let nx = b.not(x[0]);
        let z = b.and(x[0], nx);
        let o = b.or(x[0], nx);
        b.output("z", &[z]);
        b.output("o", &[o]);
        let m = optimize(&b.finish());
        assert_eq!(m.gate_count(), 0);
        assert_eq!(m.outputs[0].bits[0], Signal::ZERO);
        assert_eq!(m.outputs[1].bits[0], Signal::ONE);
    }

    #[test]
    fn cse_merges_structural_duplicates() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x", 2);
        let a1 = b.and(x[0], x[1]);
        let a2 = b.and(x[1], x[0]); // commutative duplicate
        let o = b.xor(a1, a2); // x ^ x = 0 after CSE
        b.output("o", &[o]);
        let m = optimize(&b.finish());
        assert_eq!(m.gate_count(), 0);
        assert_eq!(m.outputs[0].bits[0], Signal::ZERO);
    }

    #[test]
    fn dce_removes_unobservable_logic() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x", 2);
        let _dead = b.xor(x[0], x[1]);
        let live = b.and(x[0], x[1]);
        b.output("o", &[live]);
        let m = optimize(&b.finish());
        assert_eq!(m.gate_count(), 1);
    }

    #[test]
    fn mux_collapses() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x", 2);
        let s = x[0];
        let d = x[1];
        let m01 = b.mux(s, Signal::ZERO, Signal::ONE); // = s
        let m10 = b.mux(s, Signal::ONE, Signal::ZERO); // = !s
        let ma0 = b.mux(s, d, Signal::ZERO); // = !s & d
        let ma1 = b.mux(s, d, Signal::ONE); // = s | d
        b.output("o", &[m01, m10, ma0, ma1]);
        let original = b.finish();
        let optimized = optimize(&original);
        assert!(optimized.gates_of(CellKind::Mux2).count() == 0);
        assert_equivalent_exhaustive(&original, &optimized, 2);
    }

    #[test]
    fn constant_free_logic_is_untouched() {
        // No constants, no duplicates, everything observable: the optimizer
        // must leave the circuit alone.
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x", 3);
        let (s, c) = crate::arith::full_adder(&mut b, x[0], x[1], x[2]);
        b.output("s", &[s]);
        b.output("c", &[c]);
        let original = b.finish();
        let optimized = optimize(&original);
        assert_eq!(original.gate_count(), optimized.gate_count());
    }

    #[test]
    fn variable_comparator_only_loses_its_seed_carry() {
        // A comparator over two register-fed (variable) operands keeps its
        // per-bit structure; only the constant-zero seed carry of the first
        // ripple stage folds. This is the conventional-architecture case.
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x", 8);
        let (lo, hi) = x.split_at(4);
        let le = unsigned_le(&mut b, lo, hi);
        b.output("le", &[le]);
        let original = b.finish();
        let optimized = optimize(&original);
        assert!(optimized.gate_count() >= original.gate_count() - 4);
        assert_equivalent_exhaustive(&original, &optimized, 8);
    }

    #[test]
    fn optimized_ppa_improves_for_bespoke_node() {
        use crate::analysis::analyze;
        let lib = pdk::CellLibrary::for_technology(Technology::Egt);
        let mut b = NetlistBuilder::new("node");
        let x = b.input("x", 8);
        let tau = b.const_word(77, 8);
        let le = unsigned_le(&mut b, &x, &tau);
        b.output("le", &[le]);
        let original = b.finish();
        let optimized = optimize(&original);
        let p0 = analyze(&original, &lib);
        let p1 = analyze(&optimized, &lib);
        assert!(p1.area < p0.area);
        assert!(p1.power < p0.power);
        assert!(p1.delay <= p0.delay);
    }
}

#[cfg(test)]
mod absorption_tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::comb::unsigned_le;
    use crate::sim::Simulator;

    #[test]
    fn absorption_folds_a_and_a_or_b() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x", 2);
        let or = b.or(x[0], x[1]);
        let and = b.and(x[0], or); // a & (a | b) = a
        b.output("o", &[and]);
        let m = optimize(&b.finish());
        assert_eq!(m.gate_count(), 0);
        assert_eq!(m.outputs[0].bits[0], m.inputs[0].bits[0]);
    }

    #[test]
    fn absorption_folds_a_or_a_and_b() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x", 2);
        let and = b.and(x[0], x[1]);
        let or = b.or(and, x[0]); // (a & b) | a = a
        b.output("o", &[or]);
        let m = optimize(&b.finish());
        assert_eq!(m.gate_count(), 0);
    }

    #[test]
    fn redundancy_folds_a_or_nota_and_b() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x", 2);
        let na = b.not(x[0]);
        let and = b.and(na, x[1]);
        let or = b.or(x[0], and); // a | (!a & b) = a | b
        b.output("o", &[or]);
        let original = b.finish();
        let optimized = optimize(&original);
        // One OR gate should remain (the inverter and AND die).
        assert_eq!(optimized.gate_count(), 1);
        assert_eq!(optimized.gates[0].kind, CellKind::Or2);
        let mut s0 = Simulator::new(&original);
        let mut s1 = Simulator::new(&optimized);
        for v in 0..4u64 {
            s0.set("x", v);
            s1.set("x", v);
            s0.settle();
            s1.settle();
            assert_eq!(s0.get("o"), s1.get("o"), "v={v}");
        }
    }

    #[test]
    fn redundancy_folds_a_and_nota_or_b() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x", 2);
        let na = b.not(x[0]);
        let or = b.or(na, x[1]);
        let and = b.and(x[0], or); // a & (!a | b) = a & b
        b.output("o", &[and]);
        let original = b.finish();
        let optimized = optimize(&original);
        assert_eq!(optimized.gate_count(), 1);
        assert_eq!(optimized.gates[0].kind, CellKind::And2);
        let mut s0 = Simulator::new(&original);
        let mut s1 = Simulator::new(&optimized);
        for v in 0..4u64 {
            s0.set("x", v);
            s1.set("x", v);
            s0.settle();
            s1.settle();
            assert_eq!(s0.get("o"), s1.get("o"), "v={v}");
        }
    }

    #[test]
    fn constant_comparator_shrinks_further_with_redundancy() {
        // The bespoke tree node again: the τ-bit-0 per-bit logic is
        // exactly the a | (!a & p) shape the redundancy rule targets.
        let mut b = NetlistBuilder::new("node");
        let x = b.input("x", 8);
        let tau = b.const_word(0b01010101, 8);
        let le = unsigned_le(&mut b, &x, &tau);
        b.output("le", &[le]);
        let original = b.finish();
        let optimized = optimize(&original);
        // With 4 zero bits, the redundancy rule kills one inverter + one
        // AND per zero bit relative to plain constant folding: expect well
        // under 2.5 gates per bit.
        assert!(
            optimized.gate_count() <= 20,
            "expected tight folding, got {} gates",
            optimized.gate_count()
        );
        // Equivalence on every input.
        let mut s0 = Simulator::new(&original);
        let mut s1 = Simulator::new(&optimized);
        for v in 0..256u64 {
            s0.set("x", v);
            s1.set("x", v);
            s0.settle();
            s1.settle();
            assert_eq!(s0.get("le"), s1.get("le"), "v={v}");
        }
    }
}
