//! Self-checking Verilog testbench emission.
//!
//! The paper's flow hands generated RTL to a commercial tool chain; ours
//! can do the same, and this module closes the loop by emitting a
//! testbench whose expected outputs come from our own functional
//! simulator. Run the pair through any Verilog simulator and a mismatch
//! prints `FAIL`; a clean run prints `PASS`.

use std::fmt::Write as _;
use std::sync::Arc;

use crate::compile::{CompiledNetlist, WideSim};
use crate::ir::Module;
use crate::sim::Simulator;
use crate::verilog::to_verilog;

/// One stimulus: a value per input port, in the module's port order.
pub type Vector = Vec<u64>;

/// Renders `module` plus a self-checking testbench over `vectors`.
///
/// For combinational modules each vector is applied and checked after a
/// settle delay; for sequential modules the testbench pulses the clock
/// `cycles_per_vector` times after applying each vector (matching how the
/// serial tree consumes one inference per `depth` cycles).
///
/// Expected outputs are this crate's own semantics made executable:
/// combinational modules are batched through the compiled wide-lane
/// kernel (256 vectors per settle), sequential ones are stepped through
/// the scalar [`Simulator`].
///
/// # Panics
/// Panics if any vector's length differs from the module's input count.
pub fn to_testbench(module: &Module, vectors: &[Vector], cycles_per_vector: usize) -> String {
    let mut out = to_verilog(module);
    let sequential = !module.is_combinational();
    for (vi, vector) in vectors.iter().enumerate() {
        assert_eq!(
            vector.len(),
            module.inputs.len(),
            "vector {vi} has {} values for {} inputs",
            vector.len(),
            module.inputs.len()
        );
    }
    // Expected outputs for combinational modules, one row per vector
    // (values per output port), computed 256 lanes at a time.
    let mut expected_rows: Vec<Vec<u64>> = Vec::with_capacity(vectors.len());
    if !sequential {
        let mut sim: WideSim<4> = WideSim::new(Arc::new(CompiledNetlist::compile(module)));
        for chunk in vectors.chunks(WideSim::<4>::LANES) {
            let image = sim.pack_vectors(chunk);
            sim.load_packed(&image);
            sim.settle();
            let per_port: Vec<Vec<u64>> = module
                .outputs
                .iter()
                .map(|p| sim.lanes(&p.name, chunk.len()))
                .collect();
            for lane in 0..chunk.len() {
                expected_rows.push(per_port.iter().map(|col| col[lane]).collect());
            }
        }
        crate::compile::record_settles(
            vectors.len().div_ceil(WideSim::<4>::LANES) as u64,
            vectors.len() as u64,
        );
    }
    let mut sim = sequential.then(|| Simulator::new(module));

    let _ = writeln!(out, "\nmodule tb;");
    if sequential {
        let _ = writeln!(out, "  reg clk = 0;");
        let _ = writeln!(out, "  always #5 clk = ~clk;");
    }
    for p in &module.inputs {
        let _ = writeln!(
            out,
            "  reg [{}:0] {} = 0;",
            p.width().saturating_sub(1),
            p.name
        );
    }
    for p in &module.outputs {
        let _ = writeln!(
            out,
            "  wire [{}:0] {};",
            p.width().saturating_sub(1),
            p.name
        );
    }
    let mut ports: Vec<String> = Vec::new();
    if sequential {
        ports.push(".clk(clk)".to_string());
    }
    for p in module.inputs.iter().chain(&module.outputs) {
        ports.push(format!(".{0}({0})", p.name));
    }
    let name: String = module
        .name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let _ = writeln!(out, "  {name} dut ({});", ports.join(", "));
    let _ = writeln!(out, "  integer errors = 0;");
    let _ = writeln!(out, "  initial begin");

    for (vi, vector) in vectors.iter().enumerate() {
        // Drive the scalar simulator (sequential only) to learn the
        // expected outputs; combinational expectations were batched above.
        if let Some(sim) = sim.as_mut() {
            sim.reset();
        }
        for (p, &v) in module.inputs.iter().zip(vector) {
            if let Some(sim) = sim.as_mut() {
                sim.set(&p.name, v);
            }
            let _ = writeln!(out, "    {} = {}'d{};", p.name, p.width(), v);
        }
        if let Some(sim) = sim.as_mut() {
            for _ in 0..cycles_per_vector.max(1) {
                sim.step();
            }
            sim.settle();
            // The DUT needs a reset per vector in general; this testbench
            // targets designs whose state converges from the vector alone
            // within the cycle budget, so we simply wait the cycles out.
            let _ = writeln!(
                out,
                "    repeat ({}) @(posedge clk);",
                cycles_per_vector.max(1)
            );
            let _ = writeln!(out, "    #1;");
        } else {
            let _ = writeln!(out, "    #10;");
        }
        for (oi, p) in module.outputs.iter().enumerate() {
            let expect = match sim.as_mut() {
                Some(sim) => sim.get(&p.name),
                None => expected_rows[vi][oi],
            };
            let _ = writeln!(
                out,
                "    if ({} !== {}'d{}) begin $display(\"FAIL vector {} port {}: got %0d want {}\", {}); errors = errors + 1; end",
                p.name,
                p.width(),
                expect,
                vi,
                p.name,
                expect,
                p.name
            );
        }
    }
    let _ = writeln!(out, "    if (errors == 0) $display(\"PASS\");");
    let _ = writeln!(out, "    $finish;");
    let _ = writeln!(out, "  end");
    let _ = writeln!(out, "endmodule");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    #[test]
    fn combinational_testbench_embeds_expected_values() {
        let mut b = NetlistBuilder::new("adder");
        let x = b.input("x", 3);
        let y = b.input("y", 3);
        let s = crate::arith::add(&mut b, &x, &y);
        b.output("s", &s);
        let m = b.finish();
        let tb = to_testbench(&m, &[vec![3, 4], vec![7, 7]], 1);
        assert!(tb.contains("module tb;"));
        assert!(tb.contains("4'd7"), "3+4 expectation missing:\n{tb}");
        assert!(tb.contains("4'd14"), "7+7 expectation missing");
        assert!(tb.contains("PASS"));
        assert!(
            !tb.contains("clk"),
            "combinational testbench needs no clock"
        );
    }

    #[test]
    fn sequential_testbench_pulses_the_clock() {
        let mut b = NetlistBuilder::new("reg");
        let d = b.input("d", 2);
        let q = b.register(&d, 0);
        b.output("q", &q);
        let m = b.finish();
        let tb = to_testbench(&m, &[vec![2]], 1);
        assert!(tb.contains("always #5 clk = ~clk;"));
        assert!(tb.contains("repeat (1) @(posedge clk);"));
        assert!(tb.contains("2'd2"));
    }

    #[test]
    #[should_panic(expected = "vector 0 has")]
    fn wrong_arity_vectors_are_rejected() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x", 1);
        b.output("o", &[x[0]]);
        let m = b.finish();
        let _ = to_testbench(&m, &[vec![1, 2]], 1);
    }
}
