//! Typed simulation errors.
//!
//! Every engine in this crate (the scalar [`crate::sim::Simulator`], the
//! interpreted [`crate::batch::reference::InterpretedSimulator`], the
//! compiled [`crate::compile::CompiledNetlist`] / [`crate::compile::WideSim`]
//! tape and the [`crate::batch::BatchSimulator`] wrapper) exposes fallible
//! `try_*` entry points returning [`SimError`]. The historical panicking
//! names remain as thin convenience wrappers over those, so library callers
//! — the differential fuzzer in `crates/check` first among them — can
//! distinguish "this input was rejected" from "two engines disagree"
//! without the process aborting.

use std::error::Error;
use std::fmt;

/// Why a module could not be simulated, or a port binding failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The module failed [`crate::ir::Module::validate`].
    InvalidModule {
        /// Module name.
        module: String,
        /// The validation failure, verbatim.
        reason: String,
    },
    /// Levelization found a combinational cycle.
    CombinationalCycle {
        /// Module name.
        module: String,
        /// A net on the cycle (index into the module's net space).
        net: usize,
    },
    /// A combinational-only engine was handed a sequential module.
    Sequential {
        /// Module name.
        module: String,
    },
    /// A port binding named a port the module does not have.
    UnknownPort {
        /// `"input"` or `"output"`.
        direction: &'static str,
        /// The requested port name.
        name: String,
    },
    /// More parallel lanes were requested than the engine supports.
    TooManyLanes {
        /// Lanes requested.
        given: usize,
        /// Lanes available.
        max: usize,
    },
    /// A packed vector had the wrong number of port values.
    VectorArity {
        /// Index of the offending vector.
        index: usize,
        /// Values supplied.
        got: usize,
        /// Input ports expected.
        want: usize,
    },
    /// A packed image had the wrong word count for this module/lane shape.
    ImageLength {
        /// Words supplied.
        got: usize,
        /// Words expected.
        want: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidModule { module, reason } => {
                write!(f, "module {module} is invalid: {reason}")
            }
            SimError::CombinationalCycle { module, net } => {
                write!(
                    f,
                    "combinational cycle through net {net} in module {module}"
                )
            }
            SimError::Sequential { module } => {
                write!(
                    f,
                    "module {module} is sequential; this engine is combinational-only"
                )
            }
            SimError::UnknownPort { direction, name } => {
                write!(f, "no {direction} port named {name}")
            }
            SimError::TooManyLanes { given, max } => {
                write!(
                    f,
                    "{given} lanes requested but the engine holds at most {max}"
                )
            }
            SimError::VectorArity { index, got, want } => {
                write!(
                    f,
                    "vector {index} has {got} port values, module has {want} input ports"
                )
            }
            SimError::ImageLength { got, want } => {
                write!(f, "packed image has {got} words, expected {want}")
            }
        }
    }
}

impl Error for SimError {}

impl SimError {
    /// Aborts with this error's display message.
    ///
    /// The panicking convenience wrappers (`Simulator::new`, `set`, `get`,
    /// …) route through here so the fallible `try_*` entry points stay the
    /// single source of truth for validation, and the legacy panic messages
    /// stay byte-identical to what callers and tests already match on.
    #[track_caller]
    pub fn raise(self) -> ! {
        panic!("{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_the_context() {
        let e = SimError::CombinationalCycle {
            module: "ring".into(),
            net: 7,
        };
        assert_eq!(
            e.to_string(),
            "combinational cycle through net 7 in module ring"
        );
        let e = SimError::UnknownPort {
            direction: "input",
            name: "x".into(),
        };
        assert_eq!(e.to_string(), "no input port named x");
    }
}
