//! Static PPA analysis: area and static power sums, critical-path delay.
//!
//! This plays the role Synopsys DC reports played in the paper: every
//! table's Delay/Area/Power columns come from walking a gate-level module
//! against a [`CellLibrary`]. Delay is the longest register-to-register /
//! input-to-output combinational path (for sequential designs this is the
//! minimum clock period; inference latency is `cycles × period`).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use pdk::rom::{rom_cost, RomSpec, RomStyle};
use pdk::{Area, CellLibrary, Delay, Power};

use crate::ir::{Module, NetId, Signal};

/// Power-performance-area report for one module in one technology.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Ppa {
    /// Critical combinational path (min clock period / comb latency).
    pub delay: Delay,
    /// Total area, logic + memory.
    pub area: Area,
    /// Total static power, logic + memory.
    pub power: Power,
    /// Logic-only area (paper's Table III separates logic from memory).
    pub logic_area: Area,
    /// ROM macro area.
    pub rom_area: Area,
    /// Logic-only power.
    pub logic_power: Power,
    /// ROM macro power.
    pub rom_power: Power,
    /// Standard-cell instance count (ROM macros excluded).
    pub gate_count: usize,
    /// Flip-flop count.
    pub dff_count: usize,
    /// Total ROM bits paid for (crossbar bits, or printed dots for bespoke).
    pub rom_bits: usize,
}

impl Ppa {
    /// Inference latency for a sequential design clocked at the critical
    /// path, running `cycles` cycles.
    pub fn latency(&self, cycles: usize) -> Delay {
        self.delay * cycles as f64
    }

    /// Energy of one inference taking `cycles` cycles (1 for combinational).
    pub fn energy(&self, cycles: usize) -> pdk::Energy {
        self.power * self.latency(cycles)
    }
}

/// Analyzes `module` against `lib`.
///
/// ```
/// use netlist::builder::NetlistBuilder;
/// use netlist::analysis::analyze;
/// use pdk::{CellLibrary, Technology};
///
/// let mut b = NetlistBuilder::new("pair");
/// let x = b.input("x", 2);
/// let y = b.and(x[0], x[1]);
/// b.output("y", &[y]);
/// let m = b.finish();
/// let ppa = analyze(&m, &CellLibrary::for_technology(Technology::Egt));
/// assert_eq!(ppa.gate_count, 1);
/// ```
pub fn analyze(module: &Module, lib: &CellLibrary) -> Ppa {
    if !cache::enabled() {
        return analyze_impl(module, lib);
    }
    // Keyed by module content + full library parameters. The Ppa payload
    // is a handful of floats, so warm runs skip the critical-path walk
    // over six-figure-gate conventional engines for a tiny disk read.
    let mut h = cache::StableHasher::new("netlist.ppa");
    cache::Hashable::stable_hash(module, &mut h);
    cache::Hashable::stable_hash(&serde::Serialize::to_value(lib), &mut h);
    cache::get_or_compute("netlist.ppa", h.finish(), || analyze_impl(module, lib))
}

fn analyze_impl(module: &Module, lib: &CellLibrary) -> Ppa {
    let mut logic_area = Area::ZERO;
    let mut logic_power = Power::ZERO;
    for gate in &module.gates {
        let c = lib.cost(gate.kind);
        logic_area += c.area;
        logic_power += c.power;
    }

    let mut rom_area = Area::ZERO;
    let mut rom_power = Power::ZERO;
    let mut rom_bits = 0usize;
    let mut rom_delays: Vec<Delay> = Vec::with_capacity(module.roms.len());
    for rom in &module.roms {
        // The decoder is sized for the full address space the instance
        // wires up (the paper sizes serial-tree ROMs for a full tree).
        let words = 1usize << rom.addr.len().min(30);
        let spec = match rom.style {
            RomStyle::Crossbar => RomSpec::crossbar(words, rom.data.len()),
            RomStyle::BespokeDots => RomSpec::bespoke(words, rom.data.len(), rom.set_bits()),
        };
        let cost = rom_cost(&spec, lib);
        rom_area += cost.area;
        rom_power += cost.power;
        rom_bits += match rom.style {
            RomStyle::Crossbar => words * rom.data.len(),
            RomStyle::BespokeDots => rom.set_bits(),
        };
        rom_delays.push(cost.delay);
    }

    let delay = critical_path(module, lib, &rom_delays);

    Ppa {
        delay,
        area: logic_area + rom_area,
        power: logic_power + rom_power,
        logic_area,
        rom_area,
        logic_power,
        rom_power,
        gate_count: module.gate_count(),
        dff_count: module.dff_count(),
        rom_bits,
    }
}

/// Longest combinational path through the module.
fn critical_path(module: &Module, lib: &CellLibrary, rom_delays: &[Delay]) -> Delay {
    #[derive(Clone, Copy)]
    enum Item {
        Gate(usize),
        Rom(usize),
    }
    // Net arrival times; sources (inputs, constants) arrive at 0, DFF
    // outputs at clk-to-Q.
    let mut arrival: HashMap<NetId, Delay> = HashMap::new();
    let mut driver: HashMap<NetId, Item> = HashMap::new();
    for (i, g) in module.gates.iter().enumerate() {
        if g.kind.is_sequential() {
            arrival.insert(g.output, lib.cost(g.kind).delay);
        } else {
            driver.insert(g.output, Item::Gate(i));
        }
    }
    for (i, r) in module.roms.iter().enumerate() {
        for net in &r.data {
            driver.insert(*net, Item::Rom(i));
        }
    }
    for port in &module.inputs {
        for bit in &port.bits {
            if let Signal::Net(n) = bit {
                arrival.insert(*n, Delay::ZERO);
            }
        }
    }

    // Memoized arrival computation with an explicit stack (deep ripple
    // chains would overflow recursion).
    fn sig_arrival(
        sig: Signal,
        arrival: &mut HashMap<NetId, Delay>,
        driver: &HashMap<NetId, Item>,
        module: &Module,
        lib: &CellLibrary,
        rom_delays: &[Delay],
    ) -> Delay {
        let Signal::Net(root) = sig else {
            return Delay::ZERO;
        };
        if let Some(d) = arrival.get(&root) {
            return *d;
        }
        let mut stack = vec![root];
        while let Some(&net) = stack.last() {
            if arrival.contains_key(&net) {
                stack.pop();
                continue;
            }
            let Some(item) = driver.get(&net) else {
                // Undriven net in a validated module cannot happen; treat
                // defensively as a source.
                arrival.insert(net, Delay::ZERO);
                stack.pop();
                continue;
            };
            let (input_sigs, own_delay): (&[Signal], Delay) = match *item {
                Item::Gate(i) => {
                    let g = &module.gates[i];
                    (&g.inputs, lib.cost(g.kind).delay)
                }
                Item::Rom(i) => (&module.roms[i].addr, rom_delays[i]),
            };
            let mut ready = true;
            let mut worst = Delay::ZERO;
            for s in input_sigs {
                match s {
                    Signal::Const(_) => {}
                    Signal::Net(n) => match arrival.get(n) {
                        Some(d) => worst = worst.max(*d),
                        None => {
                            ready = false;
                            stack.push(*n);
                        }
                    },
                }
            }
            if ready {
                // Every data output of a ROM shares the macro arrival; for a
                // gate this is just its single output.
                match *item {
                    Item::Gate(i) => {
                        arrival.insert(module.gates[i].output, worst + own_delay);
                    }
                    Item::Rom(i) => {
                        for out in &module.roms[i].data {
                            arrival.insert(*out, worst + own_delay);
                        }
                    }
                }
                stack.pop();
            }
        }
        arrival[&root]
    }

    let mut worst = Delay::ZERO;
    // Path endpoints: module outputs and DFF D pins.
    let endpoints: Vec<Signal> = module
        .outputs
        .iter()
        .flat_map(|p| p.bits.iter().copied())
        .chain(
            module
                .gates
                .iter()
                .filter(|g| g.kind.is_sequential())
                .map(|g| g.inputs[0]),
        )
        .collect();
    for sig in endpoints {
        let d = sig_arrival(sig, &mut arrival, &driver, module, lib, rom_delays);
        worst = worst.max(d);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{add, multiply};
    use crate::builder::NetlistBuilder;
    use crate::comb::unsigned_gt;
    use pdk::{CellKind, Technology};

    fn egt() -> CellLibrary {
        CellLibrary::for_technology(Technology::Egt)
    }

    #[test]
    fn area_and_power_are_cell_sums() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x", 2);
        let a = b.and(x[0], x[1]);
        let o = b.not(a);
        b.output("o", &[o]);
        let m = b.finish();
        let lib = egt();
        let ppa = analyze(&m, &lib);
        let expect_area = lib.area(CellKind::And2) + lib.area(CellKind::Inv);
        assert!((ppa.area.as_mm2() - expect_area.as_mm2()).abs() < 1e-9);
        assert_eq!(ppa.gate_count, 2);
        assert!(ppa.rom_area.is_zero());
    }

    #[test]
    fn critical_path_is_the_longest_chain() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x", 1);
        // Chain of 5 inverters next to a single parallel inverter.
        let mut s = x[0];
        for _ in 0..5 {
            s = b.not(s);
        }
        let short = b.not(x[0]);
        b.output("long", &[s]);
        b.output("short", &[short]);
        let m = b.finish();
        let lib = egt();
        let ppa = analyze(&m, &lib);
        let inv = lib.delay(CellKind::Inv);
        assert!((ppa.delay.as_secs() - inv.as_secs() * 5.0).abs() < 1e-12);
    }

    #[test]
    fn sequential_paths_end_at_dff_inputs() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x", 1);
        let inv1 = b.not(x[0]);
        let inv2 = b.not(inv1);
        let q = b.dff(inv2, false);
        b.output("q", &[q]);
        let m = b.finish();
        let lib = egt();
        let ppa = analyze(&m, &lib);
        // Two paths: 2 inverters into the D pin (2 inv delays) and the
        // clk-to-Q edge straight to the output port (DFF delay, which is
        // the longer one in this library).
        let expect = (lib.delay(CellKind::Inv) * 2.0).max(lib.delay(CellKind::Dff));
        assert!((ppa.delay.as_secs() - expect.as_secs()).abs() < 1e-12);
        assert_eq!(ppa.dff_count, 1);
    }

    #[test]
    fn mac_is_much_costlier_than_comparator() {
        // The Table I relationship that drives algorithm choice (§III):
        // an EGT MAC needs ~7.5× the area and ~6.8× the power of a
        // comparator.
        let lib = egt();
        let cmp = {
            let mut b = NetlistBuilder::new("cmp");
            let a = b.input("a", 8);
            let bb = b.input("b", 8);
            let o = unsigned_gt(&mut b, &a, &bb);
            b.output("o", &[o]);
            analyze(&b.finish(), &lib)
        };
        let mac = {
            let mut b = NetlistBuilder::new("mac");
            let a = b.input("a", 8);
            let bb = b.input("b", 8);
            let acc = b.input("acc", 16);
            let p = multiply(&mut b, &a, &bb);
            let s = add(&mut b, &p, &acc);
            b.output("o", &s);
            analyze(&b.finish(), &lib)
        };
        let area_ratio = mac.area.ratio(cmp.area);
        let power_ratio = mac.power.ratio(cmp.power);
        assert!(
            area_ratio > 4.0 && area_ratio < 15.0,
            "area ratio {area_ratio}"
        );
        assert!(
            power_ratio > 4.0 && power_ratio < 15.0,
            "power ratio {power_ratio}"
        );
        assert!(mac.delay > cmp.delay);
    }

    #[test]
    fn rom_costs_are_separated_from_logic() {
        let mut b = NetlistBuilder::new("t");
        let addr = b.input("a", 3);
        let data = b.rom(
            &addr,
            vec![1, 2, 3, 4, 5, 6, 7, 0],
            4,
            pdk::RomStyle::Crossbar,
        );
        b.output("d", &data);
        let m = b.finish();
        let ppa = analyze(&m, &egt());
        assert!(ppa.logic_area.is_zero());
        assert!(ppa.rom_area.as_mm2() > 0.0);
        assert_eq!(ppa.rom_bits, 8 * 4);
    }

    #[test]
    fn latency_and_energy_scale_with_cycles() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x", 1);
        let o = b.not(x[0]);
        b.output("o", &[o]);
        let ppa = analyze(&b.finish(), &egt());
        assert!((ppa.latency(4).as_secs() - ppa.delay.as_secs() * 4.0).abs() < 1e-15);
        assert!(ppa.energy(2).as_mj() > 0.0);
    }
}

/// Per-region (hierarchy tag) area and power breakdown.
///
/// Regions are attached by [`crate::builder::NetlistBuilder::push_region`];
/// the sum over all regions equals the module's logic totals (ROM macros
/// are reported separately by [`analyze`]).
pub fn by_region(module: &Module, lib: &CellLibrary) -> Vec<RegionCost> {
    let mut rows: Vec<RegionCost> = module
        .regions
        .iter()
        .map(|name| RegionCost {
            region: name.clone(),
            area: Area::ZERO,
            power: Power::ZERO,
            gates: 0,
        })
        .collect();
    for gate in &module.gates {
        let c = lib.cost(gate.kind);
        let row = &mut rows[gate.region as usize];
        row.area += c.area;
        row.power += c.power;
        row.gates += 1;
    }
    rows.retain(|r| r.gates > 0);
    rows
}

/// One row of a per-region breakdown.
#[derive(Debug, Clone, Serialize)]
pub struct RegionCost {
    /// Region name.
    pub region: String,
    /// Logic area attributed to the region.
    pub area: Area,
    /// Logic power attributed to the region.
    pub power: Power,
    /// Gate count in the region.
    pub gates: usize,
}

#[cfg(test)]
mod region_tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use pdk::Technology;

    #[test]
    fn regions_partition_the_logic_cost() {
        let mut b = NetlistBuilder::new("r");
        let x = b.input("x", 4);
        b.push_region("compare");
        let c = crate::comb::unsigned_gt(&mut b, &x[..2], &x[2..]);
        b.pop_region();
        b.push_region("select");
        let o = b.mux(c, x[0], x[1]);
        b.pop_region();
        b.output("o", &[o]);
        let m = b.finish();
        let lib = CellLibrary::for_technology(Technology::Egt);
        let rows = by_region(&m, &lib);
        let names: Vec<&str> = rows.iter().map(|r| r.region.as_str()).collect();
        assert!(names.contains(&"compare"));
        assert!(names.contains(&"select"));
        let total: f64 = rows.iter().map(|r| r.area.as_mm2()).sum();
        let ppa = analyze(&m, &lib);
        assert!((total - ppa.logic_area.as_mm2()).abs() < 1e-9);
        let gates: usize = rows.iter().map(|r| r.gates).sum();
        assert_eq!(gates, m.gate_count());
    }

    #[test]
    fn nested_and_repeated_regions_share_tags() {
        let mut b = NetlistBuilder::new("r");
        let x = b.input("x", 2);
        b.push_region("a");
        let p = b.and(x[0], x[1]);
        b.pop_region();
        b.push_region("a");
        let q = b.or(p, x[0]);
        b.pop_region();
        b.output("o", &[q]);
        let m = b.finish();
        let lib = CellLibrary::for_technology(Technology::Egt);
        let rows = by_region(&m, &lib);
        let a = rows.iter().find(|r| r.region == "a").unwrap();
        assert_eq!(a.gates, 2);
    }

    #[test]
    #[should_panic(expected = "pop_region without push_region")]
    fn unbalanced_pop_is_rejected() {
        let mut b = NetlistBuilder::new("r");
        b.pop_region();
    }
}
