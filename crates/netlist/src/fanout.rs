//! Fanout analysis and buffer-tree insertion.
//!
//! Printed transistors drive weakly: a net fanning out to dozens of gate
//! inputs (the root comparator of a parallel tree, a shared feature wire)
//! slews painfully. Synthesis flows repair this by inserting buffer trees
//! under a maximum-fanout constraint; this module does the same, so that
//! PPA numbers for high-fanout designs include the repair cost the paper's
//! synthesized netlists implicitly paid.

use std::collections::HashMap;

use pdk::CellKind;

use crate::ir::{Gate, Module, NetId, Signal};

/// Where a net is read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reader {
    /// `gates[i].inputs[pin]`.
    GatePin(usize, usize),
    /// `roms[i].addr[pin]`.
    RomAddr(usize, usize),
    /// `outputs[i].bits[pin]`.
    OutputBit(usize, usize),
}

/// Dense net → reading-gate index, shared with the worklist optimizer
/// ([`crate::opt`]): `result[net][..]` lists every gate whose inputs
/// reference the net. ROM address pins and output ports are not included —
/// only gate-to-gate fanout, which is what incremental rewriting needs.
pub(crate) fn gate_reader_index(module: &Module) -> Vec<Vec<u32>> {
    let mut readers: Vec<Vec<u32>> = vec![Vec::new(); module.net_count()];
    for (gi, g) in module.gates.iter().enumerate() {
        for s in &g.inputs {
            if let Signal::Net(n) = s {
                readers[n.index()].push(gi as u32);
            }
        }
    }
    readers
}

/// Histogram of net fanouts: `result[k]` = number of nets read exactly `k`
/// times (index 0 counts driven-but-unread nets).
pub fn fanout_histogram(module: &Module) -> Vec<usize> {
    let mut fanout: HashMap<NetId, usize> = HashMap::new();
    for port in &module.inputs {
        for bit in &port.bits {
            if let Signal::Net(n) = bit {
                fanout.insert(*n, 0);
            }
        }
    }
    for g in &module.gates {
        fanout.insert(g.output, 0);
    }
    for r in &module.roms {
        for n in &r.data {
            fanout.insert(*n, 0);
        }
    }
    let mut bump = |s: &Signal| {
        if let Signal::Net(n) = s {
            *fanout.entry(*n).or_insert(0) += 1;
        }
    };
    for g in &module.gates {
        for s in &g.inputs {
            bump(s);
        }
    }
    for r in &module.roms {
        for s in &r.addr {
            bump(s);
        }
    }
    for p in &module.outputs {
        for s in &p.bits {
            bump(s);
        }
    }
    let max = fanout.values().copied().max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for (_, f) in fanout {
        hist[f] += 1;
    }
    hist
}

/// The largest fanout of any net in the module.
pub fn max_fanout(module: &Module) -> usize {
    fanout_histogram(module).len().saturating_sub(1)
}

/// Inserts buffer trees so no net drives more than `limit` readers.
///
/// Readers of an over-driven net are chunked into groups of `limit`, each
/// behind a fresh buffer; the buffers themselves become readers of the
/// source and the process repeats until every net (including the new
/// buffer outputs) obeys the limit. Function is preserved (a buffer is
/// the identity); area, power and delay grow accordingly.
///
/// # Panics
/// Panics if `limit` is zero.
pub fn insert_buffers(module: &Module, limit: usize) -> Module {
    assert!(limit >= 1, "fanout limit must be at least 1");
    let mut m = module.clone();
    loop {
        // Collect readers per net.
        let mut readers: HashMap<NetId, Vec<Reader>> = HashMap::new();
        for (gi, g) in m.gates.iter().enumerate() {
            for (pin, s) in g.inputs.iter().enumerate() {
                if let Signal::Net(n) = s {
                    readers
                        .entry(*n)
                        .or_default()
                        .push(Reader::GatePin(gi, pin));
                }
            }
        }
        for (ri, r) in m.roms.iter().enumerate() {
            for (pin, s) in r.addr.iter().enumerate() {
                if let Signal::Net(n) = s {
                    readers
                        .entry(*n)
                        .or_default()
                        .push(Reader::RomAddr(ri, pin));
                }
            }
        }
        for (pi, p) in m.outputs.iter().enumerate() {
            for (pin, s) in p.bits.iter().enumerate() {
                if let Signal::Net(n) = s {
                    readers
                        .entry(*n)
                        .or_default()
                        .push(Reader::OutputBit(pi, pin));
                }
            }
        }
        // Tie-break on the net id: `readers` is a HashMap, and picking
        // the first max in iteration order would make the buffer tree
        // (and thus the module's content hash) vary run to run.
        let mut worst: Option<(NetId, Vec<Reader>)> = None;
        for (net, list) in readers {
            if list.len() > limit
                && worst
                    .as_ref()
                    .is_none_or(|(wn, w)| (list.len(), wn.0) > (w.len(), net.0))
            {
                worst = Some((net, list));
            }
        }
        let Some((net, list)) = worst else { break };
        // Chunk readers behind fresh buffers.
        for chunk in list.chunks(limit) {
            let buf_out = NetId(m.net_count);
            m.net_count += 1;
            m.gates.push(Gate {
                kind: CellKind::Buf,
                inputs: vec![Signal::Net(net)],
                output: buf_out,
                init: false,
                region: 0,
            });
            for reader in chunk {
                let slot = match *reader {
                    Reader::GatePin(gi, pin) => &mut m.gates[gi].inputs[pin],
                    Reader::RomAddr(ri, pin) => &mut m.roms[ri].addr[pin],
                    Reader::OutputBit(pi, pin) => &mut m.outputs[pi].bits[pin],
                };
                *slot = Signal::Net(buf_out);
            }
        }
        // Loop: the buffers themselves may now exceed the limit on `net`
        // (handled next iteration by buffering the buffers).
    }
    debug_assert!(m.validate().is_ok(), "buffer insertion broke the module");
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::builder::NetlistBuilder;
    use crate::sim::Simulator;
    use pdk::{CellLibrary, Technology};

    /// One input net fanned out to `n` inverters.
    fn fan_module(n: usize) -> Module {
        let mut b = NetlistBuilder::new("fan");
        let x = b.input("x", 1);
        let outs: Vec<Signal> = (0..n).map(|_| b.not(x[0])).collect();
        b.output("o", &outs);
        b.finish()
    }

    #[test]
    fn histogram_and_max_fanout() {
        let m = fan_module(12);
        assert_eq!(max_fanout(&m), 12);
        let hist = fanout_histogram(&m);
        assert_eq!(hist[12], 1); // the input net
        assert_eq!(hist[1], 12); // each inverter output feeds one port bit
    }

    #[test]
    fn insertion_enforces_the_limit() {
        let m = fan_module(33);
        let repaired = insert_buffers(&m, 4);
        assert!(
            max_fanout(&repaired) <= 4,
            "max fanout {}",
            max_fanout(&repaired)
        );
        // 33 readers -> 9 leaf buffers -> 3 mid buffers -> 1 top... the
        // exact count depends on chunking; just require buffers exist.
        assert!(repaired.gates_of(CellKind::Buf).count() >= 9);
    }

    #[test]
    fn insertion_preserves_function() {
        let m = fan_module(20);
        let repaired = insert_buffers(&m, 3);
        let mut s0 = Simulator::new(&m);
        let mut s1 = Simulator::new(&repaired);
        for v in 0..2u64 {
            s0.set("x", v);
            s1.set("x", v);
            s0.settle();
            s1.settle();
            assert_eq!(s0.get("o"), s1.get("o"), "v={v}");
        }
    }

    #[test]
    fn insertion_costs_area_and_delay() {
        let lib = CellLibrary::for_technology(Technology::Egt);
        let m = fan_module(30);
        let repaired = insert_buffers(&m, 4);
        let before = analyze(&m, &lib);
        let after = analyze(&repaired, &lib);
        assert!(after.area > before.area);
        assert!(after.delay > before.delay);
    }

    #[test]
    fn compliant_modules_are_untouched() {
        let m = fan_module(3);
        let repaired = insert_buffers(&m, 4);
        assert_eq!(m.gate_count(), repaired.gate_count());
    }

    #[test]
    fn sequential_nets_are_buffered_too() {
        let mut b = NetlistBuilder::new("seqfan");
        let x = b.input("x", 1);
        let q = b.dff(x[0], false);
        let outs: Vec<Signal> = (0..10).map(|_| b.not(q)).collect();
        b.output("o", &outs);
        let m = b.finish();
        let repaired = insert_buffers(&m, 2);
        assert!(max_fanout(&repaired) <= 2);
        // Behaviour across a clock edge is preserved.
        let mut s0 = Simulator::new(&m);
        let mut s1 = Simulator::new(&repaired);
        s0.set("x", 1);
        s1.set("x", 1);
        s0.step();
        s1.step();
        s0.settle();
        s1.settle();
        assert_eq!(s0.get("o"), s1.get("o"));
    }
}
