//! Arithmetic generators: adders, subtractors, multipliers, MACs, ReLU.
//!
//! The paper's cost analysis reduces every classifier to two dominant
//! operations — comparisons and two-input multiply-accumulates — and prices
//! them from synthesized RTL (Table I). These generators produce the same
//! micro-architectures: ripple-carry adders and array multipliers, the
//! minimal-area choices a printed technology forces.

use crate::builder::NetlistBuilder;
use crate::ir::Signal;

/// Half adder: returns (sum, carry).
pub fn half_adder(b: &mut NetlistBuilder, a: Signal, bb: Signal) -> (Signal, Signal) {
    (b.xor(a, bb), b.and(a, bb))
}

/// Full adder: returns (sum, carry).
pub fn full_adder(b: &mut NetlistBuilder, a: Signal, bb: Signal, cin: Signal) -> (Signal, Signal) {
    let s1 = b.xor(a, bb);
    let sum = b.xor(s1, cin);
    let c1 = b.and(a, bb);
    let c2 = b.and(s1, cin);
    (sum, b.or(c1, c2))
}

/// Ripple-carry addition of two unsigned words; result is one bit wider
/// than the wider operand (no overflow possible).
pub fn add(b: &mut NetlistBuilder, a: &[Signal], bb: &[Signal]) -> Vec<Signal> {
    let width = a.len().max(bb.len());
    let mut out = Vec::with_capacity(width + 1);
    let mut carry = Signal::ZERO;
    for i in 0..width {
        let x = a.get(i).copied().unwrap_or(Signal::ZERO);
        let y = bb.get(i).copied().unwrap_or(Signal::ZERO);
        let (s, c) = full_adder(b, x, y, carry);
        out.push(s);
        carry = c;
    }
    out.push(carry);
    out
}

/// Ripple-carry subtraction `a - b` in two's complement, both operands
/// treated as `width`-bit; returns (`width`-bit result, borrow-free flag).
///
/// The second element is high when `a >= b` (no borrow) — handy for
/// threshold comparisons implemented subtractively.
pub fn sub(b: &mut NetlistBuilder, a: &[Signal], bb: &[Signal]) -> (Vec<Signal>, Signal) {
    assert_eq!(a.len(), bb.len(), "subtractor width mismatch");
    let mut out = Vec::with_capacity(a.len());
    let mut carry = Signal::ONE; // +1 of the two's complement
    for (&x, &y) in a.iter().zip(bb) {
        let ny = b.not(y);
        let (s, c) = full_adder(b, x, ny, carry);
        out.push(s);
        carry = c;
    }
    (out, carry)
}

/// Unsigned array multiplier; result width is `a.len() + b.len()`.
///
/// Classic AND-plane plus ripple reduction rows — the structure behind the
/// paper's "an EGT MAC requires 7.5× more area … than a comparison".
pub fn multiply(b: &mut NetlistBuilder, a: &[Signal], bb: &[Signal]) -> Vec<Signal> {
    assert!(
        !a.is_empty() && !bb.is_empty(),
        "multiplier over empty words"
    );
    // Partial products row by row, accumulated with ripple adders.
    let mut acc: Vec<Signal> = a.iter().map(|&ai| b.and(ai, bb[0])).collect();
    let mut out = Vec::with_capacity(a.len() + bb.len());
    for (row, &bi) in bb.iter().enumerate().skip(1) {
        let pp: Vec<Signal> = a.iter().map(|&ai| b.and(ai, bi)).collect();
        // acc currently holds bits [row-1 ..]; its LSB is final.
        out.push(acc[0]);
        let high: Vec<Signal> = acc[1..].to_vec();
        let sum = add(b, &high, &pp);
        acc = sum;
        let _ = row;
    }
    out.extend(acc);
    out.truncate(a.len() + bb.len());
    out
}

/// Multiply-accumulate: `acc + a * b`, the SVM/MLP kernel operation.
/// Result is wide enough to never overflow.
pub fn mac(b: &mut NetlistBuilder, a: &[Signal], bb: &[Signal], acc: &[Signal]) -> Vec<Signal> {
    let product = multiply(b, a, bb);
    add(b, &product, acc)
}

/// Constant multiplication `x * k` by shift-and-add over the canonical
/// signed-digit (CSD) recoding of `k`.
///
/// This is what a synthesis tool reduces a multiplier to once one operand
/// is hardwired — the key saving of bespoke SVMs. Negative CSD digits are
/// realized subtractively. The result is interpreted as an unsigned word of
/// width `x.len() + ceil(log2(k+1))` (k must be ≥ 0; signs of trained
/// coefficients are handled by the caller's accumulation structure).
pub fn const_multiply(b: &mut NetlistBuilder, x: &[Signal], k: u64) -> Vec<Signal> {
    let out_width = x.len() + (64 - k.leading_zeros() as usize).max(1);
    if k == 0 {
        return b.const_word(0, out_width);
    }
    let digits = csd_digits(k);
    let mut acc: Option<Vec<Signal>> = None;
    let mut acc_negated_terms: Vec<Vec<Signal>> = Vec::new();
    for (shift, digit) in digits.into_iter().enumerate() {
        if digit == 0 {
            continue;
        }
        let shifted = shift_left(b, x, shift, out_width);
        if digit > 0 {
            acc = Some(match acc {
                None => shifted,
                Some(prev) => {
                    let mut s = add(b, &prev, &shifted);
                    s.truncate(out_width);
                    s
                }
            });
        } else {
            acc_negated_terms.push(shifted);
        }
    }
    let mut result = acc.unwrap_or_else(|| b.const_word(0, out_width));
    for term in acc_negated_terms {
        result.resize(out_width, Signal::ZERO);
        let t: Vec<Signal> = {
            let mut t = term;
            t.resize(out_width, Signal::ZERO);
            t
        };
        let (diff, _) = sub(b, &result, &t);
        result = diff;
    }
    result.resize(out_width, Signal::ZERO);
    result
}

/// Canonical signed-digit recoding of `k`: digits in {-1, 0, +1}, LSB first,
/// with no two adjacent non-zero digits.
pub fn csd_digits(k: u64) -> Vec<i8> {
    let mut digits = Vec::new();
    let mut value = k as u128;
    while value != 0 {
        if value & 1 == 1 {
            // Choose +1 or -1 so the remaining value is divisible by 4 when
            // possible (standard CSD rule: look at the next bit).
            let digit: i8 = if value & 2 == 2 { -1 } else { 1 };
            digits.push(digit);
            if digit == 1 {
                value -= 1;
            } else {
                value += 1;
            }
        } else {
            digits.push(0);
        }
        value >>= 1;
    }
    digits
}

/// Left-shift by a constant: wiring only, zero hardware.
fn shift_left(b: &mut NetlistBuilder, x: &[Signal], shift: usize, width: usize) -> Vec<Signal> {
    let mut out = b.const_word(0, width.min(shift));
    out.extend(x.iter().copied());
    out.truncate(width);
    out.resize(width, Signal::ZERO);
    out
}

/// Rectified linear unit over a two's-complement word: `max(x, 0)`.
///
/// Implemented as sign-gated AND per bit (output is zero when the sign bit
/// is set) — the third component priced in Table I.
pub fn relu(b: &mut NetlistBuilder, x: &[Signal]) -> Vec<Signal> {
    let sign = *x.last().expect("relu over empty word");
    let pass = b.not(sign);
    x.iter().map(|&bit| b.and(bit, pass)).collect()
}

/// Balanced adder tree summing many unsigned words (the SVM dot-product
/// reduction). Result is wide enough to hold the full sum.
pub fn adder_tree(b: &mut NetlistBuilder, words: &[Vec<Signal>]) -> Vec<Signal> {
    assert!(!words.is_empty(), "adder tree over no words");
    let mut layer: Vec<Vec<Signal>> = words.to_vec();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                next.push(add(b, &pair[0], &pair[1]));
            } else {
                next.push(pair[0].clone());
            }
        }
        layer = next;
    }
    layer.pop().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    #[test]
    fn add_exhaustive_4bit() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a", 4);
        let bb = b.input("b", 4);
        let s = add(&mut b, &a, &bb);
        b.output("s", &s);
        let m = b.finish();
        let mut sim = Simulator::new(&m);
        for x in 0..16u64 {
            for y in 0..16u64 {
                sim.set("a", x);
                sim.set("b", y);
                sim.settle();
                assert_eq!(sim.get("s"), x + y);
            }
        }
    }

    #[test]
    fn sub_exhaustive_4bit() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a", 4);
        let bb = b.input("b", 4);
        let (d, no_borrow) = sub(&mut b, &a, &bb);
        b.output("d", &d);
        b.output("nb", &[no_borrow]);
        let m = b.finish();
        let mut sim = Simulator::new(&m);
        for x in 0..16u64 {
            for y in 0..16u64 {
                sim.set("a", x);
                sim.set("b", y);
                sim.settle();
                assert_eq!(sim.get("d"), x.wrapping_sub(y) & 0xF);
                assert_eq!(sim.get("nb"), (x >= y) as u64);
            }
        }
    }

    #[test]
    fn multiply_exhaustive_4x4() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a", 4);
        let bb = b.input("b", 4);
        let p = multiply(&mut b, &a, &bb);
        assert_eq!(p.len(), 8);
        b.output("p", &p);
        let m = b.finish();
        let mut sim = Simulator::new(&m);
        for x in 0..16u64 {
            for y in 0..16u64 {
                sim.set("a", x);
                sim.set("b", y);
                sim.settle();
                assert_eq!(sim.get("p"), x * y, "{x}*{y}");
            }
        }
    }

    #[test]
    fn mac_matches_reference() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a", 3);
        let bb = b.input("b", 3);
        let acc = b.input("acc", 6);
        let out = mac(&mut b, &a, &bb, &acc);
        b.output("o", &out);
        let m = b.finish();
        let mut sim = Simulator::new(&m);
        for x in 0..8u64 {
            for y in 0..8u64 {
                for z in (0..64u64).step_by(7) {
                    sim.set("a", x);
                    sim.set("b", y);
                    sim.set("acc", z);
                    sim.settle();
                    assert_eq!(sim.get("o"), x * y + z);
                }
            }
        }
    }

    #[test]
    fn csd_recoding_reconstructs_value() {
        for k in [1u64, 2, 3, 7, 15, 23, 102, 255, 1023, 0xdead] {
            let digits = csd_digits(k);
            let mut v: i128 = 0;
            for (i, d) in digits.iter().enumerate() {
                v += (*d as i128) << i;
            }
            assert_eq!(v, k as i128, "k={k}");
            // CSD property: no adjacent non-zeros.
            for w in digits.windows(2) {
                assert!(w[0] == 0 || w[1] == 0, "k={k} digits={digits:?}");
            }
        }
    }

    #[test]
    fn const_multiply_matches_for_many_constants() {
        for k in [0u64, 1, 2, 3, 5, 7, 12, 100, 102, 255] {
            let mut b = NetlistBuilder::new("t");
            let x = b.input("x", 6);
            let p = const_multiply(&mut b, &x, k);
            b.output("p", &p);
            let m = b.finish();
            let mut sim = Simulator::new(&m);
            for v in 0..64u64 {
                sim.set("x", v);
                sim.settle();
                let mask = (1u64 << p.len().min(63)) - 1;
                assert_eq!(sim.get("p"), (v * k) & mask, "k={k} v={v}");
            }
        }
    }

    #[test]
    fn csd_multiplier_is_cheaper_than_array_multiplier() {
        // The bespoke-SVM saving in a nutshell: once the coefficient is a
        // constant, synthesis (our optimizer) folds the shift-add structure
        // down to a fraction of the array multiplier.
        use crate::opt::optimize;
        let array = {
            let mut b = NetlistBuilder::new("t");
            let x = b.input("x", 8);
            let y = b.input("y", 8);
            let p = multiply(&mut b, &x, &y);
            b.output("p", &p);
            optimize(&b.finish()).gate_count()
        };
        let constant = {
            let mut b = NetlistBuilder::new("t");
            let x = b.input("x", 8);
            let p = const_multiply(&mut b, &x, 102);
            b.output("p", &p);
            optimize(&b.finish()).gate_count()
        };
        assert!(constant * 2 < array, "array={array} const={constant}");
    }

    #[test]
    fn relu_clamps_negative_values() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x", 4);
        let y = relu(&mut b, &x);
        b.output("y", &y);
        let m = b.finish();
        let mut sim = Simulator::new(&m);
        for v in 0..16u64 {
            sim.set("x", v);
            sim.settle();
            let expect = if v >= 8 { 0 } else { v }; // MSB = sign
            assert_eq!(sim.get("y"), expect);
        }
    }

    #[test]
    fn adder_tree_sums_many_words() {
        let mut b = NetlistBuilder::new("t");
        let words: Vec<Vec<_>> = (0..5).map(|i| b.input(format!("w{i}"), 4)).collect();
        let s = adder_tree(&mut b, &words);
        b.output("s", &s);
        let m = b.finish();
        let mut sim = Simulator::new(&m);
        let vals = [3u64, 15, 7, 9, 12];
        for (i, v) in vals.iter().enumerate() {
            sim.set(&format!("w{i}"), *v);
        }
        sim.settle();
        assert_eq!(sim.get("s"), vals.iter().sum::<u64>());
    }
}
