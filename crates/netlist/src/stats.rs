//! Structural statistics: logic depth per output, level histograms.
//!
//! Printed designs are latency-dominated by logic depth (every level is a
//! millisecond in EGT), so "how many levels deep is each output" is the
//! first question a designer asks of a generated netlist.

use std::collections::HashMap;

use crate::ir::{Module, NetId, Signal};

/// Logic levels (gate counts along the longest path) per output port bit.
///
/// Inputs, constants and flip-flop outputs are depth 0; every gate adds
/// one level; a ROM macro adds one level. Returns `(port name, bit,
/// levels)` rows.
pub fn logic_levels(module: &Module) -> Vec<(String, usize, usize)> {
    enum Driver {
        Gate(usize),
        Rom(usize),
    }
    let mut driver: HashMap<NetId, Driver> = HashMap::new();
    for (i, g) in module.gates.iter().enumerate() {
        if !g.kind.is_sequential() {
            driver.insert(g.output, Driver::Gate(i));
        }
    }
    for (i, r) in module.roms.iter().enumerate() {
        for n in &r.data {
            driver.insert(*n, Driver::Rom(i));
        }
    }
    let mut depth: HashMap<NetId, usize> = HashMap::new();
    fn depth_of(
        sig: Signal,
        driver: &HashMap<NetId, Driver>,
        module: &Module,
        depth: &mut HashMap<NetId, usize>,
    ) -> usize {
        let Signal::Net(root) = sig else { return 0 };
        if let Some(&d) = depth.get(&root) {
            return d;
        }
        // Iterative DFS to survive deep ripple chains.
        let mut stack = vec![root];
        while let Some(&net) = stack.last() {
            if depth.contains_key(&net) {
                stack.pop();
                continue;
            }
            let inputs: &[Signal] = match driver.get(&net) {
                None => {
                    depth.insert(net, 0);
                    stack.pop();
                    continue;
                }
                Some(Driver::Gate(i)) => &module.gates[*i].inputs,
                Some(Driver::Rom(i)) => &module.roms[*i].addr,
            };
            let mut ready = true;
            let mut worst = 0usize;
            for s in inputs {
                if let Signal::Net(n) = s {
                    match depth.get(n) {
                        Some(&d) => worst = worst.max(d),
                        None => {
                            ready = false;
                            stack.push(*n);
                        }
                    }
                }
            }
            if ready {
                match driver.get(&net) {
                    Some(Driver::Rom(i)) => {
                        for out in &module.roms[*i].data {
                            depth.insert(*out, worst + 1);
                        }
                    }
                    _ => {
                        depth.insert(net, worst + 1);
                    }
                }
                stack.pop();
            }
        }
        depth[&root]
    }
    let mut rows = Vec::new();
    for port in &module.outputs {
        for (bit, &sig) in port.bits.iter().enumerate() {
            let d = depth_of(sig, &driver, module, &mut depth);
            rows.push((port.name.clone(), bit, d));
        }
    }
    rows
}

/// The deepest logic level of any output.
pub fn max_logic_levels(module: &Module) -> usize {
    logic_levels(module)
        .into_iter()
        .map(|(_, _, d)| d)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    #[test]
    fn chain_depth_counts_gates() {
        let mut b = NetlistBuilder::new("chain");
        let x = b.input("x", 1);
        let mut s = x[0];
        for _ in 0..7 {
            s = b.not(s);
        }
        b.output("o", &[s]);
        b.output("direct", &[x[0]]);
        let m = b.finish();
        let rows = logic_levels(&m);
        assert!(rows.contains(&("o".to_string(), 0, 7)));
        assert!(rows.contains(&("direct".to_string(), 0, 0)));
        assert_eq!(max_logic_levels(&m), 7);
    }

    #[test]
    fn roms_add_one_level() {
        use pdk::RomStyle;
        let mut b = NetlistBuilder::new("r");
        let a = b.input("a", 2);
        let inv: Vec<_> = a.iter().map(|&s| b.not(s)).collect();
        let d = b.rom(&inv, vec![0, 1, 2, 3], 2, RomStyle::Crossbar);
        b.output("d", &d);
        let m = b.finish();
        assert_eq!(max_logic_levels(&m), 2); // inverter + ROM
    }

    #[test]
    fn constants_are_level_zero() {
        let mut b = NetlistBuilder::new("c");
        let _x = b.input("x", 1);
        b.output("k", &[crate::ir::Signal::ONE]);
        let m = b.finish();
        assert_eq!(max_logic_levels(&m), 0);
    }

    #[test]
    fn optimized_bespoke_trees_are_shallow() {
        use crate::comb::unsigned_le;
        use crate::opt::optimize;
        let mut b = NetlistBuilder::new("node");
        let x = b.input("x", 8);
        let tau = b.const_word(100, 8);
        let le = unsigned_le(&mut b, &x, &tau);
        b.output("le", &[le]);
        let raw = b.finish();
        let opt = optimize(&raw);
        assert!(max_logic_levels(&opt) <= max_logic_levels(&raw));
    }
}
