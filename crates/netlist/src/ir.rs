//! Gate-level netlist intermediate representation.
//!
//! A [`Module`] is a flat network of standard-cell [`Gate`]s (kinds from
//! [`pdk::CellKind`]) plus crossbar [`RomInstance`] macros, connected by
//! single-bit nets. Multi-bit values are represented as little-endian
//! vectors of [`Signal`]s ("words") by the builder layer.
//!
//! The IR deliberately mirrors what logic synthesis hands to a
//! place-and-route flow: no behavioural constructs, just cells, nets and
//! macros. This is the representation the paper's PPA numbers are computed
//! over.

use serde::{Deserialize, Serialize};

use pdk::rom::RomStyle;
use pdk::CellKind;

/// Identifier of a single-bit net within one [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Raw index of the net.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A gate input: either a driven net or a hard-wired logic constant.
///
/// Constants are first-class so that *bespoke* hardwiring (replacing
/// threshold registers by trained constants) is expressible directly, after
/// which the optimizer's constant folding collapses the downstream logic —
/// exactly the effect the paper gets from re-synthesizing with hardwired
/// values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Signal {
    /// A driven net.
    Net(NetId),
    /// A logic constant.
    Const(bool),
}

impl Signal {
    /// Logic zero.
    pub const ZERO: Signal = Signal::Const(false);
    /// Logic one.
    pub const ONE: Signal = Signal::Const(true);

    /// The net behind this signal, if it is not a constant.
    pub fn net(self) -> Option<NetId> {
        match self {
            Signal::Net(id) => Some(id),
            Signal::Const(_) => None,
        }
    }

    /// The constant value, if hard-wired.
    pub fn constant(self) -> Option<bool> {
        match self {
            Signal::Net(_) => None,
            Signal::Const(b) => Some(b),
        }
    }

    /// True when the signal is a hard-wired constant.
    pub fn is_const(self) -> bool {
        matches!(self, Signal::Const(_))
    }
}

impl From<NetId> for Signal {
    fn from(net: NetId) -> Self {
        Signal::Net(net)
    }
}

impl From<bool> for Signal {
    fn from(b: bool) -> Self {
        Signal::Const(b)
    }
}

/// One standard-cell instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gate {
    /// Cell kind (determines cost and logic function).
    pub kind: CellKind,
    /// Input signals, in the pin order documented on [`CellKind`]
    /// (for [`CellKind::Mux2`]: select, a = sel 0 branch, b = sel 1 branch).
    pub inputs: Vec<Signal>,
    /// The single output net this gate drives.
    pub output: NetId,
    /// Power-on state — meaningful only for [`CellKind::Dff`].
    pub init: bool,
    /// Index into [`Module::regions`] (0 = the default region) — a
    /// hierarchy tag for per-block cost breakdowns.
    pub region: u16,
}

/// One ROM macro instance (a printed crossbar lookup table).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RomInstance {
    /// Address input signals, little-endian.
    pub addr: Vec<Signal>,
    /// Data output nets, little-endian.
    pub data: Vec<NetId>,
    /// Row contents, one little-endian word per address. Addresses beyond
    /// `contents.len()` read as zero.
    pub contents: Vec<u64>,
    /// Crossbar vs bespoke dot-resistor implementation.
    pub style: RomStyle,
}

impl RomInstance {
    /// Number of words the decoder must address (the sized depth, which may
    /// exceed `contents.len()` for unbalanced trees addressed as full trees).
    pub fn words(&self) -> usize {
        self.contents.len()
    }

    /// Number of set bits across the stored contents.
    pub fn set_bits(&self) -> usize {
        let mask = if self.data.len() >= 64 {
            u64::MAX
        } else {
            (1u64 << self.data.len()) - 1
        };
        self.contents
            .iter()
            .map(|w| (w & mask).count_ones() as usize)
            .sum()
    }

    /// Reads the word at `address` (zero beyond the stored contents).
    pub fn read(&self, address: usize) -> u64 {
        self.contents.get(address).copied().unwrap_or(0)
    }
}

/// A named, direction-tagged port of a module: an ordered bus of bits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Port {
    /// Port name (used by the Verilog emitter and the simulator API).
    pub name: String,
    /// Bus bits, little-endian. Inputs are always nets; outputs may be
    /// constants after optimization.
    pub bits: Vec<Signal>,
}

impl Port {
    /// Bus width in bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }
}

/// A flat gate-level module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Input ports (each bit is a distinct net driven from outside).
    pub inputs: Vec<Port>,
    /// Output ports.
    pub outputs: Vec<Port>,
    /// All standard-cell instances.
    pub gates: Vec<Gate>,
    /// All ROM macros.
    pub roms: Vec<RomInstance>,
    /// Region (hierarchy tag) names; index 0 is the default region.
    pub regions: Vec<String>,
    /// Total number of nets ever allocated.
    pub(crate) net_count: u32,
}

impl Module {
    /// Creates an empty module. Prefer [`crate::builder::NetlistBuilder`].
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            gates: Vec::new(),
            roms: Vec::new(),
            regions: vec!["top".to_string()],
            net_count: 0,
        }
    }

    /// Number of standard-cell gates (ROM macros not included).
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of flip-flops.
    pub fn dff_count(&self) -> usize {
        self.gates.iter().filter(|g| g.kind.is_sequential()).count()
    }

    /// True when the module contains no flip-flops (single-cycle inference).
    pub fn is_combinational(&self) -> bool {
        self.dff_count() == 0
    }

    /// Total nets allocated (including dangling ones left by optimization).
    pub fn net_count(&self) -> usize {
        self.net_count as usize
    }

    /// Total transistors, for prototype component inventories.
    pub fn transistor_count(&self) -> usize {
        self.gates.iter().map(|g| g.kind.transistor_count()).sum()
    }

    /// Looks up an input port by name.
    pub fn input(&self, name: &str) -> Option<&Port> {
        self.inputs.iter().find(|p| p.name == name)
    }

    /// Looks up an output port by name.
    pub fn output(&self, name: &str) -> Option<&Port> {
        self.outputs.iter().find(|p| p.name == name)
    }

    /// Iterates over gates of a given kind.
    pub fn gates_of(&self, kind: CellKind) -> impl Iterator<Item = &Gate> {
        self.gates.iter().filter(move |g| g.kind == kind)
    }

    /// Per-kind gate histogram, ordered by [`CellKind`]'s derived order.
    pub fn gate_histogram(&self) -> Vec<(CellKind, usize)> {
        let mut hist = std::collections::BTreeMap::new();
        for g in &self.gates {
            *hist.entry(g.kind).or_insert(0usize) += 1;
        }
        hist.into_iter().collect()
    }

    /// Validates structural invariants: every net has at most one driver,
    /// gates have the arity their cell kind requires, and ports reference
    /// allocated nets.
    ///
    /// # Errors
    /// Returns a human-readable description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        let mut driven = vec![false; self.net_count as usize];
        let mut drive = |net: NetId, what: &str| -> Result<(), String> {
            let i = net.index();
            if i >= driven.len() {
                return Err(format!("{what} drives unallocated net {i}"));
            }
            if driven[i] {
                return Err(format!("net {i} has multiple drivers (latest: {what})"));
            }
            driven[i] = true;
            Ok(())
        };
        for port in &self.inputs {
            for bit in &port.bits {
                match bit {
                    Signal::Net(n) => drive(*n, &format!("input port {}", port.name))?,
                    Signal::Const(_) => {
                        return Err(format!("input port {} contains a constant bit", port.name))
                    }
                }
            }
        }
        for (i, gate) in self.gates.iter().enumerate() {
            if gate.inputs.len() != gate.kind.input_count() {
                return Err(format!(
                    "gate {i} ({}) has {} inputs, expected {}",
                    gate.kind,
                    gate.inputs.len(),
                    gate.kind.input_count()
                ));
            }
            drive(gate.output, &format!("gate {i} ({})", gate.kind))?;
        }
        for (i, rom) in self.roms.iter().enumerate() {
            for net in &rom.data {
                drive(*net, &format!("rom {i}"))?;
            }
            if rom.addr.is_empty() {
                return Err(format!("rom {i} has no address bits"));
            }
        }
        // Every net referenced as an input must be driven by something.
        let used = self
            .gates
            .iter()
            .flat_map(|g| g.inputs.iter())
            .chain(self.roms.iter().flat_map(|r| r.addr.iter()))
            .chain(self.outputs.iter().flat_map(|p| p.bits.iter()));
        for sig in used {
            if let Signal::Net(n) = sig {
                if n.index() >= driven.len() {
                    return Err(format!("reference to unallocated net {}", n.index()));
                }
                if !driven[n.index()] {
                    return Err(format!("net {} is read but never driven", n.index()));
                }
            }
        }
        Ok(())
    }
}

impl cache::Hashable for Signal {
    fn stable_hash(&self, h: &mut cache::StableHasher) {
        match self {
            Signal::Const(b) => {
                h.write_u64(0);
                h.write_bool(*b);
            }
            Signal::Net(n) => {
                h.write_u64(1);
                h.write_u64(u64::from(n.0));
            }
        }
    }
}

impl cache::Hashable for Gate {
    fn stable_hash(&self, h: &mut cache::StableHasher) {
        h.write_u64(self.kind as u64);
        h.write_seq_len(self.inputs.len());
        for s in &self.inputs {
            s.stable_hash(h);
        }
        h.write_u64(u64::from(self.output.0));
        h.write_bool(self.init);
        h.write_u64(u64::from(self.region));
    }
}

impl cache::Hashable for RomInstance {
    fn stable_hash(&self, h: &mut cache::StableHasher) {
        h.write_seq_len(self.addr.len());
        for s in &self.addr {
            s.stable_hash(h);
        }
        h.write_seq_len(self.data.len());
        for n in &self.data {
            h.write_u64(u64::from(n.0));
        }
        h.write_seq_len(self.contents.len());
        for &w in &self.contents {
            h.write_u64(w);
        }
        h.write_u64(self.style as u64);
    }
}

impl cache::Hashable for Port {
    fn stable_hash(&self, h: &mut cache::StableHasher) {
        h.write_str(&self.name);
        h.write_seq_len(self.bits.len());
        for s in &self.bits {
            s.stable_hash(h);
        }
    }
}

/// Hand-rolled content hash: modules are the largest cached artifacts
/// (hundreds of thousands of gates), so keying must not detour through a
/// serde `Value` tree.
impl cache::Hashable for Module {
    fn stable_hash(&self, h: &mut cache::StableHasher) {
        h.write_str(&self.name);
        h.write_seq_len(self.inputs.len());
        for p in &self.inputs {
            p.stable_hash(h);
        }
        h.write_seq_len(self.outputs.len());
        for p in &self.outputs {
            p.stable_hash(h);
        }
        h.write_seq_len(self.gates.len());
        for g in &self.gates {
            g.stable_hash(h);
        }
        h.write_seq_len(self.roms.len());
        for r in &self.roms {
            r.stable_hash(h);
        }
        h.write_seq_len(self.regions.len());
        for r in &self.regions {
            h.write_str(r);
        }
        h.write_u64(u64::from(self.net_count));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_accessors() {
        let s = Signal::Net(NetId(3));
        assert_eq!(s.net(), Some(NetId(3)));
        assert_eq!(s.constant(), None);
        assert!(!s.is_const());
        assert_eq!(Signal::ONE.constant(), Some(true));
        assert!(Signal::ZERO.is_const());
        assert_eq!(Signal::from(true), Signal::ONE);
    }

    #[test]
    fn rom_set_bits_and_reads() {
        let rom = RomInstance {
            addr: vec![Signal::Net(NetId(0))],
            data: vec![NetId(1), NetId(2)],
            contents: vec![0b01, 0b11, 0b100 /* bit beyond width is masked */],
            style: RomStyle::Crossbar,
        };
        assert_eq!(rom.words(), 3);
        assert_eq!(rom.set_bits(), 3);
        assert_eq!(rom.read(1), 0b11);
        assert_eq!(rom.read(17), 0);
    }

    #[test]
    fn validate_catches_double_drivers() {
        let mut m = Module::new("bad");
        m.net_count = 1;
        let n = NetId(0);
        m.gates.push(Gate {
            kind: CellKind::Inv,
            inputs: vec![Signal::ONE],
            output: n,
            init: false,
            region: 0,
        });
        m.gates.push(Gate {
            kind: CellKind::Inv,
            inputs: vec![Signal::ZERO],
            output: n,
            init: false,
            region: 0,
        });
        let err = m.validate().unwrap_err();
        assert!(err.contains("multiple drivers"), "{err}");
    }

    #[test]
    fn validate_catches_bad_arity_and_undriven_reads() {
        let mut m = Module::new("bad");
        m.net_count = 2;
        m.gates.push(Gate {
            kind: CellKind::Nand2,
            inputs: vec![Signal::ONE],
            output: NetId(0),
            init: false,
            region: 0,
        });
        assert!(m.validate().unwrap_err().contains("expected 2"));

        let mut m2 = Module::new("bad2");
        m2.net_count = 2;
        m2.gates.push(Gate {
            kind: CellKind::Inv,
            inputs: vec![Signal::Net(NetId(1))],
            output: NetId(0),
            init: false,
            region: 0,
        });
        assert!(m2.validate().unwrap_err().contains("never driven"));
    }

    #[test]
    fn histogram_counts_kinds() {
        let mut m = Module::new("h");
        m.net_count = 3;
        for (i, kind) in [CellKind::Inv, CellKind::Inv, CellKind::Xor2]
            .into_iter()
            .enumerate()
        {
            let inputs = match kind.input_count() {
                1 => vec![Signal::ONE],
                2 => vec![Signal::ONE, Signal::ZERO],
                _ => unreachable!(),
            };
            m.gates.push(Gate {
                kind,
                inputs,
                output: NetId(i as u32),
                init: false,
                region: 0,
            });
        }
        let hist = m.gate_histogram();
        assert_eq!(hist, vec![(CellKind::Inv, 2), (CellKind::Xor2, 1)]);
        assert_eq!(m.gate_count(), 3);
        assert!(m.is_combinational());
    }
}
