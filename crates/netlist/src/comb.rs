//! Combinational building blocks: comparators, decoders, one-hot selection.
//!
//! These are the structural generators the classifier architectures are
//! assembled from. The magnitude comparator here is the per-node decision
//! element of every digital decision tree in the paper; the decoder is the
//! expensive part of ROM lookups whose *reuse* across comparisons makes
//! lookup-based trees profitable.

use crate::builder::NetlistBuilder;
use crate::ir::Signal;

/// Unsigned ripple magnitude comparator: returns `a > b`.
///
/// Built LSB-first: `gt_i = (a_i & !b_i) | (a_i ⊙ b_i) & gt_{i-1}`, one
/// XNOR + AND/OR pair per bit — the canonical minimal-area form a
/// technology-constrained synthesis run produces.
///
/// # Panics
/// Panics if the operands differ in width or are empty.
pub fn unsigned_gt(b: &mut NetlistBuilder, a: &[Signal], bb: &[Signal]) -> Signal {
    assert_eq!(a.len(), bb.len(), "comparator width mismatch");
    assert!(!a.is_empty(), "comparator over empty words");
    let mut gt = Signal::ZERO;
    for (&ai, &bi) in a.iter().zip(bb) {
        let nb = b.not(bi);
        let here = b.and(ai, nb);
        let eq = b.xnor(ai, bi);
        let carry = b.and(eq, gt);
        gt = b.or(here, carry);
    }
    gt
}

/// Unsigned comparator: returns `a <= b` (the decision-tree branch test
/// `x_k <= τ_j`).
pub fn unsigned_le(b: &mut NetlistBuilder, a: &[Signal], bb: &[Signal]) -> Signal {
    let gt = unsigned_gt(b, a, bb);
    b.not(gt)
}

/// Unsigned comparator: returns `a < b`.
pub fn unsigned_lt(b: &mut NetlistBuilder, a: &[Signal], bb: &[Signal]) -> Signal {
    unsigned_gt(b, bb, a)
}

/// Unsigned comparator: returns `a >= b`.
pub fn unsigned_ge(b: &mut NetlistBuilder, a: &[Signal], bb: &[Signal]) -> Signal {
    let lt = unsigned_lt(b, a, bb);
    b.not(lt)
}

/// Word equality: `a == b`.
pub fn equals(b: &mut NetlistBuilder, a: &[Signal], bb: &[Signal]) -> Signal {
    assert_eq!(a.len(), bb.len(), "equality width mismatch");
    let bits: Vec<Signal> = a.iter().zip(bb).map(|(&x, &y)| b.xnor(x, y)).collect();
    b.and_reduce(&bits)
}

/// Binary-to-one-hot decoder: output `i` is high iff `addr == i`.
///
/// Shares one inverter rank across all 2^n word lines and builds an AND
/// tree per line — the structure whose cost is amortized by "decoder
/// reuse" in lookup-based classifiers (§V).
pub fn decoder(b: &mut NetlistBuilder, addr: &[Signal]) -> Vec<Signal> {
    assert!(!addr.is_empty(), "decoder over empty address");
    let inverted: Vec<Signal> = addr.iter().map(|&s| b.not(s)).collect();
    let lines = 1usize << addr.len();
    (0..lines)
        .map(|i| {
            let terms: Vec<Signal> = addr
                .iter()
                .enumerate()
                .map(|(bit, &s)| {
                    if (i >> bit) & 1 == 1 {
                        s
                    } else {
                        inverted[bit]
                    }
                })
                .collect();
            b.and_reduce(&terms)
        })
        .collect()
}

/// One-hot word selection: OR of AND-masked words.
///
/// `select[i]` gates `words[i]`; exactly one select is expected high. Used
/// for class-label readout in parallel trees, where the one-hot leaf
/// condition vector picks the class word.
///
/// # Panics
/// Panics on length/width mismatches or empty inputs.
pub fn onehot_select(
    b: &mut NetlistBuilder,
    select: &[Signal],
    words: &[Vec<Signal>],
) -> Vec<Signal> {
    assert_eq!(select.len(), words.len(), "one select line per word");
    assert!(!words.is_empty(), "onehot_select over no words");
    let width = words[0].len();
    assert!(
        words.iter().all(|w| w.len() == width),
        "onehot_select width mismatch"
    );
    (0..width)
        .map(|bit| {
            let masked: Vec<Signal> = select
                .iter()
                .zip(words)
                .map(|(&s, w)| b.and(s, w[bit]))
                .collect();
            b.or_reduce(&masked)
        })
        .collect()
}

/// Priority encoder over `lines` (LSB has priority): returns the binary
/// index of the lowest set line.
pub fn priority_encode(b: &mut NetlistBuilder, lines: &[Signal]) -> Vec<Signal> {
    assert!(!lines.is_empty(), "priority encoder over no lines");
    let out_bits = if lines.len() <= 1 {
        1
    } else {
        (usize::BITS - (lines.len() - 1).leading_zeros()) as usize
    };
    // valid_i = line_i & !line_{i-1} & ... & !line_0
    let mut blocked = Signal::ZERO; // any earlier line set
    let mut firsts = Vec::with_capacity(lines.len());
    for &line in lines {
        let nb = b.not(blocked);
        firsts.push(b.and(line, nb));
        blocked = b.or(blocked, line);
    }
    (0..out_bits)
        .map(|bit| {
            let contributors: Vec<Signal> = firsts
                .iter()
                .enumerate()
                .filter(|(i, _)| (i >> bit) & 1 == 1)
                .map(|(_, &s)| s)
                .collect();
            if contributors.is_empty() {
                Signal::ZERO
            } else {
                b.or_reduce(&contributors)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    fn check2<F>(width: usize, build: F, expect: impl Fn(u64, u64) -> u64)
    where
        F: Fn(&mut NetlistBuilder, &[Signal], &[Signal]) -> Signal,
    {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a", width);
        let bb = b.input("b", width);
        let out = build(&mut b, &a, &bb);
        b.output("o", &[out]);
        let m = b.finish();
        let mut sim = Simulator::new(&m);
        for x in 0..(1u64 << width) {
            for y in 0..(1u64 << width) {
                sim.set("a", x);
                sim.set("b", y);
                sim.settle();
                assert_eq!(sim.get("o"), expect(x, y), "x={x} y={y}");
            }
        }
    }

    #[test]
    fn gt_le_lt_ge_exhaustive_4bit() {
        check2(4, unsigned_gt, |x, y| (x > y) as u64);
        check2(4, unsigned_le, |x, y| (x <= y) as u64);
        check2(4, unsigned_lt, |x, y| (x < y) as u64);
        check2(4, unsigned_ge, |x, y| (x >= y) as u64);
    }

    #[test]
    fn equality_exhaustive_3bit() {
        check2(3, equals, |x, y| (x == y) as u64);
    }

    #[test]
    fn decoder_is_one_hot() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a", 3);
        let lines = decoder(&mut b, &a);
        b.output("o", &lines);
        let m = b.finish();
        let mut sim = Simulator::new(&m);
        for v in 0..8u64 {
            sim.set("a", v);
            sim.settle();
            assert_eq!(sim.get("o"), 1 << v);
        }
    }

    #[test]
    fn onehot_select_picks_the_right_word() {
        let mut b = NetlistBuilder::new("t");
        let sel = b.input("sel", 4);
        let words: Vec<Vec<Signal>> = (0..4).map(|i| b.const_word(10 + i, 6)).collect();
        let out = onehot_select(&mut b, &sel, &words);
        b.output("o", &out);
        let m = b.finish();
        let mut sim = Simulator::new(&m);
        for i in 0..4 {
            sim.set("sel", 1 << i);
            sim.settle();
            assert_eq!(sim.get("o"), 10 + i as u64);
        }
    }

    #[test]
    fn priority_encoder_prefers_lsb() {
        let mut b = NetlistBuilder::new("t");
        let lines = b.input("l", 5);
        let idx = priority_encode(&mut b, &lines);
        b.output("o", &idx);
        let m = b.finish();
        let mut sim = Simulator::new(&m);
        for v in 1..32u64 {
            sim.set("l", v);
            sim.settle();
            assert_eq!(sim.get("o"), v.trailing_zeros() as u64, "lines={v:05b}");
        }
    }

    #[test]
    fn comparator_gate_count_is_linear() {
        let count = |w: usize| {
            let mut b = NetlistBuilder::new("t");
            let a = b.input("a", w);
            let bb = b.input("b", w);
            let o = unsigned_gt(&mut b, &a, &bb);
            b.output("o", &[o]);
            b.finish().gate_count()
        };
        assert_eq!(count(8) - count(4), count(12) - count(8));
    }
}
