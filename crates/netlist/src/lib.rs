#![warn(missing_docs)]

//! # netlist — gate-level IR, generators, optimizer, analysis, simulation
//!
//! This crate stands in for the RTL + logic-synthesis leg of the paper's
//! toolchain (Synopsys DC over the EGT/CNT-TFT/TSMC libraries):
//!
//! * [`ir`] — flat standard-cell netlists with first-class constant signals
//!   and crossbar ROM macros;
//! * [`builder`] — construction API with word-level helpers;
//! * [`comb`] / [`arith`] / [`seq`] — structural generators (comparators,
//!   decoders, adders, array and constant multipliers, MACs, ReLU, shift
//!   registers) — the component set Table I prices;
//! * [`opt`] — constant folding, identities, CSE and dead-gate removal: the
//!   synthesis optimization that makes *bespoke* classifiers small;
//! * [`analysis`] — area / static power / critical-path reports against a
//!   [`pdk::CellLibrary`];
//! * [`sim`] — levelized functional simulation (combinational + clocked),
//!   used to verify every generated classifier bit-for-bit against its
//!   software model;
//! * [`verilog`] — structural Verilog emission.
//!
//! ```
//! use netlist::builder::NetlistBuilder;
//! use netlist::comb::unsigned_le;
//! use netlist::{analyze, optimize};
//! use pdk::{CellLibrary, Technology};
//!
//! // A bespoke decision-tree node: x <= 102, threshold hardwired.
//! let mut b = NetlistBuilder::new("node");
//! let x = b.input("x", 8);
//! let tau = b.const_word(102, 8);
//! let le = unsigned_le(&mut b, &x, &tau);
//! b.output("le", &[le]);
//! let raw = b.finish();
//! let opt = optimize(&raw);
//! let lib = CellLibrary::for_technology(Technology::Egt);
//! assert!(analyze(&opt, &lib).area < analyze(&raw, &lib).area);
//! ```

pub mod analysis;
pub mod arith;
pub mod batch;
pub mod builder;
pub mod comb;
pub mod compile;
pub mod error;
pub mod fanout;
pub mod faults;
pub mod ir;
pub mod opt;
pub mod seq;
pub mod sim;
pub mod stats;
pub mod testbench;
pub mod verify;
pub mod verilog;

pub use analysis::{analyze, Ppa};
pub use batch::BatchSimulator;
pub use builder::NetlistBuilder;
pub use compile::{CompiledNetlist, WideSim};
pub use error::SimError;
pub use fanout::{fanout_histogram, insert_buffers, max_fanout};
pub use faults::{
    coverage as fault_coverage, try_coverage as try_fault_coverage, Fault, FaultCoverage,
};
pub use ir::{Gate, Module, NetId, Port, RomInstance, Signal};
pub use opt::{cumulative_stats, optimize, optimize_with_stats, OptCumulative, OptStats};
pub use sim::Simulator;
pub use stats::{logic_levels, max_logic_levels};
pub use testbench::to_testbench;
pub use verify::{check_equivalence, miter, Equivalence, MiterError, VerifyError};
pub use verilog::to_verilog;
