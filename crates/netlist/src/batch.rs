//! Bit-parallel batch simulation: 64 input vectors per pass.
//!
//! Every net carries a `u64` whose bit *k* is the net's value under input
//! vector *k* — the classic parallel-pattern trick from fault simulation.
//! Gate evaluation becomes one word-wide boolean op, so a combinational
//! sweep over thousands of vectors runs ~64× faster than the scalar
//! [`crate::sim::Simulator`].
//!
//! [`BatchSimulator`] is the stable 64-lane API. Since the compiled
//! kernel landed it is a thin wrapper over a
//! [`crate::compile::CompiledNetlist`] tape replayed by a
//! [`crate::compile::WideSim`]`<1>`; pipelines that want wider lanes or
//! to share one compilation across threads use those types directly.
//! The original interpreted engine survives as
//! [`reference::InterpretedSimulator`] — the differential oracle the
//! property tests and `sim_bench` measure the compiled kernel against.

use std::sync::Arc;

use crate::compile::{CompiledNetlist, WideSim};
use crate::error::SimError;
use crate::ir::{Module, NetId};

/// A 64-lane combinational batch simulator.
///
/// ```
/// use netlist::batch::BatchSimulator;
/// use netlist::builder::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new("xor");
/// let x = b.input("x", 2);
/// let y = b.xor(x[0], x[1]);
/// b.output("y", &[y]);
/// let m = b.finish();
///
/// let mut sim = BatchSimulator::new(&m);
/// // Lanes 0..4 carry the four input combinations of the 2-bit bus.
/// sim.set_lanes("x", &[0b00, 0b01, 0b10, 0b11]);
/// sim.settle();
/// assert_eq!(sim.lanes("y", 4), vec![0, 1, 1, 0]);
/// ```
#[derive(Debug)]
pub struct BatchSimulator {
    sim: WideSim<1>,
}

impl BatchSimulator {
    /// Compiles a *combinational* module for batch evaluation.
    ///
    /// # Panics
    /// Panics if the module is sequential or invalid. Use
    /// [`BatchSimulator::try_new`] to handle those as errors.
    pub fn new(module: &Module) -> Self {
        match Self::try_new(module) {
            Ok(sim) => sim,
            Err(e) => e.raise(),
        }
    }

    /// Fallible constructor: compiles `module`, reporting sequential or
    /// invalid modules and combinational cycles as [`SimError`].
    pub fn try_new(module: &Module) -> Result<Self, SimError> {
        Ok(BatchSimulator {
            sim: WideSim::new(Arc::new(CompiledNetlist::try_compile(module)?)),
        })
    }

    /// Wraps an already-compiled tape (shared across shards via `Arc`).
    pub fn from_compiled(compiled: Arc<CompiledNetlist>) -> Self {
        BatchSimulator {
            sim: WideSim::new(compiled),
        }
    }

    /// The compiled tape this simulator replays.
    pub fn compiled(&self) -> &CompiledNetlist {
        self.sim.compiled()
    }

    /// Drives input port `name` with up to 64 per-lane values.
    ///
    /// # Panics
    /// Panics if the port does not exist or more than 64 lanes are given.
    /// Use [`BatchSimulator::try_set_lanes`] to handle those as errors.
    pub fn set_lanes(&mut self, name: &str, lane_values: &[u64]) {
        self.sim.set_lanes(name, lane_values);
    }

    /// Fallible lane binding: reports unknown ports and over-wide lane
    /// counts as [`SimError`].
    pub fn try_set_lanes(&mut self, name: &str, lane_values: &[u64]) -> Result<(), SimError> {
        self.sim.try_set_lanes(name, lane_values)
    }

    /// Transposes a chunk of up to 64 input vectors (one value per input
    /// port, in port order) into per-input-net lane words. The returned
    /// image can be replayed cheaply many times via [`Self::load_packed`] —
    /// fault grading packs every vector chunk once and reloads it per
    /// fault.
    ///
    /// # Panics
    /// Panics if more than 64 vectors are given or a vector's arity is
    /// wrong. Use [`BatchSimulator::try_pack_vectors`] to handle those as
    /// errors.
    pub fn pack_vectors(&self, chunk: &[Vec<u64>]) -> Vec<u64> {
        self.sim.pack_vectors(chunk).iter().map(|w| w[0]).collect()
    }

    /// Fallible transpose: reports over-wide chunks and arity mismatches
    /// as [`SimError`].
    pub fn try_pack_vectors(&self, chunk: &[Vec<u64>]) -> Result<Vec<u64>, SimError> {
        Ok(self
            .sim
            .try_pack_vectors(chunk)?
            .iter()
            .map(|w| w[0])
            .collect())
    }

    /// Loads an input image produced by [`Self::pack_vectors`].
    ///
    /// # Panics
    /// Panics if the image length does not match the module's input bits.
    /// Use [`BatchSimulator::try_load_packed`] to handle that as an error.
    pub fn load_packed(&mut self, words: &[u64]) {
        let image: Vec<[u64; 1]> = words.iter().map(|&w| [w]).collect();
        self.sim.load_packed(&image);
    }

    /// Fallible image load: reports a wrong word count as
    /// [`SimError::ImageLength`].
    pub fn try_load_packed(&mut self, words: &[u64]) -> Result<(), SimError> {
        let image: Vec<[u64; 1]> = words.iter().map(|&w| [w]).collect();
        self.sim.try_load_packed(&image)
    }

    /// Pins `net` to a stuck-at constant: every subsequent [`Self::settle`]
    /// evaluates the module with the net forced across all lanes, without
    /// cloning or re-levelizing anything. Replaces any previously injected
    /// fault.
    pub fn inject_fault(&mut self, net: NetId, stuck_at: bool) {
        self.sim.inject_fault(net, stuck_at);
    }

    /// Removes the injected fault, returning to fault-free simulation.
    pub fn clear_fault(&mut self) {
        self.sim.clear_fault();
    }

    /// Evaluates all gates and ROMs once (levelized order), honoring any
    /// injected stuck-at fault.
    pub fn settle(&mut self) {
        self.sim.settle();
    }

    /// Reads output port `name` for the first `lanes` lanes.
    ///
    /// # Panics
    /// Panics if the port does not exist. Use
    /// [`BatchSimulator::try_lanes`] to handle that as an error.
    pub fn lanes(&self, name: &str, lanes: usize) -> Vec<u64> {
        self.sim.lanes(name, lanes)
    }

    /// Fallible port read: reports an unknown output name as
    /// [`SimError::UnknownPort`].
    pub fn try_lanes(&self, name: &str, lanes: usize) -> Result<Vec<u64>, SimError> {
        self.sim.try_lanes(name, lanes)
    }

    /// Lane words of every output-port bit (port-major, bit-minor), masked
    /// to the first `lanes` lanes — a module's full response image, in the
    /// layout [`Self::outputs_match`] compares against.
    pub fn output_words(&self, lanes: usize) -> Vec<u64> {
        self.sim.output_words(lanes)
    }

    /// Compares the current response image against `expected` (produced by
    /// [`Self::output_words`] with the same `lanes`) without allocating —
    /// the detection test in the fault-grading hot loop.
    pub fn outputs_match(&self, expected: &[u64], lanes: usize) -> bool {
        self.sim.outputs_match(expected, lanes)
    }
}

pub mod reference {
    //! The original interpreted 64-lane engine, retained verbatim as a
    //! differential oracle: one `CellKind` dispatch and `Signal` match
    //! per gate per pass, per-lane scalar ROM addressing, no compiled
    //! tape. The workspace property tests pin the compiled kernel
    //! against it, and `sim_bench` reports the compiled kernel's
    //! speedup over it.

    use std::collections::HashMap;

    use pdk::CellKind;

    use crate::error::SimError;
    use crate::ir::{Module, NetId, Signal};

    /// A word with the first `lanes` bits set (`lanes <= 64`).
    fn lane_mask(lanes: usize) -> u64 {
        if lanes >= 64 {
            u64::MAX
        } else {
            (1u64 << lanes) - 1
        }
    }

    /// The interpreted 64-lane batch simulator (pre-compilation engine).
    ///
    /// API-compatible with [`super::BatchSimulator`] so the two can be
    /// driven side by side; it borrows the module instead of compiling
    /// it.
    #[derive(Debug)]
    pub struct InterpretedSimulator<'m> {
        module: &'m Module,
        /// Per-net lane words.
        values: Vec<u64>,
        order: Vec<usize>,
        rom_order: Vec<(usize, usize)>,
        input_ports: HashMap<String, Vec<NetId>>,
        /// All input-port nets flattened in port-major, bit-minor order
        /// (the layout `pack_vectors` / `load_packed` use).
        input_nets: Vec<NetId>,
        /// In-place stuck-at fault: index of the forced net (`usize::MAX`
        /// when fault-free) and the lane word it is pinned to.
        fault_net: usize,
        fault_word: u64,
    }

    impl<'m> InterpretedSimulator<'m> {
        /// Levelizes a *combinational* module for interpreted evaluation.
        ///
        /// # Panics
        /// Panics if the module is sequential or invalid. Use
        /// [`InterpretedSimulator::try_new`] to handle those as errors.
        pub fn new(module: &'m Module) -> Self {
            match Self::try_new(module) {
                Ok(sim) => sim,
                Err(e) => e.raise(),
            }
        }

        /// Fallible constructor: reports sequential or invalid modules and
        /// combinational cycles as [`SimError`].
        pub fn try_new(module: &'m Module) -> Result<Self, SimError> {
            if !module.is_combinational() {
                return Err(SimError::Sequential {
                    module: module.name.clone(),
                });
            }
            module
                .validate()
                .map_err(|reason| SimError::InvalidModule {
                    module: module.name.clone(),
                    reason,
                })?;
            let mut driver: HashMap<NetId, usize> = HashMap::new(); // net -> gate idx
            let mut rom_driver: HashMap<NetId, usize> = HashMap::new();
            for (i, g) in module.gates.iter().enumerate() {
                driver.insert(g.output, i);
            }
            for (i, r) in module.roms.iter().enumerate() {
                for n in &r.data {
                    rom_driver.insert(*n, i);
                }
            }
            // Dependency edges: item depends on items driving its inputs.
            #[derive(Clone, Copy, PartialEq)]
            enum Mark {
                White,
                Grey,
                Black,
            }
            let n_items = module.gates.len() + module.roms.len();
            let mut marks = vec![Mark::White; n_items];
            let item_of_net = |n: NetId| -> Option<usize> {
                driver
                    .get(&n)
                    .copied()
                    .or_else(|| rom_driver.get(&n).map(|r| module.gates.len() + r))
            };
            let inputs_of = |item: usize| -> &[Signal] {
                if item < module.gates.len() {
                    &module.gates[item].inputs
                } else {
                    &module.roms[item - module.gates.len()].addr
                }
            };
            let mut order = Vec::new();
            let mut rom_order = Vec::new();
            let mut stack: Vec<(usize, usize)> = Vec::new();
            for root in 0..n_items {
                if marks[root] != Mark::White {
                    continue;
                }
                marks[root] = Mark::Grey;
                stack.push((root, 0));
                while let Some(&mut (item, ref mut next)) = stack.last_mut() {
                    let ins = inputs_of(item);
                    if *next < ins.len() {
                        let idx = *next;
                        *next += 1;
                        let Signal::Net(n) = ins[idx] else { continue };
                        let Some(dep) = item_of_net(n) else { continue };
                        match marks[dep] {
                            Mark::Black => {}
                            Mark::Grey => {
                                return Err(SimError::CombinationalCycle {
                                    module: module.name.clone(),
                                    net: n.index(),
                                })
                            }
                            Mark::White => {
                                marks[dep] = Mark::Grey;
                                stack.push((dep, 0));
                            }
                        }
                    } else {
                        marks[item] = Mark::Black;
                        if item < module.gates.len() {
                            order.push(item);
                        } else {
                            rom_order.push((order.len(), item - module.gates.len()));
                        }
                        stack.pop();
                    }
                }
            }

            // validate() has already rejected constant input-port bits.
            let input_ports: HashMap<String, Vec<NetId>> = module
                .inputs
                .iter()
                .map(|p| {
                    let nets = p.bits.iter().filter_map(|s| s.net()).collect();
                    (p.name.clone(), nets)
                })
                .collect();
            let input_nets = module
                .inputs
                .iter()
                .flat_map(|p| p.bits.iter().filter_map(|s| s.net()))
                .collect();
            Ok(InterpretedSimulator {
                module,
                values: vec![0; module.net_count()],
                order,
                rom_order,
                input_ports,
                input_nets,
                fault_net: usize::MAX,
                fault_word: 0,
            })
        }

        /// Drives input port `name` with up to 64 per-lane values.
        ///
        /// # Panics
        /// Panics if the port does not exist or more than 64 lanes are
        /// given. Use [`InterpretedSimulator::try_set_lanes`] to handle
        /// those as errors.
        pub fn set_lanes(&mut self, name: &str, lane_values: &[u64]) {
            if let Err(e) = self.try_set_lanes(name, lane_values) {
                e.raise()
            }
        }

        /// Fallible lane binding: reports unknown ports and over-wide
        /// lane counts as [`SimError`].
        pub fn try_set_lanes(&mut self, name: &str, lane_values: &[u64]) -> Result<(), SimError> {
            if lane_values.len() > 64 {
                return Err(SimError::TooManyLanes {
                    given: lane_values.len(),
                    max: 64,
                });
            }
            // Split borrows: the port map is read while the value array
            // is written, so no clone of the net list is needed.
            let Self {
                values,
                input_ports,
                ..
            } = self;
            let Some(nets) = input_ports.get(name) else {
                return Err(SimError::UnknownPort {
                    direction: "input",
                    name: name.to_string(),
                });
            };
            for (bit, net) in nets.iter().enumerate() {
                let mut word = 0u64;
                for (lane, &v) in lane_values.iter().enumerate() {
                    if (v >> bit) & 1 == 1 {
                        word |= 1 << lane;
                    }
                }
                values[net.index()] = word;
            }
            Ok(())
        }

        /// Transposes up to 64 input vectors into per-input-net lane
        /// words (see [`super::BatchSimulator::pack_vectors`]).
        ///
        /// # Panics
        /// Panics if more than 64 vectors are given or a vector's arity
        /// is wrong. Use [`InterpretedSimulator::try_pack_vectors`] to
        /// handle those as errors.
        pub fn pack_vectors(&self, chunk: &[Vec<u64>]) -> Vec<u64> {
            match self.try_pack_vectors(chunk) {
                Ok(words) => words,
                Err(e) => e.raise(),
            }
        }

        /// Fallible transpose: reports over-wide chunks and arity
        /// mismatches as [`SimError`].
        pub fn try_pack_vectors(&self, chunk: &[Vec<u64>]) -> Result<Vec<u64>, SimError> {
            if chunk.len() > 64 {
                return Err(SimError::TooManyLanes {
                    given: chunk.len(),
                    max: 64,
                });
            }
            for (i, v) in chunk.iter().enumerate() {
                if v.len() != self.module.inputs.len() {
                    return Err(SimError::VectorArity {
                        index: i,
                        got: v.len(),
                        want: self.module.inputs.len(),
                    });
                }
            }
            let mut words = vec![0u64; self.input_nets.len()];
            let mut base = 0usize;
            for (pi, port) in self.module.inputs.iter().enumerate() {
                for (lane, v) in chunk.iter().enumerate() {
                    let value = v[pi];
                    for bit in 0..port.width() {
                        if (value >> bit) & 1 == 1 {
                            words[base + bit] |= 1 << lane;
                        }
                    }
                }
                base += port.width();
            }
            Ok(words)
        }

        /// Loads an input image produced by [`Self::pack_vectors`].
        ///
        /// # Panics
        /// Panics if the image length does not match the module's input
        /// bits. Use [`InterpretedSimulator::try_load_packed`] to handle
        /// that as an error.
        pub fn load_packed(&mut self, words: &[u64]) {
            if let Err(e) = self.try_load_packed(words) {
                e.raise()
            }
        }

        /// Fallible image load: reports a wrong word count as
        /// [`SimError::ImageLength`].
        pub fn try_load_packed(&mut self, words: &[u64]) -> Result<(), SimError> {
            if words.len() != self.input_nets.len() {
                return Err(SimError::ImageLength {
                    got: words.len(),
                    want: self.input_nets.len(),
                });
            }
            for (net, &word) in self.input_nets.iter().zip(words) {
                self.values[net.index()] = word;
            }
            Ok(())
        }

        /// Pins `net` to a stuck-at constant across all lanes.
        pub fn inject_fault(&mut self, net: NetId, stuck_at: bool) {
            self.fault_net = net.index();
            self.fault_word = if stuck_at { u64::MAX } else { 0 };
        }

        /// Removes the injected fault.
        pub fn clear_fault(&mut self) {
            self.fault_net = usize::MAX;
        }

        /// Evaluates all gates and ROMs once (levelized order), honoring
        /// any injected stuck-at fault.
        pub fn settle(&mut self) {
            let module = self.module;
            // A stuck input (or any net) is forced before evaluation;
            // stuck gate/ROM outputs are skipped in the loops below so
            // the forced word survives the pass.
            if self.fault_net != usize::MAX {
                self.values[self.fault_net] = self.fault_word;
            }
            // Interleave ROM evaluations at their recorded positions so
            // data dependencies hold: ROMs scheduled before gate
            // `order[k]` are evaluated when the cursor reaches k.
            let mut rom_cursor = 0usize;
            for pos in 0..self.order.len() {
                let gi = self.order[pos];
                while rom_cursor < self.rom_order.len() && self.rom_order[rom_cursor].0 <= pos {
                    let ri = self.rom_order[rom_cursor].1;
                    self.eval_rom(ri);
                    rom_cursor += 1;
                }
                let g = &module.gates[gi];
                let out = g.output.index();
                if out == self.fault_net {
                    continue;
                }
                let v = self.eval_gate(g.kind, &g.inputs);
                self.values[out] = v;
            }
            while rom_cursor < self.rom_order.len() {
                let ri = self.rom_order[rom_cursor].1;
                self.eval_rom(ri);
                rom_cursor += 1;
            }
        }

        /// Reads output port `name` for the first `lanes` lanes.
        ///
        /// # Panics
        /// Panics if the port does not exist. Use
        /// [`InterpretedSimulator::try_lanes`] to handle that as an error.
        pub fn lanes(&self, name: &str, lanes: usize) -> Vec<u64> {
            match self.try_lanes(name, lanes) {
                Ok(v) => v,
                Err(e) => e.raise(),
            }
        }

        /// Fallible port read: reports an unknown output name as
        /// [`SimError::UnknownPort`].
        pub fn try_lanes(&self, name: &str, lanes: usize) -> Result<Vec<u64>, SimError> {
            let Some(port) = self.module.output(name) else {
                return Err(SimError::UnknownPort {
                    direction: "output",
                    name: name.to_string(),
                });
            };
            Ok((0..lanes)
                .map(|lane| {
                    let mut v = 0u64;
                    for (bit, sig) in port.bits.iter().enumerate() {
                        if self.read_lane(*sig, lane) {
                            v |= 1 << bit;
                        }
                    }
                    v
                })
                .collect())
        }

        /// Lane words of every output-port bit (port-major, bit-minor),
        /// masked to the first `lanes` lanes.
        pub fn output_words(&self, lanes: usize) -> Vec<u64> {
            let mask = lane_mask(lanes);
            self.module
                .outputs
                .iter()
                .flat_map(|p| p.bits.iter().map(move |&s| self.read(s) & mask))
                .collect()
        }

        /// Compares the current response image against `expected`.
        pub fn outputs_match(&self, expected: &[u64], lanes: usize) -> bool {
            let mask = lane_mask(lanes);
            let mut it = expected.iter();
            for p in &self.module.outputs {
                for &s in &p.bits {
                    let Some(&want) = it.next() else { return false };
                    if self.read(s) & mask != want {
                        return false;
                    }
                }
            }
            it.next().is_none()
        }

        fn read(&self, s: Signal) -> u64 {
            match s {
                Signal::Const(false) => 0,
                Signal::Const(true) => u64::MAX,
                Signal::Net(n) => self.values[n.index()],
            }
        }

        fn read_lane(&self, s: Signal, lane: usize) -> bool {
            (self.read(s) >> lane) & 1 == 1
        }

        fn eval_gate(&self, kind: CellKind, inputs: &[Signal]) -> u64 {
            let a = self.read(inputs[0]);
            match kind {
                CellKind::Inv => !a,
                CellKind::Buf => a,
                CellKind::Nand2 => !(a & self.read(inputs[1])),
                CellKind::Nor2 => !(a | self.read(inputs[1])),
                CellKind::And2 => a & self.read(inputs[1]),
                CellKind::Or2 => a | self.read(inputs[1]),
                CellKind::Xor2 => a ^ self.read(inputs[1]),
                CellKind::Xnor2 => !(a ^ self.read(inputs[1])),
                CellKind::Mux2 => {
                    let sel = a;
                    let x = self.read(inputs[1]);
                    let y = self.read(inputs[2]);
                    (!sel & x) | (sel & y)
                }
                CellKind::Dff | CellKind::RomBit | CellKind::RomDot => {
                    unreachable!("not combinational cells")
                }
            }
        }

        fn eval_rom(&mut self, ri: usize) {
            let rom = &self.module.roms[ri];
            // Per-lane addressing.
            let mut words = [0u64; 64];
            for (lane, word) in words.iter_mut().enumerate() {
                let mut addr = 0usize;
                for (bit, s) in rom.addr.iter().enumerate() {
                    if self.read_lane(*s, lane) {
                        addr |= 1 << bit;
                    }
                }
                *word = rom.read(addr);
            }
            for (bit, net) in rom.data.iter().enumerate() {
                if net.index() == self.fault_net {
                    continue;
                }
                let mut lanes_word = 0u64;
                for (lane, w) in words.iter().enumerate() {
                    if (w >> bit) & 1 == 1 {
                        lanes_word |= 1 << lane;
                    }
                }
                self.values[net.index()] = lanes_word;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::reference::InterpretedSimulator;
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::ir::Signal;
    use crate::sim::Simulator;

    #[test]
    fn batch_matches_scalar_on_an_adder() {
        let mut b = NetlistBuilder::new("add");
        let x = b.input("x", 4);
        let y = b.input("y", 4);
        let s = crate::arith::add(&mut b, &x, &y);
        b.output("s", &s);
        let m = b.finish();
        let mut batch = BatchSimulator::new(&m);
        let xs: Vec<u64> = (0..16).collect();
        let ys: Vec<u64> = (0..16).map(|v| (v * 7) % 16).collect();
        batch.set_lanes("x", &xs);
        batch.set_lanes("y", &ys);
        batch.settle();
        let got = batch.lanes("s", 16);
        let mut scalar = Simulator::new(&m);
        for lane in 0..16 {
            scalar.set("x", xs[lane]);
            scalar.set("y", ys[lane]);
            scalar.settle();
            assert_eq!(got[lane], scalar.get("s"), "lane {lane}");
        }
    }

    #[test]
    fn batch_handles_roms() {
        use pdk::RomStyle;
        let mut b = NetlistBuilder::new("rom");
        let a = b.input("a", 3);
        let d = b.rom(&a, vec![9, 1, 4, 7, 2, 8, 5, 3], 4, RomStyle::Crossbar);
        b.output("d", &d);
        let m = b.finish();
        let mut batch = BatchSimulator::new(&m);
        let addrs: Vec<u64> = (0..8).collect();
        batch.set_lanes("a", &addrs);
        batch.settle();
        assert_eq!(batch.lanes("d", 8), vec![9, 1, 4, 7, 2, 8, 5, 3]);
    }

    #[test]
    fn constants_broadcast_across_lanes() {
        let mut b = NetlistBuilder::new("c");
        let x = b.input("x", 1);
        let y = b.and(x[0], Signal::ONE);
        let z = b.or(y, Signal::ZERO);
        b.output("z", &[z]);
        let m = b.finish();
        let mut batch = BatchSimulator::new(&m);
        batch.set_lanes("x", &[0, 1, 1, 0]);
        batch.settle();
        assert_eq!(batch.lanes("z", 4), vec![0, 1, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "combinational-only")]
    fn sequential_modules_are_rejected() {
        let mut b = NetlistBuilder::new("seq");
        let x = b.input("x", 1);
        let q = b.dff(x[0], false);
        b.output("q", &[q]);
        let m = b.finish();
        let _ = BatchSimulator::new(&m);
    }

    #[test]
    fn packed_images_replay_like_set_lanes() {
        let mut b = NetlistBuilder::new("add");
        let x = b.input("x", 4);
        let y = b.input("y", 4);
        let s = crate::arith::add(&mut b, &x, &y);
        b.output("s", &s);
        let m = b.finish();
        let mut batch = BatchSimulator::new(&m);
        let vectors: Vec<Vec<u64>> = (0..16).map(|v| vec![v, (v * 3) % 16]).collect();
        let image = batch.pack_vectors(&vectors);
        batch.load_packed(&image);
        batch.settle();
        let via_packed = batch.lanes("s", 16);
        let words = batch.output_words(16);
        assert!(batch.outputs_match(&words, 16));
        batch.set_lanes("x", &(0..16).collect::<Vec<u64>>());
        batch.set_lanes("y", &(0..16).map(|v| (v * 3) % 16).collect::<Vec<u64>>());
        batch.settle();
        assert_eq!(via_packed, batch.lanes("s", 16));
        assert!(batch.outputs_match(&words, 16));
    }

    #[test]
    fn injected_faults_match_the_cloned_reference_injection() {
        // In-place lane-mask injection must agree with the clone-based
        // `faults::inject` on every site and polarity of a real circuit.
        let mut b = NetlistBuilder::new("mix");
        let x = b.input("x", 3);
        let a = b.and(x[0], x[1]);
        let o = b.xor(a, x[2]);
        let n = b.not(o);
        b.output("o", &[o, n]);
        let m = b.finish();
        let vectors: Vec<Vec<u64>> = (0..8).map(|v| vec![v]).collect();
        let mut batch = BatchSimulator::new(&m);
        let image = batch.pack_vectors(&vectors);
        for fault in crate::faults::fault_sites(&m) {
            batch.inject_fault(fault.net, fault.stuck_at);
            batch.load_packed(&image);
            batch.settle();
            let got = batch.lanes("o", 8);
            let faulty = crate::faults::inject(&m, fault);
            let mut reference = Simulator::new(&faulty);
            for (lane, v) in vectors.iter().enumerate() {
                reference.set("x", v[0]);
                reference.settle();
                assert_eq!(got[lane], reference.get("o"), "{fault:?} lane {lane}");
            }
        }
        // Clearing the fault restores fault-free behavior.
        batch.clear_fault();
        batch.load_packed(&image);
        batch.settle();
        let mut clean = Simulator::new(&m);
        for (lane, v) in vectors.iter().enumerate() {
            clean.set("x", v[0]);
            clean.settle();
            assert_eq!(batch.lanes("o", 8)[lane], clean.get("o"));
        }
    }

    #[test]
    fn injected_faults_reach_rom_data_nets() {
        use pdk::RomStyle;
        let mut b = NetlistBuilder::new("rom");
        let a = b.input("a", 2);
        let d = b.rom(&a, vec![0, 1, 2, 3], 2, RomStyle::Crossbar);
        b.output("d", &d);
        let m = b.finish();
        let vectors: Vec<Vec<u64>> = (0..4).map(|v| vec![v]).collect();
        let mut batch = BatchSimulator::new(&m);
        let image = batch.pack_vectors(&vectors);
        // Stick data bit 0 at 1: every even word reads odd.
        let f = crate::faults::Fault {
            net: m.roms[0].data[0],
            stuck_at: true,
        };
        batch.inject_fault(f.net, f.stuck_at);
        batch.load_packed(&image);
        batch.settle();
        assert_eq!(batch.lanes("d", 4), vec![1, 1, 3, 3]);
    }

    #[test]
    fn mixed_rom_and_logic_orders_correctly() {
        use pdk::RomStyle;
        // logic -> ROM -> logic dependency chain.
        let mut b = NetlistBuilder::new("mix");
        let x = b.input("x", 2);
        let inv: Vec<Signal> = x.iter().map(|&s| b.not(s)).collect();
        let d = b.rom(&inv, vec![3, 2, 1, 0], 2, RomStyle::Crossbar);
        let out = b.xor(d[0], d[1]);
        b.output("o", &[out]);
        let m = b.finish();
        let mut batch = BatchSimulator::new(&m);
        let mut scalar = Simulator::new(&m);
        batch.set_lanes("x", &[0, 1, 2, 3]);
        batch.settle();
        let got = batch.lanes("o", 4);
        for v in 0..4u64 {
            scalar.set("x", v);
            scalar.settle();
            assert_eq!(got[v as usize], scalar.get("o"), "v={v}");
        }
    }

    #[test]
    fn compiled_wrapper_matches_the_interpreted_oracle() {
        use pdk::RomStyle;
        // One circuit exercising gates, constants and a ROM, replayed
        // through both engines with a fault sweep: every packed image,
        // response image and match verdict must be bit-identical.
        let mut b = NetlistBuilder::new("pair");
        let x = b.input("x", 4);
        let inv: Vec<Signal> = x.iter().map(|&s| b.not(s)).collect();
        let d = b.rom(&inv[..2], vec![2, 0, 3, 1], 2, RomStyle::Crossbar);
        let g = b.and(d[0], x[2]);
        let h = b.xnor(g, inv[3]);
        b.output("o", &[h, d[1]]);
        let m = b.finish();
        let vectors: Vec<Vec<u64>> = (0..16).map(|v| vec![v]).collect();
        let mut compiled = BatchSimulator::new(&m);
        let mut interp = InterpretedSimulator::new(&m);
        let image = compiled.pack_vectors(&vectors);
        assert_eq!(image, interp.pack_vectors(&vectors));
        for fault in crate::faults::fault_sites(&m) {
            compiled.inject_fault(fault.net, fault.stuck_at);
            interp.inject_fault(fault.net, fault.stuck_at);
            compiled.load_packed(&image);
            interp.load_packed(&image);
            compiled.settle();
            interp.settle();
            let words = interp.output_words(16);
            assert_eq!(compiled.output_words(16), words, "{fault:?}");
            assert!(compiled.outputs_match(&words, 16));
        }
    }
}
