//! Bit-parallel batch simulation: 64 input vectors per pass.
//!
//! Every net carries a `u64` whose bit *k* is the net's value under input
//! vector *k* — the classic parallel-pattern trick from fault simulation.
//! Gate evaluation becomes one word-wide boolean op, so a combinational
//! sweep over thousands of vectors runs ~64× faster than the scalar
//! [`crate::sim::Simulator`]. ROM macros are evaluated per-lane (their
//! addressing is not bitwise), which keeps them exact.

use std::collections::HashMap;

use pdk::CellKind;

use crate::ir::{Module, NetId, Signal};

/// A 64-lane combinational batch simulator.
///
/// ```
/// use netlist::batch::BatchSimulator;
/// use netlist::builder::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new("xor");
/// let x = b.input("x", 2);
/// let y = b.xor(x[0], x[1]);
/// b.output("y", &[y]);
/// let m = b.finish();
///
/// let mut sim = BatchSimulator::new(&m);
/// // Lanes 0..4 carry the four input combinations of the 2-bit bus.
/// sim.set_lanes("x", &[0b00, 0b01, 0b10, 0b11]);
/// sim.settle();
/// assert_eq!(sim.lanes("y", 4), vec![0, 1, 1, 0]);
/// ```
#[derive(Debug)]
pub struct BatchSimulator<'m> {
    module: &'m Module,
    /// Per-net lane words.
    values: Vec<u64>,
    order: Vec<usize>,
    rom_order: Vec<(usize, usize)>,
    input_ports: HashMap<String, Vec<NetId>>,
}

impl<'m> BatchSimulator<'m> {
    /// Levelizes a *combinational* module for batch evaluation.
    ///
    /// # Panics
    /// Panics if the module is sequential or invalid.
    pub fn new(module: &'m Module) -> Self {
        assert!(
            module.is_combinational(),
            "batch simulation is combinational-only"
        );
        module
            .validate()
            .expect("batch-simulating an invalid module");
        // Reuse the scalar simulator's proven levelization by doing a
        // simple Kahn ordering over gates and ROMs.
        let mut driver: HashMap<NetId, usize> = HashMap::new(); // net -> gate idx
        let mut rom_driver: HashMap<NetId, usize> = HashMap::new();
        for (i, g) in module.gates.iter().enumerate() {
            driver.insert(g.output, i);
        }
        for (i, r) in module.roms.iter().enumerate() {
            for n in &r.data {
                rom_driver.insert(*n, i);
            }
        }
        // Dependency edges: item depends on items driving its input nets.
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let n_items = module.gates.len() + module.roms.len();
        let mut marks = vec![Mark::White; n_items];
        let item_of_net = |n: NetId| -> Option<usize> {
            driver
                .get(&n)
                .copied()
                .or_else(|| rom_driver.get(&n).map(|r| module.gates.len() + r))
        };
        let inputs_of = |item: usize| -> &[Signal] {
            if item < module.gates.len() {
                &module.gates[item].inputs
            } else {
                &module.roms[item - module.gates.len()].addr
            }
        };
        let mut order = Vec::new();
        let mut rom_order = Vec::new();
        let mut stack: Vec<(usize, usize)> = Vec::new();
        for root in 0..n_items {
            if marks[root] != Mark::White {
                continue;
            }
            marks[root] = Mark::Grey;
            stack.push((root, 0));
            while let Some(&mut (item, ref mut next)) = stack.last_mut() {
                let ins = inputs_of(item);
                if *next < ins.len() {
                    let idx = *next;
                    *next += 1;
                    let Signal::Net(n) = ins[idx] else { continue };
                    let Some(dep) = item_of_net(n) else { continue };
                    match marks[dep] {
                        Mark::Black => {}
                        Mark::Grey => panic!("combinational cycle in batch simulation"),
                        Mark::White => {
                            marks[dep] = Mark::Grey;
                            stack.push((dep, 0));
                        }
                    }
                } else {
                    marks[item] = Mark::Black;
                    if item < module.gates.len() {
                        order.push(item);
                    } else {
                        rom_order.push((order.len(), item - module.gates.len()));
                    }
                    stack.pop();
                }
            }
        }

        let input_ports = module
            .inputs
            .iter()
            .map(|p| {
                let nets = p.bits.iter().map(|s| s.net().expect("input bit")).collect();
                (p.name.clone(), nets)
            })
            .collect();
        BatchSimulator {
            module,
            values: vec![0; module.net_count()],
            order,
            rom_order,
            input_ports,
        }
    }

    /// Drives input port `name` with up to 64 per-lane values.
    ///
    /// # Panics
    /// Panics if the port does not exist or more than 64 lanes are given.
    pub fn set_lanes(&mut self, name: &str, lane_values: &[u64]) {
        assert!(lane_values.len() <= 64, "at most 64 lanes");
        let nets = self
            .input_ports
            .get(name)
            .unwrap_or_else(|| panic!("no input port named {name}"))
            .clone();
        for (bit, net) in nets.iter().enumerate() {
            let mut word = 0u64;
            for (lane, &v) in lane_values.iter().enumerate() {
                if (v >> bit) & 1 == 1 {
                    word |= 1 << lane;
                }
            }
            self.values[net.index()] = word;
        }
    }

    /// Evaluates all gates and ROMs once (levelized order).
    pub fn settle(&mut self) {
        let module = self.module;
        // Interleave ROM evaluations at their recorded positions so data
        // dependencies hold: ROMs scheduled before gate `order[k]` are
        // evaluated when the cursor reaches k.
        let mut rom_cursor = 0usize;
        for pos in 0..self.order.len() {
            let gi = self.order[pos];
            while rom_cursor < self.rom_order.len() && self.rom_order[rom_cursor].0 <= pos {
                let ri = self.rom_order[rom_cursor].1;
                self.eval_rom(ri);
                rom_cursor += 1;
            }
            let g = &module.gates[gi];
            let v = self.eval_gate(g.kind, &g.inputs);
            self.values[g.output.index()] = v;
        }
        while rom_cursor < self.rom_order.len() {
            let ri = self.rom_order[rom_cursor].1;
            self.eval_rom(ri);
            rom_cursor += 1;
        }
    }

    /// Reads output port `name` for the first `lanes` lanes.
    pub fn lanes(&self, name: &str, lanes: usize) -> Vec<u64> {
        let port = self
            .module
            .output(name)
            .unwrap_or_else(|| panic!("no output port named {name}"));
        (0..lanes)
            .map(|lane| {
                let mut v = 0u64;
                for (bit, sig) in port.bits.iter().enumerate() {
                    if self.read_lane(*sig, lane) {
                        v |= 1 << bit;
                    }
                }
                v
            })
            .collect()
    }

    fn read(&self, s: Signal) -> u64 {
        match s {
            Signal::Const(false) => 0,
            Signal::Const(true) => u64::MAX,
            Signal::Net(n) => self.values[n.index()],
        }
    }

    fn read_lane(&self, s: Signal, lane: usize) -> bool {
        (self.read(s) >> lane) & 1 == 1
    }

    fn eval_gate(&self, kind: CellKind, inputs: &[Signal]) -> u64 {
        let a = self.read(inputs[0]);
        match kind {
            CellKind::Inv => !a,
            CellKind::Buf => a,
            CellKind::Nand2 => !(a & self.read(inputs[1])),
            CellKind::Nor2 => !(a | self.read(inputs[1])),
            CellKind::And2 => a & self.read(inputs[1]),
            CellKind::Or2 => a | self.read(inputs[1]),
            CellKind::Xor2 => a ^ self.read(inputs[1]),
            CellKind::Xnor2 => !(a ^ self.read(inputs[1])),
            CellKind::Mux2 => {
                let sel = a;
                let x = self.read(inputs[1]);
                let y = self.read(inputs[2]);
                (!sel & x) | (sel & y)
            }
            CellKind::Dff | CellKind::RomBit | CellKind::RomDot => {
                unreachable!("not combinational cells")
            }
        }
    }

    fn eval_rom(&mut self, ri: usize) {
        let rom = &self.module.roms[ri];
        // Per-lane addressing.
        let mut words = [0u64; 64];
        for (lane, word) in words.iter_mut().enumerate() {
            let mut addr = 0usize;
            for (bit, s) in rom.addr.iter().enumerate() {
                if self.read_lane(*s, lane) {
                    addr |= 1 << bit;
                }
            }
            *word = rom.read(addr);
        }
        for (bit, net) in rom.data.iter().enumerate() {
            let mut lanes_word = 0u64;
            for (lane, w) in words.iter().enumerate() {
                if (w >> bit) & 1 == 1 {
                    lanes_word |= 1 << lane;
                }
            }
            self.values[net.index()] = lanes_word;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::sim::Simulator;

    #[test]
    fn batch_matches_scalar_on_an_adder() {
        let mut b = NetlistBuilder::new("add");
        let x = b.input("x", 4);
        let y = b.input("y", 4);
        let s = crate::arith::add(&mut b, &x, &y);
        b.output("s", &s);
        let m = b.finish();
        let mut batch = BatchSimulator::new(&m);
        let xs: Vec<u64> = (0..16).collect();
        let ys: Vec<u64> = (0..16).map(|v| (v * 7) % 16).collect();
        batch.set_lanes("x", &xs);
        batch.set_lanes("y", &ys);
        batch.settle();
        let got = batch.lanes("s", 16);
        let mut scalar = Simulator::new(&m);
        for lane in 0..16 {
            scalar.set("x", xs[lane]);
            scalar.set("y", ys[lane]);
            scalar.settle();
            assert_eq!(got[lane], scalar.get("s"), "lane {lane}");
        }
    }

    #[test]
    fn batch_handles_roms_per_lane() {
        use pdk::RomStyle;
        let mut b = NetlistBuilder::new("rom");
        let a = b.input("a", 3);
        let d = b.rom(&a, vec![9, 1, 4, 7, 2, 8, 5, 3], 4, RomStyle::Crossbar);
        b.output("d", &d);
        let m = b.finish();
        let mut batch = BatchSimulator::new(&m);
        let addrs: Vec<u64> = (0..8).collect();
        batch.set_lanes("a", &addrs);
        batch.settle();
        assert_eq!(batch.lanes("d", 8), vec![9, 1, 4, 7, 2, 8, 5, 3]);
    }

    #[test]
    fn constants_broadcast_across_lanes() {
        let mut b = NetlistBuilder::new("c");
        let x = b.input("x", 1);
        let y = b.and(x[0], Signal::ONE);
        let z = b.or(y, Signal::ZERO);
        b.output("z", &[z]);
        let m = b.finish();
        let mut batch = BatchSimulator::new(&m);
        batch.set_lanes("x", &[0, 1, 1, 0]);
        batch.settle();
        assert_eq!(batch.lanes("z", 4), vec![0, 1, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "combinational-only")]
    fn sequential_modules_are_rejected() {
        let mut b = NetlistBuilder::new("seq");
        let x = b.input("x", 1);
        let q = b.dff(x[0], false);
        b.output("q", &[q]);
        let m = b.finish();
        let _ = BatchSimulator::new(&m);
    }

    #[test]
    fn mixed_rom_and_logic_orders_correctly() {
        use pdk::RomStyle;
        // logic -> ROM -> logic dependency chain.
        let mut b = NetlistBuilder::new("mix");
        let x = b.input("x", 2);
        let inv: Vec<Signal> = x.iter().map(|&s| b.not(s)).collect();
        let d = b.rom(&inv, vec![3, 2, 1, 0], 2, RomStyle::Crossbar);
        let out = b.xor(d[0], d[1]);
        b.output("o", &[out]);
        let m = b.finish();
        let mut batch = BatchSimulator::new(&m);
        let mut scalar = Simulator::new(&m);
        batch.set_lanes("x", &[0, 1, 2, 3]);
        batch.settle();
        let got = batch.lanes("o", 4);
        for v in 0..4u64 {
            scalar.set("x", v);
            scalar.settle();
            assert_eq!(got[v as usize], scalar.get("o"), "v={v}");
        }
    }
}
