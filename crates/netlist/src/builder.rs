//! Netlist construction API.
//!
//! [`NetlistBuilder`] wraps a [`Module`] under construction and provides
//! single-bit logic helpers plus little-endian multi-bit "word" helpers.
//! Structural generators in [`crate::comb`], [`crate::arith`] and
//! [`crate::seq`] are all written against this builder.
//!
//! The builder emits gates *verbatim*, even when inputs are constants; the
//! separation between construction and [`crate::opt`]imization mirrors the
//! paper's flow (RTL generation, then logic synthesis) and lets the bespoke
//! experiments measure exactly how much the constant-driven optimization
//! buys.

use pdk::rom::RomStyle;
use pdk::CellKind;

use crate::error::SimError;
use crate::ir::{Gate, Module, NetId, Port, RomInstance, Signal};

/// Incrementally builds a [`Module`].
///
/// ```
/// use netlist::builder::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new("majority");
/// let x = b.input("x", 3);
/// let ab = b.and(x[0], x[1]);
/// let bc = b.and(x[1], x[2]);
/// let ac = b.and(x[0], x[2]);
/// let t = b.or(ab, bc);
/// let m = b.or(t, ac);
/// b.output("m", &[m]);
/// let module = b.finish();
/// assert_eq!(module.gate_count(), 5);
/// ```
#[derive(Debug)]
pub struct NetlistBuilder {
    module: Module,
    region_stack: Vec<u16>,
}

impl NetlistBuilder {
    /// Starts a new module named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            module: Module::new(name),
            region_stack: vec![0],
        }
    }

    /// Enters a named hierarchy region: gates emitted until the matching
    /// [`NetlistBuilder::pop_region`] are tagged with it, enabling
    /// per-block cost breakdowns (`analysis::area_by_region`). Regions
    /// with the same name share a tag.
    pub fn push_region(&mut self, name: &str) {
        let idx = match self.module.regions.iter().position(|r| r == name) {
            Some(i) => i as u16,
            None => {
                self.module.regions.push(name.to_string());
                (self.module.regions.len() - 1) as u16
            }
        };
        self.region_stack.push(idx);
    }

    /// Leaves the current region (back to the enclosing one).
    ///
    /// # Panics
    /// Panics when called without a matching [`NetlistBuilder::push_region`].
    pub fn pop_region(&mut self) {
        assert!(
            self.region_stack.len() > 1,
            "pop_region without push_region"
        );
        self.region_stack.pop();
    }

    fn current_region(&self) -> u16 {
        *self.region_stack.last().expect("region stack never empty")
    }

    /// Allocates a fresh, undriven net.
    pub fn fresh_net(&mut self) -> NetId {
        let id = NetId(self.module.net_count);
        self.module.net_count += 1;
        id
    }

    /// Declares an input port of `width` bits and returns its signals
    /// (little-endian).
    pub fn input(&mut self, name: impl Into<String>, width: usize) -> Vec<Signal> {
        let bits: Vec<NetId> = (0..width).map(|_| self.fresh_net()).collect();
        let signals: Vec<Signal> = bits.iter().copied().map(Signal::Net).collect();
        self.module.inputs.push(Port {
            name: name.into(),
            bits: signals.clone(),
        });
        signals
    }

    /// Declares an output port driven by `bits` (little-endian).
    pub fn output(&mut self, name: impl Into<String>, bits: &[Signal]) {
        self.module.outputs.push(Port {
            name: name.into(),
            bits: bits.to_vec(),
        });
    }

    /// Emits one gate of `kind` and returns its output signal.
    ///
    /// # Panics
    /// Panics if `inputs.len()` does not match the cell's arity.
    pub fn gate(&mut self, kind: CellKind, inputs: &[Signal]) -> Signal {
        assert_eq!(
            inputs.len(),
            kind.input_count(),
            "{kind} expects {} inputs, got {}",
            kind.input_count(),
            inputs.len()
        );
        let output = self.fresh_net();
        let region = self.current_region();
        self.module.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output,
            init: false,
            region,
        });
        Signal::Net(output)
    }

    /// Inverter.
    pub fn not(&mut self, a: Signal) -> Signal {
        self.gate(CellKind::Inv, &[a])
    }

    /// Buffer (used by analog-style fan-out repair and ROM sensing).
    pub fn buf(&mut self, a: Signal) -> Signal {
        self.gate(CellKind::Buf, &[a])
    }

    /// 2-input AND.
    pub fn and(&mut self, a: Signal, b: Signal) -> Signal {
        self.gate(CellKind::And2, &[a, b])
    }

    /// 2-input OR.
    pub fn or(&mut self, a: Signal, b: Signal) -> Signal {
        self.gate(CellKind::Or2, &[a, b])
    }

    /// 2-input NAND.
    pub fn nand(&mut self, a: Signal, b: Signal) -> Signal {
        self.gate(CellKind::Nand2, &[a, b])
    }

    /// 2-input NOR.
    pub fn nor(&mut self, a: Signal, b: Signal) -> Signal {
        self.gate(CellKind::Nor2, &[a, b])
    }

    /// 2-input XOR.
    pub fn xor(&mut self, a: Signal, b: Signal) -> Signal {
        self.gate(CellKind::Xor2, &[a, b])
    }

    /// 2-input XNOR.
    pub fn xnor(&mut self, a: Signal, b: Signal) -> Signal {
        self.gate(CellKind::Xnor2, &[a, b])
    }

    /// 2:1 mux — returns `a` when `sel` is 0, `b` when `sel` is 1.
    pub fn mux(&mut self, sel: Signal, a: Signal, b: Signal) -> Signal {
        self.gate(CellKind::Mux2, &[sel, a, b])
    }

    /// D flip-flop with power-on value `init`; returns Q.
    pub fn dff(&mut self, d: Signal, init: bool) -> Signal {
        let output = self.fresh_net();
        let region = self.current_region();
        self.module.gates.push(Gate {
            kind: CellKind::Dff,
            inputs: vec![d],
            output,
            init,
            region,
        });
        Signal::Net(output)
    }

    /// Instantiates a ROM macro and returns its data outputs (little-endian).
    ///
    /// `contents[i]` is the word read at address `i`; addresses past the end
    /// read zero (the paper sizes serial-tree threshold ROMs for a *full*
    /// tree even when the trained tree is unbalanced).
    pub fn rom(
        &mut self,
        addr: &[Signal],
        contents: Vec<u64>,
        data_bits: usize,
        style: RomStyle,
    ) -> Vec<Signal> {
        assert!(!addr.is_empty(), "ROM requires at least one address bit");
        assert!(
            (1..=64).contains(&data_bits),
            "ROM word width must be 1..=64"
        );
        let data: Vec<NetId> = (0..data_bits).map(|_| self.fresh_net()).collect();
        let signals = data.iter().copied().map(Signal::Net).collect();
        self.module.roms.push(RomInstance {
            addr: addr.to_vec(),
            data,
            contents,
            style,
        });
        signals
    }

    /// A `width`-bit constant word (no hardware; pure signals).
    pub fn const_word(&self, value: u64, width: usize) -> Vec<Signal> {
        (0..width)
            .map(|i| Signal::Const((value >> i) & 1 == 1))
            .collect()
    }

    /// Per-bit 2:1 mux over two equal-width words.
    ///
    /// # Panics
    /// Panics if the words differ in width.
    pub fn mux_word(&mut self, sel: Signal, a: &[Signal], b: &[Signal]) -> Vec<Signal> {
        assert_eq!(a.len(), b.len(), "mux_word requires equal widths");
        a.iter()
            .zip(b)
            .map(|(&x, &y)| self.mux(sel, x, y))
            .collect()
    }

    /// Word-wide register bank; returns the Q word.
    pub fn register(&mut self, d: &[Signal], init: u64) -> Vec<Signal> {
        d.iter()
            .enumerate()
            .map(|(i, &bit)| self.dff(bit, (init >> i) & 1 == 1))
            .collect()
    }

    /// Selects one of `words` by binary select `sel` using a mux tree.
    ///
    /// All words must share a width. Missing leaves (when `words.len()` is
    /// not a power of two) read as zero.
    ///
    /// # Panics
    /// Panics if `words` is empty or widths differ.
    pub fn mux_tree(&mut self, sel: &[Signal], words: &[Vec<Signal>]) -> Vec<Signal> {
        assert!(!words.is_empty(), "mux_tree over no words");
        let width = words[0].len();
        assert!(
            words.iter().all(|w| w.len() == width),
            "mux_tree width mismatch"
        );
        let mut layer: Vec<Vec<Signal>> = words.to_vec();
        for &s in sel {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            let zero = self.const_word(0, width);
            for pair in layer.chunks(2) {
                let a = &pair[0];
                let b = pair.get(1).unwrap_or(&zero);
                next.push(self.mux_word(s, a, b));
            }
            layer = next;
        }
        assert_eq!(
            layer.len(),
            1,
            "select width {} too small for {} words",
            sel.len(),
            words.len()
        );
        layer.pop().unwrap()
    }

    /// Reduction OR over arbitrarily many signals (balanced tree).
    pub fn or_reduce(&mut self, signals: &[Signal]) -> Signal {
        self.reduce(signals, |b, x, y| b.or(x, y))
    }

    /// Reduction AND over arbitrarily many signals (balanced tree).
    pub fn and_reduce(&mut self, signals: &[Signal]) -> Signal {
        self.reduce(signals, |b, x, y| b.and(x, y))
    }

    fn reduce(
        &mut self,
        signals: &[Signal],
        mut op: impl FnMut(&mut Self, Signal, Signal) -> Signal,
    ) -> Signal {
        assert!(!signals.is_empty(), "reduction over no signals");
        let mut layer = signals.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    next.push(op(self, pair[0], pair[1]));
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        layer[0]
    }

    /// Access to the module under construction.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Emits a gate onto a pre-allocated output net (used by the miter
    /// constructor when instantiating an existing module).
    pub(crate) fn push_raw_gate(&mut self, kind: CellKind, inputs: Vec<Signal>, output: NetId) {
        let region = self.current_region();
        self.module.gates.push(Gate {
            kind,
            inputs,
            output,
            init: false,
            region,
        });
    }

    /// Emits a ROM macro onto pre-allocated data nets (miter instantiation).
    pub(crate) fn push_raw_rom(
        &mut self,
        addr: Vec<Signal>,
        data: Vec<NetId>,
        contents: Vec<u64>,
        style: RomStyle,
    ) {
        self.module.roms.push(RomInstance {
            addr,
            data,
            contents,
            style,
        });
    }

    /// Rewires the D input of the flip-flop driving `q`.
    ///
    /// Sequential feedback (a shift register capturing a comparator that
    /// reads the register's own outputs) cannot be expressed in a single
    /// forward pass; build the DFF with a placeholder D, then close the
    /// loop with this method.
    ///
    /// # Panics
    /// Panics if `q` is not driven by a flip-flop in this module.
    pub fn set_dff_input(&mut self, q: Signal, d: Signal) {
        let net = q.net().expect("flip-flop output must be a net");
        let gate = self
            .module
            .gates
            .iter_mut()
            .find(|g| g.kind == CellKind::Dff && g.output == net)
            .expect("no flip-flop drives the given signal");
        gate.inputs[0] = d;
    }

    /// Index of the most recently emitted gate.
    ///
    /// # Panics
    /// Panics if no gate has been emitted yet.
    pub(crate) fn last_gate_index(&self) -> usize {
        assert!(!self.module.gates.is_empty(), "no gates emitted");
        self.module.gates.len() - 1
    }

    /// Rewrites one input pin of an existing gate (used to close sequential
    /// feedback loops such as enable registers).
    pub(crate) fn patch_gate_input(&mut self, gate_index: usize, pin: usize, sig: Signal) {
        self.module.gates[gate_index].inputs[pin] = sig;
    }

    /// Finalizes and returns the module.
    ///
    /// # Panics
    /// Panics if the module fails [`Module::validate`]; generators in this
    /// crate never produce invalid modules, so a panic indicates a bug.
    /// Callers assembling modules from untrusted or randomized input (the
    /// differential fuzzer's netlist generator, for one) should use
    /// [`NetlistBuilder::try_finish`] instead.
    pub fn finish(self) -> Module {
        match self.try_finish() {
            Ok(m) => m,
            Err(SimError::InvalidModule { module, reason }) => {
                panic!("generated module {module} is invalid: {reason}")
            }
            Err(e) => e.raise(),
        }
    }

    /// Finalizes the module, returning the validation failure (wrapped in
    /// [`SimError::InvalidModule`]) instead of panicking, so callers can
    /// report which generator produced the invalid module.
    pub fn try_finish(self) -> Result<Module, SimError> {
        match self.module.validate() {
            Ok(()) => Ok(self.module),
            Err(reason) => Err(SimError::InvalidModule {
                module: self.module.name.clone(),
                reason,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_allocate_distinct_nets() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x", 4);
        let y = b.input("y", 2);
        let nets: std::collections::HashSet<_> =
            x.iter().chain(&y).map(|s| s.net().unwrap()).collect();
        assert_eq!(nets.len(), 6);
    }

    #[test]
    fn const_word_is_little_endian() {
        let b = NetlistBuilder::new("t");
        let w = b.const_word(0b1010, 4);
        assert_eq!(w[0], Signal::ZERO);
        assert_eq!(w[1], Signal::ONE);
        assert_eq!(w[2], Signal::ZERO);
        assert_eq!(w[3], Signal::ONE);
    }

    #[test]
    fn try_finish_reports_validation_errors() {
        let mut b = NetlistBuilder::new("bad");
        let dangling = b.fresh_net();
        b.output("o", &[Signal::Net(dangling)]);
        match b.try_finish() {
            Err(SimError::InvalidModule { module, reason }) => {
                assert_eq!(module, "bad");
                assert!(!reason.is_empty());
            }
            other => panic!("expected InvalidModule, got {other:?}"),
        }

        let mut b = NetlistBuilder::new("good");
        let x = b.input("x", 1);
        b.output("o", &[x[0]]);
        assert!(b.try_finish().is_ok());
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn arity_is_enforced() {
        let mut b = NetlistBuilder::new("t");
        b.gate(CellKind::And2, &[Signal::ONE]);
    }

    #[test]
    fn mux_tree_handles_non_power_of_two() {
        let mut b = NetlistBuilder::new("t");
        let sel = b.input("sel", 2);
        let words: Vec<Vec<Signal>> = (0..3).map(|v| b.const_word(v, 2)).collect();
        let out = b.mux_tree(&sel, &words);
        assert_eq!(out.len(), 2);
        b.output("o", &out);
        let m = b.finish();
        // Two mux layers over 3 words: 2 + 1 word-muxes, 2 bits each.
        assert_eq!(m.gate_count(), 6);
    }

    #[test]
    fn reduce_builds_balanced_trees() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x", 5);
        let o = b.or_reduce(&x);
        b.output("o", &[o]);
        let m = b.finish();
        assert_eq!(m.gate_count(), 4); // n-1 gates for n inputs
    }

    #[test]
    fn dff_counts_as_sequential() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x", 1);
        let q = b.dff(x[0], true);
        b.output("q", &[q]);
        let m = b.finish();
        assert_eq!(m.dff_count(), 1);
        assert!(!m.is_combinational());
        assert!(m.gates[0].init);
    }

    #[test]
    fn finish_validates() {
        let mut b = NetlistBuilder::new("ok");
        let x = b.input("x", 2);
        let y = b.and(x[0], x[1]);
        b.output("y", &[y]);
        let m = b.finish();
        assert_eq!(m.input("x").unwrap().width(), 2);
        assert_eq!(m.output("y").unwrap().width(), 1);
    }
}
