//! Functional simulation of gate-level modules.
//!
//! [`Simulator`] levelizes a [`Module`] once (topological order over its
//! combinational gates and ROM macros) and then evaluates it: `set` input
//! ports, `settle` combinational logic, `get` outputs, and `step` a clock
//! edge for sequential designs like the serial decision tree.
//!
//! Simulation is the verification backbone of this reproduction: every
//! generated classifier netlist is checked bit-for-bit against the software
//! model that generated it (see the `printed-core` tests and the
//! workspace-level property tests).

use std::collections::HashMap;

use pdk::CellKind;

use crate::error::SimError;
use crate::ir::{Module, NetId, Signal};

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Driver {
    /// Module input bit.
    Input,
    /// Combinational gate at index.
    Gate(usize),
    /// Flip-flop at gate index (a sequential source).
    Dff(usize),
    /// ROM macro at index.
    Rom(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvalItem {
    Gate(usize),
    Rom(usize),
}

/// A levelized functional simulator over one module.
///
/// ```
/// use netlist::builder::NetlistBuilder;
/// use netlist::sim::Simulator;
///
/// let mut b = NetlistBuilder::new("xor");
/// let x = b.input("x", 2);
/// let y = b.xor(x[0], x[1]);
/// b.output("y", &[y]);
/// let m = b.finish();
///
/// let mut sim = Simulator::new(&m);
/// sim.set("x", 0b10);
/// sim.settle();
/// assert_eq!(sim.get("y"), 1);
/// ```
#[derive(Debug)]
pub struct Simulator<'m> {
    module: &'m Module,
    values: Vec<bool>,
    /// Current Q of each gate slot (only meaningful for DFFs).
    state: Vec<bool>,
    order: Vec<EvalItem>,
    input_ports: HashMap<String, Vec<NetId>>,
}

impl<'m> Simulator<'m> {
    /// Levelizes `module` and initializes flip-flops to their `init` values.
    ///
    /// # Panics
    /// Panics if the module contains a combinational cycle or fails
    /// validation. Use [`Simulator::try_new`] to handle those as errors.
    pub fn new(module: &'m Module) -> Self {
        match Self::try_new(module) {
            Ok(sim) => sim,
            Err(e) => e.raise(),
        }
    }

    /// Fallible constructor: levelizes `module`, reporting validation
    /// failures and combinational cycles as [`SimError`] instead of
    /// panicking.
    pub fn try_new(module: &'m Module) -> Result<Self, SimError> {
        module
            .validate()
            .map_err(|reason| SimError::InvalidModule {
                module: module.name.clone(),
                reason,
            })?;
        let mut drivers: HashMap<NetId, Driver> = HashMap::new();
        for port in &module.inputs {
            for bit in &port.bits {
                if let Signal::Net(n) = bit {
                    drivers.insert(*n, Driver::Input);
                }
            }
        }
        for (i, gate) in module.gates.iter().enumerate() {
            let d = if gate.kind.is_sequential() {
                Driver::Dff(i)
            } else {
                Driver::Gate(i)
            };
            drivers.insert(gate.output, d);
        }
        for (i, rom) in module.roms.iter().enumerate() {
            for net in &rom.data {
                drivers.insert(*net, Driver::Rom(i));
            }
        }

        // Depth-first topological ordering of combinational items.
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut gate_marks = vec![Mark::White; module.gates.len()];
        let mut rom_marks = vec![Mark::White; module.roms.len()];
        let mut order = Vec::new();
        // Iterative DFS to survive deep ripple chains.
        let mut stack: Vec<(EvalItem, usize)> = Vec::new();
        let item_inputs = |item: EvalItem| -> &[Signal] {
            match item {
                EvalItem::Gate(i) => &module.gates[i].inputs,
                EvalItem::Rom(i) => &module.roms[i].addr,
            }
        };
        let mark_of = |item: EvalItem, g: &[Mark], r: &[Mark]| match item {
            EvalItem::Gate(i) => g[i],
            EvalItem::Rom(i) => r[i],
        };
        let roots: Vec<EvalItem> = (0..module.gates.len())
            .filter(|&i| !module.gates[i].kind.is_sequential())
            .map(EvalItem::Gate)
            .chain((0..module.roms.len()).map(EvalItem::Rom))
            .collect();
        for root in roots {
            if mark_of(root, &gate_marks, &rom_marks) != Mark::White {
                continue;
            }
            stack.push((root, 0));
            match root {
                EvalItem::Gate(i) => gate_marks[i] = Mark::Grey,
                EvalItem::Rom(i) => rom_marks[i] = Mark::Grey,
            }
            while let Some(&mut (item, ref mut next_input)) = stack.last_mut() {
                let inputs = item_inputs(item);
                if *next_input < inputs.len() {
                    let idx = *next_input;
                    *next_input += 1;
                    let Signal::Net(n) = inputs[idx] else {
                        continue;
                    };
                    let dep = match drivers.get(&n) {
                        Some(Driver::Gate(g)) => EvalItem::Gate(*g),
                        Some(Driver::Rom(r)) => EvalItem::Rom(*r),
                        // Inputs and DFF outputs are sources.
                        _ => continue,
                    };
                    match mark_of(dep, &gate_marks, &rom_marks) {
                        Mark::Black => {}
                        Mark::Grey => {
                            return Err(SimError::CombinationalCycle {
                                module: module.name.clone(),
                                net: n.index(),
                            })
                        }
                        Mark::White => {
                            match dep {
                                EvalItem::Gate(i) => gate_marks[i] = Mark::Grey,
                                EvalItem::Rom(i) => rom_marks[i] = Mark::Grey,
                            }
                            stack.push((dep, 0));
                        }
                    }
                } else {
                    match item {
                        EvalItem::Gate(i) => gate_marks[i] = Mark::Black,
                        EvalItem::Rom(i) => rom_marks[i] = Mark::Black,
                    }
                    order.push(item);
                    stack.pop();
                }
            }
        }

        let mut state = vec![false; module.gates.len()];
        for (i, gate) in module.gates.iter().enumerate() {
            if gate.kind.is_sequential() {
                state[i] = gate.init;
            }
        }
        let input_ports = module
            .inputs
            .iter()
            .map(|p| {
                // validate() has already rejected constant input-port bits.
                let nets = p.bits.iter().filter_map(|s| s.net()).collect();
                (p.name.clone(), nets)
            })
            .collect();

        Ok(Simulator {
            module,
            values: vec![false; module.net_count()],
            state,
            order,
            input_ports,
        })
    }

    /// Drives input port `name` with the little-endian bits of `value`.
    ///
    /// # Panics
    /// Panics if the port does not exist. Use [`Simulator::try_set`] to
    /// handle the unknown-port case as an error.
    pub fn set(&mut self, name: &str, value: u64) {
        if let Err(e) = self.try_set(name, value) {
            e.raise()
        }
    }

    /// Fallible port binding: drives input port `name`, reporting an
    /// unknown name as [`SimError::UnknownPort`].
    pub fn try_set(&mut self, name: &str, value: u64) -> Result<(), SimError> {
        let Some(nets) = self.input_ports.get(name) else {
            return Err(SimError::UnknownPort {
                direction: "input",
                name: name.to_string(),
            });
        };
        let nets = nets.clone();
        for (i, net) in nets.iter().enumerate() {
            self.values[net.index()] = (value >> i) & 1 == 1;
        }
        Ok(())
    }

    /// Propagates all combinational logic (one levelized pass).
    pub fn settle(&mut self) {
        let module = self.module;
        // Publish flip-flop state onto Q nets first.
        for (i, gate) in module.gates.iter().enumerate() {
            if gate.kind.is_sequential() {
                self.values[gate.output.index()] = self.state[i];
            }
        }
        for idx in 0..self.order.len() {
            match self.order[idx] {
                EvalItem::Gate(i) => {
                    let gate = &module.gates[i];
                    let v = self.eval_gate(gate.kind, &gate.inputs);
                    self.values[gate.output.index()] = v;
                }
                EvalItem::Rom(i) => {
                    let rom = &module.roms[i];
                    let mut addr = 0usize;
                    for (bit, sig) in rom.addr.iter().enumerate() {
                        if self.read(*sig) {
                            addr |= 1 << bit;
                        }
                    }
                    let word = rom.read(addr);
                    for (bit, net) in rom.data.iter().enumerate() {
                        self.values[net.index()] = (word >> bit) & 1 == 1;
                    }
                }
            }
        }
    }

    /// Settles, then advances one clock edge (captures every DFF's D input).
    pub fn step(&mut self) {
        self.settle();
        let module = self.module;
        for (i, g) in module.gates.iter().enumerate() {
            if g.kind.is_sequential() {
                self.state[i] = self.read(g.inputs[0]);
            }
        }
    }

    /// Resets all flip-flops to their power-on values.
    pub fn reset(&mut self) {
        for (i, gate) in self.module.gates.iter().enumerate() {
            if gate.kind.is_sequential() {
                self.state[i] = gate.init;
            }
        }
    }

    /// Reads output port `name` as a little-endian word.
    ///
    /// # Panics
    /// Panics if the port does not exist. Use [`Simulator::try_get`] to
    /// handle the unknown-port case as an error.
    pub fn get(&self, name: &str) -> u64 {
        match self.try_get(name) {
            Ok(v) => v,
            Err(e) => e.raise(),
        }
    }

    /// Fallible port read: reports an unknown output name as
    /// [`SimError::UnknownPort`].
    pub fn try_get(&self, name: &str) -> Result<u64, SimError> {
        let Some(port) = self.module.output(name) else {
            return Err(SimError::UnknownPort {
                direction: "output",
                name: name.to_string(),
            });
        };
        let mut v = 0u64;
        for (i, sig) in port.bits.iter().enumerate() {
            if self.read(*sig) {
                v |= 1 << i;
            }
        }
        Ok(v)
    }

    /// Reads a single signal's current value.
    pub fn read(&self, sig: Signal) -> bool {
        match sig {
            Signal::Const(b) => b,
            Signal::Net(n) => self.values[n.index()],
        }
    }

    fn eval_gate(&self, kind: CellKind, inputs: &[Signal]) -> bool {
        let a = self.read(inputs[0]);
        match kind {
            CellKind::Inv => !a,
            CellKind::Buf => a,
            CellKind::Nand2 => !(a & self.read(inputs[1])),
            CellKind::Nor2 => !(a | self.read(inputs[1])),
            CellKind::And2 => a & self.read(inputs[1]),
            CellKind::Or2 => a | self.read(inputs[1]),
            CellKind::Xor2 => a ^ self.read(inputs[1]),
            CellKind::Xnor2 => !(a ^ self.read(inputs[1])),
            CellKind::Mux2 => {
                if a {
                    self.read(inputs[2])
                } else {
                    self.read(inputs[1])
                }
            }
            CellKind::Dff => unreachable!("DFFs are evaluated by step()"),
            CellKind::RomBit | CellKind::RomDot => {
                unreachable!("ROM bits live inside ROM macros")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use pdk::rom::RomStyle;

    #[test]
    fn all_gate_functions() {
        let mut b = NetlistBuilder::new("gates");
        let x = b.input("x", 2);
        let outs = vec![
            b.not(x[0]),
            b.buf(x[0]),
            b.and(x[0], x[1]),
            b.or(x[0], x[1]),
            b.nand(x[0], x[1]),
            b.nor(x[0], x[1]),
            b.xor(x[0], x[1]),
            b.xnor(x[0], x[1]),
        ];
        b.output("o", &outs);
        let m = b.finish();
        let mut sim = Simulator::new(&m);
        for v in 0..4u64 {
            sim.set("x", v);
            sim.settle();
            let (a, bb) = (v & 1 == 1, v & 2 == 2);
            let expect = [
                !a,
                a,
                a & bb,
                a | bb,
                !(a & bb),
                !(a | bb),
                a ^ bb,
                !(a ^ bb),
            ];
            for (i, e) in expect.into_iter().enumerate() {
                assert_eq!((sim.get("o") >> i) & 1 == 1, e, "v={v} out={i}");
            }
        }
    }

    #[test]
    fn mux_selects() {
        let mut b = NetlistBuilder::new("mux");
        let x = b.input("x", 3); // sel, a, b
        let o = b.mux(x[0], x[1], x[2]);
        b.output("o", &[o]);
        let m = b.finish();
        let mut sim = Simulator::new(&m);
        for v in 0..8u64 {
            sim.set("x", v);
            sim.settle();
            let (sel, a, bb) = (v & 1 == 1, v & 2 == 2, v & 4 == 4);
            assert_eq!(sim.get("o") == 1, if sel { bb } else { a });
        }
    }

    #[test]
    fn rom_reads_and_out_of_range_is_zero() {
        let mut b = NetlistBuilder::new("rom");
        let addr = b.input("a", 2);
        let data = b.rom(&addr, vec![5, 9, 14], 4, RomStyle::Crossbar);
        b.output("d", &data);
        let m = b.finish();
        let mut sim = Simulator::new(&m);
        for (a, want) in [(0u64, 5u64), (1, 9), (2, 14), (3, 0)] {
            sim.set("a", a);
            sim.settle();
            assert_eq!(sim.get("d"), want);
        }
    }

    #[test]
    fn shift_register_walks_a_one() {
        // The serial decision tree's node pointer: a shift register seeded
        // with 1 that shifts the comparison result in at the LSB.
        let mut b = NetlistBuilder::new("shift");
        let d = b.input("d", 1);
        let q0 = b.dff(d[0], true);
        let q1 = b.dff(q0, false);
        let q2 = b.dff(q1, false);
        b.output("q", &[q0, q1, q2]);
        let m = b.finish();
        let mut sim = Simulator::new(&m);
        sim.set("d", 0);
        sim.settle();
        assert_eq!(sim.get("q"), 0b001);
        sim.step();
        sim.settle();
        assert_eq!(sim.get("q"), 0b010);
        sim.step();
        sim.settle();
        assert_eq!(sim.get("q"), 0b100);
        sim.reset();
        sim.settle();
        assert_eq!(sim.get("q"), 0b001);
    }

    #[test]
    #[should_panic(expected = "combinational cycle")]
    fn cycles_are_rejected() {
        // Hand-assemble a cycle: two inverters in a ring.
        use crate::ir::{Gate, Module, NetId, Signal};
        use pdk::CellKind;
        let mut m = Module::new("ring");
        m.net_count = 2;
        m.gates.push(Gate {
            kind: CellKind::Inv,
            inputs: vec![Signal::Net(NetId(1))],
            output: NetId(0),
            init: false,
            region: 0,
        });
        m.gates.push(Gate {
            kind: CellKind::Inv,
            inputs: vec![Signal::Net(NetId(0))],
            output: NetId(1),
            init: false,
            region: 0,
        });
        let _ = Simulator::new(&m);
    }

    #[test]
    fn try_apis_report_errors_instead_of_panicking() {
        use crate::error::SimError;
        use crate::ir::{Gate, Module, NetId, Signal};
        use pdk::CellKind;
        let mut m = Module::new("ring");
        m.net_count = 2;
        for (a, b) in [(1u32, 0u32), (0, 1)] {
            m.gates.push(Gate {
                kind: CellKind::Inv,
                inputs: vec![Signal::Net(NetId(a))],
                output: NetId(b),
                init: false,
                region: 0,
            });
        }
        match Simulator::try_new(&m) {
            Err(SimError::CombinationalCycle { module, .. }) => assert_eq!(module, "ring"),
            other => panic!("expected a cycle error, got {other:?}"),
        }

        let mut b = NetlistBuilder::new("ok");
        let x = b.input("x", 1);
        let y = b.not(x[0]);
        b.output("y", &[y]);
        let m = b.finish();
        let mut sim = Simulator::try_new(&m).unwrap();
        assert_eq!(
            sim.try_set("nope", 1),
            Err(SimError::UnknownPort {
                direction: "input",
                name: "nope".into()
            })
        );
        sim.try_set("x", 0).unwrap();
        sim.settle();
        assert_eq!(sim.try_get("y"), Ok(1));
        assert_eq!(
            sim.try_get("nope"),
            Err(SimError::UnknownPort {
                direction: "output",
                name: "nope".into()
            })
        );
    }

    #[test]
    fn deep_ripple_chains_do_not_overflow_the_stack() {
        let mut b = NetlistBuilder::new("deep");
        let x = b.input("x", 1);
        let mut s = x[0];
        for _ in 0..50_000 {
            s = b.not(s);
        }
        b.output("o", &[s]);
        let m = b.finish();
        let mut sim = Simulator::new(&m);
        sim.set("x", 1);
        sim.settle();
        assert_eq!(sim.get("o"), 1); // even number of inversions
    }
}
