//! Stable structural hashing of pipeline artifacts.
//!
//! Cache keys must be identical across processes, platforms and runs, so
//! hashing cannot go through `std::hash` (whose `Hasher` values are
//! explicitly not portable and whose `HashMap` seeds are randomized).
//! [`StableHasher`] is a dependency-free dual-lane FNV-1a over a
//! *tagged* byte encoding: every write is prefixed with a type tag, and
//! variable-length payloads carry their length, so distinct structures
//! can never collide by concatenation (`["ab","c"]` vs `["a","bc"]`).
//!
//! The two 64-bit lanes differ in offset basis and input whitening and
//! are concatenated into a 128-bit [`Key`], making accidental collisions
//! across a repository-sized artifact population negligible.
//!
//! Every hash stream is seeded with the cache schema version
//! ([`crate::SCHEMA`]) and a caller-chosen *domain* string (e.g.
//! `"netlist.opt"`), so artifacts of different kinds — or of different
//! cache generations — can never alias.

use serde::Value;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Offset whitening for the second lane (golden-ratio constant).
const LANE_B_TWEAK: u64 = 0x9e37_79b9_7f4a_7c15;

/// Type tags; one byte precedes every logical write.
mod tag {
    pub const BYTES: u8 = 0x01;
    pub const U64: u8 = 0x02;
    pub const I64: u8 = 0x03;
    pub const F64: u8 = 0x04;
    pub const STR: u8 = 0x05;
    pub const BOOL: u8 = 0x06;
    pub const SEQ: u8 = 0x07;
    pub const OPT_NONE: u8 = 0x08;
    pub const OPT_SOME: u8 = 0x09;
    pub const NULL: u8 = 0x0a;
    pub const OBJECT: u8 = 0x0b;
}

/// A 128-bit content digest, rendered as 32 lowercase hex characters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key(pub [u8; 16]);

impl std::fmt::Display for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// Deterministic structural hasher producing [`Key`]s.
#[derive(Debug, Clone)]
pub struct StableHasher {
    a: u64,
    b: u64,
}

impl StableHasher {
    /// Starts a hash stream bound to the cache schema version and an
    /// artifact `domain`.
    pub fn new(domain: &str) -> Self {
        let mut h = StableHasher {
            a: FNV_OFFSET,
            b: FNV_OFFSET ^ LANE_B_TWEAK,
        };
        h.write_str(crate::SCHEMA);
        h.write_str(domain);
        h
    }

    fn byte(&mut self, x: u8) {
        self.a = (self.a ^ u64::from(x)).wrapping_mul(FNV_PRIME);
        // Second lane sees whitened input so the lanes decorrelate.
        self.b = (self.b ^ u64::from(x ^ 0xa5)).wrapping_mul(FNV_PRIME);
    }

    fn raw(&mut self, bytes: &[u8]) {
        for &x in bytes {
            self.byte(x);
        }
    }

    /// Hashes a raw byte string (length-prefixed).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.byte(tag::BYTES);
        self.raw(&(bytes.len() as u64).to_le_bytes());
        self.raw(bytes);
    }

    /// Hashes an unsigned integer.
    pub fn write_u64(&mut self, x: u64) {
        self.byte(tag::U64);
        self.raw(&x.to_le_bytes());
    }

    /// Hashes a `usize` (as `u64`; keys are platform-independent).
    pub fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }

    /// Hashes a signed integer.
    pub fn write_i64(&mut self, x: i64) {
        self.byte(tag::I64);
        self.raw(&x.to_le_bytes());
    }

    /// Hashes a float by exact bit pattern (`-0.0` and `0.0` differ; every
    /// NaN payload is distinct — artifacts never contain NaN).
    pub fn write_f64(&mut self, x: f64) {
        self.byte(tag::F64);
        self.raw(&x.to_bits().to_le_bytes());
    }

    /// Hashes a string (length-prefixed UTF-8).
    pub fn write_str(&mut self, s: &str) {
        self.byte(tag::STR);
        self.raw(&(s.len() as u64).to_le_bytes());
        self.raw(s.as_bytes());
    }

    /// Hashes a bool.
    pub fn write_bool(&mut self, x: bool) {
        self.byte(tag::BOOL);
        self.byte(u8::from(x));
    }

    /// Announces a sequence of `len` elements (call before hashing them).
    pub fn write_seq_len(&mut self, len: usize) {
        self.byte(tag::SEQ);
        self.raw(&(len as u64).to_le_bytes());
    }

    /// Finishes the stream into a 128-bit key.
    pub fn finish(&self) -> Key {
        // One final avalanche round per lane so short inputs still spread
        // across all 128 bits.
        let mix = |mut x: u64| {
            x ^= x >> 33;
            x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
            x ^= x >> 33;
            x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
            x ^ (x >> 33)
        };
        let (a, b) = (mix(self.a), mix(self.b));
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&a.to_le_bytes());
        out[8..].copy_from_slice(&b.to_le_bytes());
        Key(out)
    }
}

/// Types with a canonical, process-independent hash encoding.
pub trait Hashable {
    /// Feeds `self`'s canonical encoding into `h`.
    fn stable_hash(&self, h: &mut StableHasher);
}

macro_rules! impl_hashable_uint {
    ($($t:ty),*) => {$(
        impl Hashable for $t {
            fn stable_hash(&self, h: &mut StableHasher) {
                h.write_u64(u64::from(*self));
            }
        }
    )*};
}
impl_hashable_uint!(u8, u16, u32, u64);

impl Hashable for usize {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(*self as u64);
    }
}

macro_rules! impl_hashable_int {
    ($($t:ty),*) => {$(
        impl Hashable for $t {
            fn stable_hash(&self, h: &mut StableHasher) {
                h.write_i64(i64::from(*self));
            }
        }
    )*};
}
impl_hashable_int!(i8, i16, i32, i64);

impl Hashable for f64 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_f64(*self);
    }
}

impl Hashable for bool {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_bool(*self);
    }
}

impl Hashable for str {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(self);
    }
}

impl Hashable for String {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(self);
    }
}

impl<T: Hashable + ?Sized> Hashable for &T {
    fn stable_hash(&self, h: &mut StableHasher) {
        (*self).stable_hash(h);
    }
}

impl<T: Hashable> Hashable for [T] {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_seq_len(self.len());
        for x in self {
            x.stable_hash(h);
        }
    }
}

impl<T: Hashable> Hashable for Vec<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.as_slice().stable_hash(h);
    }
}

impl<T: Hashable> Hashable for Option<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            None => h.byte(tag::OPT_NONE),
            Some(x) => {
                h.byte(tag::OPT_SOME);
                x.stable_hash(h);
            }
        }
    }
}

impl<A: Hashable, B: Hashable> Hashable for (A, B) {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.0.stable_hash(h);
        self.1.stable_hash(h);
    }
}

impl<A: Hashable, B: Hashable, C: Hashable> Hashable for (A, B, C) {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.0.stable_hash(h);
        self.1.stable_hash(h);
        self.2.stable_hash(h);
    }
}

impl Hashable for Value {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            Value::Null => h.byte(tag::NULL),
            Value::Bool(b) => h.write_bool(*b),
            Value::UInt(n) => h.write_u64(*n),
            Value::Int(n) => h.write_i64(*n),
            Value::Float(x) => h.write_f64(*x),
            Value::Str(s) => h.write_str(s),
            Value::Array(items) => {
                h.write_seq_len(items.len());
                for v in items {
                    v.stable_hash(h);
                }
            }
            Value::Object(fields) => {
                h.byte(tag::OBJECT);
                h.write_seq_len(fields.len());
                for (k, v) in fields {
                    h.write_str(k);
                    v.stable_hash(h);
                }
            }
        }
    }
}

/// Keys an artifact in `domain` by its [`Hashable`] encoding.
pub fn key_for<T: Hashable + ?Sized>(domain: &str, artifact: &T) -> Key {
    let mut h = StableHasher::new(domain);
    artifact.stable_hash(&mut h);
    h.finish()
}

/// Keys any [`serde::Serialize`] artifact through its canonical JSON
/// [`Value`] tree — the generic fallback when a hand-written
/// [`Hashable`] impl is not worth the code.
pub fn key_for_serialized<T: serde::Serialize + ?Sized>(domain: &str, artifact: &T) -> Key {
    let mut h = StableHasher::new(domain);
    artifact.to_value().stable_hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_deterministic_and_domain_separated() {
        let k1 = key_for("a", &42u64);
        let k2 = key_for("a", &42u64);
        let k3 = key_for("b", &42u64);
        assert_eq!(k1, k2);
        assert_ne!(k1, k3);
    }

    #[test]
    fn concatenation_cannot_alias() {
        let ab_c = key_for("t", &vec!["ab".to_string(), "c".to_string()]);
        let a_bc = key_for("t", &vec!["a".to_string(), "bc".to_string()]);
        assert_ne!(ab_c, a_bc);
        // Nested vs flat sequences differ too.
        let flat = key_for("t", &vec![1u64, 2, 3]);
        let nested = key_for("t", &vec![vec![1u64, 2], vec![3]]);
        assert_ne!(flat, nested);
    }

    #[test]
    fn float_hash_is_bit_exact() {
        assert_ne!(key_for("t", &0.0f64), key_for("t", &-0.0f64));
        assert_eq!(key_for("t", &0.1f64), key_for("t", &0.1f64));
    }

    #[test]
    fn display_is_32_hex_chars() {
        let hex = key_for("t", &7u64).to_string();
        assert_eq!(hex.len(), 32);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn value_and_direct_hashing_agree_for_scalars() {
        // `Value` hashing reuses the scalar writers, so a `Value::UInt`
        // sequence matches the equivalent direct writes.
        let via_value = key_for("t", &Value::Array(vec![Value::UInt(1), Value::UInt(2)]));
        let direct = key_for("t", &vec![1u64, 2u64]);
        assert_eq!(via_value, direct);
    }
}
