#![warn(missing_docs)]

//! # cache — deterministic content-addressed artifact cache
//!
//! The experiment pipeline recomputes the same artifacts many times
//! over: the 17 `repro_all` regenerators independently train the same
//! models, generate and optimize the same netlists and re-run the same
//! PPA analyses. This crate provides the two pieces that make all of
//! that reusable without ever changing a result:
//!
//! * [`StableHasher`]/[`Hashable`] ([`hash`]) — a portable structural
//!   hasher producing 128-bit [`Key`]s over canonical artifact
//!   encodings (dataset contents, model parameters, gate-level
//!   modules), independent of process, platform and `std::hash`
//!   randomization;
//! * [`get_or_compute`] ([`store`]) — a two-tier store (in-process memo
//!   map + on-disk JSON under `bench/out/cache/cache-v1/`, via the
//!   in-repo serde shims) keyed by those hashes.
//!
//! **Determinism contract.** A cache hit returns a value equal to what
//! the compute closure would have produced: keys cover the complete
//! input content, and the serde shims round-trip every finite float
//! exactly (shortest-exact rendering, correctly-rounded parsing). Warm
//! runs are therefore bit-identical to cold runs. The cache is disabled
//! by default and opted into per process ([`set_enabled`],
//! [`enable_default`]), so library callers and tests see the uncached
//! path unless they ask otherwise.
//!
//! **Invalidation.** Keys are prefixed with the [`SCHEMA`] version and
//! an artifact-domain string. Changing an artifact's encoding or the
//! semantics of a producer requires bumping [`SCHEMA`] (old entries are
//! then simply never referenced again; `printed-ml cache clear` removes
//! them). Entries that fail to read, parse or decode are dropped and
//! recomputed — corruption can cost time, never correctness.
//!
//! See `docs/caching.md` for the full key-derivation and invalidation
//! story.

pub mod hash;
pub mod store;

/// Cache schema version; bump when any cached artifact's encoding or
/// any producer's semantics change.
pub const SCHEMA: &str = "cache-v1";

pub use hash::{key_for, key_for_serialized, Hashable, Key, StableHasher};
pub use store::{
    clear, clear_memory, disk_root, disk_stats, enable_default, enabled, get_or_compute,
    set_disk_root, set_enabled, DomainStats, DEFAULT_DISK_ROOT,
};
