//! Two-tier content-addressed store.
//!
//! Tier 1 is an in-process memo map (`(domain, key) → Arc<artifact>`)
//! that deduplicates repeated constructions within one run. Tier 2 is an
//! on-disk JSON store (`<root>/cache-v1/<domain>/<key>.json`, written
//! through the in-repo serde shims) that lets a later process skip the
//! work entirely.
//!
//! The store is **off by default**: library code calls
//! [`get_or_compute`] unconditionally, and unless a binary opted in via
//! [`set_enabled`] the call falls straight through to the compute
//! closure with no hashing or locking on the way. This keeps tests and
//! library consumers byte-for-byte on the uncached path unless they ask
//! otherwise.
//!
//! Correctness stance: keys are full content hashes (see
//! [`crate::hash`]), values round-trip exactly through the serde shims
//! (finite floats use the shortest-exact representation), so a cache hit
//! returns a value `==` to what the closure would have computed.
//! Unreadable, unparsable or shape-mismatched disk entries are dropped
//! and recomputed — a corrupted cache can cost time, never correctness.

use std::any::Any;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::hash::Key;

/// Artifact-cache hits served from the in-process memo map.
static MEM_HITS: obs::Counter = obs::Counter::new("cache.mem_hits");
/// Artifact-cache hits served from the on-disk store.
static DISK_HITS: obs::Counter = obs::Counter::new("cache.disk_hits");
/// Artifact-cache misses (the artifact was computed).
static MISSES: obs::Counter = obs::Counter::new("cache.misses");
/// Disk entries dropped because they failed to read, parse or decode.
static STALE_DROPS: obs::Counter = obs::Counter::new("cache.stale_drops");
/// Bytes read from the on-disk store (hits only).
static BYTES_READ: obs::Counter = obs::Counter::new("cache.bytes_read");
/// Bytes written to the on-disk store.
static BYTES_WRITTEN: obs::Counter = obs::Counter::new("cache.bytes_written");

static ENABLED: AtomicBool = AtomicBool::new(false);

type MemMap = HashMap<(&'static str, Key), Arc<dyn Any + Send + Sync>>;

fn mem() -> &'static Mutex<MemMap> {
    static MEM: OnceLock<Mutex<MemMap>> = OnceLock::new();
    MEM.get_or_init(|| Mutex::new(HashMap::new()))
}

fn disk() -> &'static Mutex<Option<PathBuf>> {
    static DISK: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();
    DISK.get_or_init(|| Mutex::new(None))
}

/// Turns the cache on or off process-wide. Off (the default) makes
/// [`get_or_compute`] a pass-through.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the cache is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Sets (or clears) the on-disk tier's root directory. The schema
/// directory (`cache-v1`) is appended beneath it.
pub fn set_disk_root(root: Option<PathBuf>) {
    *disk().lock().unwrap() = root;
}

/// The configured on-disk root, if any.
pub fn disk_root() -> Option<PathBuf> {
    disk().lock().unwrap().clone()
}

/// Default on-disk root used by the binaries.
pub const DEFAULT_DISK_ROOT: &str = "bench/out/cache";

/// Opts a binary into both tiers with the conventional defaults: memo
/// map on, disk store under `bench/out/cache` (overridable via the
/// `PRINTED_ML_CACHE_DIR` environment variable). Setting
/// `PRINTED_ML_NO_CACHE=1` wins over everything and leaves the cache
/// disabled — the same effect as the binaries' `--no-cache` flag.
pub fn enable_default() {
    if std::env::var("PRINTED_ML_NO_CACHE").is_ok_and(|v| v == "1") {
        return;
    }
    let root = std::env::var("PRINTED_ML_CACHE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from(DEFAULT_DISK_ROOT));
    set_disk_root(Some(root));
    set_enabled(true);
}

/// Drops every in-process memo entry (the disk tier is untouched).
/// Used by benchmarks to measure warm-from-disk performance.
pub fn clear_memory() {
    mem().lock().unwrap().clear();
}

fn entry_path(root: &Path, domain: &str, key: Key) -> PathBuf {
    root.join(crate::SCHEMA)
        .join(domain)
        .join(format!("{key}.json"))
}

/// Looks up `(domain, key)` in both tiers, computing and back-filling on
/// a miss. `domain` must be a fixed string naming the artifact kind; the
/// key must be a content hash of everything the computation depends on.
pub fn get_or_compute<T, F>(domain: &'static str, key: Key, compute: F) -> T
where
    T: serde::Serialize + serde::Deserialize + Clone + Send + Sync + 'static,
    F: FnOnce() -> T,
{
    if !enabled() {
        return compute();
    }
    if let Some(hit) = mem().lock().unwrap().get(&(domain, key)) {
        if let Some(value) = hit.downcast_ref::<T>() {
            MEM_HITS.incr();
            return value.clone();
        }
    }
    if let Some(root) = disk_root() {
        let path = entry_path(&root, domain, key);
        match std::fs::read_to_string(&path) {
            Ok(body) => match serde_json::from_str::<T>(&body) {
                Ok(value) => {
                    DISK_HITS.incr();
                    BYTES_READ.add(body.len() as u64);
                    mem()
                        .lock()
                        .unwrap()
                        .insert((domain, key), Arc::new(value.clone()));
                    return value;
                }
                Err(_) => {
                    // Corrupted or stale (schema-incompatible) entry:
                    // drop it and fall through to recompute.
                    STALE_DROPS.incr();
                    let _ = std::fs::remove_file(&path);
                }
            },
            Err(err) if err.kind() != std::io::ErrorKind::NotFound => {
                STALE_DROPS.incr();
                let _ = std::fs::remove_file(&path);
            }
            Err(_) => {}
        }
    }
    MISSES.incr();
    let value = compute();
    mem()
        .lock()
        .unwrap()
        .insert((domain, key), Arc::new(value.clone()));
    if let Some(root) = disk_root() {
        let path = entry_path(&root, domain, key);
        if let Ok(body) = serde_json::to_string(&value) {
            write_atomic(&path, &body);
        }
    }
    value
}

/// Writes `body` via a unique temp file + rename so concurrent writers
/// (two processes computing the same artifact) can never tear an entry.
fn write_atomic(path: &Path, body: &str) {
    let Some(dir) = path.parent() else { return };
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let tmp = path.with_extension(format!("tmp{}", std::process::id()));
    if std::fs::write(&tmp, body).is_ok() && std::fs::rename(&tmp, path).is_ok() {
        BYTES_WRITTEN.add(body.len() as u64);
    } else {
        let _ = std::fs::remove_file(&tmp);
    }
}

/// Per-domain disk usage: `(domain, entries, bytes)`.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct DomainStats {
    /// Artifact kind (subdirectory name).
    pub domain: String,
    /// Number of stored entries.
    pub entries: u64,
    /// Total bytes across the entries.
    pub bytes: u64,
}

/// Walks the on-disk store and reports per-domain usage, sorted by
/// domain name. Returns `None` when no disk root is configured or the
/// store does not exist yet.
pub fn disk_stats() -> Option<Vec<DomainStats>> {
    let root = disk_root()?.join(crate::SCHEMA);
    let dirs = std::fs::read_dir(&root).ok()?;
    let mut stats = Vec::new();
    for dir in dirs.flatten() {
        if !dir.path().is_dir() {
            continue;
        }
        let mut entries = 0u64;
        let mut bytes = 0u64;
        if let Ok(files) = std::fs::read_dir(dir.path()) {
            for f in files.flatten() {
                if f.path().extension().is_some_and(|e| e == "json") {
                    entries += 1;
                    bytes += f.metadata().map(|m| m.len()).unwrap_or(0);
                }
            }
        }
        stats.push(DomainStats {
            domain: dir.file_name().to_string_lossy().into_owned(),
            entries,
            bytes,
        });
    }
    stats.sort_by(|a, b| a.domain.cmp(&b.domain));
    Some(stats)
}

/// Deletes the entire on-disk store (all schema generations under the
/// configured root) and the in-process memo map. Returns the number of
/// entries removed, or an error if the root could not be deleted.
pub fn clear() -> std::io::Result<u64> {
    clear_memory();
    let Some(root) = disk_root() else {
        return Ok(0);
    };
    let removed = disk_stats()
        .map(|s| s.iter().map(|d| d.entries).sum())
        .unwrap_or(0);
    match std::fs::remove_dir_all(&root) {
        Ok(()) => Ok(removed),
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => Ok(0),
        Err(err) => Err(err),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::key_for;

    /// The store config is process-global; serialize the tests touching it.
    static LOCK: Mutex<()> = Mutex::new(());

    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            set_enabled(false);
            set_disk_root(None);
            clear_memory();
        }
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("printed_ml_cache_test_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn disabled_cache_always_computes() {
        let _lock = LOCK.lock().unwrap();
        let _restore = Restore;
        set_enabled(false);
        let mut calls = 0;
        for _ in 0..3 {
            let v: u64 = get_or_compute("test.disabled", key_for("t", &1u64), || {
                calls += 1;
                42
            });
            assert_eq!(v, 42);
        }
        assert_eq!(calls, 3);
    }

    #[test]
    fn memory_tier_deduplicates_within_a_process() {
        let _lock = LOCK.lock().unwrap();
        let _restore = Restore;
        set_enabled(true);
        set_disk_root(None);
        clear_memory();
        let key = key_for("t", &"memo");
        let mut calls = 0;
        for _ in 0..3 {
            let v: String = get_or_compute("test.memo", key, || {
                calls += 1;
                "value".to_string()
            });
            assert_eq!(v, "value");
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn disk_tier_survives_a_memory_clear() {
        let _lock = LOCK.lock().unwrap();
        let _restore = Restore;
        let root = temp_root("disk");
        set_enabled(true);
        set_disk_root(Some(root.clone()));
        clear_memory();
        let key = key_for("t", &"disk");
        let cold: Vec<f64> = get_or_compute("test.disk", key, || vec![0.1, -0.0, 3.5e300]);
        clear_memory(); // simulate a fresh process
        let warm: Vec<f64> = get_or_compute("test.disk", key, || panic!("must hit disk"));
        assert_eq!(cold, warm);
        assert_eq!(warm[1].to_bits(), (-0.0f64).to_bits());
        let stats = disk_stats().expect("stats");
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].domain, "test.disk");
        assert_eq!(stats[0].entries, 1);
        assert!(stats[0].bytes > 0);
        let removed = clear().expect("clear");
        assert_eq!(removed, 1);
        assert!(!root.exists());
    }

    #[test]
    fn corrupted_and_mismatched_entries_fall_back_to_compute() {
        let _lock = LOCK.lock().unwrap();
        let _restore = Restore;
        let root = temp_root("corrupt");
        set_enabled(true);
        set_disk_root(Some(root.clone()));
        clear_memory();
        let key = key_for("t", &"corrupt");
        let path = entry_path(&root, "test.corrupt", key);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();

        // Unparsable JSON: recomputed, entry replaced with a good one.
        std::fs::write(&path, "{not json").unwrap();
        let v: u64 = get_or_compute("test.corrupt", key, || 7);
        assert_eq!(v, 7);
        clear_memory();
        let warm: u64 = get_or_compute("test.corrupt", key, || panic!("must hit disk"));
        assert_eq!(warm, 7);

        // Parsable but wrong shape (stale schema): also recomputed.
        clear_memory();
        std::fs::write(&path, "\"a string, not a number\"").unwrap();
        let v: u64 = get_or_compute("test.corrupt", key, || 9);
        assert_eq!(v, 9);

        let _ = std::fs::remove_dir_all(&root);
    }
}
