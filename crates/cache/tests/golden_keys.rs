//! Golden cache keys: pinned hex digests of representative keys.
//!
//! A cache key is a contract with every store a user has on disk — if
//! any of these change, previously cached artifacts silently stop
//! matching (at best a cold restart, at worst a schema mismatch that
//! should have bumped [`cache::SCHEMA`] instead). Whoever edits the
//! hasher, an encoding, or the schema tag must bump `cache::SCHEMA`
//! and re-pin these digests in the same commit.

use cache::{key_for, StableHasher};

fn hex(key: cache::Key) -> String {
    key.to_string()
}

#[test]
fn schema_tag_is_pinned() {
    assert_eq!(cache::SCHEMA, "cache-v1");
}

#[test]
fn writer_surface_digests_are_pinned() {
    // One key exercising every writer; drifts if any encoding changes.
    let mut h = StableHasher::new("golden.writers");
    h.write_bytes(b"raw");
    h.write_u64(42);
    h.write_usize(7);
    h.write_i64(-3);
    h.write_f64(1.5);
    h.write_str("printed-ml");
    h.write_bool(true);
    h.write_seq_len(4);
    assert_eq!(hex(h.finish()), "f5c5ad6ed26d30ffda61357b5a8e7e5b");

    // Domain separation: same writes, different domain, different key.
    let mut h = StableHasher::new("golden.writers2");
    h.write_bytes(b"raw");
    h.write_u64(42);
    h.write_usize(7);
    h.write_i64(-3);
    h.write_f64(1.5);
    h.write_str("printed-ml");
    h.write_bool(true);
    h.write_seq_len(4);
    assert_eq!(hex(h.finish()), "17cd0ed94d3dcca86369a9b9924ae28a");
}

#[test]
fn hashable_digests_are_pinned() {
    assert_eq!(
        hex(key_for("golden.u64", &42u64)),
        "95cc3eb557b8f47b2744a4c9ac9e5bce"
    );
    assert_eq!(
        hex(key_for("golden.str", &"cardio")),
        "51469daa2ac3004a513478b10bb3e51c"
    );
    assert_eq!(
        hex(key_for("golden.floats", &vec![0.25f64, -1.0, 3.5])),
        "a24b2e27e72230410d2f975ebb4ce809"
    );
    assert_eq!(
        hex(key_for("golden.tuple", &(4usize, "har", 1e-4f64))),
        "471816bb774ccf636727890d10a5cf8b"
    );
    assert_eq!(
        hex(key_for("golden.option", &(Some(1u32), Option::<u32>::None))),
        "61bd799671b1cfeaf12e496b3a098aa0"
    );
}

#[test]
fn serialized_value_digest_is_pinned() {
    let v = serde::Value::Object(vec![
        ("epochs".to_string(), serde::Value::UInt(100)),
        ("l2".to_string(), serde::Value::Float(1e-5)),
        ("name".to_string(), serde::Value::Str("svm".to_string())),
    ]);
    assert_eq!(
        hex(cache::key_for_serialized("golden.value", &v)),
        "29e924fc67bae29441305355b69f1ee4"
    );
}

#[test]
fn float_keys_are_bit_exact() {
    // -0.0 and 0.0 are different bit patterns and must key differently:
    // the cache trades hash collisions on "equal" floats for never
    // conflating two computations whose inputs differ at the bit level.
    let a = key_for("golden.float", &0.0f64);
    let b = key_for("golden.float", &(-0.0f64));
    assert_ne!(a, b);
    // NaN keys equal itself (payload bits are hashed, not compared).
    let n1 = key_for("golden.float", &f64::NAN);
    let n2 = key_for("golden.float", &f64::NAN);
    assert_eq!(n1, n2);
}

#[test]
fn seq_and_str_framing_do_not_collide() {
    // Length framing: ["ab","c"] vs ["a","bc"] must differ.
    let a = key_for("golden.frame", &vec!["ab".to_string(), "c".to_string()]);
    let b = key_for("golden.frame", &vec!["a".to_string(), "bc".to_string()]);
    assert_ne!(a, b);
}

/// Prints the current digests; run with `--nocapture` to re-pin after an
/// intentional schema bump.
#[test]
fn print_current_digests() {
    let mut h = StableHasher::new("golden.writers");
    h.write_bytes(b"raw");
    h.write_u64(42);
    h.write_usize(7);
    h.write_i64(-3);
    h.write_f64(1.5);
    h.write_str("printed-ml");
    h.write_bool(true);
    h.write_seq_len(4);
    println!("PIN_WRITERS = {}", hex(h.finish()));
    let mut h = StableHasher::new("golden.writers2");
    h.write_bytes(b"raw");
    h.write_u64(42);
    h.write_usize(7);
    h.write_i64(-3);
    h.write_f64(1.5);
    h.write_str("printed-ml");
    h.write_bool(true);
    h.write_seq_len(4);
    println!("PIN_WRITERS2 = {}", hex(h.finish()));
    println!("PIN_U64 = {}", hex(key_for("golden.u64", &42u64)));
    println!("PIN_STR = {}", hex(key_for("golden.str", &"cardio")));
    println!(
        "PIN_FLOATS = {}",
        hex(key_for("golden.floats", &vec![0.25f64, -1.0, 3.5]))
    );
    println!(
        "PIN_TUPLE = {}",
        hex(key_for("golden.tuple", &(4usize, "har", 1e-4f64)))
    );
    println!(
        "PIN_OPTION = {}",
        hex(key_for("golden.option", &(Some(1u32), Option::<u32>::None)))
    );
    let v = serde::Value::Object(vec![
        ("epochs".to_string(), serde::Value::UInt(100)),
        ("l2".to_string(), serde::Value::Float(1e-5)),
        ("name".to_string(), serde::Value::Str("svm".to_string())),
    ]);
    println!(
        "PIN_VALUE = {}",
        hex(cache::key_for_serialized("golden.value", &v))
    );
}
