//! Deterministic seed-stream splitting.
//!
//! Sharding a Monte-Carlo loop across threads must not change its
//! results. The classic failure mode is a single sequential RNG whose
//! draw order depends on worker interleaving. We avoid it by never
//! sharing an RNG between tasks: each task derives its own seed from the
//! root seed and its task index through a fixed avalanche function, so
//! the mapping `(root, index) -> seed` is pure and the schedule is
//! irrelevant.

/// SplitMix64 finalizer: a full-avalanche 64-bit mixing function
/// (Steele, Lea & Flood's `splitmix64` output stage). Every output bit
/// depends on every input bit.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Splits `root` into the seed for task `index`.
///
/// The stream is defined as `mix64(root ^ mix64(index))`: the index is
/// avalanched first so that adjacent tasks land in unrelated regions of
/// the seed space, then folded into the root. The same `(root, index)`
/// pair yields the same seed forever — this function is part of the
/// repository's reproducibility contract and must not change.
#[inline]
pub fn task_seed(root: u64, index: u64) -> u64 {
    mix64(root ^ mix64(index))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_seeds_are_distinct_across_indices() {
        let root = 42;
        let seeds: Vec<u64> = (0..1000).map(|i| task_seed(root, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn task_seeds_are_distinct_across_roots() {
        assert_ne!(task_seed(1, 0), task_seed(2, 0));
        assert_ne!(task_seed(1, 7), task_seed(2, 7));
    }

    #[test]
    fn task_seed_is_a_pure_function() {
        assert_eq!(task_seed(9, 3), task_seed(9, 3));
    }

    #[test]
    fn mix64_avalanches_single_bit_flips() {
        // Flipping one input bit should flip roughly half the output
        // bits; accept a generous band.
        for bit in 0..64 {
            let a = mix64(0x1234_5678_9ABC_DEF0);
            let b = mix64(0x1234_5678_9ABC_DEF0 ^ (1u64 << bit));
            let flipped = (a ^ b).count_ones();
            assert!((16..=48).contains(&flipped), "bit {bit}: {flipped} flips");
        }
    }
}
