#![warn(missing_docs)]

//! # exec — deterministic parallel execution substrate
//!
//! Every sweep in this workspace (Monte-Carlo variation trials, injected
//! fault simulations, the 17 `repro_all` experiment regenerators) is a
//! bag of *independent* tasks. This crate provides the three pieces they
//! all share, built on `std` alone:
//!
//! * [`pool`] — a scoped work-sharing thread pool ([`parallel_map`])
//!   that preserves output order, plus the process-wide thread-count
//!   knob (`PRINTED_ML_THREADS`, [`set_threads`], [`with_threads`]);
//! * [`seed`] — deterministic per-task seed streams split from a root
//!   seed by task index, so results are bit-identical at any thread
//!   count;
//! * [`rng`] — a small, fully reproducible PRNG (SplitMix64) with the
//!   sampling helpers the ML and analog crates need.
//!
//! The invariant the whole workspace leans on: **any computation
//! expressed as `parallel_map` over per-task [`seed::task_seed`] streams
//! returns bit-identical results at every thread count.**

pub mod pool;
pub mod rng;
pub mod seed;

pub use pool::{parallel_map, set_threads, threads, time, with_threads};
pub use seed::task_seed;
