//! Scoped work-sharing thread pool with order-preserving results.
//!
//! [`parallel_map`] fans a slice of independent tasks out over
//! `std::thread::scope` workers pulling indices from a shared atomic
//! counter (self-balancing: fast workers steal the remaining indices),
//! then reassembles results **in input order**. Combined with
//! [`crate::seed::task_seed`] this makes every sweep bit-identical at
//! any thread count.
//!
//! Every invocation reports per-task queue/run time and cumulative
//! thread utilization through [`obs`] (`exec.*` counters, out-of-band
//! from results), and re-installs the caller's span path on workers so
//! task-side spans nest under the submitting span.
//!
//! Thread-count resolution, weakest to strongest:
//!
//! 1. hardware parallelism (`std::thread::available_parallelism`);
//! 2. the `PRINTED_ML_THREADS` environment variable;
//! 3. a process-wide [`set_threads`] call (e.g. from a `--threads` CLI
//!    flag);
//! 4. a scoped [`with_threads`] override on the current thread.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Pool invocations (serial fast path included).
static POOLS: obs::Counter = obs::Counter::new("exec.pools");
/// Tasks executed through [`parallel_map`].
static TASKS: obs::Counter = obs::Counter::new("exec.tasks");
/// Nanoseconds workers spent inside task closures.
static BUSY_NS: obs::Counter = obs::Counter::new("exec.busy_ns");
/// Nanoseconds tasks waited between pool entry and their start.
static QUEUE_NS: obs::Counter = obs::Counter::new("exec.queue_ns");
/// Worker-nanoseconds available (`workers x pool wall time`).
static CAPACITY_NS: obs::Counter = obs::Counter::new("exec.capacity_ns");
/// Cumulative thread utilization: `busy_ns / capacity_ns` over every
/// pool invocation so far, in `[0, 1]`.
static UTILIZATION: obs::Gauge = obs::Gauge::new("exec.utilization");

/// Publishes one finished pool invocation's timing into the obs
/// counters and refreshes the cumulative utilization gauge.
fn record_pool(tasks: usize, busy_ns: u64, queue_ns: u64, capacity_ns: u64) {
    POOLS.incr();
    TASKS.add(tasks as u64);
    BUSY_NS.add(busy_ns);
    QUEUE_NS.add(queue_ns);
    CAPACITY_NS.add(capacity_ns);
    let capacity = CAPACITY_NS.get();
    if capacity > 0 {
        UTILIZATION.set((BUSY_NS.get() as f64 / capacity as f64).min(1.0));
    }
}

/// Process-wide thread count; 0 means "not resolved yet".
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Scoped override installed by [`with_threads`]; 0 means none.
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// The thread count sweeps on this thread will use.
pub fn threads() -> usize {
    let ov = OVERRIDE.with(Cell::get);
    if ov != 0 {
        return ov;
    }
    let cached = DEFAULT_THREADS.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let resolved = std::env::var("PRINTED_ML_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    DEFAULT_THREADS.store(resolved, Ordering::Relaxed);
    resolved
}

/// Sets the process-wide thread count (a `--threads N` flag). `0`
/// resets to automatic resolution.
pub fn set_threads(n: usize) {
    if n == 0 {
        DEFAULT_THREADS.store(0, Ordering::Relaxed);
        // Force re-resolution on next call, ignoring the env cache too.
        let _ = threads();
    } else {
        DEFAULT_THREADS.store(n, Ordering::Relaxed);
    }
}

/// Runs `f` with the thread count pinned to `n` on the current thread.
///
/// Only affects `parallel_map` calls made *from this thread* (nested
/// pools on worker threads resolve normally) — exactly what determinism
/// tests need to compare 1-thread and N-thread runs in one process.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n > 0, "thread count must be at least 1");
    let prev = OVERRIDE.with(|c| c.replace(n));
    // Restore on unwind as well, so a panicking closure cannot leak the
    // override into later tests on the same thread.
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// Applies `f` to every item, possibly in parallel, returning results in
/// input order.
///
/// `f` receives `(index, &item)`; the index is the task's identity for
/// [`crate::seed::task_seed`] streams. Worker panics propagate to the
/// caller once the scope joins.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads().min(items.len());
    let instrument = obs::enabled() && !items.is_empty();
    if workers <= 1 {
        let start = Instant::now();
        let out = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        if instrument {
            let ns = start.elapsed().as_nanos() as u64;
            record_pool(items.len(), ns, 0, ns);
        }
        return out;
    }
    // Workers re-install the caller's span path so spans opened inside
    // tasks nest under the logical caller, not under a detached root.
    let span_path = obs::current_path();
    let next = AtomicUsize::new(0);
    let done = Mutex::new(Vec::with_capacity(items.len()));
    let busy_ns = AtomicU64::new(0);
    let queue_ns = AtomicU64::new(0);
    let pool_start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                obs::with_path(&span_path, || {
                    // Keep a small local buffer so the shared lock is taken
                    // once per task batch rather than once per result.
                    let mut local = Vec::new();
                    let (mut busy, mut queue) = (0u64, 0u64);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let task_start = Instant::now();
                        if instrument {
                            queue += (task_start - pool_start).as_nanos() as u64;
                        }
                        local.push((i, f(i, &items[i])));
                        if instrument {
                            busy += task_start.elapsed().as_nanos() as u64;
                        }
                    }
                    busy_ns.fetch_add(busy, Ordering::Relaxed);
                    queue_ns.fetch_add(queue, Ordering::Relaxed);
                    done.lock().unwrap().append(&mut local);
                });
            });
        }
    });
    if instrument {
        let capacity = pool_start.elapsed().as_nanos() as u64 * workers as u64;
        record_pool(
            items.len(),
            busy_ns.into_inner(),
            queue_ns.into_inner(),
            capacity,
        );
    }
    let mut indexed = done.into_inner().unwrap();
    debug_assert_eq!(indexed.len(), items.len());
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Times `f`, returning its result and the elapsed wall-clock seconds.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = with_threads(8, || parallel_map(&items, |i, &x| (i, x * 2)));
        for (i, &(idx, doubled)) in out.iter().enumerate() {
            assert_eq!(idx, i);
            assert_eq!(doubled, i * 2);
        }
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let items: Vec<u64> = (0..57).collect();
        let work = |i: usize, &x: &u64| crate::seed::task_seed(x, i as u64);
        let one = with_threads(1, || parallel_map(&items, work));
        let four = with_threads(4, || parallel_map(&items, work));
        let many = with_threads(16, || parallel_map(&items, work));
        assert_eq!(one, four);
        assert_eq!(one, many);
    }

    #[test]
    fn empty_and_single_item_inputs_work() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[9u32], |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn with_threads_restores_previous_value() {
        let before = threads();
        with_threads(3, || {
            assert_eq!(threads(), 3);
            with_threads(5, || assert_eq!(threads(), 5));
            assert_eq!(threads(), 3);
        });
        assert_eq!(threads(), before);
    }

    #[test]
    fn with_threads_restores_on_panic() {
        let before = threads();
        let caught = std::panic::catch_unwind(|| with_threads(2, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(threads(), before);
    }

    #[test]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..32).collect();
        let caught = std::panic::catch_unwind(|| {
            with_threads(4, || {
                parallel_map(&items, |i, _| {
                    if i == 17 {
                        panic!("task 17 failed");
                    }
                    i
                })
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn time_reports_nonnegative_seconds() {
        let (v, secs) = time(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
