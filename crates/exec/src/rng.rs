//! A small, fully reproducible PRNG.
//!
//! The workspace previously leaned on the external `rand` crate; for
//! reproducibility (and offline builds) the generator is now in-repo and
//! its sequence is part of the repository's contract: **the stream
//! produced by a given seed must never change.** The core is SplitMix64
//! — a 64-bit counter run through the [`crate::seed::mix64`] avalanche —
//! which is statistically solid for Monte-Carlo work and trivially
//! seedable.
//!
//! The API mirrors the slice of `rand` this workspace used:
//! `StdRng::seed_from_u64`, `gen_range` over integer/float ranges, and a
//! [`SliceRandom`] extension with `shuffle`/`choose`.

use std::ops::{Range, RangeInclusive};

use crate::seed::mix64;

/// The workspace's deterministic generator (SplitMix64).
///
/// Named `StdRng` so call sites read identically to the `rand`-based
/// code they replaced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }

    /// Next raw 64-bit output (canonical SplitMix64: Weyl-sequence state
    /// walk, [`mix64`] output stage).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }

    /// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.next_f64() < p
    }
}

/// Ranges [`StdRng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample(self, rng: &mut StdRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

/// Shuffle/choose extension, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle, deterministic in the generator state.
    fn shuffle(&mut self, rng: &mut StdRng);

    /// Uniformly chosen element, `None` on an empty slice.
    fn choose<'a>(&'a self, rng: &mut StdRng) -> Option<&'a Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle(&mut self, rng: &mut StdRng) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            self.swap(i, j);
        }
    }

    fn choose<'a>(&'a self, rng: &mut StdRng) -> Option<&'a T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(8);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_stays_in_unit_interval_and_covers_it() {
        let mut rng = StdRng::seed_from_u64(3);
        let draws: Vec<f64> = (0..4000).map(|_| rng.next_f64()).collect();
        assert!(draws.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..2000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&y));
        }
    }

    #[test]
    fn integer_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..400 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b = a.clone();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(a, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_covers_all_elements() {
        let opts = [2usize, 4, 8, 16];
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let c = *opts.choose(&mut rng).unwrap();
            seen[opts.iter().position(|&o| o == c).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
