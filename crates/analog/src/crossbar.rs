//! Resistive crossbar MAC engine (§VI-A, equations (1) and (2)).
//!
//! A one-time-programmed crossbar computes a normalized weighted sum of its
//! input voltages per column:
//!
//! ```text
//! V_out(c) = Σᵢ Vᵢ · w(c)ᵢ ,   w(c)ᵢ = (1/R(c)ᵢ) / Σⱼ (1/R(c)ⱼ)
//! ```
//!
//! Weights are therefore non-negative and sum to 1 per column; signed
//! dot-products use a positive and a negative column whose scaled outputs
//! are differenced (the analog SVM in [`crate::svm`]).

use serde::Serialize;

use pdk::units::{Area, Delay, Power};

use crate::device::{PrintedResistor, VDD};

/// One programmed crossbar column.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CrossbarColumn {
    /// `(row index, printed resistor)` for each connected row.
    resistors: Vec<(usize, PrintedResistor)>,
    /// Total conductance of the column (cached denominator of eq. (2)).
    total_conductance: f64,
}

impl CrossbarColumn {
    /// Programs a column to realize `weights` (one per row; zero weights are
    /// simply not printed). Weights must be non-negative; they are
    /// normalized internally per eq. (2).
    ///
    /// # Panics
    /// Panics if any weight is negative or not finite, or all are zero.
    pub fn program(weights: &[f64]) -> Self {
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "crossbar weights must be non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "at least one weight must be non-zero");
        // Solve eq. (2): w_i = G_i / ΣG. Any overall conductance scale
        // works; pick the scale placing the largest weight at a mid-range
        // printable resistance for headroom against the grid limits.
        let wmax = weights.iter().cloned().fold(0.0, f64::max);
        let g_max = 1.0 / (2.0 * crate::device::R_MIN); // largest conductance used
        let resistors: Vec<(usize, PrintedResistor)> = weights
            .iter()
            .enumerate()
            .filter(|(_, &w)| w > 0.0)
            .map(|(i, &w)| {
                let g = g_max * (w / wmax);
                (i, PrintedResistor::printable(1.0 / g))
            })
            .collect();
        let total_conductance = resistors.iter().map(|(_, r)| 1.0 / r.resistance).sum();
        CrossbarColumn {
            resistors,
            total_conductance,
        }
    }

    /// Evaluates eq. (1) for input voltages `v` (indexed by row).
    ///
    /// # Panics
    /// Panics if `v` is shorter than the highest programmed row.
    pub fn output(&self, v: &[f64]) -> f64 {
        self.resistors
            .iter()
            .map(|(i, r)| v[*i] * (1.0 / r.resistance) / self.total_conductance)
            .sum()
    }

    /// The effective (printed, quantized) weights after programming —
    /// exactly the `w_i` of eq. (2).
    pub fn effective_weights(&self) -> Vec<(usize, f64)> {
        self.resistors
            .iter()
            .map(|(i, r)| (*i, (1.0 / r.resistance) / self.total_conductance))
            .collect()
    }

    /// Number of printed dot resistors.
    pub fn resistor_count(&self) -> usize {
        self.resistors.len()
    }

    /// Column area: printed dots only (clear crosspoints are free — the
    /// same economics as the bespoke dot ROM).
    pub fn area(&self) -> Area {
        PrintedResistor::area() * self.resistor_count() as f64
    }

    /// Worst-case static power: every input at `VDD` into a virtually
    /// grounded column.
    pub fn static_power(&self) -> Power {
        Power::from_w(VDD * VDD * self.total_conductance)
    }

    /// Settling time: RC of the column's parallel resistance against the
    /// output node capacitance.
    pub fn settle_time(&self) -> Delay {
        let r_parallel = 1.0 / self.total_conductance;
        // Sense-line capacitance grows with the number of connected rows.
        let c_node = 1.0e-9 * (1.0 + self.resistors.len() as f64);
        Delay::from_secs(5.0 * r_parallel * c_node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_the_normalized_weighted_sum() {
        let col = CrossbarColumn::program(&[1.0, 2.0, 1.0]);
        let v = [0.2, 0.8, 0.4];
        let expect: f64 = (0.2 * 1.0 + 0.8 * 2.0 + 0.4 * 1.0) / 4.0;
        let got = col.output(&v);
        assert!((got - expect).abs() < 0.02, "got {got}, expect {expect}");
    }

    #[test]
    fn effective_weights_sum_to_one() {
        let col = CrossbarColumn::program(&[0.5, 0.0, 3.0, 1.2]);
        let sum: f64 = col.effective_weights().iter().map(|(_, w)| w).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Zero weights are not printed.
        assert_eq!(col.resistor_count(), 3);
        assert!(col.effective_weights().iter().all(|(i, _)| *i != 1));
    }

    #[test]
    fn quantization_error_is_bounded_by_the_print_grid() {
        let weights = [0.9, 0.37, 1.8, 0.05];
        let col = CrossbarColumn::program(&weights);
        let total: f64 = weights.iter().sum();
        for (i, w_eff) in col.effective_weights() {
            let ideal = weights[i] / total;
            assert!(
                (w_eff - ideal).abs() / ideal < 0.1,
                "row {i}: effective {w_eff} vs ideal {ideal}"
            );
        }
    }

    #[test]
    fn convex_combination_stays_in_input_range() {
        let col = CrossbarColumn::program(&[1.0, 5.0, 2.0]);
        let v = [0.1, 0.9, 0.5];
        let out = col.output(&v);
        assert!((0.1..=0.9).contains(&out));
    }

    #[test]
    fn uniform_weights_average_the_inputs() {
        let col = CrossbarColumn::program(&[1.0; 4]);
        let out = col.output(&[0.0, 1.0, 0.0, 1.0]);
        assert!((out - 0.5).abs() < 0.01);
    }

    #[test]
    fn costs_scale_with_printed_dots() {
        let small = CrossbarColumn::program(&[1.0, 1.0]);
        let large = CrossbarColumn::program(&[1.0; 20]);
        assert!(large.area() > small.area());
        assert!(large.resistor_count() == 20);
        assert!(large.static_power().as_uw() > 0.0);
        assert!(large.settle_time().as_ms() >= 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_are_rejected() {
        CrossbarColumn::program(&[1.0, -0.5]);
    }
}
