//! Analog printed decision trees (§VI-A).
//!
//! Every split node is an [`AnalogComparator`]; non-root nodes add a
//! selector EGT so that only the children of the taken branch are enabled
//! — "there is implicit logic which gates off unused portions of the
//! circuit", which is why static power scales with tree *depth* rather
//! than node count. Signal levels deteriorate down the selector cascade,
//! compensated (optionally — it is an ablation knob) by inverter buffers.

use serde::Serialize;

use ml::quant::{QNode, QuantizedTree};
use pdk::units::{Area, Delay, Power};

use crate::comparator::{AnalogComparator, ThresholdEncoding};
use crate::device::{Egt, PrintedResistor};

/// One node of the analog tree.
#[derive(Debug, Clone, PartialEq, Serialize)]
struct Node {
    feature: usize,
    comparator: AnalogComparator,
    depth: usize,
    /// Child indices into `nodes`, or a leaf class.
    left: Child,
    right: Child,
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
enum Child {
    Node(usize),
    Leaf(usize),
}

/// Configuration of the analog tree generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AnalogTreeConfig {
    /// Threshold-resistor encoding.
    pub encoding: ThresholdEncoding,
    /// Insert level buffers to restore signal swing (paper §VI-A). Turning
    /// this off is the attenuation ablation.
    pub buffers: bool,
}

impl Default for AnalogTreeConfig {
    fn default() -> Self {
        AnalogTreeConfig {
            encoding: ThresholdEncoding::Calibrated,
            buffers: true,
        }
    }
}

/// A generated analog decision tree.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AnalogTree {
    nodes: Vec<Node>,
    root: Option<usize>,
    /// Class predicted when the tree is a single leaf.
    constant_class: usize,
    n_classes: usize,
    max_code: u64,
    config: AnalogTreeConfig,
    depth: usize,
}

impl AnalogTree {
    /// Builds the analog realization of a quantized tree.
    ///
    /// Feature codes map onto node voltages as `v = code / max_code`
    /// (the paper normalizes features to `[0 V, 1 V]`); each split's
    /// threshold resistor is derived for the voltage midway between the
    /// threshold code and its successor.
    pub fn from_tree(tree: &QuantizedTree, config: AnalogTreeConfig) -> Self {
        let max_code = crate::variation::max_code_for_bits(tree.bits());
        let mut nodes = Vec::new();
        let root = build(tree, 0, 0, max_code, config, &mut nodes);
        let (root, constant_class) = match root {
            Child::Node(i) => (Some(i), 0),
            Child::Leaf(c) => (None, c),
        };
        let depth = nodes.iter().map(|n| n.depth + 1).max().unwrap_or(0);
        AnalogTree {
            nodes,
            root,
            constant_class,
            n_classes: tree.n_classes(),
            max_code,
            config,
            depth,
        }
    }

    /// Classifies from quantized feature codes (converted to node voltages
    /// internally, exactly as a sensor front-end would drive the circuit).
    pub fn predict(&self, codes: &[u64]) -> usize {
        let volts: Vec<f64> = codes
            .iter()
            .map(|&c| c.min(self.max_code) as f64 / self.max_code as f64)
            .collect();
        self.predict_volts(&volts)
    }

    /// Classifies from raw node voltages in `[0, 1]`.
    pub fn predict_volts(&self, volts: &[f64]) -> usize {
        let Some(mut i) = self.root else {
            return self.constant_class;
        };
        loop {
            let node = &self.nodes[i];
            let above = node.comparator.decide(volts[node.feature]);
            let child = if above { node.right } else { node.left };
            match child {
                Child::Leaf(class) => return class,
                Child::Node(n) => i = n,
            }
        }
    }

    /// Number of analog comparator nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Tree depth in analog levels.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total EGT count (comparators + selectors + buffers) — the prototype
    /// inventory of §VI-B counts exactly these.
    pub fn transistor_count(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| {
                let mut t = n.comparator.transistor_count();
                if n.depth > 0 {
                    t += 1; // selector EGT
                }
                if self.config.buffers && n.depth > 0 {
                    t += 2; // level-restoring inverter pair
                }
                t
            })
            .sum()
    }

    /// Printed resistor count (one threshold resistor per node).
    pub fn resistor_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total circuit area.
    pub fn area(&self) -> Area {
        Egt::area() * self.transistor_count() as f64
            + PrintedResistor::area() * self.resistor_count() as f64
    }

    /// Worst-case static power: only the enabled root-to-leaf path
    /// conducts (unused subtrees are gated off by their selectors), so
    /// power scales with depth, not node count.
    pub fn static_power(&self) -> Power {
        let per_node = self
            .nodes
            .iter()
            .map(|n| n.comparator.worst_static_power())
            .fold(Power::ZERO, |a, b| a.max(b));
        let buffer_power = if self.config.buffers {
            // Two-EGT inverter leg per level below the root.
            Power::from_uw(0.8) * self.depth.saturating_sub(1) as f64
        } else {
            Power::ZERO
        };
        per_node * self.depth as f64 + buffer_power
    }

    /// Evaluation latency: the selector cascade settles level by level.
    pub fn latency(&self) -> Delay {
        let per_level = self
            .nodes
            .iter()
            .map(|n| n.comparator.settle_time())
            .fold(Delay::ZERO, |a, b| a.max(b));
        let buffer_delay = if self.config.buffers {
            Delay::from_ms(1.0) * self.depth.saturating_sub(1) as f64
        } else {
            Delay::ZERO
        };
        per_level * self.depth as f64 + buffer_delay
    }

    /// Worst-case differential output margin across all nodes for a given
    /// input, degraded by the selector cascade when buffers are off.
    ///
    /// The §VI-B prototype measured 405 mV worst case *with* clean levels;
    /// without buffers each level of selector drop costs ~15% of swing.
    pub fn worst_margin(&self, codes: &[u64]) -> f64 {
        let volts: Vec<f64> = codes
            .iter()
            .map(|&c| c.min(self.max_code) as f64 / self.max_code as f64)
            .collect();
        let Some(mut i) = self.root else { return 1.0 };
        let mut worst: f64 = 1.0;
        loop {
            let node = &self.nodes[i];
            let mut margin = node.comparator.output_margin(volts[node.feature]);
            if !self.config.buffers {
                margin *= 0.85f64.powi(node.depth as i32);
            }
            worst = worst.min(margin);
            let above = node.comparator.decide(volts[node.feature]);
            match if above { node.right } else { node.left } {
                Child::Leaf(_) => return worst,
                Child::Node(n) => i = n,
            }
        }
    }
}

fn build(
    tree: &QuantizedTree,
    node: usize,
    depth: usize,
    max_code: u64,
    config: AnalogTreeConfig,
    out: &mut Vec<Node>,
) -> Child {
    match &tree.nodes()[node] {
        QNode::Leaf { class } => Child::Leaf(*class),
        QNode::Split {
            feature,
            threshold,
            left,
            right,
        } => {
            // Trip midway between the threshold code and the next code so
            // quantized inputs sit squarely on either side.
            let v = ((*threshold as f64) + 0.5) / max_code as f64;
            let comparator = AnalogComparator::new(v.clamp(0.0, 1.0), config.encoding);
            let l = build(tree, *left, depth + 1, max_code, config, out);
            let r = build(tree, *right, depth + 1, max_code, config, out);
            out.push(Node {
                feature: *feature,
                comparator,
                depth,
                left: l,
                right: r,
            });
            Child::Node(out.len() - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml::quant::FeatureQuantizer;
    use ml::synth::Application;
    use ml::tree::{DecisionTree, TreeParams};

    fn quantized(
        app: Application,
        depth: usize,
        bits: usize,
    ) -> (QuantizedTree, FeatureQuantizer, ml::Dataset) {
        let data = app.generate(7);
        let (train, test) = data.split(0.7, 42);
        let tree = DecisionTree::fit(&train, TreeParams::with_depth(depth));
        let fq = FeatureQuantizer::fit(&train, bits);
        (QuantizedTree::from_tree(&tree, &fq), fq, test)
    }

    #[test]
    fn analog_tree_matches_digital_tree_at_low_precision() {
        let (qt, fq, test) = quantized(Application::Har, 4, 6);
        let at = AnalogTree::from_tree(&qt, AnalogTreeConfig::default());
        let mut agree = 0usize;
        for row in &test.x {
            let codes = fq.code_row(row);
            agree += (at.predict(&codes) == qt.predict(&codes)) as usize;
        }
        let rate = agree as f64 / test.x.len() as f64;
        assert!(rate > 0.98, "agreement {rate}");
    }

    #[test]
    fn paper_linear_encoding_degrades_agreement() {
        let (qt, fq, test) = quantized(Application::Pendigits, 4, 8);
        let cal = AnalogTree::from_tree(&qt, AnalogTreeConfig::default());
        let lin = AnalogTree::from_tree(
            &qt,
            AnalogTreeConfig {
                encoding: ThresholdEncoding::PaperLinear,
                buffers: true,
            },
        );
        let agreement = |t: &AnalogTree| {
            let mut agree = 0usize;
            for row in &test.x {
                let codes = fq.code_row(row);
                agree += (t.predict(&codes) == qt.predict(&codes)) as usize;
            }
            agree as f64 / test.x.len() as f64
        };
        assert!(
            agreement(&cal) >= agreement(&lin),
            "calibration should not hurt"
        );
    }

    #[test]
    fn prototype_inventory_matches_the_paper() {
        // §VI-B: a 2-level tree (1 root + 2 split nodes) uses 11 EGTs and
        // 3 printed resistors (no buffers in the prototype).
        // Build a full depth-2 tree directly.
        let data = Application::Cardio.generate(7);
        let (train, _) = data.split(0.7, 42);
        let mut tree;
        let mut depth_try = 2;
        loop {
            tree = DecisionTree::fit(&train, TreeParams::with_depth(depth_try));
            if tree.comparison_count() == 3 || depth_try > 6 {
                break;
            }
            depth_try += 1;
        }
        assert_eq!(
            tree.comparison_count(),
            3,
            "need a full depth-2 tree for this test"
        );
        let fq = FeatureQuantizer::fit(&train, 2);
        let qt = QuantizedTree::from_tree(&tree, &fq);
        let at = AnalogTree::from_tree(
            &qt,
            AnalogTreeConfig {
                encoding: ThresholdEncoding::Calibrated,
                buffers: false,
            },
        );
        assert_eq!(at.node_count(), 3);
        assert_eq!(at.transistor_count(), 11, "3 + 4 + 4 EGTs");
        assert_eq!(at.resistor_count(), 3);
    }

    #[test]
    fn power_scales_with_depth_not_node_count() {
        let (qt2, _, _) = quantized(Application::Pendigits, 2, 6);
        let (qt8, _, _) = quantized(Application::Pendigits, 8, 6);
        let a2 = AnalogTree::from_tree(&qt2, AnalogTreeConfig::default());
        let a8 = AnalogTree::from_tree(&qt8, AnalogTreeConfig::default());
        assert!(a8.node_count() > a2.node_count() * 3);
        // Power grows at most ~linearly with depth, far slower than nodes.
        let power_ratio = a8.static_power().ratio(a2.static_power());
        let node_ratio = a8.node_count() as f64 / a2.node_count() as f64;
        assert!(
            power_ratio < node_ratio / 1.5,
            "power {power_ratio} nodes {node_ratio}"
        );
    }

    #[test]
    fn buffers_cost_area_but_restore_margin() {
        let (qt, fq, test) = quantized(Application::GasId, 4, 6);
        let with = AnalogTree::from_tree(&qt, AnalogTreeConfig::default());
        let without = AnalogTree::from_tree(
            &qt,
            AnalogTreeConfig {
                encoding: ThresholdEncoding::Calibrated,
                buffers: false,
            },
        );
        assert!(with.area() > without.area());
        let codes = fq.code_row(&test.x[0]);
        assert!(with.worst_margin(&codes) >= without.worst_margin(&codes));
    }

    #[test]
    fn single_leaf_tree_is_a_constant() {
        // A depth-0 tree needs no analog hardware at all.
        let data = Application::Har.generate(7);
        let tree = DecisionTree::fit(&data, TreeParams::with_depth(0));
        let fq = FeatureQuantizer::fit(&data, 4);
        let qt = QuantizedTree::from_tree(&tree, &fq);
        let at = AnalogTree::from_tree(&qt, AnalogTreeConfig::default());
        assert_eq!(at.node_count(), 0);
        assert_eq!(
            at.predict(&fq.code_row(&data.x[0])),
            qt.predict(&fq.code_row(&data.x[0]))
        );
        assert!(at.area().is_zero());
    }
}

impl AnalogTree {
    /// One-hot leaf-line voltages for quantized feature codes: the raw
    /// class read-out of the analog tree (Fig. 15's C1..C4 lines), with
    /// selector-cascade attenuation applied when buffers are off.
    ///
    /// Returns one voltage per leaf in depth-first (left-first) order;
    /// exactly one line sits near VDD, the rest near 0 V.
    pub fn leaf_lines(&self, codes: &[u64]) -> Vec<f64> {
        let volts: Vec<f64> = codes
            .iter()
            .map(|&c| c.min(self.max_code) as f64 / self.max_code as f64)
            .collect();
        let mut lines = Vec::new();
        match self.root {
            None => lines.push(crate::device::VDD),
            Some(root) => self.walk_lines(root, &volts, true, 0, &mut lines),
        }
        lines
    }

    fn walk_lines(
        &self,
        node: usize,
        volts: &[f64],
        enabled: bool,
        depth: usize,
        lines: &mut Vec<f64>,
    ) {
        let n = &self.nodes[node];
        let above = n.comparator.decide(volts[n.feature]);
        let attenuation = if self.config.buffers {
            1.0
        } else {
            0.85f64.powi(depth as i32 + 1)
        };
        let child = |c: Child, selected: bool, lines: &mut Vec<f64>| match c {
            Child::Leaf(_) => {
                lines.push(if enabled && selected {
                    crate::device::VDD * attenuation
                } else {
                    0.0
                });
            }
            Child::Node(i) => self.walk_lines(i, volts, enabled && selected, depth + 1, lines),
        };
        child(n.left, !above, lines);
        child(n.right, above, lines);
    }
}

#[cfg(test)]
mod leaf_line_tests {
    use super::*;
    use ml::quant::FeatureQuantizer;
    use ml::synth::Application;
    use ml::tree::{DecisionTree, TreeParams};

    #[test]
    fn exactly_one_leaf_line_is_high() {
        let data = Application::Har.generate(7);
        let (train, test) = data.split(0.7, 42);
        let tree = DecisionTree::fit(&train, TreeParams::with_depth(4));
        let fq = FeatureQuantizer::fit(&train, 6);
        let qt = ml::quant::QuantizedTree::from_tree(&tree, &fq);
        let at = AnalogTree::from_tree(&qt, AnalogTreeConfig::default());
        for row in test.x.iter().take(40) {
            let lines = at.leaf_lines(&fq.code_row(row));
            let high = lines.iter().filter(|&&v| v > 0.5).count();
            assert_eq!(high, 1, "lines: {lines:?}");
        }
    }

    #[test]
    fn attenuation_shows_without_buffers() {
        let data = Application::Pendigits.generate(7);
        let (train, test) = data.split(0.7, 42);
        let tree = DecisionTree::fit(&train, TreeParams::with_depth(6));
        let fq = FeatureQuantizer::fit(&train, 6);
        let qt = ml::quant::QuantizedTree::from_tree(&tree, &fq);
        let buffered = AnalogTree::from_tree(&qt, AnalogTreeConfig::default());
        let bare = AnalogTree::from_tree(
            &qt,
            AnalogTreeConfig {
                encoding: crate::comparator::ThresholdEncoding::Calibrated,
                buffers: false,
            },
        );
        let codes = fq.code_row(&test.x[0]);
        let hb = buffered
            .leaf_lines(&codes)
            .into_iter()
            .fold(0.0f64, f64::max);
        let hn = bare.leaf_lines(&codes).into_iter().fold(0.0f64, f64::max);
        assert!(hb >= hn, "buffers must restore swing: {hb} vs {hn}");
        assert!(hn < 1.0, "unbuffered deep trees attenuate");
    }
}
