#![warn(missing_docs)]

//! # analog — printed analog classifier substrate
//!
//! The SPICE-simulation leg of the *Printed Machine Learning Classifiers*
//! reproduction (§VI): device models, analog cells, full classifiers and
//! transient simulation, all built from scratch:
//!
//! * [`device`] — EGT transistors (gate-voltage → channel-resistance law)
//!   and printed dot resistors with a quantized printable range;
//! * [`comparator`] — the back-to-back-inverter decision cell with the
//!   paper's linear threshold→resistance mapping and a calibrated variant;
//! * [`crossbar`] — resistive crossbar MAC columns implementing the
//!   paper's equations (1) and (2);
//! * [`tree`] / [`svm`] — complete analog decision trees (selector-gated,
//!   depth-scaled power) and analog SVM engines (differential columns plus
//!   a boundary comparator bank);
//! * [`transient`] — first-order RC transient simulation for scope-style
//!   waveforms;
//! * [`variation`] / [`compile`] — Monte-Carlo print-variation analysis:
//!   deterministic log-normal mismatch sweeps, run on a compiled
//!   lane-batched evaluation tape (64 trials per pass over the rows)
//!   with the scalar path preserved as `variation::reference`;
//! * [`proto`] — the fabricated prototypes: the 4×1 multi-level ROM and
//!   the 11-EGT two-level analog tree.
//!
//! ```
//! use analog::comparator::{AnalogComparator, ThresholdEncoding};
//!
//! let cell = AnalogComparator::new(0.4, ThresholdEncoding::Calibrated);
//! assert!(cell.decide(0.6));
//! assert!(!cell.decide(0.2));
//! ```

pub mod comparator;
pub mod compile;
pub mod crossbar;
pub mod device;
pub mod proto;
pub mod svm;
pub mod transient;
pub mod tree;
pub mod variation;

pub use comparator::{AnalogComparator, ThresholdEncoding};
pub use compile::{CompiledSvmVariation, CompiledTreeVariation, SvmRows, TreeRows};
pub use crossbar::CrossbarColumn;
pub use device::{Egt, PrintedResistor, VDD};
pub use proto::{digital_tree_transients, two_level_tree_transients, MultiLevelRom, RomLevel};
pub use svm::AnalogSvm;
pub use transient::{simulate_node, Stimulus, Waveform};
pub use tree::{AnalogTree, AnalogTreeConfig};
pub use variation::{
    analyze_svm_variation, analyze_tree_variation, max_code_for_bits, svm_variation_sweep,
    variation_sweep, VariationReport,
};
