//! Reproductions of the paper's fabricated analog prototypes.
//!
//! * [`MultiLevelRom`] — the 4×1 one-time-programmable printed ROM of
//!   §V-B: four rows selected by pass EGTs, data stored as dot-resistor
//!   geometry, read out as a voltage divider against a sense resistor.
//!   With `R ∈ {2·Rs, ∞, Rs/2, ≈0}` each element encodes 2 bits (output
//!   levels 1/3, 0, 2/3, 1 of VDD) — 8 bits for the whole array.
//! * [`two_level_tree_transients`] — the 2-level analog decision tree of
//!   §VI-B (11 EGTs, 3 printed resistors): transient node voltages for all
//!   four input combinations, reproducing Fig. 15c's scope traces.

use serde::Serialize;

use pdk::units::{Area, Delay, Power};

use crate::comparator::{AnalogComparator, ThresholdEncoding};
use crate::device::VDD;
use crate::transient::{simulate_node, Stimulus, Waveform};

/// Stored state of one multi-level ROM element.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum RomLevel {
    /// `R = 2·R_sense` → reads `VDD/3` (code 01).
    Double,
    /// Not printed (`R = ∞`) → reads `0 V` (code 00).
    Open,
    /// `R = R_sense/2` → reads `2·VDD/3` (code 10).
    Half,
    /// Maximum-area dot (`R ≈ 0`) → reads `VDD` (code 11).
    Short,
}

impl RomLevel {
    /// The 2-bit code this level encodes.
    pub fn code(self) -> u8 {
        match self {
            RomLevel::Open => 0b00,
            RomLevel::Double => 0b01,
            RomLevel::Half => 0b10,
            RomLevel::Short => 0b11,
        }
    }

    /// Resistance relative to the sense resistor (`None` = not printed).
    fn resistance(self, r_sense: f64) -> Option<f64> {
        match self {
            RomLevel::Double => Some(2.0 * r_sense),
            RomLevel::Open => None,
            RomLevel::Half => Some(r_sense / 2.0),
            RomLevel::Short => Some(1.0), // ≈ 0 Ω, one ohm of trace
        }
    }
}

/// The fabricated 4×1 multi-level printed ROM.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MultiLevelRom {
    levels: [RomLevel; 4],
    r_sense: f64,
}

impl MultiLevelRom {
    /// The exact prototype of §V-B:
    /// `R1 = 2·Rs, R2 = ∞, R3 = Rs/2, R4 ≈ 0`.
    pub fn paper_prototype() -> Self {
        MultiLevelRom {
            levels: [
                RomLevel::Double,
                RomLevel::Open,
                RomLevel::Half,
                RomLevel::Short,
            ],
            r_sense: 1.0e6,
        }
    }

    /// A ROM with custom levels.
    pub fn new(levels: [RomLevel; 4], r_sense: f64) -> Self {
        assert!(r_sense > 0.0, "sense resistance must be positive");
        MultiLevelRom { levels, r_sense }
    }

    /// DC read-out voltage of `row` (voltage divider: sense resistor in
    /// the pull-down network, printed dot in the pull-up).
    ///
    /// # Panics
    /// Panics if `row >= 4`.
    pub fn read_voltage(&self, row: usize) -> f64 {
        let level = self.levels[row];
        match level.resistance(self.r_sense) {
            None => 0.0,
            Some(r) => VDD * self.r_sense / (self.r_sense + r),
        }
    }

    /// Decodes a read-out voltage back to its 2-bit code (nearest of the
    /// four nominal levels).
    pub fn decode(&self, voltage: f64) -> u8 {
        let nominal = [
            (0.0, 0b00u8),
            (VDD / 3.0, 0b01),
            (2.0 * VDD / 3.0, 0b10),
            (VDD, 0b11),
        ];
        nominal
            .iter()
            .min_by(|a, b| {
                (a.0 - voltage)
                    .abs()
                    .partial_cmp(&(b.0 - voltage).abs())
                    .unwrap()
            })
            .unwrap()
            .1
    }

    /// Reads `row` and decodes its 2-bit value.
    pub fn read(&self, row: usize) -> u8 {
        self.decode(self.read_voltage(row))
    }

    /// All 8 bits of the array, row 0 in the least-significant position.
    pub fn read_all(&self) -> u8 {
        (0..4)
            .map(|r| self.read(r) << (2 * r))
            .fold(0, |a, b| a | b)
    }

    /// Transient read-out: select each row for `dwell` seconds in turn,
    /// reproducing Fig. 14c's scope trace.
    pub fn read_transient(&self, dwell: f64, samples: usize) -> Waveform {
        let switches: Vec<(f64, f64)> = (0..4)
            .map(|r| (r as f64 * dwell, self.read_voltage(r)))
            .collect();
        let stim = Stimulus::steps(switches);
        // Measured element delay was ~10 ms → tau ≈ 2 ms for 5τ settling.
        simulate_node(&[stim], |l| l[0], 2.0e-3, 0.0, 4.0 * dwell, samples)
    }

    /// Footprint of the fabricated prototype (measured: 38 mm²).
    pub fn area(&self) -> Area {
        Area::from_mm2(38.0)
    }

    /// Average read power of the prototype (measured: 39 µW).
    pub fn read_power(&self) -> Power {
        Power::from_uw(39.0)
    }

    /// Read delay of the prototype (measured: ~10 ms).
    pub fn read_delay(&self) -> Delay {
        Delay::from_ms(10.0)
    }
}

/// Node voltages of the §VI-B two-level analog tree for one input pair,
/// as transient waveforms: `(s1, s2, c3, c4)` — root complementary
/// outputs and the right split node's class lines.
///
/// Inputs `x1`, `x2` are voltages in `[0, 1]`; the prototype thresholds
/// both nodes at mid-scale.
pub fn two_level_tree_transients(
    x1: f64,
    x2: f64,
    t_end: f64,
    samples: usize,
) -> (Waveform, Waveform, Waveform, Waveform) {
    let root = AnalogComparator::new(0.5, ThresholdEncoding::Calibrated);
    let split = AnalogComparator::new(0.5, ThresholdEncoding::Calibrated);
    let tau = 1.5e-3;
    let x1_high = root.decide(x1);
    // Root outputs: S1 high when x1 is high (matches Fig. 15c: "when the
    // input x1 is at logical '1', S1/S2 are in state '1'/'0'").
    let s1 = simulate_node(
        &[Stimulus::constant(if x1_high { VDD } else { 0.0 })],
        |l| l[0],
        tau,
        VDD / 2.0,
        t_end,
        samples,
    );
    let s2 = simulate_node(
        &[Stimulus::constant(if x1_high { 0.0 } else { VDD })],
        |l| l[0],
        tau,
        VDD / 2.0,
        t_end,
        samples,
    );
    // Right split node is *selected* when x1 is low; unselected nodes are
    // pulled to 0 V by their selector EGT.
    let selected = !x1_high;
    let x2_high = split.decide(x2);
    let (c3_t, c4_t) = if !selected {
        (0.0, 0.0)
    } else if x2_high {
        (0.0, VDD)
    } else {
        (VDD, 0.0)
    };
    // Class lines settle one level later (selector cascade).
    let c3 = simulate_node(
        &[Stimulus::constant(c3_t)],
        |l| l[0],
        tau * 1.4,
        0.0,
        t_end,
        samples,
    );
    let c4 = simulate_node(
        &[Stimulus::constant(c4_t)],
        |l| l[0],
        tau * 1.4,
        0.0,
        t_end,
        samples,
    );
    (s1, s2, c3, c4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_reads_the_paper_levels() {
        let rom = MultiLevelRom::paper_prototype();
        assert!((rom.read_voltage(0) - VDD / 3.0).abs() < 0.01);
        assert!((rom.read_voltage(1) - 0.0).abs() < 1e-12);
        assert!((rom.read_voltage(2) - 2.0 * VDD / 3.0).abs() < 0.01);
        assert!((rom.read_voltage(3) - VDD).abs() < 0.01);
    }

    #[test]
    fn two_bits_per_element_eight_bits_total() {
        let rom = MultiLevelRom::paper_prototype();
        assert_eq!(rom.read(0), 0b01);
        assert_eq!(rom.read(1), 0b00);
        assert_eq!(rom.read(2), 0b10);
        assert_eq!(rom.read(3), 0b11);
        assert_eq!(rom.read_all(), 0b11_10_00_01);
    }

    #[test]
    fn decode_is_robust_to_voltage_noise() {
        let rom = MultiLevelRom::paper_prototype();
        for row in 0..4 {
            let v = rom.read_voltage(row);
            for noise in [-0.08, 0.0, 0.08] {
                assert_eq!(rom.decode((v + noise).clamp(0.0, 1.0)), rom.read(row));
            }
        }
    }

    #[test]
    fn transient_read_visits_all_four_levels() {
        let rom = MultiLevelRom::paper_prototype();
        let w = rom.read_transient(20e-3, 400);
        // Sample late in each dwell window: must be near the DC level.
        for row in 0..4 {
            let t_probe = (row as f64 + 0.95) * 20e-3;
            let idx = w
                .times
                .iter()
                .position(|&t| t >= t_probe)
                .unwrap_or(w.times.len() - 1);
            let expect = rom.read_voltage(row);
            assert!(
                (w.values[idx] - expect).abs() < 0.06,
                "row {row}: got {} expected {expect}",
                w.values[idx]
            );
        }
    }

    #[test]
    fn prototype_costs_match_measurements() {
        let rom = MultiLevelRom::paper_prototype();
        assert_eq!(rom.area().as_mm2(), 38.0);
        assert_eq!(rom.read_power().as_uw(), 39.0);
        assert_eq!(rom.read_delay().as_ms(), 10.0);
    }

    #[test]
    fn tree_prototype_reproduces_fig15_truth_table() {
        // x1 high → S1/S2 = 1/0, split node unselected → C3 = C4 = 0.
        let (s1, s2, c3, c4) = two_level_tree_transients(0.9, 0.9, 30e-3, 200);
        assert!(s1.settled() > 0.9 && s2.settled() < 0.1);
        assert!(c3.settled() < 0.1 && c4.settled() < 0.1);
        // x1 low → split selected; x2 high → C4, x2 low → C3.
        let (_, _, c3, c4) = two_level_tree_transients(0.1, 0.9, 30e-3, 200);
        assert!(c3.settled() < 0.1 && c4.settled() > 0.9);
        let (_, _, c3, c4) = two_level_tree_transients(0.1, 0.1, 30e-3, 200);
        assert!(c3.settled() > 0.9 && c4.settled() < 0.1);
    }

    #[test]
    fn tree_prototype_margin_exceeds_measured_worst_case() {
        // The paper measured 405 mV worst-case separation; our settled
        // complementary traces separate by at least that.
        let (s1, s2, _, _) = two_level_tree_transients(0.9, 0.5, 30e-3, 200);
        assert!(s1.margin_against(&s2) > 0.405);
    }
}

/// Transient class-line waveforms of the §IV-C *digital* depth-2 bespoke
/// tree prototype (Fig. 5, right panel): given the settled logic values of
/// the four class lines, produce the RC-shaped scope traces an EGT
/// implementation exhibits when the inputs step at `t = 0`.
///
/// `class_levels` are the four logic values (exactly one should be true);
/// EGT gates slew with millisecond time constants, so the traces rise or
/// fall over several ms like the paper's measurement.
pub fn digital_tree_transients(
    class_levels: [bool; 4],
    t_end: f64,
    samples: usize,
) -> [Waveform; 4] {
    // A depth-2 bespoke tree is 2-3 gate levels deep; each EGT logic
    // stage contributes ~1 ms of slew.
    let tau = 1.2e-3;
    class_levels.map(|level| {
        simulate_node(
            &[Stimulus::constant(if level { VDD } else { 0.0 })],
            |l| l[0],
            tau,
            VDD / 2.0,
            t_end,
            samples,
        )
    })
}

#[cfg(test)]
mod digital_proto_tests {
    use super::*;

    #[test]
    fn exactly_one_class_line_settles_high() {
        let traces = digital_tree_transients([false, false, true, false], 15e-3, 150);
        let highs: Vec<bool> = traces.iter().map(|w| w.settled() > 0.8).collect();
        assert_eq!(highs, vec![false, false, true, false]);
        // Complementary lines separate by a solid margin once settled.
        assert!(traces[2].margin_against(&traces[0]) > 0.5);
    }

    #[test]
    fn traces_start_at_midrail_and_slew() {
        let traces = digital_tree_transients([true, false, false, false], 15e-3, 150);
        assert!((traces[0].values[0] - VDD / 2.0).abs() < 0.05);
        assert!(
            traces[0].settling_time(0.05) > 1e-3,
            "EGT gates slew slowly"
        );
    }
}
