//! Compiled, lane-batched Monte-Carlo variation engine.
//!
//! The scalar analyzers (preserved as [`crate::variation::reference`])
//! re-derive split ordinals, rebuild perturbed columns and walk the tree
//! node-by-node for **every** `(trial, row)` pair — including a full
//! nominal-circuit prediction per pair, each of which costs `powf`/`ln`
//! transistor-law evaluations and fresh allocations. This module applies
//! the `netlist::compile` treatment to the analog side:
//!
//! 1. **Compile once.** A [`QuantizedTree`] / [`QuantizedSvm`] is
//!    flattened into an evaluation *tape*: split ordinals resolved to a
//!    dense struct-of-arrays topology, per-node nominal resistances
//!    pre-solved through the transistor law, crossbar column layouts
//!    (draw order *and* ascending-row summation order) frozen.
//! 2. **Bind rows once.** Feature codes are normalized to node voltages
//!    a single time, and the nominal circuit is evaluated once per row
//!    — not once per `(trial, row)`.
//! 3. **Evaluate a lane-block of trials per pass over the rows.** Each
//!    block perturbs [`LANES`] trials into a struct-of-arrays `f64`
//!    lane matrix and sweeps the rows once, with flat inner loops over
//!    the lane dimension that LLVM can autovectorize. Blocks shard
//!    across [`exec::parallel_map`]; the tape is compiled once and
//!    shared read-only by every shard.
//!
//! ## Determinism contract
//!
//! Trial `t` draws from `StdRng::seed_from_u64(task_seed(seed, t))` in
//! exactly the order the scalar path draws (tree: one log-normal factor
//! per split in split-ordinal order; SVM: positive column then negative
//! column in term order), and every floating-point expression is kept
//! operation-for-operation identical to the reference. Reports are
//! therefore **bit-identical** to [`crate::variation::reference`] and
//! bit-identical at any thread count or lane-block boundary
//! (`tests/variation_engine.rs` pins both).

use exec::rng::StdRng;
use exec::{parallel_map, task_seed};

use ml::quant::{QNode, QuantizedSvm, QuantizedTree};

use crate::device::{Egt, PrintedResistor, R_MIN};
use crate::svm::AnalogSvm;
use crate::tree::{AnalogTree, AnalogTreeConfig};
use crate::variation::{lognormal_factor, max_code_for_bits, VariationReport};

/// Trials perturbed and evaluated per pass over the rows (one `u64`
/// decision word per split in the dense tree strategy).
pub const LANES: usize = 64;

/// Splits at or below this count use the dense strategy: decide *every*
/// split for all lanes into per-split `u64` decision words (branch-free,
/// autovectorizable), then route each lane through the topology with
/// integer ops only. Above it, the wasted off-path comparisons outgrow
/// the vectorization win and lanes walk the tape directly.
const DENSE_SPLIT_LIMIT: usize = 32;

/// Tape builds (tree + SVM), mirroring `netlist.sim.compiles`.
static COMPILES: obs::Counter = obs::Counter::new("analog.variation.compiles");
/// Monte-Carlo trials evaluated through the compiled engine.
static TRIALS: obs::Counter = obs::Counter::new("analog.variation.trials");
/// `(trial, row)` evaluations performed.
static ROWS: obs::Counter = obs::Counter::new("analog.variation.rows");
/// Lane blocks sharded across the exec pool.
static LANE_BLOCKS: obs::Counter = obs::Counter::new("analog.variation.lane_blocks");

/// Child/root encoding of the flat tree topology: `>= 0` is a split
/// ordinal, `< 0` is a leaf storing `!class`.
fn encode_child(ordinal_of: &[usize], nodes: &[QNode], node: usize) -> i32 {
    match &nodes[node] {
        QNode::Leaf { class } => !(*class as i32),
        QNode::Split { .. } => ordinal_of[node] as i32,
    }
}

/// A quantized tree compiled into a flat variation-evaluation tape.
#[derive(Debug, Clone)]
pub struct CompiledTreeVariation {
    /// Per split ordinal (node-index order, the reference draw order).
    feature: Vec<usize>,
    /// Nominal printed resistance realizing each split's threshold.
    r_nom: Vec<f64>,
    left: Vec<i32>,
    right: Vec<i32>,
    /// Root in child encoding (`< 0`: the tree is a single leaf).
    root: i32,
    device: Egt,
    max_code: u64,
    /// Nominal analog realization, evaluated once per row at bind time.
    nominal: AnalogTree,
}

/// Rows bound to a [`CompiledTreeVariation`]: pre-normalized node
/// voltages (one slot per split, in split-ordinal order) and the
/// nominal circuit's prediction for every row.
#[derive(Debug, Clone)]
pub struct TreeRows {
    /// `volts[row * n_splits + s]` — the voltage split `s` compares.
    split_volts: Vec<f64>,
    nominal_class: Vec<usize>,
    n_rows: usize,
}

impl TreeRows {
    /// Number of bound evaluation rows.
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// True when no rows are bound.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }
}

impl CompiledTreeVariation {
    /// Flattens `tree` into an evaluation tape: split ordinals, features
    /// and nominal resistances in struct-of-arrays layout, plus the
    /// nominal analog realization used as the agreement baseline.
    pub fn compile(tree: &QuantizedTree) -> Self {
        COMPILES.incr();
        let max_code = max_code_for_bits(tree.bits());
        let device = Egt::default();
        let nodes = tree.nodes();
        let mut ordinal_of = vec![usize::MAX; nodes.len()];
        let mut n_splits = 0usize;
        for (i, node) in nodes.iter().enumerate() {
            if matches!(node, QNode::Split { .. }) {
                ordinal_of[i] = n_splits;
                n_splits += 1;
            }
        }
        let mut feature = Vec::with_capacity(n_splits);
        let mut r_nom = Vec::with_capacity(n_splits);
        let mut left = Vec::with_capacity(n_splits);
        let mut right = Vec::with_capacity(n_splits);
        for node in nodes {
            if let QNode::Split {
                feature: f,
                threshold,
                left: l,
                right: r,
            } = node
            {
                let v = (((*threshold as f64) + 0.5) / max_code as f64).clamp(0.0, 1.0);
                feature.push(*f);
                r_nom.push(device.resistance(v));
                left.push(encode_child(&ordinal_of, nodes, *l));
                right.push(encode_child(&ordinal_of, nodes, *r));
            }
        }
        CompiledTreeVariation {
            feature,
            r_nom,
            left,
            right,
            root: encode_child(&ordinal_of, nodes, 0),
            device,
            max_code,
            nominal: AnalogTree::from_tree(tree, AnalogTreeConfig::default()),
        }
    }

    /// Number of split nodes on the tape.
    pub fn split_count(&self) -> usize {
        self.feature.len()
    }

    /// Normalizes `rows` to per-split node voltages and evaluates the
    /// nominal circuit once per row.
    pub fn bind(&self, rows: &[Vec<u64>]) -> TreeRows {
        let n_splits = self.feature.len();
        let mut split_volts = Vec::with_capacity(rows.len() * n_splits);
        let mut nominal_class = Vec::with_capacity(rows.len());
        for codes in rows {
            for &f in &self.feature {
                split_volts.push(codes[f].min(self.max_code) as f64 / self.max_code as f64);
            }
            nominal_class.push(self.nominal.predict(codes));
        }
        TreeRows {
            split_volts,
            nominal_class,
            n_rows: rows.len(),
        }
    }

    /// Perturbs one lane-block of trials (`lo ..` in `thr`, split-major
    /// `thr[s * LANES + lane]`) exactly as the reference draws them.
    fn perturb_block(&self, thr: &mut [f64], lo: usize, n: usize, sigma: f64, seed: u64) {
        for lane in 0..n {
            let mut rng = StdRng::seed_from_u64(task_seed(seed, (lo + lane) as u64));
            for s in 0..self.r_nom.len() {
                let factor = lognormal_factor(&mut rng, sigma);
                let r = (self.r_nom[s] * factor).clamp(self.device.r_on, self.device.r_off);
                thr[s * LANES + lane] = self.device.voltage_for_resistance(r);
            }
        }
    }

    /// Runs the Monte-Carlo agreement analysis on pre-bound rows.
    ///
    /// Bit-identical to [`crate::variation::reference::analyze_tree_variation`]
    /// at any thread count.
    ///
    /// # Panics
    /// Panics if `trials` is zero or `rows` is empty.
    pub fn analyze(
        &self,
        rows: &TreeRows,
        sigma: f64,
        trials: usize,
        seed: u64,
    ) -> VariationReport {
        let _span = obs::span("analog.variation");
        assert!(trials > 0, "need at least one trial");
        assert!(!rows.is_empty(), "need evaluation rows");
        TRIALS.add(trials as u64);
        ROWS.add((trials * rows.n_rows) as u64);
        let n_splits = self.feature.len();
        let block_ids: Vec<u64> = (0..trials.div_ceil(LANES) as u64).collect();
        LANE_BLOCKS.add(block_ids.len() as u64);
        let blocks: Vec<Vec<f64>> = parallel_map(&block_ids, |_, &b| {
            let lo = b as usize * LANES;
            let n = (trials - lo).min(LANES);
            let mut thr = vec![0.0f64; n_splits * LANES];
            self.perturb_block(&mut thr, lo, n, sigma, seed);
            let mut agree = [0u32; LANES];
            if n_splits <= DENSE_SPLIT_LIMIT {
                // Dense strategy: one branch-free decision word per split,
                // then an integer-only route per lane.
                let mut decisions = vec![0u64; n_splits];
                for r in 0..rows.n_rows {
                    let volts = &rows.split_volts[r * n_splits..(r + 1) * n_splits];
                    for (s, word) in decisions.iter_mut().enumerate() {
                        let x = volts[s];
                        let lanes = &thr[s * LANES..(s + 1) * LANES];
                        let mut bits = 0u64;
                        for (l, &t) in lanes.iter().enumerate() {
                            bits |= ((x > t) as u64) << l;
                        }
                        *word = bits;
                    }
                    let nominal = rows.nominal_class[r];
                    for (lane, a) in agree.iter_mut().enumerate().take(n) {
                        let mut node = self.root;
                        while node >= 0 {
                            let s = node as usize;
                            node = if (decisions[s] >> lane) & 1 != 0 {
                                self.right[s]
                            } else {
                                self.left[s]
                            };
                        }
                        *a += ((!node) as usize == nominal) as u32;
                    }
                }
            } else {
                // Sparse strategy: each lane walks only its own path —
                // off-path splits of a deep tree are never decided.
                for r in 0..rows.n_rows {
                    let volts = &rows.split_volts[r * n_splits..(r + 1) * n_splits];
                    let nominal = rows.nominal_class[r];
                    for (lane, a) in agree.iter_mut().enumerate().take(n) {
                        let mut node = self.root;
                        while node >= 0 {
                            let s = node as usize;
                            node = if volts[s] > thr[s * LANES + lane] {
                                self.right[s]
                            } else {
                                self.left[s]
                            };
                        }
                        *a += ((!node) as usize == nominal) as u32;
                    }
                }
            }
            agree[..n]
                .iter()
                .map(|&a| a as f64 / rows.n_rows as f64)
                .collect()
        });
        let agreements: Vec<f64> = blocks.into_iter().flatten().collect();
        summarize(sigma, trials, &agreements)
    }

    /// Convenience: [`CompiledTreeVariation::bind`] + analyze in one call.
    pub fn analyze_rows(
        &self,
        rows: &[Vec<u64>],
        sigma: f64,
        trials: usize,
        seed: u64,
    ) -> VariationReport {
        self.analyze(&self.bind(rows), sigma, trials, seed)
    }
}

/// Folds per-trial agreements into a [`VariationReport`] with the exact
/// reduction (and reduction order) of the scalar reference.
pub(crate) fn summarize(sigma: f64, trials: usize, agreements: &[f64]) -> VariationReport {
    let mean = agreements.iter().sum::<f64>() / trials as f64;
    let worst = agreements.iter().cloned().fold(f64::INFINITY, f64::min);
    VariationReport {
        sigma,
        trials,
        mean_agreement: mean,
        worst_agreement: worst,
    }
}

/// One crossbar column's frozen layout.
#[derive(Debug, Clone)]
struct ColumnTape {
    /// `(feature, magnitude)` in **term order** — the RNG draw order.
    features: Vec<usize>,
    mags: Vec<f64>,
    /// Indices into `features`/`mags` sorted by ascending feature — the
    /// order `CrossbarColumn::program` builds resistors and sums
    /// conductances in.
    eval: Vec<usize>,
}

impl ColumnTape {
    fn new(terms: &[(usize, u64)]) -> Option<Self> {
        if terms.is_empty() {
            return None;
        }
        let features: Vec<usize> = terms.iter().map(|&(f, _)| f).collect();
        let mags: Vec<f64> = terms.iter().map(|&(_, m)| m as f64).collect();
        let mut eval: Vec<usize> = (0..terms.len()).collect();
        eval.sort_by_key(|&k| features[k]);
        assert!(
            eval.windows(2).all(|w| features[w[0]] != features[w[1]]),
            "duplicate crossbar rows in SVM terms"
        );
        Some(ColumnTape {
            features,
            mags,
            eval,
        })
    }

    /// Draws one trial's perturbed weights (term order, matching the
    /// reference RNG stream) and programs the column: conductances and
    /// their total in ascending-row order, written into lane `lane` of
    /// the split-major lane matrix `g[slot * LANES + lane]`.
    fn perturb_lane(
        &self,
        rng: &mut StdRng,
        sigma: f64,
        lane: usize,
        w: &mut [f64],
        g: &mut [f64],
        total: &mut [f64],
    ) {
        for (wk, &m) in w.iter_mut().zip(&self.mags) {
            *wk = m * lognormal_factor(rng, sigma);
        }
        // `CrossbarColumn::program` takes the max over the full dense
        // weight vector; `f64::max` is exact, so the sparse max matches.
        let wmax = w.iter().cloned().fold(0.0f64, f64::max);
        let g_max = 1.0 / (2.0 * R_MIN);
        let mut t = 0.0f64;
        for (slot, &k) in self.eval.iter().enumerate() {
            let target = g_max * (w[k] / wmax);
            let cond = 1.0 / PrintedResistor::printable(1.0 / target).resistance;
            g[slot * LANES + lane] = cond;
            t += cond;
        }
        total[lane] = t;
    }

    /// Accumulates this column's normalized weighted sum for one row
    /// into `out[0..n]`, reproducing `CrossbarColumn::output` term by
    /// term (`v * g / total`, summed in ascending-row order).
    fn accumulate(&self, volts: &[f64], g: &[f64], total: &[f64], out: &mut [f64], n: usize) {
        for (slot, &k) in self.eval.iter().enumerate() {
            let v = volts[self.features[k]];
            let lanes = &g[slot * LANES..slot * LANES + n];
            for ((o, &gl), &tl) in out[..n].iter_mut().zip(lanes).zip(&total[..n]) {
                *o += v * gl / tl;
            }
        }
    }
}

/// A quantized SVM compiled into a flat variation-evaluation tape.
#[derive(Debug, Clone)]
pub struct CompiledSvmVariation {
    pos: Option<ColumnTape>,
    neg: Option<ColumnTape>,
    pos_scale: f64,
    neg_scale: f64,
    boundaries_v: Vec<f64>,
    n_classes: usize,
    n_features: usize,
    max_code: u64,
    /// Nominal analog engine, evaluated once per row at bind time.
    nominal: AnalogSvm,
}

/// Rows bound to a [`CompiledSvmVariation`]: pre-normalized row voltages
/// and the nominal engine's prediction for every row.
#[derive(Debug, Clone)]
pub struct SvmRows {
    /// `volts[row * row_len + feature]`.
    volts: Vec<f64>,
    row_len: usize,
    nominal_class: Vec<usize>,
    n_rows: usize,
}

impl SvmRows {
    /// Number of bound evaluation rows.
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// True when no rows are bound.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }
}

impl CompiledSvmVariation {
    /// Freezes `svm`'s crossbar layout (draw order and ascending-row
    /// summation order), class boundaries and scale factors, plus the
    /// nominal analog engine used as the agreement baseline.
    pub fn compile(svm: &QuantizedSvm, n_features: usize) -> Self {
        COMPILES.incr();
        let max_code = max_code_for_bits(svm.bits());
        CompiledSvmVariation {
            pos: ColumnTape::new(svm.pos_terms()),
            neg: ColumnTape::new(svm.neg_terms()),
            pos_scale: svm.pos_terms().iter().map(|&(_, m)| m as f64).sum(),
            neg_scale: svm.neg_terms().iter().map(|&(_, m)| m as f64).sum(),
            boundaries_v: svm
                .boundaries()
                .iter()
                .map(|&b| b as f64 / max_code as f64)
                .collect(),
            n_classes: svm.n_classes(),
            n_features,
            max_code,
            nominal: AnalogSvm::from_svm(svm, n_features),
        }
    }

    /// Number of printed crossbar rows across both columns.
    pub fn term_count(&self) -> usize {
        self.pos.as_ref().map_or(0, |c| c.features.len())
            + self.neg.as_ref().map_or(0, |c| c.features.len())
    }

    /// Normalizes `rows` to crossbar input voltages and evaluates the
    /// nominal engine once per row.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths or are shorter than the
    /// highest programmed crossbar row.
    pub fn bind(&self, rows: &[Vec<u64>]) -> SvmRows {
        let row_len = rows.first().map_or(self.n_features, Vec::len);
        let mut volts = Vec::with_capacity(rows.len() * row_len);
        let mut nominal_class = Vec::with_capacity(rows.len());
        for codes in rows {
            assert_eq!(codes.len(), row_len, "inconsistent row lengths");
            volts.extend(
                codes
                    .iter()
                    .map(|&c| c.min(self.max_code) as f64 / self.max_code as f64),
            );
            nominal_class.push(self.nominal.predict(codes));
        }
        SvmRows {
            volts,
            row_len,
            nominal_class,
            n_rows: rows.len(),
        }
    }

    /// Runs the Monte-Carlo agreement analysis on pre-bound rows.
    ///
    /// Bit-identical to [`crate::variation::reference::analyze_svm_variation`]
    /// at any thread count.
    ///
    /// # Panics
    /// Panics if `trials` is zero or `rows` is empty.
    pub fn analyze(&self, rows: &SvmRows, sigma: f64, trials: usize, seed: u64) -> VariationReport {
        let _span = obs::span("analog.variation");
        assert!(trials > 0, "need at least one trial");
        assert!(!rows.is_empty(), "need evaluation rows");
        TRIALS.add(trials as u64);
        ROWS.add((trials * rows.n_rows) as u64);
        let k_pos = self.pos.as_ref().map_or(0, |c| c.features.len());
        let k_neg = self.neg.as_ref().map_or(0, |c| c.features.len());
        let block_ids: Vec<u64> = (0..trials.div_ceil(LANES) as u64).collect();
        LANE_BLOCKS.add(block_ids.len() as u64);
        let blocks: Vec<Vec<f64>> = parallel_map(&block_ids, |_, &b| {
            let lo = b as usize * LANES;
            let n = (trials - lo).min(LANES);
            let mut w = vec![0.0f64; k_pos.max(k_neg)];
            let mut g_pos = vec![0.0f64; k_pos * LANES];
            let mut g_neg = vec![0.0f64; k_neg * LANES];
            let (mut total_pos, mut total_neg) = ([0.0f64; LANES], [0.0f64; LANES]);
            for lane in 0..n {
                let mut rng = StdRng::seed_from_u64(task_seed(seed, (lo + lane) as u64));
                // Reference draw order: positive column, then negative,
                // from the same per-trial stream.
                if let Some(col) = &self.pos {
                    col.perturb_lane(
                        &mut rng,
                        sigma,
                        lane,
                        &mut w[..k_pos],
                        &mut g_pos,
                        &mut total_pos,
                    );
                }
                if let Some(col) = &self.neg {
                    col.perturb_lane(
                        &mut rng,
                        sigma,
                        lane,
                        &mut w[..k_neg],
                        &mut g_neg,
                        &mut total_neg,
                    );
                }
            }
            let mut agree = [0u32; LANES];
            let (mut vp, mut vn) = ([0.0f64; LANES], [0.0f64; LANES]);
            for r in 0..rows.n_rows {
                let volts = &rows.volts[r * rows.row_len..(r + 1) * rows.row_len];
                vp[..n].fill(0.0);
                vn[..n].fill(0.0);
                if let Some(col) = &self.pos {
                    col.accumulate(volts, &g_pos, &total_pos, &mut vp, n);
                }
                if let Some(col) = &self.neg {
                    col.accumulate(volts, &g_neg, &total_neg, &mut vn, n);
                }
                let nominal = rows.nominal_class[r];
                for (lane, a) in agree.iter_mut().enumerate().take(n) {
                    let d = vp[lane] * self.pos_scale - vn[lane] * self.neg_scale;
                    let class = self
                        .boundaries_v
                        .iter()
                        .filter(|&&bv| d > bv)
                        .count()
                        .min(self.n_classes - 1);
                    *a += (class == nominal) as u32;
                }
            }
            agree[..n]
                .iter()
                .map(|&a| a as f64 / rows.n_rows as f64)
                .collect()
        });
        let agreements: Vec<f64> = blocks.into_iter().flatten().collect();
        summarize(sigma, trials, &agreements)
    }

    /// Convenience: [`CompiledSvmVariation::bind`] + analyze in one call.
    pub fn analyze_rows(
        &self,
        rows: &[Vec<u64>],
        sigma: f64,
        trials: usize,
        seed: u64,
    ) -> VariationReport {
        self.analyze(&self.bind(rows), sigma, trials, seed)
    }
}
