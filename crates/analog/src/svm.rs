//! Analog printed SVMs: crossbar MAC plus an analog class-mapping bank
//! (§VI-A, Fig. 15a).
//!
//! The signed integer dot product `D = P − N` of the digital
//! [`ml::QuantizedSvm`] is realized with two crossbar columns (one for the
//! positive coefficients, one for the negatives). Each column computes a
//! *normalized* weighted average (eq. (1)), so the decision
//! `D > B_c` becomes a comparison between scaled column voltages:
//!
//! ```text
//! P = Vp · Sp · C,  N = Vn · Sn · C   (Sp/Sn = coefficient sums, C = max code)
//! D > B_c  ⟺  Vp·Sp − Vn·Sn > B_c / C
//! ```
//!
//! One analog comparator per class boundary senses the (scaled)
//! differential, producing a thermometer code that reads out the class.

use serde::Serialize;

use ml::quant::QuantizedSvm;
use pdk::units::{Area, Delay, Power};

use crate::comparator::AnalogComparator;
use crate::crossbar::CrossbarColumn;
use crate::device::{Egt, PrintedResistor};

/// A generated analog SVM engine.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AnalogSvm {
    positive: Option<CrossbarColumn>,
    negative: Option<CrossbarColumn>,
    /// Scale factor `Sp`: sum of positive integer coefficient magnitudes.
    pos_scale: f64,
    /// Scale factor `Sn`.
    neg_scale: f64,
    /// Class boundaries scaled into the voltage domain (`B_c / C`).
    boundaries_v: Vec<f64>,
    n_classes: usize,
    n_features: usize,
    max_code: u64,
}

impl AnalogSvm {
    /// Programs crossbar columns realizing a quantized SVM regressor.
    pub fn from_svm(svm: &QuantizedSvm, n_features: usize) -> Self {
        let max_code = crate::variation::max_code_for_bits(svm.bits());
        let column = |terms: &[(usize, u64)]| -> (Option<CrossbarColumn>, f64) {
            if terms.is_empty() {
                return (None, 0.0);
            }
            let mut weights = vec![0.0; n_features];
            for &(f, m) in terms {
                weights[f] = m as f64;
            }
            let scale: f64 = terms.iter().map(|&(_, m)| m as f64).sum();
            (Some(CrossbarColumn::program(&weights)), scale)
        };
        let (positive, pos_scale) = column(svm.pos_terms());
        let (negative, neg_scale) = column(svm.neg_terms());
        let boundaries_v = svm
            .boundaries()
            .iter()
            .map(|&b| b as f64 / max_code as f64)
            .collect();
        AnalogSvm {
            positive,
            negative,
            pos_scale,
            neg_scale,
            boundaries_v,
            n_classes: svm.n_classes(),
            n_features,
            max_code,
        }
    }

    /// The scaled analog decision value `Vp·Sp − Vn·Sn` for feature codes.
    pub fn decision(&self, codes: &[u64]) -> f64 {
        let volts: Vec<f64> = codes
            .iter()
            .map(|&c| c.min(self.max_code) as f64 / self.max_code as f64)
            .collect();
        let vp = self.positive.as_ref().map_or(0.0, |c| c.output(&volts));
        let vn = self.negative.as_ref().map_or(0.0, |c| c.output(&volts));
        vp * self.pos_scale - vn * self.neg_scale
    }

    /// Classifies feature codes: thermometer count of boundary crossings.
    pub fn predict(&self, codes: &[u64]) -> usize {
        let d = self.decision(codes);
        let class = self.boundaries_v.iter().filter(|&&b| d > b).count();
        class.min(self.n_classes - 1)
    }

    /// Printed dot resistors across both columns.
    pub fn resistor_count(&self) -> usize {
        self.positive.as_ref().map_or(0, |c| c.resistor_count())
            + self.negative.as_ref().map_or(0, |c| c.resistor_count())
    }

    /// EGT count: the boundary comparator bank plus differential sensing.
    pub fn transistor_count(&self) -> usize {
        // Per boundary: one 3-EGT comparator cell; plus a 2-EGT
        // differential sense stage shared by the bank.
        3 * self.boundaries_v.len() + 2
    }

    /// Total area: crossbar dots, per-row input drivers (each feature
    /// voltage must drive its crossbar row), the comparator bank and the
    /// differential sense stage.
    pub fn area(&self) -> Area {
        let dots = PrintedResistor::area() * self.resistor_count() as f64;
        let drivers = Area::from_mm2(0.04) * self.resistor_count() as f64;
        let comparators =
            (Egt::area() * 3.0 + PrintedResistor::area()) * self.boundaries_v.len() as f64;
        let sense = Egt::area() * 2.0 + PrintedResistor::area() * 2.0;
        dots + drivers + comparators + sense
    }

    /// Static power: columns conduct continuously, each row driver burns a
    /// bias current, and one comparator leg idles per boundary.
    pub fn static_power(&self) -> Power {
        let col = |c: &Option<CrossbarColumn>| c.as_ref().map_or(Power::ZERO, |c| c.static_power());
        let drivers = Power::from_uw(25.0) * self.resistor_count() as f64;
        let bank = Power::from_uw(18.0) * self.boundaries_v.len() as f64;
        col(&self.positive) + col(&self.negative) + drivers + bank
    }

    /// Latency: column settling, then comparator regeneration. Boundary
    /// comparisons must resolve a small differential — roughly one LSB of
    /// the quantized coefficient domain — so regeneration time scales with
    /// the datapath width.
    pub fn latency(&self) -> Delay {
        let col = |c: &Option<CrossbarColumn>| c.as_ref().map_or(Delay::ZERO, |c| c.settle_time());
        let settle = col(&self.positive).max(col(&self.negative));
        let bits = (64 - self.max_code.leading_zeros() as usize).max(1);
        let comparator =
            AnalogComparator::new(0.5, crate::comparator::ThresholdEncoding::Calibrated)
                .settle_time();
        // ~2.5 regeneration windows per resolved bit.
        settle + comparator * (2.5 * bits as f64)
    }

    /// Number of feature inputs.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml::data::Standardizer;
    use ml::quant::FeatureQuantizer;
    use ml::synth::Application;
    use ml::SvmRegressor;

    fn setup(app: Application, bits: usize) -> (QuantizedSvm, FeatureQuantizer, ml::Dataset) {
        let data = app.generate(7);
        let (train, test) = data.split(0.7, 42);
        let s = Standardizer::fit(&train);
        let (train, test) = (s.transform(&train), s.transform(&test));
        let svm = SvmRegressor::fit(&train, 200, 1e-4);
        let fq = FeatureQuantizer::fit(&train, bits);
        (QuantizedSvm::from_svm(&svm, &fq), fq, test)
    }

    #[test]
    fn analog_svm_tracks_digital_quantized_svm() {
        let (qs, fq, test) = setup(Application::RedWine, 8);
        let asvm = AnalogSvm::from_svm(&qs, 11);
        let mut agree = 0usize;
        for row in &test.x {
            let codes = fq.code_row(row);
            agree += (asvm.predict(&codes) == qs.predict(&codes)) as usize;
        }
        let rate = agree as f64 / test.x.len() as f64;
        assert!(rate > 0.85, "agreement {rate}");
    }

    #[test]
    fn decision_value_approximates_integer_dot_product() {
        // The decision is the difference of two large column sums, so the
        // right error bound is against the column magnitude P + N (per-
        // resistor snap error ≤ one half grid step, ~2.4%), not against
        // the (cancellation-prone) decision value itself.
        let (qs, fq, test) = setup(Application::RedWine, 8);
        let asvm = AnalogSvm::from_svm(&qs, 11);
        let max_code = (1u64 << 8) - 1;
        for row in test.x.iter().take(40) {
            let codes = fq.code_row(row);
            let p = qs.positive_sum(&codes) as f64;
            let n = qs.negative_sum(&codes) as f64;
            let d_analog = asvm.decision(&codes) * max_code as f64;
            let err = (d_analog - (p - n)).abs() / (p + n).max(max_code as f64);
            assert!(
                err < 0.024,
                "analog {d_analog} vs integer {} ({err})",
                p - n
            );
        }
    }

    #[test]
    fn costs_count_the_right_components() {
        let (qs, _, _) = setup(Application::RedWine, 8);
        let asvm = AnalogSvm::from_svm(&qs, 11);
        assert_eq!(asvm.resistor_count(), qs.mac_count());
        assert_eq!(asvm.transistor_count(), 3 * (qs.n_classes() - 1) + 2);
        assert!(asvm.area().as_mm2() > 0.0);
        assert!(asvm.static_power().as_uw() > 0.0);
        assert!(asvm.latency().as_ms() > 0.0);
        assert_eq!(asvm.n_features(), 11);
        assert_eq!(asvm.n_classes(), 6);
    }

    #[test]
    fn thermometer_class_mapping_is_monotone_in_decision() {
        let (qs, fq, test) = setup(Application::WhiteWine, 8);
        let asvm = AnalogSvm::from_svm(&qs, 11);
        let mut pairs: Vec<(f64, usize)> = test
            .x
            .iter()
            .take(200)
            .map(|row| {
                let codes = fq.code_row(row);
                (asvm.decision(&codes), asvm.predict(&codes))
            })
            .collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in pairs.windows(2) {
            assert!(w[0].1 <= w[1].1, "class must be monotone in decision value");
        }
    }
}
