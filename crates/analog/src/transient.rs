//! Transient (time-domain) simulation of printed analog nodes.
//!
//! The paper validates its prototypes with transient measurements
//! (Figs. 5, 14, 15). Printed nodes settle as first-order RC systems, so a
//! forward-Euler integrator over exponential targets reproduces the shape
//! of those scope traces: step the inputs, watch each node relax toward
//! its DC solution with its own time constant.

use serde::Serialize;

/// A sampled voltage waveform.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Waveform {
    /// Sample instants in seconds.
    pub times: Vec<f64>,
    /// Node voltage at each instant.
    pub values: Vec<f64>,
}

impl Waveform {
    /// Final settled value (last sample).
    ///
    /// # Panics
    /// Panics if the waveform is empty.
    pub fn settled(&self) -> f64 {
        *self.values.last().expect("empty waveform")
    }

    /// Time at which the waveform first comes within `tolerance` of its
    /// settled value and stays there: the sample *after* the last
    /// out-of-tolerance one, or `0.0` for a trace that never leaves
    /// tolerance.
    ///
    /// # Panics
    /// Panics if the waveform is empty or `tolerance` is negative.
    pub fn settling_time(&self, tolerance: f64) -> f64 {
        assert!(tolerance >= 0.0, "tolerance must be non-negative");
        let target = self.settled();
        match self
            .values
            .iter()
            .rposition(|v| (v - target).abs() > tolerance)
        {
            // The last sample equals the settled value, so the last
            // out-of-tolerance sample is never the final one.
            Some(i) => self.times[i + 1],
            None => 0.0,
        }
    }

    /// Minimum separation between this waveform and another over the
    /// settled half of the trace — the measured "output margin".
    pub fn margin_against(&self, other: &Waveform) -> f64 {
        let half = self.values.len() / 2;
        self.values[half..]
            .iter()
            .zip(&other.values[half..])
            .map(|(a, b)| (a - b).abs())
            .fold(f64::INFINITY, f64::min)
    }
}

/// A piecewise-constant stimulus: `(switch time, level)` segments.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Stimulus {
    segments: Vec<(f64, f64)>,
}

impl Stimulus {
    /// A stimulus holding `level` forever.
    pub fn constant(level: f64) -> Self {
        Stimulus {
            segments: vec![(0.0, level)],
        }
    }

    /// A stimulus from `(time, level)` steps; times must be ascending and
    /// start at zero.
    ///
    /// # Panics
    /// Panics if segments are empty, unordered, or don't start at t = 0.
    pub fn steps(segments: Vec<(f64, f64)>) -> Self {
        assert!(!segments.is_empty(), "stimulus needs at least one segment");
        assert_eq!(segments[0].0, 0.0, "stimulus must start at t = 0");
        assert!(
            segments.windows(2).all(|w| w[0].0 < w[1].0),
            "stimulus switch times must be ascending"
        );
        Stimulus { segments }
    }

    /// Level at time `t`.
    pub fn level(&self, t: f64) -> f64 {
        self.segments
            .iter()
            .rev()
            .find(|(start, _)| t >= *start)
            .map(|(_, v)| *v)
            .unwrap_or(self.segments[0].1)
    }
}

/// Simulates a first-order node whose DC target is a function of the
/// stimulus levels: `dv/dt = (target(inputs(t)) − v) / tau`.
///
/// Returns `samples` points spanning `t_end` seconds.
///
/// # Panics
/// Panics if `tau` or `t_end` is not positive or `samples < 2`.
pub fn simulate_node(
    inputs: &[Stimulus],
    target: impl Fn(&[f64]) -> f64,
    tau: f64,
    v0: f64,
    t_end: f64,
    samples: usize,
) -> Waveform {
    assert!(tau > 0.0 && t_end > 0.0, "tau and t_end must be positive");
    assert!(samples >= 2, "need at least two samples");
    let mut times = Vec::with_capacity(samples);
    let mut values = Vec::with_capacity(samples);
    let dt = t_end / (samples - 1) as f64;
    // Sub-step for integration stability.
    let substeps = ((dt / tau) * 10.0).ceil().max(1.0) as usize;
    let h = dt / substeps as f64;
    let mut v = v0;
    let mut levels = vec![0.0; inputs.len()];
    for i in 0..samples {
        let t = i as f64 * dt;
        times.push(t);
        values.push(v);
        for s in 0..substeps {
            let ts = t + s as f64 * h;
            for (l, stim) in levels.iter_mut().zip(inputs) {
                *l = stim.level(ts);
            }
            let tgt = target(&levels);
            v += h * (tgt - v) / tau;
        }
    }
    Waveform { times, values }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_target_settles_exponentially() {
        let w = simulate_node(&[Stimulus::constant(1.0)], |l| l[0], 1e-3, 0.0, 10e-3, 200);
        assert!((w.settled() - 1.0).abs() < 1e-3);
        // After one tau the node sits near 63%.
        let idx = w.times.iter().position(|&t| t >= 1e-3).unwrap();
        assert!(
            (w.values[idx] - 0.632).abs() < 0.05,
            "got {}",
            w.values[idx]
        );
    }

    #[test]
    fn step_stimulus_retargets_the_node() {
        let stim = Stimulus::steps(vec![(0.0, 0.0), (5e-3, 1.0)]);
        let w = simulate_node(&[stim], |l| l[0], 0.5e-3, 0.0, 15e-3, 300);
        let before = w.values[w.times.iter().position(|&t| t >= 4.5e-3).unwrap()];
        assert!(before.abs() < 0.01);
        assert!((w.settled() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn settling_time_tracks_tau() {
        let fast = simulate_node(
            &[Stimulus::constant(1.0)],
            |l| l[0],
            0.2e-3,
            0.0,
            10e-3,
            500,
        );
        let slow = simulate_node(&[Stimulus::constant(1.0)], |l| l[0], 2e-3, 0.0, 20e-3, 500);
        assert!(fast.settling_time(0.01) < slow.settling_time(0.01));
    }

    #[test]
    fn settling_time_is_the_first_instant_back_in_tolerance() {
        let w = Waveform {
            times: vec![0.0, 1.0, 2.0, 3.0],
            values: vec![0.0, 0.5, 0.95, 1.0],
        };
        // Last out-of-tolerance sample is at t = 1.0 (value 0.5); the
        // trace is within tolerance from the *following* sample on. The
        // old implementation returned 1.0 — the instant it was still
        // out of tolerance.
        assert_eq!(w.settling_time(0.1), 2.0);
    }

    #[test]
    fn always_settled_trace_has_zero_settling_time() {
        let w = Waveform {
            times: vec![0.0, 1.0, 2.0],
            values: vec![1.0, 1.0, 1.0],
        };
        assert_eq!(w.settling_time(0.1), 0.0);
    }

    #[test]
    fn margin_between_complementary_nodes() {
        let hi = simulate_node(&[Stimulus::constant(1.0)], |l| l[0], 1e-3, 0.5, 10e-3, 100);
        let lo = simulate_node(&[Stimulus::constant(0.0)], |l| l[0], 1e-3, 0.5, 10e-3, 100);
        assert!(hi.margin_against(&lo) > 0.8);
    }

    #[test]
    fn stimulus_levels_are_piecewise_constant() {
        let s = Stimulus::steps(vec![(0.0, 0.2), (1.0, 0.8), (2.0, 0.1)]);
        assert_eq!(s.level(0.5), 0.2);
        assert_eq!(s.level(1.0), 0.8);
        assert_eq!(s.level(1.99), 0.8);
        assert_eq!(s.level(5.0), 0.1);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unordered_stimulus_is_rejected() {
        Stimulus::steps(vec![(0.0, 0.0), (2.0, 1.0), (1.0, 0.5)]);
    }
}
