//! The analog decision element: a back-to-back-inverter comparator.
//!
//! §VI-A: each tree node's binary test `x_k <= τ_j` is realized by a
//! bistable pair of cross-coupled inverters, one with a printed resistor
//! `R_j` in its pull-up network and the other with an EGT whose gate is
//! driven by the (voltage-encoded, `[0,1] V`) feature. Whichever side pulls
//! up harder wins the latch race, producing complementary outputs `S1/S2`.
//!
//! The threshold is encoded as a resistance via the paper's mapping
//! `R_j = (τ_j − τ_min)/(τ_max − τ_min) · (R_max − R_min) + R_min`; because
//! the transistor's resistance-vs-voltage law is exponential while that map
//! is linear, the printed comparator has a *systematic* decision offset.
//! [`ThresholdEncoding::Calibrated`] instead prints `R_j = R_T(τ_j)`
//! (matched to the transistor law) — the "iterative refinement" printed
//! technology affords (§VI).

use serde::Serialize;

use pdk::units::{Area, Delay, Power};

use crate::device::{Egt, PrintedResistor, R_MAX, R_MIN, VDD};

/// How a threshold voltage becomes a printed resistance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ThresholdEncoding {
    /// The paper's linear voltage→resistance map (systematic offset).
    PaperLinear,
    /// Resistance matched to the transistor law: `R_j = R_T(τ_j)`
    /// (decision point is exact up to resistor quantization).
    Calibrated,
}

/// One printed analog comparator cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AnalogComparator {
    /// Threshold voltage this node was built for, in `[0, 1]` V.
    pub threshold: f64,
    /// The printed resistor realizing the threshold.
    pub resistor: PrintedResistor,
    /// The sense transistor.
    pub transistor: Egt,
    /// Encoding used to derive the resistor.
    pub encoding: ThresholdEncoding,
}

impl AnalogComparator {
    /// Builds a comparator for `threshold ∈ [0, 1]` volts.
    ///
    /// # Panics
    /// Panics if `threshold` is outside `[0, 1]`.
    pub fn new(threshold: f64, encoding: ThresholdEncoding) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold {threshold} outside [0,1] V"
        );
        let transistor = Egt::default();
        let target = match encoding {
            ThresholdEncoding::PaperLinear => threshold * (R_MAX - R_MIN) + R_MIN,
            ThresholdEncoding::Calibrated => transistor.resistance(threshold).clamp(R_MIN, R_MAX),
        };
        AnalogComparator {
            threshold,
            resistor: PrintedResistor::printable(target),
            transistor,
            encoding,
        }
    }

    /// Resolves the latch: returns `true` when the comparator decides
    /// `x > threshold` (the transistor out-pulls the resistor).
    ///
    /// For [`ThresholdEncoding::PaperLinear`] the decision point deviates
    /// from `threshold`; [`AnalogComparator::effective_threshold`] reports
    /// where it actually sits.
    pub fn decide(&self, x: f64) -> bool {
        self.transistor.resistance(x) < self.resistor.resistance
    }

    /// The input voltage at which the cell actually flips.
    pub fn effective_threshold(&self) -> f64 {
        // R_T is monotone decreasing: flip point where R_T(x) = R_j.
        let r = self
            .resistor
            .resistance
            .clamp(self.transistor.r_on, self.transistor.r_off);
        self.transistor.voltage_for_resistance(r)
    }

    /// Differential output voltage margin at input `x`, in volts.
    ///
    /// A resistor-divider estimate of how far apart `S1`/`S2` sit before
    /// the cross-coupled pair regenerates; the prototype's measured worst
    /// case was 405 mV (§VI-B).
    pub fn output_margin(&self, x: f64) -> f64 {
        let rt = self.transistor.resistance(x);
        let rj = self.resistor.resistance;
        let v1 = VDD * rj / (rt + rj);
        let v2 = VDD * rt / (rt + rj);
        (v1 - v2).abs()
    }

    /// Transistor count of the cell: sense EGT + cross-coupled pair.
    pub fn transistor_count(&self) -> usize {
        3
    }

    /// Cell footprint: three EGTs plus the printed threshold resistor.
    pub fn area(&self) -> Area {
        Egt::area() * self.transistor_count() as f64 + PrintedResistor::area()
    }

    /// Static power: the divider leg conducts continuously and the
    /// cross-coupled pair draws a bias current while enabled (unselected
    /// nodes are gated off by their selector and draw nothing).
    pub fn static_power(&self, x: f64) -> Power {
        let rt = self.transistor.resistance(x);
        let rj = self.resistor.resistance;
        let divider = Power::from_w(VDD * VDD / (rt + rj));
        divider + Power::from_uw(18.0)
    }

    /// Worst-case static power across the input range.
    pub fn worst_static_power(&self) -> Power {
        self.static_power(VDD)
    }

    /// Settling time of the latch: RC of the resistor leg against the
    /// node capacitance, times a regeneration factor. Regeneration is
    /// dominated by the mid-range effective resistance of the pair, so the
    /// resistor value is clamped into the regeneration band.
    pub fn settle_time(&self) -> Delay {
        // Printed node capacitance (electrolyte gates are large-area).
        let c_node = 0.6e-9;
        let r_eff = self.resistor.resistance.clamp(2.0e5, 2.0e6);
        Delay::from_secs(5.0 * r_eff * c_node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_cell_flips_at_its_threshold() {
        for thr in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let c = AnalogComparator::new(thr, ThresholdEncoding::Calibrated);
            let eff = c.effective_threshold();
            assert!((eff - thr).abs() < 0.02, "thr={thr} eff={eff}");
            assert!(!c.decide(thr - 0.05), "below must not trip (thr={thr})");
            assert!(c.decide(thr + 0.05), "above must trip (thr={thr})");
        }
    }

    #[test]
    fn paper_linear_encoding_has_systematic_offset() {
        // The linear map cannot match the exponential transistor law
        // everywhere: somewhere in range the effective threshold deviates.
        let mut worst = 0.0f64;
        for step in 1..20 {
            let thr = step as f64 / 20.0;
            let c = AnalogComparator::new(thr, ThresholdEncoding::PaperLinear);
            worst = worst.max((c.effective_threshold() - thr).abs());
        }
        assert!(worst > 0.05, "expected visible offset, worst {worst}");
    }

    #[test]
    fn decision_is_monotone_in_input() {
        let c = AnalogComparator::new(0.5, ThresholdEncoding::Calibrated);
        let mut tripped = false;
        for step in 0..=40 {
            let x = step as f64 / 40.0;
            let d = c.decide(x);
            if tripped {
                assert!(d, "decision must stay high once tripped");
            }
            tripped |= d;
        }
        assert!(tripped);
    }

    #[test]
    fn output_margin_is_strong_away_from_threshold() {
        let c = AnalogComparator::new(0.5, ThresholdEncoding::Calibrated);
        // The fabricated prototype's worst-case margin was 405 mV; far from
        // the trip point our model should comfortably exceed that.
        assert!(c.output_margin(0.95) > 0.4);
        assert!(c.output_margin(0.05) > 0.4);
        // Near the trip point the margin collapses.
        assert!(c.output_margin(c.effective_threshold()) < 0.1);
    }

    #[test]
    fn cell_cost_is_three_transistors_and_one_resistor() {
        let c = AnalogComparator::new(0.3, ThresholdEncoding::Calibrated);
        assert_eq!(c.transistor_count(), 3);
        let expect = Egt::area() * 3.0 + PrintedResistor::area();
        assert!((c.area().as_mm2() - expect.as_mm2()).abs() < 1e-12);
        assert!(c.static_power(0.5).as_uw() < 100.0);
        assert!(c.settle_time().as_ms() > 0.0);
    }
}
