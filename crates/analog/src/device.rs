//! Printed device models: EGT transistors and printed (PEDOT:PSS) resistors.
//!
//! The analog classifier sections of the paper (§VI) replace multi-bit
//! digital logic with a handful of transistors and printed resistors. These
//! models capture what those circuits need:
//!
//! * an EGT's channel resistance as a monotone function of its gate
//!   voltage (the input-voltage → resistance conversion at every analog
//!   tree node);
//! * printable resistors with a bounded, quantized resistance range (dot
//!   geometry sets resistance — §V-B's multi-level ROM encodes 2 bits per
//!   dot this way);
//! * hand-crafted analog cell footprints, far smaller than standard cells
//!   (no routing channels, no gate stacks), calibrated so the analog-vs-
//!   digital ratios of Figs. 16/17 land in band.

use serde::Serialize;

use pdk::units::{Area, Power};

/// Supply voltage of the analog EGT circuits (EGT operates at ~1 V).
pub const VDD: f64 = 1.0;

/// An electrolyte-gated transistor in the analog signal path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Egt {
    /// Channel resistance with the gate fully on (`Vg = VDD`).
    pub r_on: f64,
    /// Channel resistance with the gate fully off (`Vg = 0`).
    pub r_off: f64,
}

impl Default for Egt {
    fn default() -> Self {
        // Inkjet-printed EGT: 10⁴ on/off ratio at 1 V operation. The range
        // deliberately coincides with the printable resistor range
        // [`R_MIN`, `R_MAX`] so every threshold in [0, VDD] has a matching
        // printable resistance.
        Egt {
            r_on: R_MIN,
            r_off: R_MAX,
        }
    }
}

impl Egt {
    /// Channel resistance at gate voltage `vg` (clamped to `[0, VDD]`).
    ///
    /// Log-linear interpolation between `r_off` and `r_on` — the standard
    /// compact-model shape for an exponential subthreshold device:
    /// resistance falls by a constant factor per volt of gate drive.
    pub fn resistance(&self, vg: f64) -> f64 {
        let v = vg.clamp(0.0, VDD) / VDD;
        self.r_off * (self.r_on / self.r_off).powf(v)
    }

    /// The gate voltage at which the channel resistance equals `r`
    /// (inverse of [`Egt::resistance`]).
    ///
    /// # Panics
    /// Panics if `r` is outside `[r_on, r_off]`.
    pub fn voltage_for_resistance(&self, r: f64) -> f64 {
        assert!(
            r >= self.r_on && r <= self.r_off,
            "resistance {r} outside [{}, {}]",
            self.r_on,
            self.r_off
        );
        (r / self.r_off).ln() / (self.r_on / self.r_off).ln() * VDD
    }

    /// Footprint of one analog EGT (hand-crafted minimal device — no
    /// standard-cell routing channels, gate stacks or drive sizing, which
    /// is where most of a printed logic cell's 0.22 mm² goes).
    pub fn area() -> Area {
        Area::from_mm2(0.0018)
    }
}

/// Printable resistance limits (dot geometry sets the value).
pub const R_MIN: f64 = 1.0e4;
/// See [`R_MIN`].
pub const R_MAX: f64 = 1.0e8;

/// A printed dot resistor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PrintedResistor {
    /// Nominal resistance in ohms.
    pub resistance: f64,
}

impl PrintedResistor {
    /// Number of printable values per decade of resistance (geometry
    /// resolution of the inkjet printer).
    pub const VALUES_PER_DECADE: usize = 48;

    /// Creates a resistor, snapping to the nearest printable value.
    ///
    /// # Panics
    /// Panics if `r` is not positive or not finite.
    pub fn printable(r: f64) -> Self {
        assert!(
            r.is_finite() && r > 0.0,
            "resistance must be positive, got {r}"
        );
        let clamped = r.clamp(R_MIN, R_MAX);
        // Geometric grid: VALUES_PER_DECADE points per decade.
        let steps_per_decade = Self::VALUES_PER_DECADE as f64;
        let exponent = (clamped / R_MIN).log10();
        let snapped = (exponent * steps_per_decade).round() / steps_per_decade;
        PrintedResistor {
            resistance: R_MIN * 10f64.powf(snapped),
        }
    }

    /// Relative quantization error committed by [`PrintedResistor::printable`]
    /// for a target `r` (zero when `r` is on the grid, large when clamped).
    pub fn snap_error(r: f64) -> f64 {
        (Self::printable(r).resistance - r).abs() / r
    }

    /// Footprint of one printed dot resistor. Larger resistances need
    /// longer meanders; we charge the worst case to stay conservative.
    pub fn area() -> Area {
        Area::from_mm2(0.0006)
    }

    /// Static power when `volts` is dropped across the resistor.
    pub fn static_power(&self, volts: f64) -> Power {
        Power::from_w(volts * volts / self.resistance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resistance_is_monotone_decreasing_in_gate_voltage() {
        let t = Egt::default();
        let mut prev = f64::INFINITY;
        for step in 0..=20 {
            let vg = step as f64 / 20.0;
            let r = t.resistance(vg);
            assert!(r < prev, "not monotone at vg={vg}");
            prev = r;
        }
        assert!((t.resistance(0.0) - t.r_off).abs() / t.r_off < 1e-12);
        assert!((t.resistance(VDD) - t.r_on).abs() / t.r_on < 1e-12);
    }

    #[test]
    fn resistance_clamps_out_of_range_gate_drives() {
        let t = Egt::default();
        assert_eq!(t.resistance(-5.0), t.resistance(0.0));
        assert_eq!(t.resistance(5.0), t.resistance(VDD));
    }

    #[test]
    fn voltage_for_resistance_inverts_resistance() {
        let t = Egt::default();
        for step in 1..20 {
            let vg = step as f64 / 20.0;
            let r = t.resistance(vg);
            let back = t.voltage_for_resistance(r);
            assert!((back - vg).abs() < 1e-9, "vg={vg} back={back}");
        }
    }

    #[test]
    fn printable_resistors_snap_to_a_geometric_grid() {
        let r = PrintedResistor::printable(123_456.0);
        assert!(PrintedResistor::snap_error(r.resistance) < 1e-12);
        // Error of an arbitrary value is bounded by half a grid step.
        let max_rel = 10f64.powf(0.5 / PrintedResistor::VALUES_PER_DECADE as f64) - 1.0;
        assert!(PrintedResistor::snap_error(123_456.0) <= max_rel + 1e-9);
    }

    #[test]
    fn printable_clamps_to_range() {
        assert_eq!(PrintedResistor::printable(1.0).resistance, R_MIN);
        assert_eq!(PrintedResistor::printable(1e12).resistance, R_MAX);
    }

    #[test]
    fn static_power_follows_ohms_law() {
        let r = PrintedResistor { resistance: 1e6 };
        let p = r.static_power(1.0);
        assert!((p.as_uw() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn analog_devices_are_much_smaller_than_logic_cells() {
        let lib = pdk::CellLibrary::for_technology(pdk::Technology::Egt);
        assert!(Egt::area() < lib.area(pdk::CellKind::Inv) * 0.1);
        assert!(PrintedResistor::area() < Egt::area());
    }
}
