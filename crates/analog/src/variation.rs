//! Process-variation (mismatch) analysis for analog printed classifiers.
//!
//! §VI: in silicon, "noise and mismatch constraints force the analog
//! devices to be large … In printed technologies, low fabrication costs
//! allow iterative refinement to fix/reduce noise/mismatch issues."
//! This module quantifies the starting point of that refinement loop:
//! Monte-Carlo perturbation of every printed resistance and transistor
//! law, measuring how classification agreement with the nominal design
//! degrades as print variation grows.
//!
//! Trials are embarrassingly parallel. Each trial draws from its own
//! deterministic seed stream (`exec::task_seed(seed, trial)`), so a sweep
//! produces **bit-identical** reports at any thread count — the thread
//! pool only changes wall-clock time, never results.

use exec::rng::StdRng;
use exec::{parallel_map, task_seed};

use ml::quant::{QNode, QuantizedTree};

use crate::device::Egt;
use crate::tree::{AnalogTree, AnalogTreeConfig};

/// One Monte-Carlo variation trial of an analog tree.
#[derive(Debug, Clone)]
struct VariedTree {
    /// Per-node effective thresholds after perturbation, in node order of
    /// the quantized tree's split nodes.
    thresholds: Vec<f64>,
}

/// Result of a variation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct VariationReport {
    /// Relative sigma applied to every printed resistance.
    pub sigma: f64,
    /// Monte-Carlo trials run.
    pub trials: usize,
    /// Mean agreement with the nominal (unperturbed) analog tree across
    /// trials and evaluation rows.
    pub mean_agreement: f64,
    /// Worst single-trial agreement.
    pub worst_agreement: f64,
}

/// Runs a Monte-Carlo variation analysis of the analog realization of
/// `tree`: every node's printed resistor is perturbed by a log-normal
/// factor with relative sigma `sigma`, and the perturbed circuit is
/// evaluated on `rows` (quantized feature codes) against the nominal
/// circuit.
///
/// Trials shard across the [`exec`] thread pool; trial `t` draws from the
/// stream seeded `task_seed(seed, t)`, so the report is bit-identical at
/// any thread count.
///
/// # Panics
/// Panics if `trials` is zero or `rows` is empty.
pub fn analyze_tree_variation(
    tree: &QuantizedTree,
    rows: &[Vec<u64>],
    sigma: f64,
    trials: usize,
    seed: u64,
) -> VariationReport {
    let _span = obs::span("analog.variation");
    assert!(trials > 0, "need at least one trial");
    assert!(!rows.is_empty(), "need evaluation rows");
    obs::counter_add("analog.variation.trials", trials as u64);
    obs::counter_add("analog.variation.rows", (trials * rows.len()) as u64);
    let nominal = AnalogTree::from_tree(tree, AnalogTreeConfig::default());
    let device = Egt::default();
    let max_code = (1u64 << tree.bits()) - 1;

    // Collect nominal node resistances (same traversal order as predict
    // uses internally: we re-derive effective thresholds per trial).
    let splits: Vec<(usize, f64)> = tree
        .nodes()
        .iter()
        .filter_map(|n| match n {
            QNode::Split {
                feature, threshold, ..
            } => {
                let v = ((*threshold as f64) + 0.5) / max_code as f64;
                Some((*feature, v.clamp(0.0, 1.0)))
            }
            QNode::Leaf { .. } => None,
        })
        .collect();

    // One deterministic seed stream per trial: results are identical
    // whether trials run sequentially or sharded across threads.
    let trial_ids: Vec<u64> = (0..trials as u64).collect();
    let agreements: Vec<f64> = parallel_map(&trial_ids, |_, &trial| {
        let mut rng = StdRng::seed_from_u64(task_seed(seed, trial));
        // Perturb each node's resistance; map back to an effective
        // threshold voltage through the transistor law.
        let varied = VariedTree {
            thresholds: splits
                .iter()
                .map(|&(_, v)| {
                    let r_nom = device.resistance(v);
                    let factor = (rng.gen_range(-1.0f64..1.0) * sigma * 1.7).exp();
                    let r = (r_nom * factor).clamp(device.r_on, device.r_off);
                    device.voltage_for_resistance(r)
                })
                .collect(),
        };
        let mut agree = 0usize;
        for codes in rows {
            let nominal_class = nominal.predict(codes);
            let varied_class = predict_varied(tree, &varied, codes, max_code);
            agree += (nominal_class == varied_class) as usize;
        }
        agree as f64 / rows.len() as f64
    });
    let mean = agreements.iter().sum::<f64>() / trials as f64;
    let worst = agreements.iter().cloned().fold(f64::INFINITY, f64::min);
    VariationReport {
        sigma,
        trials,
        mean_agreement: mean,
        worst_agreement: worst,
    }
}

/// Walks the tree using the perturbed effective thresholds.
fn predict_varied(
    tree: &QuantizedTree,
    varied: &VariedTree,
    codes: &[u64],
    max_code: u64,
) -> usize {
    // Map node index -> split ordinal.
    let mut ordinal = 0usize;
    let mut split_ordinals = vec![usize::MAX; tree.nodes().len()];
    for (i, n) in tree.nodes().iter().enumerate() {
        if matches!(n, QNode::Split { .. }) {
            split_ordinals[i] = ordinal;
            ordinal += 1;
        }
    }
    let mut i = 0usize;
    loop {
        match &tree.nodes()[i] {
            QNode::Leaf { class } => return *class,
            QNode::Split {
                feature,
                left,
                right,
                ..
            } => {
                let v = codes[*feature].min(max_code) as f64 / max_code as f64;
                let thr = varied.thresholds[split_ordinals[i]];
                i = if v > thr { *right } else { *left };
            }
        }
    }
}

/// Sweeps variation sigmas and reports agreement at each — the data
/// behind a "how much print tolerance can the classifier absorb" plot.
pub fn variation_sweep(
    tree: &QuantizedTree,
    rows: &[Vec<u64>],
    sigmas: &[f64],
    trials: usize,
    seed: u64,
) -> Vec<VariationReport> {
    sigmas
        .iter()
        .map(|&s| analyze_tree_variation(tree, rows, s, trials, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml::quant::FeatureQuantizer;
    use ml::synth::Application;
    use ml::tree::{DecisionTree, TreeParams};

    fn workload() -> (QuantizedTree, Vec<Vec<u64>>) {
        let data = Application::Har.generate(7);
        let (train, test) = data.split(0.7, 42);
        let tree = DecisionTree::fit(&train, TreeParams::with_depth(4));
        let fq = FeatureQuantizer::fit(&train, 6);
        let qt = QuantizedTree::from_tree(&tree, &fq);
        let rows: Vec<Vec<u64>> = test.x.iter().take(100).map(|r| fq.code_row(r)).collect();
        (qt, rows)
    }

    #[test]
    fn zero_variation_agrees_perfectly() {
        let (qt, rows) = workload();
        let r = analyze_tree_variation(&qt, &rows, 0.0, 3, 1);
        assert_eq!(r.mean_agreement, 1.0);
        assert_eq!(r.worst_agreement, 1.0);
    }

    #[test]
    fn agreement_degrades_monotonically_with_sigma() {
        let (qt, rows) = workload();
        let sweep = variation_sweep(&qt, &rows, &[0.0, 0.05, 0.2, 0.8], 8, 42);
        for pair in sweep.windows(2) {
            assert!(
                pair[1].mean_agreement <= pair[0].mean_agreement + 0.02,
                "sigma {} -> {} rose: {} -> {}",
                pair[0].sigma,
                pair[1].sigma,
                pair[0].mean_agreement,
                pair[1].mean_agreement
            );
        }
        // Small print tolerance barely hurts; huge tolerance visibly does.
        assert!(sweep[1].mean_agreement > 0.9);
        assert!(sweep[3].mean_agreement < sweep[0].mean_agreement);
    }

    #[test]
    fn sweep_is_deterministic_in_seed() {
        let (qt, rows) = workload();
        let a = analyze_tree_variation(&qt, &rows, 0.1, 5, 9);
        let b = analyze_tree_variation(&qt, &rows, 0.1, 5, 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_are_rejected() {
        let (qt, rows) = workload();
        analyze_tree_variation(&qt, &rows, 0.1, 0, 1);
    }
}

/// Monte-Carlo variation analysis of an analog SVM: the crossbar's printed
/// resistances are perturbed (log-normal, relative sigma) and the
/// perturbed engine's predictions are compared with the nominal analog
/// engine on `rows`.
///
/// Trials shard across the [`exec`] thread pool with per-trial seed
/// streams; results are bit-identical at any thread count.
///
/// # Panics
/// Panics if `trials` is zero or `rows` is empty.
pub fn analyze_svm_variation(
    svm: &ml::quant::QuantizedSvm,
    n_features: usize,
    rows: &[Vec<u64>],
    sigma: f64,
    trials: usize,
    seed: u64,
) -> VariationReport {
    use crate::crossbar::CrossbarColumn;
    assert!(trials > 0, "need at least one trial");
    assert!(!rows.is_empty(), "need evaluation rows");
    let nominal = crate::svm::AnalogSvm::from_svm(svm, n_features);
    let max_code = (1u64 << svm.bits()) - 1;
    let boundaries_v: Vec<f64> = svm
        .boundaries()
        .iter()
        .map(|&b| b as f64 / max_code as f64)
        .collect();
    let pos_scale: f64 = svm.pos_terms().iter().map(|&(_, m)| m as f64).sum();
    let neg_scale: f64 = svm.neg_terms().iter().map(|&(_, m)| m as f64).sum();

    let trial_ids: Vec<u64> = (0..trials as u64).collect();
    let agreements: Vec<f64> = parallel_map(&trial_ids, |_, &trial| {
        let mut rng = StdRng::seed_from_u64(task_seed(seed, trial));
        let mut perturbed_column = |terms: &[(usize, u64)]| -> Option<CrossbarColumn> {
            if terms.is_empty() {
                return None;
            }
            let mut weights = vec![0.0; n_features];
            for &(f, m) in terms {
                let factor = (rng.gen_range(-1.0f64..1.0) * sigma * 1.7).exp();
                weights[f] = m as f64 * factor;
            }
            Some(CrossbarColumn::program(&weights))
        };
        let pos = perturbed_column(svm.pos_terms());
        let neg = perturbed_column(svm.neg_terms());
        let mut agree = 0usize;
        for codes in rows {
            let volts: Vec<f64> = codes
                .iter()
                .map(|&c| c.min(max_code) as f64 / max_code as f64)
                .collect();
            let vp = pos.as_ref().map_or(0.0, |c| c.output(&volts));
            let vn = neg.as_ref().map_or(0.0, |c| c.output(&volts));
            let d = vp * pos_scale - vn * neg_scale;
            let varied_class = boundaries_v
                .iter()
                .filter(|&&b| d > b)
                .count()
                .min(svm.n_classes() - 1);
            agree += (varied_class == nominal.predict(codes)) as usize;
        }
        agree as f64 / rows.len() as f64
    });
    let mean = agreements.iter().sum::<f64>() / trials as f64;
    let worst = agreements.iter().cloned().fold(f64::INFINITY, f64::min);
    VariationReport {
        sigma,
        trials,
        mean_agreement: mean,
        worst_agreement: worst,
    }
}

#[cfg(test)]
mod svm_variation_tests {
    use super::*;
    use ml::data::Standardizer;
    use ml::quant::{FeatureQuantizer, QuantizedSvm};
    use ml::synth::Application;
    use ml::SvmRegressor;

    fn workload() -> (QuantizedSvm, Vec<Vec<u64>>) {
        let data = Application::RedWine.generate(7);
        let (train, test) = data.split(0.7, 42);
        let s = Standardizer::fit(&train);
        let (train, test) = (s.transform(&train), s.transform(&test));
        let svm = SvmRegressor::fit(&train, 150, 1e-4);
        let fq = FeatureQuantizer::fit(&train, 8);
        let qs = QuantizedSvm::from_svm(&svm, &fq);
        let rows: Vec<Vec<u64>> = test.x.iter().take(120).map(|r| fq.code_row(r)).collect();
        (qs, rows)
    }

    #[test]
    fn tiny_variation_barely_moves_svm_decisions() {
        let (qs, rows) = workload();
        let r = analyze_svm_variation(&qs, 11, &rows, 0.01, 5, 3);
        assert!(r.mean_agreement > 0.9, "agreement {}", r.mean_agreement);
    }

    #[test]
    fn svm_agreement_degrades_with_sigma() {
        let (qs, rows) = workload();
        let small = analyze_svm_variation(&qs, 11, &rows, 0.02, 10, 3);
        let large = analyze_svm_variation(&qs, 11, &rows, 0.5, 10, 3);
        assert!(
            large.mean_agreement < small.mean_agreement + 1e-9,
            "small {} large {}",
            small.mean_agreement,
            large.mean_agreement
        );
    }

    #[test]
    fn svm_variation_is_deterministic() {
        let (qs, rows) = workload();
        let a = analyze_svm_variation(&qs, 11, &rows, 0.1, 4, 8);
        let b = analyze_svm_variation(&qs, 11, &rows, 0.1, 4, 8);
        assert_eq!(a, b);
    }
}
