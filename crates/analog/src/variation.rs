//! Process-variation (mismatch) analysis for analog printed classifiers.
//!
//! §VI: in silicon, "noise and mismatch constraints force the analog
//! devices to be large … In printed technologies, low fabrication costs
//! allow iterative refinement to fix/reduce noise/mismatch issues."
//! This module quantifies the starting point of that refinement loop:
//! Monte-Carlo perturbation of every printed resistance and transistor
//! law, measuring how classification agreement with the nominal design
//! degrades as print variation grows.
//!
//! Each printed resistance is multiplied by a true log-normal factor
//! `exp(sigma * z)` with `z` a standard normal drawn by Box–Muller over
//! the deterministic [`exec`] stream — see [`lognormal_factor`].
//!
//! Trials are embarrassingly parallel. Each trial draws from its own
//! deterministic seed stream (`exec::task_seed(seed, trial)`), so a sweep
//! produces **bit-identical** reports at any thread count — the thread
//! pool only changes wall-clock time, never results.
//!
//! The public analyzers route through the compiled lane-batched engine
//! in [`crate::compile`] (compile the model once, bind rows once,
//! evaluate 64 trials per pass over the rows). The original scalar
//! implementation is preserved verbatim in [`reference`] as the
//! property-test oracle: `tests/variation_engine.rs` pins compiled
//! reports bit-identical to the reference at every trial count and
//! thread count.

use exec::rng::StdRng;

use ml::quant::{QuantizedSvm, QuantizedTree};

use crate::compile::{CompiledSvmVariation, CompiledTreeVariation};

/// Largest representable feature code for a `bits`-wide quantizer,
/// clamped so `bits >= 64` saturates instead of overflowing the shift
/// (the same treatment `netlist::verify` gives exhaustive input spans).
///
/// `bits` must be at least 1 (a 0-bit code space has no codes to
/// normalize against; `FeatureQuantizer` already rejects it).
///
/// Thin re-export of [`ml::quant::max_code_for_bits`], the single
/// source of truth for code-space bounds.
pub fn max_code_for_bits(bits: usize) -> u64 {
    ml::quant::max_code_for_bits(bits)
}

/// Draws one log-normal perturbation factor `exp(sigma * z)`, with `z`
/// standard normal via Box–Muller over the deterministic `StdRng`
/// stream (two `next_f64` draws per factor).
///
/// `1.0 - u1` keeps the log argument in `(0, 1]` — `next_f64` can
/// return exactly 0.0 but never 1.0 — so the draw never hits `ln(0)`.
/// At `sigma == 0.0` the factor is exactly `1.0`, which the
/// perfect-agreement invariant tests rely on.
pub fn lognormal_factor(rng: &mut StdRng, sigma: f64) -> f64 {
    let u1 = rng.next_f64();
    let u2 = rng.next_f64();
    let z = (-2.0 * (1.0 - u1).ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (sigma * z).exp()
}

/// Result of a variation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct VariationReport {
    /// Relative sigma applied to every printed resistance.
    pub sigma: f64,
    /// Monte-Carlo trials run.
    pub trials: usize,
    /// Mean agreement with the nominal (unperturbed) analog tree across
    /// trials and evaluation rows.
    pub mean_agreement: f64,
    /// Worst single-trial agreement.
    pub worst_agreement: f64,
}

/// Runs a Monte-Carlo variation analysis of the analog realization of
/// `tree`: every node's printed resistor is perturbed by a log-normal
/// factor with relative sigma `sigma`, and the perturbed circuit is
/// evaluated on `rows` (quantized feature codes) against the nominal
/// circuit.
///
/// Routes through the compiled lane-batched engine
/// ([`CompiledTreeVariation`]); trial `t` still draws from the stream
/// seeded `task_seed(seed, t)`, so the report is bit-identical at any
/// thread count and bit-identical to
/// [`reference::analyze_tree_variation`].
///
/// # Panics
/// Panics if `trials` is zero or `rows` is empty.
pub fn analyze_tree_variation(
    tree: &QuantizedTree,
    rows: &[Vec<u64>],
    sigma: f64,
    trials: usize,
    seed: u64,
) -> VariationReport {
    CompiledTreeVariation::compile(tree).analyze_rows(rows, sigma, trials, seed)
}

/// Sweeps variation sigmas and reports agreement at each — the data
/// behind a "how much print tolerance can the classifier absorb" plot.
///
/// The tree is compiled and the rows bound **once**, shared across all
/// sigma points (and across every [`exec::parallel_map`] shard within
/// each point).
pub fn variation_sweep(
    tree: &QuantizedTree,
    rows: &[Vec<u64>],
    sigmas: &[f64],
    trials: usize,
    seed: u64,
) -> Vec<VariationReport> {
    let engine = CompiledTreeVariation::compile(tree);
    let bound = engine.bind(rows);
    sigmas
        .iter()
        .map(|&s| engine.analyze(&bound, s, trials, seed))
        .collect()
}

/// Monte-Carlo variation analysis of an analog SVM: the crossbar's printed
/// resistances are perturbed (log-normal, relative sigma) and the
/// perturbed engine's predictions are compared with the nominal analog
/// engine on `rows`.
///
/// Routes through the compiled lane-batched engine
/// ([`CompiledSvmVariation`]); reports are bit-identical at any thread
/// count and bit-identical to [`reference::analyze_svm_variation`].
///
/// # Panics
/// Panics if `trials` is zero or `rows` is empty.
pub fn analyze_svm_variation(
    svm: &QuantizedSvm,
    n_features: usize,
    rows: &[Vec<u64>],
    sigma: f64,
    trials: usize,
    seed: u64,
) -> VariationReport {
    CompiledSvmVariation::compile(svm, n_features).analyze_rows(rows, sigma, trials, seed)
}

/// Sweeps variation sigmas for an analog SVM, compiling the crossbar
/// tape and binding the rows once across all sigma points.
pub fn svm_variation_sweep(
    svm: &QuantizedSvm,
    n_features: usize,
    rows: &[Vec<u64>],
    sigmas: &[f64],
    trials: usize,
    seed: u64,
) -> Vec<VariationReport> {
    let engine = CompiledSvmVariation::compile(svm, n_features);
    let bound = engine.bind(rows);
    sigmas
        .iter()
        .map(|&s| engine.analyze(&bound, s, trials, seed))
        .collect()
}

pub mod reference {
    //! The original scalar variation analyzers, preserved as the oracle
    //! the compiled engine is property-tested against
    //! (`tests/variation_engine.rs`).
    //!
    //! One trial per `parallel_map` task, re-deriving split ordinals and
    //! rebuilding perturbed crossbar columns per trial, and evaluating
    //! the nominal circuit per `(trial, row)` — exactly the code the
    //! compiled engine replaced, minus obs instrumentation (so oracle
    //! runs don't inflate `analog.variation.*` counters).

    use exec::rng::StdRng;
    use exec::{parallel_map, task_seed};

    use ml::quant::{QNode, QuantizedTree};

    use super::{lognormal_factor, max_code_for_bits, VariationReport};
    use crate::device::Egt;
    use crate::tree::{AnalogTree, AnalogTreeConfig};

    /// One Monte-Carlo variation trial of an analog tree.
    #[derive(Debug, Clone)]
    struct VariedTree {
        /// Per-node effective thresholds after perturbation, in node order of
        /// the quantized tree's split nodes.
        thresholds: Vec<f64>,
    }

    /// Scalar oracle for [`super::analyze_tree_variation`].
    ///
    /// # Panics
    /// Panics if `trials` is zero or `rows` is empty.
    pub fn analyze_tree_variation(
        tree: &QuantizedTree,
        rows: &[Vec<u64>],
        sigma: f64,
        trials: usize,
        seed: u64,
    ) -> VariationReport {
        assert!(trials > 0, "need at least one trial");
        assert!(!rows.is_empty(), "need evaluation rows");
        let nominal = AnalogTree::from_tree(tree, AnalogTreeConfig::default());
        let device = Egt::default();
        let max_code = max_code_for_bits(tree.bits());

        // Collect nominal node resistances (same traversal order as predict
        // uses internally: we re-derive effective thresholds per trial).
        let splits: Vec<(usize, f64)> = tree
            .nodes()
            .iter()
            .filter_map(|n| match n {
                QNode::Split {
                    feature, threshold, ..
                } => {
                    let v = ((*threshold as f64) + 0.5) / max_code as f64;
                    Some((*feature, v.clamp(0.0, 1.0)))
                }
                QNode::Leaf { .. } => None,
            })
            .collect();

        // One deterministic seed stream per trial: results are identical
        // whether trials run sequentially or sharded across threads.
        let trial_ids: Vec<u64> = (0..trials as u64).collect();
        let agreements: Vec<f64> = parallel_map(&trial_ids, |_, &trial| {
            let mut rng = StdRng::seed_from_u64(task_seed(seed, trial));
            // Perturb each node's resistance; map back to an effective
            // threshold voltage through the transistor law.
            let varied = VariedTree {
                thresholds: splits
                    .iter()
                    .map(|&(_, v)| {
                        let r_nom = device.resistance(v);
                        let factor = lognormal_factor(&mut rng, sigma);
                        let r = (r_nom * factor).clamp(device.r_on, device.r_off);
                        device.voltage_for_resistance(r)
                    })
                    .collect(),
            };
            let mut agree = 0usize;
            for codes in rows {
                let nominal_class = nominal.predict(codes);
                let varied_class = predict_varied(tree, &varied, codes, max_code);
                agree += (nominal_class == varied_class) as usize;
            }
            agree as f64 / rows.len() as f64
        });
        let mean = agreements.iter().sum::<f64>() / trials as f64;
        let worst = agreements.iter().cloned().fold(f64::INFINITY, f64::min);
        VariationReport {
            sigma,
            trials,
            mean_agreement: mean,
            worst_agreement: worst,
        }
    }

    /// Walks the tree using the perturbed effective thresholds.
    fn predict_varied(
        tree: &QuantizedTree,
        varied: &VariedTree,
        codes: &[u64],
        max_code: u64,
    ) -> usize {
        // Map node index -> split ordinal.
        let mut ordinal = 0usize;
        let mut split_ordinals = vec![usize::MAX; tree.nodes().len()];
        for (i, n) in tree.nodes().iter().enumerate() {
            if matches!(n, QNode::Split { .. }) {
                split_ordinals[i] = ordinal;
                ordinal += 1;
            }
        }
        let mut i = 0usize;
        loop {
            match &tree.nodes()[i] {
                QNode::Leaf { class } => return *class,
                QNode::Split {
                    feature,
                    left,
                    right,
                    ..
                } => {
                    let v = codes[*feature].min(max_code) as f64 / max_code as f64;
                    let thr = varied.thresholds[split_ordinals[i]];
                    i = if v > thr { *right } else { *left };
                }
            }
        }
    }

    /// Scalar oracle for [`super::analyze_svm_variation`].
    ///
    /// # Panics
    /// Panics if `trials` is zero or `rows` is empty.
    pub fn analyze_svm_variation(
        svm: &ml::quant::QuantizedSvm,
        n_features: usize,
        rows: &[Vec<u64>],
        sigma: f64,
        trials: usize,
        seed: u64,
    ) -> VariationReport {
        use crate::crossbar::CrossbarColumn;
        assert!(trials > 0, "need at least one trial");
        assert!(!rows.is_empty(), "need evaluation rows");
        let nominal = crate::svm::AnalogSvm::from_svm(svm, n_features);
        let max_code = max_code_for_bits(svm.bits());
        let boundaries_v: Vec<f64> = svm
            .boundaries()
            .iter()
            .map(|&b| b as f64 / max_code as f64)
            .collect();
        let pos_scale: f64 = svm.pos_terms().iter().map(|&(_, m)| m as f64).sum();
        let neg_scale: f64 = svm.neg_terms().iter().map(|&(_, m)| m as f64).sum();

        let trial_ids: Vec<u64> = (0..trials as u64).collect();
        let agreements: Vec<f64> = parallel_map(&trial_ids, |_, &trial| {
            let mut rng = StdRng::seed_from_u64(task_seed(seed, trial));
            let mut perturbed_column = |terms: &[(usize, u64)]| -> Option<CrossbarColumn> {
                if terms.is_empty() {
                    return None;
                }
                let mut weights = vec![0.0; n_features];
                for &(f, m) in terms {
                    let factor = lognormal_factor(&mut rng, sigma);
                    weights[f] = m as f64 * factor;
                }
                Some(CrossbarColumn::program(&weights))
            };
            let pos = perturbed_column(svm.pos_terms());
            let neg = perturbed_column(svm.neg_terms());
            let mut agree = 0usize;
            for codes in rows {
                let volts: Vec<f64> = codes
                    .iter()
                    .map(|&c| c.min(max_code) as f64 / max_code as f64)
                    .collect();
                let vp = pos.as_ref().map_or(0.0, |c| c.output(&volts));
                let vn = neg.as_ref().map_or(0.0, |c| c.output(&volts));
                let d = vp * pos_scale - vn * neg_scale;
                let varied_class = boundaries_v
                    .iter()
                    .filter(|&&b| d > b)
                    .count()
                    .min(svm.n_classes() - 1);
                agree += (varied_class == nominal.predict(codes)) as usize;
            }
            agree as f64 / rows.len() as f64
        });
        let mean = agreements.iter().sum::<f64>() / trials as f64;
        let worst = agreements.iter().cloned().fold(f64::INFINITY, f64::min);
        VariationReport {
            sigma,
            trials,
            mean_agreement: mean,
            worst_agreement: worst,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml::quant::FeatureQuantizer;
    use ml::synth::Application;
    use ml::tree::{DecisionTree, TreeParams};

    fn workload() -> (QuantizedTree, Vec<Vec<u64>>) {
        let data = Application::Har.generate(7);
        let (train, test) = data.split(0.7, 42);
        let tree = DecisionTree::fit(&train, TreeParams::with_depth(4));
        let fq = FeatureQuantizer::fit(&train, 6);
        let qt = QuantizedTree::from_tree(&tree, &fq);
        let rows: Vec<Vec<u64>> = test.x.iter().take(100).map(|r| fq.code_row(r)).collect();
        (qt, rows)
    }

    #[test]
    fn max_code_saturates_at_the_shift_boundary() {
        assert_eq!(max_code_for_bits(1), 1);
        assert_eq!(max_code_for_bits(6), 63);
        assert_eq!(max_code_for_bits(16), 65_535);
        assert_eq!(max_code_for_bits(63), (1u64 << 63) - 1);
        // bits >= 64 used to overflow the shift (panic in debug, wrap to
        // max_code == 0 in release); now saturates.
        assert_eq!(max_code_for_bits(64), u64::MAX);
        assert_eq!(max_code_for_bits(200), u64::MAX);
    }

    #[test]
    fn lognormal_factor_is_unit_at_zero_sigma_and_spreads_with_sigma() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..64 {
            assert_eq!(lognormal_factor(&mut rng, 0.0), 1.0);
        }
        // A log-normal factor is always positive and its log has the
        // requested scale: sample standard deviation of ln(factor) at
        // sigma = 0.3 should land near 0.3.
        let sigma = 0.3;
        let logs: Vec<f64> = (0..4096)
            .map(|_| lognormal_factor(&mut rng, sigma).ln())
            .collect();
        assert!(logs.iter().all(|l| l.is_finite()));
        let mean = logs.iter().sum::<f64>() / logs.len() as f64;
        let var = logs.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / logs.len() as f64;
        assert!(mean.abs() < 0.03, "log-mean {mean}");
        assert!((var.sqrt() - sigma).abs() < 0.03, "log-sd {}", var.sqrt());
    }

    #[test]
    fn zero_variation_agrees_perfectly() {
        let (qt, rows) = workload();
        let r = analyze_tree_variation(&qt, &rows, 0.0, 3, 1);
        assert_eq!(r.mean_agreement, 1.0);
        assert_eq!(r.worst_agreement, 1.0);
    }

    #[test]
    fn agreement_degrades_monotonically_with_sigma() {
        let (qt, rows) = workload();
        let sweep = variation_sweep(&qt, &rows, &[0.0, 0.05, 0.2, 0.8], 8, 42);
        for pair in sweep.windows(2) {
            assert!(
                pair[1].mean_agreement <= pair[0].mean_agreement + 0.02,
                "sigma {} -> {} rose: {} -> {}",
                pair[0].sigma,
                pair[1].sigma,
                pair[0].mean_agreement,
                pair[1].mean_agreement
            );
        }
        // Small print tolerance barely hurts; huge tolerance visibly does.
        assert!(sweep[1].mean_agreement > 0.9);
        assert!(sweep[3].mean_agreement < sweep[0].mean_agreement);
    }

    #[test]
    fn sweep_is_deterministic_in_seed() {
        let (qt, rows) = workload();
        let a = analyze_tree_variation(&qt, &rows, 0.1, 5, 9);
        let b = analyze_tree_variation(&qt, &rows, 0.1, 5, 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_are_rejected() {
        let (qt, rows) = workload();
        analyze_tree_variation(&qt, &rows, 0.1, 0, 1);
    }
}

#[cfg(test)]
mod svm_variation_tests {
    use super::*;
    use ml::data::Standardizer;
    use ml::quant::{FeatureQuantizer, QuantizedSvm};
    use ml::synth::Application;
    use ml::SvmRegressor;

    fn workload() -> (QuantizedSvm, Vec<Vec<u64>>) {
        let data = Application::RedWine.generate(7);
        let (train, test) = data.split(0.7, 42);
        let s = Standardizer::fit(&train);
        let (train, test) = (s.transform(&train), s.transform(&test));
        let svm = SvmRegressor::fit(&train, 150, 1e-4);
        let fq = FeatureQuantizer::fit(&train, 8);
        let qs = QuantizedSvm::from_svm(&svm, &fq);
        let rows: Vec<Vec<u64>> = test.x.iter().take(120).map(|r| fq.code_row(r)).collect();
        (qs, rows)
    }

    #[test]
    fn tiny_variation_barely_moves_svm_decisions() {
        let (qs, rows) = workload();
        let r = analyze_svm_variation(&qs, 11, &rows, 0.01, 5, 3);
        assert!(r.mean_agreement > 0.9, "agreement {}", r.mean_agreement);
    }

    #[test]
    fn svm_agreement_degrades_with_sigma() {
        let (qs, rows) = workload();
        let small = analyze_svm_variation(&qs, 11, &rows, 0.02, 10, 3);
        let large = analyze_svm_variation(&qs, 11, &rows, 0.5, 10, 3);
        assert!(
            large.mean_agreement < small.mean_agreement + 1e-9,
            "small {} large {}",
            small.mean_agreement,
            large.mean_agreement
        );
    }

    #[test]
    fn svm_variation_is_deterministic() {
        let (qs, rows) = workload();
        let a = analyze_svm_variation(&qs, 11, &rows, 0.1, 4, 8);
        let b = analyze_svm_variation(&qs, 11, &rows, 0.1, 4, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn svm_sweep_matches_pointwise_analysis() {
        let (qs, rows) = workload();
        let sweep = svm_variation_sweep(&qs, 11, &rows, &[0.02, 0.2], 4, 8);
        assert_eq!(sweep[0], analyze_svm_variation(&qs, 11, &rows, 0.02, 4, 8));
        assert_eq!(sweep[1], analyze_svm_variation(&qs, 11, &rows, 0.2, 4, 8));
    }
}
