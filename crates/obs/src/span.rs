//! Hierarchical span timers: per-thread stacks, process-wide tree.
//!
//! A [`span`] call pushes its name onto the calling thread's stack and
//! returns an RAII guard; dropping the guard accumulates the elapsed
//! wall-clock time into a process-wide registry keyed by the *full
//! path* (every enclosing span name plus this one). Work fanned out to
//! pool threads stays attached to its logical parent because the pool
//! captures [`current_path`] on the submitting thread and re-installs
//! it on each worker via [`with_path`].
//!
//! The registry is a `BTreeMap` so iteration — and therefore the
//! report's span ordering — is deterministic (sorted by path), even
//! though the recorded durations are not.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// A span's identity: the names of every enclosing span plus its own.
pub type SpanPath = Vec<&'static str>;

/// Accumulated statistics of one span path.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SpanStat {
    /// Completed activations.
    pub calls: u64,
    /// Total wall-clock nanoseconds across activations.
    pub ns: u128,
}

/// Process-wide accumulator: span path → statistics.
static REGISTRY: Mutex<BTreeMap<SpanPath, SpanStat>> = Mutex::new(BTreeMap::new());

thread_local! {
    /// This thread's stack of active span names.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Starts a span named `name` on the current thread, returning the RAII
/// guard that records it when dropped.
///
/// Guards must be dropped in reverse creation order (ordinary lexical
/// scoping guarantees this); a guard held across a scope boundary would
/// misattribute nested spans.
#[must_use = "a span records its duration when the guard drops"]
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard {
            start: Instant::now(),
            active: false,
        };
    }
    STACK.with(|s| s.borrow_mut().push(name));
    SpanGuard {
        start: Instant::now(),
        active: true,
    }
}

/// RAII guard of one span activation (see [`span`]).
#[derive(Debug)]
pub struct SpanGuard {
    start: Instant,
    /// False when instrumentation was disabled at creation: the guard
    /// then records nothing and pops nothing.
    active: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let ns = self.start.elapsed().as_nanos();
        STACK.with(|s| {
            let path = s.borrow().clone();
            let mut reg = REGISTRY.lock().unwrap();
            let stat = reg.entry(path).or_default();
            stat.calls += 1;
            stat.ns += ns;
            s.borrow_mut().pop();
        });
    }
}

/// The calling thread's current span path (empty outside any span).
///
/// Thread pools capture this on the submitting thread and install it on
/// workers with [`with_path`], so spans opened inside pooled tasks nest
/// under the logical caller instead of forming detached roots.
pub fn current_path() -> SpanPath {
    STACK.with(|s| s.borrow().clone())
}

/// Runs `f` with the current thread's span stack replaced by `path`,
/// restoring the previous stack afterwards (also on unwind).
pub fn with_path<R>(path: &[&'static str], f: impl FnOnce() -> R) -> R {
    let prev = STACK.with(|s| std::mem::replace(&mut *s.borrow_mut(), path.to_vec()));
    struct Restore(Vec<&'static str>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = std::mem::take(&mut self.0);
            STACK.with(|s| *s.borrow_mut() = prev);
        }
    }
    let _restore = Restore(prev);
    f()
}

/// Clears all recorded spans (not the thread-local stacks of *active*
/// spans, whose guards still pop themselves on drop).
pub(crate) fn reset_spans() {
    REGISTRY.lock().unwrap().clear();
}

/// Snapshots the accumulated (path → stat) entries, sorted by path.
pub(crate) fn snapshot_spans() -> Vec<(SpanPath, SpanStat)> {
    REGISTRY
        .lock()
        .unwrap()
        .iter()
        .map(|(p, s)| (p.clone(), *s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that touch the process-wide registry/flag.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn nested_spans_record_full_paths() {
        let _l = LOCK.lock().unwrap();
        crate::reset();
        {
            let _a = span("outer");
            {
                let _b = span("inner");
            }
            {
                let _b = span("inner");
            }
        }
        let snap = snapshot_spans();
        let paths: Vec<SpanPath> = snap.iter().map(|(p, _)| p.clone()).collect();
        assert_eq!(paths, vec![vec!["outer"], vec!["outer", "inner"]]);
        let inner = &snap[1].1;
        assert_eq!(inner.calls, 2);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _l = LOCK.lock().unwrap();
        crate::reset();
        crate::set_enabled(false);
        {
            let _a = span("ghost");
        }
        crate::set_enabled(true);
        assert!(snapshot_spans().is_empty());
        assert!(current_path().is_empty());
    }

    #[test]
    fn with_path_installs_and_restores() {
        let _l = LOCK.lock().unwrap();
        crate::reset();
        let _root = span("root");
        assert_eq!(current_path(), vec!["root"]);
        with_path(&["root", "task"], || {
            assert_eq!(current_path(), vec!["root", "task"]);
            let _child = span("leaf");
            assert_eq!(current_path(), vec!["root", "task", "leaf"]);
        });
        assert_eq!(current_path(), vec!["root"]);
    }

    #[test]
    fn with_path_restores_on_panic() {
        let _l = LOCK.lock().unwrap();
        crate::reset();
        let before = current_path();
        let caught = std::panic::catch_unwind(|| with_path(&["doomed"], || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(current_path(), before);
    }

    #[test]
    fn cross_thread_spans_attach_under_captured_path() {
        let _l = LOCK.lock().unwrap();
        crate::reset();
        {
            let _root = span("parent");
            let path = current_path();
            std::thread::scope(|s| {
                s.spawn(|| {
                    with_path(&path, || {
                        let _t = span("worker_task");
                    });
                });
            });
        }
        let paths: Vec<SpanPath> = snapshot_spans().iter().map(|(p, _)| p.clone()).collect();
        assert!(paths.contains(&vec!["parent", "worker_task"]), "{paths:?}");
    }
}
