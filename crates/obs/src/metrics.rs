//! Typed process-wide metrics: monotonic counters and last-value gauges.
//!
//! Counters are for event and volume totals (gates in/out, rewrites,
//! vectors simulated, faults graded, pool tasks); gauges are for levels
//! and ratios (thread-pool utilization). Both live in `BTreeMap`
//! registries so the report enumerates them in a deterministic
//! (name-sorted) order.
//!
//! Hot loops should tally locally and publish once per batch — each
//! update takes a process-wide lock, which is negligible at the
//! per-stage / per-task granularity this workspace instruments but
//! would not be at per-gate granularity.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Counter registry: name → cumulative value.
static COUNTERS: Mutex<BTreeMap<&'static str, u64>> = Mutex::new(BTreeMap::new());

/// Gauge registry: name → last set value.
static GAUGES: Mutex<BTreeMap<&'static str, f64>> = Mutex::new(BTreeMap::new());

/// A named monotonic counter.
///
/// `Counter::new` is `const`, so the idiomatic declaration is a static:
///
/// ```
/// static REWRITES: obs::Counter = obs::Counter::new("doc.rewrites");
/// REWRITES.add(17);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Counter {
    name: &'static str,
}

impl Counter {
    /// Declares a counter named `name`.
    pub const fn new(name: &'static str) -> Self {
        Counter { name }
    }

    /// Adds `delta` to the counter (registers it on first touch, so the
    /// name appears in the report even when the total is zero).
    pub fn add(&self, delta: u64) {
        counter_add(self.name, delta);
    }

    /// Adds one.
    pub fn incr(&self) {
        counter_add(self.name, 1);
    }

    /// The counter's current value.
    pub fn get(&self) -> u64 {
        counter_value(self.name)
    }

    /// Runs `f` and adds the elapsed wall-clock nanoseconds to the
    /// counter, passing the return value through — the idiom behind the
    /// `*.ns` throughput counters (`netlist.opt.ns`,
    /// `netlist.sim.compile_ns`): pair one volume counter with one
    /// `time`-fed counter and any report consumer can compute a rate.
    ///
    /// ```
    /// static BUILD_NS: obs::Counter = obs::Counter::new("doc.build_ns");
    /// let answer = BUILD_NS.time(|| 6 * 7);
    /// assert_eq!(answer, 42);
    /// ```
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let start = std::time::Instant::now();
        let result = f();
        self.add(start.elapsed().as_nanos() as u64);
        result
    }

    /// The counter's name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// A named last-value gauge.
#[derive(Debug, Clone, Copy)]
pub struct Gauge {
    name: &'static str,
}

impl Gauge {
    /// Declares a gauge named `name`.
    pub const fn new(name: &'static str) -> Self {
        Gauge { name }
    }

    /// Sets the gauge's value.
    pub fn set(&self, value: f64) {
        gauge_set(self.name, value);
    }

    /// The gauge's last set value (0.0 when never set).
    pub fn get(&self) -> f64 {
        gauge_value(self.name)
    }

    /// The gauge's name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Adds `delta` to the counter `name` (no-op while instrumentation is
/// disabled).
pub fn counter_add(name: &'static str, delta: u64) {
    if !crate::enabled() {
        return;
    }
    *COUNTERS.lock().unwrap().entry(name).or_insert(0) += delta;
}

/// The current value of counter `name` (0 when never touched).
pub fn counter_value(name: &str) -> u64 {
    COUNTERS.lock().unwrap().get(name).copied().unwrap_or(0)
}

/// Sets gauge `name` to `value` (no-op while instrumentation is
/// disabled).
pub fn gauge_set(name: &'static str, value: f64) {
    if !crate::enabled() {
        return;
    }
    GAUGES.lock().unwrap().insert(name, value);
}

/// The last set value of gauge `name` (0.0 when never set).
pub fn gauge_value(name: &str) -> f64 {
    GAUGES.lock().unwrap().get(name).copied().unwrap_or(0.0)
}

/// Clears both registries.
pub(crate) fn reset_metrics() {
    COUNTERS.lock().unwrap().clear();
    GAUGES.lock().unwrap().clear();
}

/// Snapshots all counters, name-sorted.
pub(crate) fn snapshot_counters() -> Vec<(&'static str, u64)> {
    COUNTERS
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (*k, *v))
        .collect()
}

/// Snapshots all gauges, name-sorted.
pub(crate) fn snapshot_gauges() -> Vec<(&'static str, f64)> {
    GAUGES
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (*k, *v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn counters_accumulate_and_zero_registers() {
        let _l = LOCK.lock().unwrap();
        crate::reset();
        static C: Counter = Counter::new("test.counter");
        C.add(0);
        assert_eq!(C.get(), 0);
        assert!(snapshot_counters()
            .iter()
            .any(|&(n, _)| n == "test.counter"));
        C.add(5);
        C.incr();
        assert_eq!(C.get(), 6);
        assert_eq!(counter_value("test.counter"), 6);
        assert_eq!(counter_value("never.touched"), 0);
    }

    #[test]
    fn gauges_keep_the_last_value() {
        let _l = LOCK.lock().unwrap();
        crate::reset();
        static G: Gauge = Gauge::new("test.gauge");
        assert_eq!(G.get(), 0.0);
        G.set(0.25);
        G.set(0.75);
        assert_eq!(G.get(), 0.75);
    }

    #[test]
    fn disabled_metrics_drop_updates() {
        let _l = LOCK.lock().unwrap();
        crate::reset();
        crate::set_enabled(false);
        counter_add("test.disabled", 7);
        gauge_set("test.disabled.gauge", 1.0);
        crate::set_enabled(true);
        assert_eq!(counter_value("test.disabled"), 0);
        assert_eq!(gauge_value("test.disabled.gauge"), 0.0);
        assert!(snapshot_counters().is_empty());
    }
}
