//! The unified report: span tree + metrics, stable JSON schema.
//!
//! [`build`] (exposed as `obs::report()`) snapshots the span registry
//! into a tree of [`SpanNode`]s — children sorted by name, `self_s`
//! derived as `total_s` minus child totals — plus name-sorted counter
//! and gauge lists. The serialized shape is pinned by the [`SCHEMA`]
//! tag and the golden test in `tests/observability.rs`: **only values
//! may vary between runs, never the key set or types.**

use serde::{Deserialize, Serialize};

/// Schema tag embedded in every report. Bump when the key set changes,
/// and update the golden schema test plus `docs/observability.md`.
pub const SCHEMA: &str = "obs-report-v1";

/// One node of the span tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanNode {
    /// Span name (one path component).
    pub name: String,
    /// Completed activations. 0 marks a synthesized parent: its
    /// children were recorded but the parent span itself never closed
    /// on this path (e.g. spans opened directly on pool workers).
    pub calls: u64,
    /// Total wall-clock seconds across activations (for a synthesized
    /// parent, the sum of its children).
    pub total_s: f64,
    /// Seconds not attributed to any child span.
    pub self_s: f64,
    /// Nested spans, sorted by name.
    pub children: Vec<SpanNode>,
}

/// One counter in the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterValue {
    /// Counter name.
    pub name: String,
    /// Cumulative value.
    pub value: u64,
}

/// One gauge in the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeValue {
    /// Gauge name.
    pub name: String,
    /// Last set value.
    pub value: f64,
}

/// Snapshot of every span, counter and gauge recorded so far.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Root spans, sorted by name.
    pub spans: Vec<SpanNode>,
    /// All counters, sorted by name.
    pub counters: Vec<CounterValue>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeValue>,
}

/// Builds the current [`Report`] (see `obs::report()`).
pub(crate) fn build() -> Report {
    let mut roots: Vec<SpanNode> = Vec::new();
    for (path, stat) in crate::span::snapshot_spans() {
        insert(&mut roots, &path, stat.calls, stat.ns as f64 * 1e-9);
    }
    finalize(&mut roots);
    Report {
        schema: SCHEMA.to_string(),
        spans: roots,
        counters: crate::metrics::snapshot_counters()
            .into_iter()
            .map(|(name, value)| CounterValue {
                name: name.to_string(),
                value,
            })
            .collect(),
        gauges: crate::metrics::snapshot_gauges()
            .into_iter()
            .map(|(name, value)| GaugeValue {
                name: name.to_string(),
                value,
            })
            .collect(),
    }
}

/// Threads one `(path, stat)` record into the tree, synthesizing
/// zero-call intermediate nodes as needed. The registry snapshot is
/// path-sorted, so children end up name-sorted without a later sort.
fn insert(nodes: &mut Vec<SpanNode>, path: &[&'static str], calls: u64, total_s: f64) {
    let (head, rest) = path.split_first().expect("span paths are non-empty");
    let node = match nodes.iter_mut().position(|n| n.name == *head) {
        Some(i) => &mut nodes[i],
        None => {
            nodes.push(SpanNode {
                name: (*head).to_string(),
                calls: 0,
                total_s: 0.0,
                self_s: 0.0,
                children: Vec::new(),
            });
            nodes.last_mut().unwrap()
        }
    };
    if rest.is_empty() {
        node.calls += calls;
        node.total_s += total_s;
    } else {
        insert(&mut node.children, rest, calls, total_s);
    }
}

/// Bottom-up pass: synthesized parents inherit their children's total,
/// and every node's `self_s` becomes total minus child totals.
fn finalize(nodes: &mut [SpanNode]) {
    for n in nodes {
        finalize(&mut n.children);
        let child_total: f64 = n.children.iter().map(|c| c.total_s).sum();
        if n.calls == 0 {
            n.total_s = child_total;
        }
        n.self_s = (n.total_s - child_total).max(0.0);
    }
}

impl Report {
    /// Pretty JSON rendering of the report.
    pub fn to_json_pretty(&self) -> String {
        self.to_value().render_pretty()
    }

    /// Flame-style text rendering for stderr: one line per span with a
    /// bar proportional to its share of the run, then counters and
    /// gauges. Example:
    ///
    /// ```text
    /// [obs] span                                total_s   self_s    calls
    /// [obs] repro_all                            12.431    0.112        1  ########################
    /// [obs]   table2                              2.608    1.911        1  #####
    /// [obs] counter netlist.opt.gates_in = 438126
    /// ```
    pub fn text_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let scale: f64 = self
            .spans
            .iter()
            .map(|n| n.total_s)
            .fold(0.0, f64::max)
            .max(1e-9);
        let _ = writeln!(
            out,
            "[obs] {:<40} {:>9} {:>9} {:>8}",
            "span", "total_s", "self_s", "calls"
        );
        fn walk(out: &mut String, nodes: &[SpanNode], depth: usize, scale: f64) {
            use std::fmt::Write as _;
            for n in nodes {
                let label = format!("{:indent$}{}", "", n.name, indent = depth * 2);
                let bar = "#".repeat(((n.total_s / scale) * 24.0).round() as usize);
                let _ = writeln!(
                    out,
                    "[obs] {label:<40} {:>9.3} {:>9.3} {:>8}  {bar}",
                    n.total_s, n.self_s, n.calls
                );
                walk(out, &n.children, depth + 1, scale);
            }
        }
        walk(&mut out, &self.spans, 0, scale);
        for c in &self.counters {
            let _ = writeln!(out, "[obs] counter {} = {}", c.name, c.value);
        }
        for g in &self.gauges {
            let _ = writeln!(out, "[obs] gauge {} = {:.3}", g.name, g.value);
        }
        out
    }

    /// Looks a root-level or nested span up by path.
    pub fn span(&self, path: &[&str]) -> Option<&SpanNode> {
        let mut nodes = &self.spans;
        let mut found = None;
        for name in path {
            found = nodes.iter().find(|n| n.name == *name);
            nodes = &found?.children;
        }
        found
    }

    /// The value of counter `name` in this snapshot (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// The value of gauge `name` in this snapshot (0.0 when absent).
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges
            .iter()
            .find(|g| g.name == name)
            .map_or(0.0, |g| g.value)
    }
}

/// Prints the current report's text summary to stderr.
pub fn print_summary() {
    eprint!("{}", build().text_summary());
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn tree_assembles_with_self_time_and_sorted_children() {
        let _l = LOCK.lock().unwrap();
        crate::reset();
        {
            let _a = crate::span("root");
            {
                let _b = crate::span("zeta");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            {
                let _b = crate::span("alpha");
            }
        }
        let r = build();
        assert_eq!(r.schema, SCHEMA);
        assert_eq!(r.spans.len(), 1);
        let root = &r.spans[0];
        assert_eq!(root.name, "root");
        assert_eq!(root.calls, 1);
        let names: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
        let child_total: f64 = root.children.iter().map(|c| c.total_s).sum();
        assert!(root.total_s >= child_total);
        assert!((root.self_s - (root.total_s - child_total)).abs() < 1e-12);
        assert_eq!(r.span(&["root", "zeta"]).unwrap().calls, 1);
        assert!(r.span(&["root", "missing"]).is_none());
    }

    #[test]
    fn orphan_children_synthesize_their_parent() {
        let _l = LOCK.lock().unwrap();
        crate::reset();
        crate::with_path(&["never_closed"], || {
            let _c = crate::span("task");
        });
        let r = build();
        let parent = r.span(&["never_closed"]).unwrap();
        assert_eq!(parent.calls, 0, "synthesized parent");
        assert_eq!(parent.children.len(), 1);
        assert!((parent.total_s - parent.children[0].total_s).abs() < 1e-12);
        assert_eq!(parent.self_s, 0.0);
    }

    #[test]
    fn report_round_trips_through_json() {
        let _l = LOCK.lock().unwrap();
        crate::reset();
        {
            let _a = crate::span("rt");
        }
        crate::counter_add("rt.count", 3);
        crate::gauge_set("rt.gauge", 0.5);
        let r = build();
        let text = r.to_json_pretty();
        let back = Report::from_value(&serde::value::parse(&text).unwrap()).unwrap();
        assert_eq!(r, back);
        assert_eq!(back.counter("rt.count"), 3);
        assert_eq!(back.gauge("rt.gauge"), 0.5);
        assert_eq!(back.counter("rt.absent"), 0);
    }

    #[test]
    fn text_summary_lists_spans_and_metrics() {
        let _l = LOCK.lock().unwrap();
        crate::reset();
        {
            let _a = crate::span("stage");
        }
        crate::counter_add("stage.items", 12);
        let text = build().text_summary();
        assert!(text.contains("stage"), "{text}");
        assert!(text.contains("counter stage.items = 12"), "{text}");
        assert!(text.lines().all(|l| l.starts_with("[obs]")), "{text}");
    }
}
