#![warn(missing_docs)]

//! # obs — unified observability layer
//!
//! One instrumentation substrate for the whole pipeline, replacing the
//! per-binary reporting hacks (`OptStats` atomics, ad-hoc timing JSON,
//! bespoke bench outputs) with three primitives:
//!
//! * [`span`] — hierarchical RAII wall-clock timers. Each thread keeps
//!   its own span stack; completed spans accumulate into one
//!   process-wide tree keyed by path, so `repro_all → table2 →
//!   netlist.optimize` nests correctly even when the middle frame runs
//!   on a worker thread (the [`exec`] pool re-installs the caller's
//!   path via [`with_path`]).
//! * [`Counter`] / [`Gauge`] — typed process-wide metrics (gates in/out,
//!   rewrites, vectors, faults, pool busy time, utilization).
//! * [`report`] — a snapshot of both as a [`Report`] with a **stable
//!   JSON schema** (`obs-report-v1`), serialized through the in-repo
//!   serde shims, plus a flame-style text rendering for stderr.
//!
//! ## Determinism contract
//!
//! Instrumentation is strictly out-of-band: spans and counters observe
//! seeded computations but never feed back into them, so an
//! instrumented run is bit-identical to an uninstrumented one at any
//! thread count (`tests/observability.rs` pins this at 1/4/8 threads).
//! Only the *timing fields* of a report vary between runs; the key set,
//! span paths and counter names are deterministic.
//!
//! ## Quickstart
//!
//! ```
//! static GATES: obs::Counter = obs::Counter::new("doc.gates");
//!
//! obs::reset();
//! {
//!     let _stage = obs::span("doc.stage");
//!     GATES.add(128);
//! }
//! let report = obs::report();
//! assert_eq!(report.spans[0].name, "doc.stage");
//! assert_eq!(obs::counter_value("doc.gates"), 128);
//! ```

pub mod metrics;
pub mod report;
pub mod span;

pub use metrics::{counter_add, counter_value, gauge_set, gauge_value, Counter, Gauge};
pub use report::{CounterValue, GaugeValue, Report, SpanNode, SCHEMA};
pub use span::{current_path, span, with_path, SpanGuard};

use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide instrumentation switch (default: on).
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns all instrumentation on or off for the whole process.
///
/// With instrumentation off, [`span`] returns inert guards and counter
/// and gauge updates are dropped — the determinism tests compare runs
/// across this switch to prove observation never perturbs results.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// True when instrumentation is collecting.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears every recorded span, counter and gauge (bench binaries call
/// this once at startup; tests use it for isolation).
pub fn reset() {
    span::reset_spans();
    metrics::reset_metrics();
}

/// Snapshots the current span tree and metrics as a [`Report`].
pub fn report() -> Report {
    report::build()
}
