//! PPA reports and improvement ratios for classifier designs.
//!
//! Every architecture generator in this crate ends in a [`DesignReport`]:
//! the quantities the paper's Tables III–V and Figures 6–17 are built
//! from. [`Improvement`] expresses one design relative to a baseline the
//! way the paper does ("48.9× lower area", "1.6× slower").

use std::fmt;

use serde::{Deserialize, Serialize};

use pdk::power_src::Feasibility;
use pdk::units::{Area, Delay, Power};
use pdk::Technology;

/// The evaluated cost of one classifier design in one technology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DesignReport {
    /// Human-readable design name (e.g. `"bespoke-parallel-dt4-cardio"`).
    pub name: String,
    /// Technology the design was priced in.
    pub technology: Technology,
    /// End-to-end inference latency (cycles × clock for sequential
    /// designs, combinational critical path otherwise).
    pub latency: Delay,
    /// Total area.
    pub area: Area,
    /// Total static power.
    pub power: Power,
    /// Logic-only area (Table III separates logic from memory).
    pub logic_area: Area,
    /// ROM/memory area.
    pub memory_area: Area,
    /// Logic-only power.
    pub logic_power: Power,
    /// ROM/memory power.
    pub memory_power: Power,
    /// Standard-cell count (0 for analog designs).
    pub gate_count: usize,
    /// Clock cycles per inference (1 for combinational/analog designs).
    pub cycles: usize,
    /// Transistor count (meaningful for analog designs and prototypes).
    pub transistors: usize,
}

impl DesignReport {
    /// Which printed power source (if any) can power this design.
    pub fn feasibility(&self) -> Feasibility {
        pdk::classify(self.power)
    }

    /// Improvement ratios of `self` relative to `baseline`
    /// (values > 1 mean `self` is better; delay uses the same convention).
    pub fn improvement_over(&self, baseline: &DesignReport) -> Improvement {
        Improvement {
            delay: baseline.latency.ratio(self.latency),
            area: baseline.area.ratio(self.area),
            power: baseline.power.ratio(self.power),
        }
    }
}

impl fmt::Display for DesignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}]: delay {}, area {}, power {}, {} gates, {} cycles",
            self.name,
            self.technology,
            self.latency,
            self.area,
            self.power,
            self.gate_count,
            self.cycles
        )
    }
}

/// Ratios of a design against a baseline (a value of 48.9 in `area` reads
/// "48.9× lower area than the baseline").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Improvement {
    /// Baseline latency / this latency.
    pub delay: f64,
    /// Baseline area / this area.
    pub area: f64,
    /// Baseline power / this power.
    pub power: f64,
}

impl Improvement {
    /// Arithmetic-mean improvement across a set of designs (how the paper
    /// reports per-benchmark averages).
    pub fn mean(items: &[Improvement]) -> Improvement {
        assert!(!items.is_empty(), "mean over no improvements");
        let n = items.len() as f64;
        Improvement {
            delay: items.iter().map(|i| i.delay).sum::<f64>() / n,
            area: items.iter().map(|i| i.area).sum::<f64>() / n,
            power: items.iter().map(|i| i.power).sum::<f64>() / n,
        }
    }
}

impl fmt::Display for Improvement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2}x delay, {:.2}x area, {:.2}x power",
            self.delay, self.area, self.power
        )
    }
}

/// Builds a [`DesignReport`] from a netlist analysis.
pub fn report_from_ppa(
    name: impl Into<String>,
    technology: Technology,
    ppa: &netlist::Ppa,
    cycles: usize,
) -> DesignReport {
    DesignReport {
        name: name.into(),
        technology,
        latency: ppa.latency(cycles),
        area: ppa.area,
        power: ppa.power,
        logic_area: ppa.logic_area,
        memory_area: ppa.rom_area,
        logic_power: ppa.logic_power,
        memory_power: ppa.rom_power,
        gate_count: ppa.gate_count,
        cycles,
        transistors: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(area_mm2: f64, power_mw: f64, ms: f64) -> DesignReport {
        DesignReport {
            name: "t".into(),
            technology: Technology::Egt,
            latency: Delay::from_ms(ms),
            area: Area::from_mm2(area_mm2),
            power: Power::from_mw(power_mw),
            logic_area: Area::from_mm2(area_mm2),
            memory_area: Area::ZERO,
            logic_power: Power::from_mw(power_mw),
            memory_power: Power::ZERO,
            gate_count: 10,
            cycles: 1,
            transistors: 0,
        }
    }

    #[test]
    fn improvement_ratios_read_as_the_paper_reports() {
        let conventional = report(489.0, 75.6, 39.0);
        let bespoke = report(10.0, 1.0, 10.0);
        let imp = bespoke.improvement_over(&conventional);
        assert!((imp.area - 48.9).abs() < 1e-9);
        assert!((imp.power - 75.6).abs() < 1e-9);
        assert!((imp.delay - 3.9).abs() < 1e-9);
    }

    #[test]
    fn mean_improvement_averages_components() {
        let a = Improvement {
            delay: 2.0,
            area: 10.0,
            power: 4.0,
        };
        let b = Improvement {
            delay: 4.0,
            area: 30.0,
            power: 8.0,
        };
        let m = Improvement::mean(&[a, b]);
        assert_eq!(m.delay, 3.0);
        assert_eq!(m.area, 20.0);
        assert_eq!(m.power, 6.0);
    }

    #[test]
    fn feasibility_uses_power() {
        assert!(!report(1.0, 100.0, 1.0).feasibility().is_powerable());
        assert!(report(1.0, 0.05, 1.0).feasibility().is_powerable());
    }

    #[test]
    fn display_is_informative() {
        let s = format!("{}", report(1.0, 1.0, 1.0));
        assert!(s.contains("EGT"));
        assert!(s.contains("gates"));
    }
}

/// Duty-cycled deployment model: the classifier evaluates `samples_per_hour`
/// times an hour and is power-gated in between (printed tags sleep; the
/// paper's applications have "low precision, duty cycle, and sample rate
/// requirements", §III).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DutyCycle {
    /// Inferences per hour.
    pub samples_per_hour: f64,
}

impl DutyCycle {
    /// One inference per minute — the smart-packaging cadence.
    pub fn per_minute() -> Self {
        DutyCycle {
            samples_per_hour: 60.0,
        }
    }

    /// One inference per hour — wound-dressing cadence.
    pub fn per_hour() -> Self {
        DutyCycle {
            samples_per_hour: 1.0,
        }
    }
}

impl DesignReport {
    /// Average power draw under a duty cycle: full power during the
    /// inference latency, zero while gated.
    pub fn average_power(&self, duty: DutyCycle) -> Power {
        let active_fraction = (self.latency.as_secs() * duty.samples_per_hour / 3600.0).min(1.0);
        self.power * active_fraction
    }

    /// Days a battery lasts powering this design at the given cadence
    /// (`None` for harvesters, over-budget demands, or zero draw).
    pub fn battery_days(&self, battery: &pdk::PowerSource, duty: DutyCycle) -> Option<f64> {
        // Peak feasibility first: the battery must survive the active
        // burst, not just the average.
        if !battery.can_power(self.power) {
            return None;
        }
        battery
            .lifetime_hours(self.average_power(duty))
            .map(|h| h / 24.0)
    }
}

#[cfg(test)]
mod duty_tests {
    use super::*;

    fn report(power_mw: f64, latency_ms: f64) -> DesignReport {
        DesignReport {
            name: "t".into(),
            technology: Technology::Egt,
            latency: Delay::from_ms(latency_ms),
            area: Area::from_mm2(1.0),
            power: Power::from_mw(power_mw),
            logic_area: Area::from_mm2(1.0),
            memory_area: Area::ZERO,
            logic_power: Power::from_mw(power_mw),
            memory_power: Power::ZERO,
            gate_count: 1,
            cycles: 1,
            transistors: 0,
        }
    }

    #[test]
    fn average_power_scales_with_cadence() {
        let r = report(10.0, 100.0); // 100 ms inferences
        let per_min = r.average_power(DutyCycle::per_minute());
        let per_hour = r.average_power(DutyCycle::per_hour());
        // 60 samples/h x 0.1 s = 6 s active per 3600 -> 1/600 duty.
        assert!((per_min.as_mw() - 10.0 / 600.0).abs() < 1e-9);
        assert!((per_hour.as_mw() - 10.0 / 36000.0).abs() < 1e-12);
    }

    #[test]
    fn always_on_designs_cap_at_full_power() {
        let r = report(5.0, 120_000.0); // 2-minute inferences
        let avg = r.average_power(DutyCycle::per_minute());
        assert_eq!(avg.as_mw(), 5.0);
    }

    #[test]
    fn battery_days_require_peak_feasibility() {
        // 100 mW peak exceeds every printed battery even though the duty-
        // cycled average is tiny.
        let r = report(100.0, 10.0);
        let b = pdk::PowerSource::blue_spark_30mah();
        assert!(r.battery_days(&b, DutyCycle::per_hour()).is_none());
        // A 1 mW design duty-cycled to a minute cadence lasts years.
        let ok = report(1.0, 10.0);
        let days = ok.battery_days(&b, DutyCycle::per_minute()).unwrap();
        assert!(days > 365.0, "{days} days");
    }
}
