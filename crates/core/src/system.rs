//! Complete printed classification systems (§VII, Fig. 18).
//!
//! "A printed ML classifier is only a component of a complete
//! classification system": sensors, optional ADCs, optional feature
//! extraction, the classifier, and a power source, all printed onto one
//! substrate. This module rolls those up:
//!
//! * printed sensor: ~0.5 mm², < 2 mW (\[38\]);
//! * EGT ADCs: 2-bit 3.76 mm² / 60 µW, 4-bit 25.4 mm² / 360 µW (\[10\]) —
//!   wider ADCs extrapolate by the same ×6.75 area / ×6 power per 2 bits;
//! * microprocessor-based feature extraction: ~2–3 cm² (\[10\]);
//! * analog classifiers may *bypass ADCs entirely* (direct sensor
//!   interfacing, \[60\]);
//! * the classifier itself is any [`DesignReport`].

use serde::Serialize;

use pdk::power_src::Feasibility;
use pdk::units::{Area, Power};

use crate::report::DesignReport;

/// A printed sensor front-end.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Sensor {
    /// Footprint per sensing element.
    pub area: Area,
    /// Active power per element.
    pub power: Power,
}

impl Sensor {
    /// The electrochemical tattoo-class sensor the paper cites (\[38\]):
    /// ~0.5 mm², "< 2 mW" worst case; a passive chemiresistive element
    /// idles far below that.
    pub fn printed_default() -> Self {
        Sensor {
            area: Area::from_mm2(0.5),
            power: Power::from_uw(300.0),
        }
    }
}

/// A printed analog-to-digital converter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Adc {
    /// Resolution in bits.
    pub bits: usize,
    /// Footprint.
    pub area: Area,
    /// Conversion power.
    pub power: Power,
}

impl Adc {
    /// EGT-printed ADC at `bits` resolution, anchored to the paper's 2-bit
    /// (3.76 mm², 60 µW) and 4-bit (25.4 mm², 360 µW) quotes and
    /// extrapolated geometrically beyond.
    ///
    /// # Panics
    /// Panics unless `2 <= bits <= 16`.
    pub fn egt(bits: usize) -> Self {
        assert!((2..=16).contains(&bits), "printable ADCs: 2..=16 bits");
        // Per +2 bits: area x6.755, power x6 (from the two anchors).
        let steps = (bits as f64 - 2.0) / 2.0;
        Adc {
            bits,
            area: Area::from_mm2(3.76 * 6.755f64.powf(steps)),
            power: Power::from_uw(60.0 * 6.0f64.powf(steps)),
        }
    }
}

/// A feature-extraction stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum FeatureExtraction {
    /// None needed — the classifier consumes sensed signals directly
    /// (HAR, Pendigits, the wines — §VII).
    None,
    /// Software on a printed microprocessor (~2–3 cm², \[10\]).
    PrintedMicroprocessor,
    /// A custom fixed-function unit, scaled as a fraction of the
    /// microprocessor.
    FixedFunction,
}

impl FeatureExtraction {
    fn area(self) -> Area {
        match self {
            FeatureExtraction::None => Area::ZERO,
            FeatureExtraction::PrintedMicroprocessor => Area::from_cm2(2.5),
            FeatureExtraction::FixedFunction => Area::from_cm2(0.8),
        }
    }

    fn power(self) -> Power {
        match self {
            FeatureExtraction::None => Power::ZERO,
            FeatureExtraction::PrintedMicroprocessor => Power::from_mw(1.2),
            FeatureExtraction::FixedFunction => Power::from_uw(400.0),
        }
    }
}

/// A complete printed classification system (Fig. 18).
#[derive(Debug, Clone, Serialize)]
pub struct ClassifierSystem {
    /// The classifier design at the heart of the system.
    pub classifier: DesignReport,
    /// Sensor elements (one per feature actually consumed).
    pub sensors: usize,
    /// Sensor model.
    pub sensor: Sensor,
    /// ADC, if the classifier needs digital codes. Analog classifiers and
    /// direct-interfacing systems omit it (\[60\]).
    pub adc: Option<Adc>,
    /// Feature-extraction stage.
    pub feature_extraction: FeatureExtraction,
}

impl ClassifierSystem {
    /// A digital system: sensors → shared ADC → (optional FE) → classifier.
    pub fn digital(
        classifier: DesignReport,
        sensors: usize,
        adc_bits: usize,
        feature_extraction: FeatureExtraction,
    ) -> Self {
        ClassifierSystem {
            classifier,
            sensors,
            sensor: Sensor::printed_default(),
            adc: Some(Adc::egt(adc_bits)),
            feature_extraction,
        }
    }

    /// An analog system: sensors drive the classifier directly; no ADC.
    pub fn analog(classifier: DesignReport, sensors: usize) -> Self {
        ClassifierSystem {
            classifier,
            sensors,
            sensor: Sensor::printed_default(),
            adc: None,
            feature_extraction: FeatureExtraction::None,
        }
    }

    /// Total system area.
    pub fn area(&self) -> Area {
        self.sensor.area * self.sensors as f64
            + self.adc.map_or(Area::ZERO, |a| a.area)
            + self.feature_extraction.area()
            + self.classifier.area
    }

    /// Total system power.
    pub fn power(&self) -> Power {
        self.sensor.power * self.sensors as f64
            + self.adc.map_or(Power::ZERO, |a| a.power)
            + self.feature_extraction.power()
            + self.classifier.power
    }

    /// Fraction of the system's area spent on the classifier itself.
    pub fn classifier_area_share(&self) -> f64 {
        self.classifier.area.ratio(self.area())
    }

    /// Which printed source can power the whole system.
    pub fn feasibility(&self) -> Feasibility {
        pdk::classify(self.power())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{TreeArch, TreeFlow};
    use analog::tree::AnalogTreeConfig;
    use ml::synth::Application;
    use pdk::Technology;

    #[test]
    fn adc_anchors_match_the_paper() {
        let a2 = Adc::egt(2);
        assert!((a2.area.as_mm2() - 3.76).abs() < 1e-9);
        assert!((a2.power.as_uw() - 60.0).abs() < 1e-9);
        let a4 = Adc::egt(4);
        assert!((a4.area.as_mm2() - 25.4).abs() < 0.01);
        assert!((a4.power.as_uw() - 360.0).abs() < 0.01);
        assert!(Adc::egt(8).area > a4.area * 10.0);
    }

    #[test]
    fn conventional_classifiers_dominate_their_system() {
        // §VII: "Conventional EGT-printed classifiers are often much
        // bigger (~20 to 1445 cm²)" than every other system component.
        let flow = TreeFlow::new(Application::Pendigits, 8, 7);
        let conv = flow.report(TreeArch::ConventionalParallel, Technology::Egt);
        let sys = ClassifierSystem::digital(conv, 14, 4, FeatureExtraction::None);
        assert!(
            sys.classifier_area_share() > 0.9,
            "share {}",
            sys.classifier_area_share()
        );
        assert!(!sys.feasibility().is_powerable());
    }

    #[test]
    fn optimized_classifiers_shrink_below_the_support_circuitry() {
        // The techniques "provide significant system-level benefits": for
        // an analog classifier the sensors dominate.
        let flow = TreeFlow::new(Application::Har, 4, 7);
        let analog = flow.report(
            TreeArch::Analog(AnalogTreeConfig::default()),
            Technology::Egt,
        );
        let sys = ClassifierSystem::analog(analog, 8);
        assert!(
            sys.classifier_area_share() < 0.5,
            "share {}",
            sys.classifier_area_share()
        );
    }

    #[test]
    fn analog_systems_skip_the_adc_and_save_its_power() {
        let flow = TreeFlow::new(Application::Har, 4, 7);
        let digital = ClassifierSystem::digital(
            flow.report(TreeArch::BespokeParallel, Technology::Egt),
            8,
            flow.choice.bits.clamp(2, 16),
            FeatureExtraction::None,
        );
        let analog = ClassifierSystem::analog(
            flow.report(
                TreeArch::Analog(AnalogTreeConfig::default()),
                Technology::Egt,
            ),
            8,
        );
        assert!(analog.power() < digital.power());
        assert!(analog.area() < digital.area());
    }

    #[test]
    fn feature_extraction_costs_are_ordered() {
        assert!(FeatureExtraction::None.area().is_zero());
        assert!(
            FeatureExtraction::FixedFunction.area()
                < FeatureExtraction::PrintedMicroprocessor.area()
        );
        assert!(
            FeatureExtraction::FixedFunction.power()
                < FeatureExtraction::PrintedMicroprocessor.power()
        );
    }
}
