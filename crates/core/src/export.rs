//! Design-package export: everything a fab hand-off needs, in one
//! directory.
//!
//! A "release" of one bespoke classifier consists of the structural
//! Verilog, a self-checking testbench seeded from real test data, and a
//! JSON report (PPA, power source, fabrication economics). This is the
//! artifact a printed-electronics lab would take to their flow.

use std::path::Path;

use netlist::{analyze, to_testbench, to_verilog, Module};
use pdk::{CellLibrary, FabModel, Technology};
use serde::Serialize;

use crate::report::{report_from_ppa, DesignReport};

/// Everything written by [`export_design`].
#[derive(Debug, Clone, Serialize)]
pub struct ExportManifest {
    /// Design name.
    pub name: String,
    /// Files written, relative to the export directory.
    pub files: Vec<String>,
    /// The PPA/power report embedded in `report.json`.
    pub report: DesignReport,
    /// Poisson yield of the die.
    pub yield_fraction: f64,
    /// Marginal cost of one working unit, USD.
    pub unit_cost_usd: f64,
}

/// Writes a design package into `dir`:
///
/// * `<name>.v` — structural Verilog;
/// * `<name>_tb.v` — self-checking testbench over `vectors`
///   (`cycles_per_vector` clocks each for sequential designs);
/// * `report.json` — the [`ExportManifest`].
///
/// Returns the manifest.
///
/// # Errors
/// Propagates filesystem errors (directory creation, file writes).
pub fn export_design(
    dir: &Path,
    module: &Module,
    tech: Technology,
    cycles_per_vector: usize,
    vectors: &[Vec<u64>],
) -> std::io::Result<ExportManifest> {
    std::fs::create_dir_all(dir)?;
    let name = module.name.clone();
    let mut files = Vec::new();

    let verilog_path = format!("{name}.v");
    std::fs::write(dir.join(&verilog_path), to_verilog(module))?;
    files.push(verilog_path);

    if !vectors.is_empty() {
        let tb_path = format!("{name}_tb.v");
        std::fs::write(
            dir.join(&tb_path),
            to_testbench(module, vectors, cycles_per_vector),
        )?;
        files.push(tb_path);
    }

    let lib = CellLibrary::for_technology(tech);
    let ppa = analyze(module, &lib);
    let report = report_from_ppa(name.clone(), tech, &ppa, cycles_per_vector.max(1));
    let fab = FabModel::for_technology(tech);
    let manifest = ExportManifest {
        name,
        files: files.clone(),
        yield_fraction: fab.yield_of(report.area),
        unit_cost_usd: fab.marginal_cost_usd(report.area),
        report,
    };
    let json = serde_json::to_string_pretty(&manifest).expect("manifest serializes");
    std::fs::write(dir.join("report.json"), json)?;
    let mut manifest = manifest;
    manifest.files.push("report.json".to_string());
    Ok(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{TreeArch, TreeFlow};
    use ml::synth::Application;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("printed-ml-export-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn export_writes_the_full_package() {
        let flow = TreeFlow::new(Application::Har, 2, 7);
        let module = flow.module(TreeArch::BespokeParallel).unwrap();
        let vectors: Vec<Vec<u64>> = flow
            .test
            .x
            .iter()
            .take(8)
            .map(|row| {
                let codes = flow.fq.code_row(row);
                flow.qt.used_features().iter().map(|&f| codes[f]).collect()
            })
            .collect();
        let dir = tmpdir("pkg");
        let manifest = export_design(&dir, &module, Technology::Egt, 1, &vectors).expect("export");
        assert!(dir.join(format!("{}.v", module.name)).exists());
        assert!(dir.join(format!("{}_tb.v", module.name)).exists());
        assert!(dir.join("report.json").exists());
        assert_eq!(manifest.files.len(), 3);
        assert!(manifest.yield_fraction > 0.9);
        assert!(
            manifest.unit_cost_usd < 0.01,
            "sub-cent: {}",
            manifest.unit_cost_usd
        );
        // The JSON round-trips as JSON.
        let body = std::fs::read_to_string(dir.join("report.json")).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(parsed["name"], module.name.as_str());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn export_without_vectors_skips_the_testbench() {
        let flow = TreeFlow::new(Application::Cardio, 2, 7);
        let module = flow.module(TreeArch::BespokeParallel).unwrap();
        let dir = tmpdir("novec");
        let manifest = export_design(&dir, &module, Technology::Egt, 1, &[]).expect("export");
        assert!(!dir.join(format!("{}_tb.v", module.name)).exists());
        assert_eq!(manifest.files.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
