//! Bespoke random-forest engines.
//!
//! §III: "Decision Trees are the kernel of a Random Forest ensemble; any
//! optimization for Decision Trees is a natural optimization for Random
//! Forests." This module composes the bespoke parallel tree generator into
//! a full ensemble engine: every member tree evaluates concurrently, a
//! per-class one-hot vote counter tallies the outputs, and an
//! ascending-scan argmax picks the majority class (ties to the lowest
//! class index, matching [`ml::quant::QuantizedForest::predict`]).

use std::collections::HashMap;

use ml::quant::{QNode, QuantizedForest, QuantizedTree};
use netlist::builder::NetlistBuilder;
use netlist::comb::{equals, unsigned_gt};
use netlist::ir::{Module, Signal};
use netlist::optimize;

use crate::conventional::svm::popcount;
use crate::lookup::{emit_lut, LookupConfig};

fn ceil_log2(n: usize) -> usize {
    if n <= 2 {
        1
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

/// Emits one bespoke tree's class word (shared with the parallel-tree
/// generator's structure, but against a shared feature-port map).
fn emit_tree(
    b: &mut NetlistBuilder,
    tree: &QuantizedTree,
    node: usize,
    ports: &std::collections::HashMap<usize, Vec<Signal>>,
    class_bits: usize,
) -> Vec<Signal> {
    match &tree.nodes()[node] {
        QNode::Leaf { class } => b.const_word(*class as u64, class_bits),
        QNode::Split {
            feature,
            threshold,
            left,
            right,
        } => {
            let x = ports[feature].clone();
            let tau = b.const_word(*threshold, x.len());
            let r = unsigned_gt(b, &x, &tau);
            let l = emit_tree(b, tree, *left, ports, class_bits);
            let rgt = emit_tree(b, tree, *right, ports, class_bits);
            b.mux_word(r, &l, &rgt)
        }
    }
}

/// Comparator implementation of a forest engine's decision nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ForestStyle {
    /// Hardwired per-node comparators (the bespoke tree's style).
    Bespoke,
    /// Shared-decoder lookup tables. An ensemble shares decoders across
    /// *all* member trees testing a feature — strictly more reuse than a
    /// single tree gets, so "any optimization for Decision Trees is a
    /// natural optimization for Random Forests" (§III) compounds.
    Lookup(LookupConfig),
}

/// Generates a bespoke parallel random-forest engine (post-optimization).
///
/// Ports: `f{feature}` for every feature any member tree tests (original
/// feature indices), plus the `class` output and per-class vote counts
/// `votes{c}` for observability.
pub fn bespoke_forest(forest: &QuantizedForest) -> Module {
    forest_engine(forest, ForestStyle::Bespoke)
}

/// Generates a random-forest engine with the chosen comparator style.
pub fn forest_engine(forest: &QuantizedForest, style: ForestStyle) -> Module {
    let mut b = NetlistBuilder::new(match style {
        ForestStyle::Bespoke => "bespoke_forest",
        ForestStyle::Lookup(_) => "lookup_forest",
    });
    let class_bits = ceil_log2(forest.n_classes());
    let ports: std::collections::HashMap<usize, Vec<Signal>> = forest
        .used_features()
        .into_iter()
        .map(|f| {
            let port = b.input(format!("f{f}"), forest.bits());
            (f, port)
        })
        .collect();

    // Every tree evaluates concurrently.
    b.push_region("trees");
    let tree_classes: Vec<Vec<Signal>> = match style {
        ForestStyle::Bespoke => forest
            .trees()
            .iter()
            .map(|t| emit_tree(&mut b, t, 0, &ports, class_bits))
            .collect(),
        ForestStyle::Lookup(config) => {
            // Cross-tree decoder sharing: one LUT per feature covering the
            // thresholds of EVERY member tree.
            let words = 1usize << forest.bits();
            let mut groups: HashMap<usize, Vec<(usize, usize, u64)>> = HashMap::new();
            for (ti, tree) in forest.trees().iter().enumerate() {
                for (ni, node) in tree.nodes().iter().enumerate() {
                    if let QNode::Split {
                        feature, threshold, ..
                    } = node
                    {
                        groups
                            .entry(*feature)
                            .or_default()
                            .push((ti, ni, *threshold));
                    }
                }
            }
            let mut decision: HashMap<(usize, usize), Signal> = HashMap::new();
            let mut features: Vec<_> = groups.into_iter().collect();
            features.sort_by_key(|(f, _)| *f);
            for (feature, nodes) in features {
                // A ROM word carries at most 64 columns; very popular
                // features split across multiple LUTs (each chunk still
                // shares one decoder).
                for chunk in nodes.chunks(64) {
                    let contents: Vec<u64> = (0..words as u64)
                        .map(|code| {
                            chunk
                                .iter()
                                .enumerate()
                                .fold(0u64, |acc, (j, &(_, _, tau))| {
                                    acc | (((code > tau) as u64) << j)
                                })
                        })
                        .collect();
                    let outs = emit_lut(&mut b, &ports[&feature], &contents, chunk.len(), config);
                    for (j, &(ti, ni, _)) in chunk.iter().enumerate() {
                        decision.insert((ti, ni), outs[j]);
                    }
                }
            }
            fn emit_lookup_tree(
                b: &mut NetlistBuilder,
                tree: &QuantizedTree,
                ti: usize,
                node: usize,
                decision: &HashMap<(usize, usize), Signal>,
                class_bits: usize,
            ) -> Vec<Signal> {
                match &tree.nodes()[node] {
                    QNode::Leaf { class } => b.const_word(*class as u64, class_bits),
                    QNode::Split { left, right, .. } => {
                        let r = decision[&(ti, node)];
                        let l = emit_lookup_tree(b, tree, ti, *left, decision, class_bits);
                        let rg = emit_lookup_tree(b, tree, ti, *right, decision, class_bits);
                        b.mux_word(r, &l, &rg)
                    }
                }
            }
            forest
                .trees()
                .iter()
                .enumerate()
                .map(|(ti, t)| emit_lookup_tree(&mut b, t, ti, 0, &decision, class_bits))
                .collect()
        }
    };
    b.pop_region();

    // Vote counters: per class, match each tree's output against the
    // constant class code and count.
    let vote_bits = ceil_log2(forest.trees().len() + 1);
    b.push_region("votes");
    let mut counts: Vec<Vec<Signal>> = Vec::with_capacity(forest.n_classes());
    for c in 0..forest.n_classes() {
        let code = b.const_word(c as u64, class_bits);
        let matches: Vec<Signal> = tree_classes
            .iter()
            .map(|tc| equals(&mut b, tc, &code))
            .collect();
        let mut count = popcount(&mut b, &matches);
        count.resize(vote_bits.max(count.len()), Signal::ZERO);
        counts.push(count);
    }
    b.pop_region();

    // Ascending-scan argmax: strict greater-than keeps the lowest index on
    // ties.
    b.push_region("argmax");
    let mut best_count = counts[0].clone();
    let mut best_class = b.const_word(0, class_bits);
    for (c, count) in counts.iter().enumerate().skip(1) {
        let wider = count.len().max(best_count.len());
        let mut a = count.clone();
        a.resize(wider, Signal::ZERO);
        let mut bb = best_count.clone();
        bb.resize(wider, Signal::ZERO);
        let gt = unsigned_gt(&mut b, &a, &bb);
        let candidate = b.const_word(c as u64, class_bits);
        best_class = b.mux_word(gt, &best_class, &candidate);
        best_count = b.mux_word(gt, &bb, &a);
    }
    b.pop_region();

    for (c, count) in counts.iter().enumerate() {
        b.output(format!("votes{c}"), count);
    }
    b.output("class", &best_class);
    optimize(&b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml::forest::{ForestParams, RandomForest};
    use ml::quant::FeatureQuantizer;
    use ml::synth::Application;
    use netlist::analyze;
    use netlist::sim::Simulator;
    use pdk::{CellLibrary, Technology};

    fn setup(
        app: Application,
        n_trees: usize,
        bits: usize,
    ) -> (QuantizedForest, FeatureQuantizer, ml::Dataset) {
        let data = app.generate(7);
        let (train, test) = data.split(0.7, 42);
        let forest = RandomForest::fit(&train, ForestParams::paper(n_trees));
        let fq = FeatureQuantizer::fit(&train, bits);
        (QuantizedForest::from_forest(&forest, &fq), fq, test)
    }

    #[test]
    fn forest_engine_matches_software_forest() {
        let (qf, fq, test) = setup(Application::Cardio, 4, 8);
        let module = bespoke_forest(&qf);
        let mut sim = Simulator::new(&module);
        for row in test.x.iter().take(80) {
            let codes = fq.code_row(row);
            for &f in &qf.used_features() {
                sim.set(&format!("f{f}"), codes[f]);
            }
            sim.settle();
            assert_eq!(sim.get("class") as usize, qf.predict(&codes));
        }
    }

    #[test]
    fn vote_counts_are_observable_and_sum_to_tree_count() {
        let (qf, fq, test) = setup(Application::Har, 4, 4);
        let module = bespoke_forest(&qf);
        let mut sim = Simulator::new(&module);
        for row in test.x.iter().take(40) {
            let codes = fq.code_row(row);
            for &f in &qf.used_features() {
                sim.set(&format!("f{f}"), codes[f]);
            }
            sim.settle();
            let total: u64 = (0..qf.n_classes())
                .map(|c| sim.get(&format!("votes{c}")))
                .sum();
            assert_eq!(total, qf.trees().len() as u64);
        }
    }

    #[test]
    fn forest_cost_scales_roughly_with_tree_count() {
        // §III's accuracy/cost dial: more estimators, more area.
        let lib = CellLibrary::for_technology(Technology::Egt);
        let (qf2, _, _) = setup(Application::Pendigits, 2, 8);
        let (qf8, _, _) = setup(Application::Pendigits, 8, 8);
        let a2 = analyze(&bespoke_forest(&qf2), &lib);
        let a8 = analyze(&bespoke_forest(&qf8), &lib);
        assert!(a8.area.ratio(a2.area) > 2.0, "{} vs {}", a8.area, a2.area);
        assert!(a8.power.ratio(a2.power) > 2.0);
    }

    #[test]
    fn forest_is_combinational_and_register_free() {
        let (qf, _, _) = setup(Application::RedWine, 2, 8);
        let module = bespoke_forest(&qf);
        assert!(module.is_combinational());
        assert_eq!(module.dff_count(), 0);
    }
}

#[cfg(test)]
mod lookup_forest_tests {
    use super::*;
    use ml::forest::{ForestParams, RandomForest};
    use ml::quant::FeatureQuantizer;
    use ml::synth::Application;
    use ml::tree::TreeParams;
    use netlist::analyze;
    use netlist::sim::Simulator;
    use pdk::{CellLibrary, Technology};

    fn deep_forest(bits: usize) -> (QuantizedForest, FeatureQuantizer, ml::Dataset) {
        let data = Application::Pendigits.generate(7);
        let (train, test) = data.split(0.7, 42);
        let forest = RandomForest::fit(
            &train,
            ForestParams {
                n_trees: 4,
                tree: TreeParams::with_depth(8),
                seed: 7,
            },
        );
        let fq = FeatureQuantizer::fit(&train, bits);
        (QuantizedForest::from_forest(&forest, &fq), fq, test)
    }

    #[test]
    fn lookup_forest_matches_software_forest() {
        let (qf, fq, test) = deep_forest(4);
        let module = forest_engine(&qf, ForestStyle::Lookup(LookupConfig::optimized()));
        let mut sim = Simulator::new(&module);
        for row in test.x.iter().take(60) {
            let codes = fq.code_row(row);
            for &f in &qf.used_features() {
                sim.set(&format!("f{f}"), codes[f]);
            }
            sim.settle();
            assert_eq!(sim.get("class") as usize, qf.predict(&codes));
        }
    }

    #[test]
    fn ensembles_amortize_decoders_better_than_single_trees() {
        // Cross-tree sharing: the lookup forest merges every member tree's
        // threshold columns for a feature into one ROM behind one address
        // decoder, so it needs fewer decoders — and strictly less ROM area
        // — than the same members built as separate lookup trees.
        let lib = CellLibrary::for_technology(Technology::Egt);
        // RF-8: with eight √n-feature subsets over pendigits' 16 features,
        // member trees are guaranteed to share features.
        let data = Application::Pendigits.generate(7);
        let (train, _) = data.split(0.7, 42);
        let forest_model = RandomForest::fit(&train, ForestParams::paper(8));
        let fq = FeatureQuantizer::fit(&train, 4);
        let qf = QuantizedForest::from_forest(&forest_model, &fq);
        let forest = forest_engine(&qf, ForestStyle::Lookup(LookupConfig::optimized()));
        let forest_ppa = analyze(&forest, &lib);
        let mut member_roms = 0usize;
        let mut member_rom_area = pdk::Area::ZERO;
        for single in qf.trees() {
            let m = crate::lookup::lookup_parallel(single, LookupConfig::optimized());
            member_roms += m.roms.len();
            member_rom_area += analyze(&m, &lib).rom_area;
        }
        assert!(
            forest.roms.len() < member_roms,
            "sharing must cut decoder count: {} vs {member_roms}",
            forest.roms.len()
        );
        assert!(
            forest_ppa.rom_area < member_rom_area,
            "sharing must cut ROM area: {} vs {member_rom_area}",
            forest_ppa.rom_area
        );
    }
}
