//! Bespoke serial decision trees (§IV-A, Fig. 4a, Fig. 6).
//!
//! The serial engine re-dimensioned around one trained model: the input
//! mux shrinks to the features the tree actually tests, the shift register
//! to the tree's true depth, threshold ROM entries to the widest trained
//! threshold, and the class ROM to the real class count. The datapath
//! width comes from the per-application bit-width search (§IV-A picks the
//! narrowest of 4/8/12/16 that preserves accuracy).

use ml::quant::QuantizedTree;
use netlist::ir::Module;
use netlist::optimize;
use pdk::rom::RomStyle;

use crate::conventional::serial_tree::{generate, program, SerialTreeSpec};

/// Derives the bespoke engine dimensions for a trained tree.
pub fn bespoke_spec(tree: &QuantizedTree) -> SerialTreeSpec {
    let (splits, _) = tree.heap_layout();
    let max_tau = splits.iter().map(|s| s.2).max().unwrap_or(0);
    let tau_bits = (64 - max_tau.leading_zeros() as usize)
        .max(1)
        .min(tree.bits());
    SerialTreeSpec {
        depth: tree.depth().max(1),
        width: tree.bits(),
        n_features: tree.used_features().len().max(1),
        class_bits: ceil_log2(tree.n_classes()),
        tau_bits,
        input_registers: false,
        rom_style: RomStyle::Crossbar,
    }
}

fn ceil_log2(n: usize) -> usize {
    if n <= 2 {
        1
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

/// Generates the bespoke serial engine for `tree` and runs logic
/// optimization over it.
pub fn bespoke_serial(tree: &QuantizedTree) -> (SerialTreeSpec, Module) {
    let _span = obs::span("gen.bespoke_serial_tree");
    let spec = bespoke_spec(tree);
    let prog = program(tree, &spec);
    let module = crate::record_generated(optimize(&generate(&spec, &prog)));
    (spec, module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conventional::serial_tree::SerialTreeSpec as Spec;
    use ml::quant::FeatureQuantizer;
    use ml::synth::Application;
    use ml::tree::{DecisionTree, TreeParams};
    use netlist::analyze;
    use netlist::sim::Simulator;
    use pdk::{CellLibrary, Technology};

    fn setup(
        app: Application,
        depth: usize,
        bits: usize,
    ) -> (QuantizedTree, FeatureQuantizer, ml::Dataset) {
        let data = app.generate(7);
        let (train, test) = data.split(0.7, 42);
        let tree = DecisionTree::fit(&train, TreeParams::with_depth(depth));
        let fq = FeatureQuantizer::fit(&train, bits);
        (QuantizedTree::from_tree(&tree, &fq), fq, test)
    }

    #[test]
    fn bespoke_serial_matches_software_tree() {
        let (qt, fq, test) = setup(Application::RedWine, 4, 8);
        let (spec, module) = bespoke_serial(&qt);
        let mut sim = Simulator::new(&module);
        let used = qt.used_features();
        for row in test.x.iter().take(120) {
            let codes = fq.code_row(row);
            sim.reset();
            for (slot, &f) in used.iter().enumerate() {
                sim.set(&format!("f{slot}"), codes[f]);
            }
            for _ in 0..spec.depth {
                sim.step();
            }
            sim.settle();
            assert_eq!(sim.get("class") as usize, qt.predict(&codes));
        }
    }

    #[test]
    fn bespoke_serial_is_cheaper_than_conventional_serial() {
        // Fig. 6: ~37% area and ~22% power improvement on average in EGT.
        let lib = CellLibrary::for_technology(Technology::Egt);
        let (qt, _, _) = setup(Application::Cardio, 4, 8);
        let conv_spec = Spec::conventional(4);
        let conv = analyze(
            &crate::conventional::serial_tree::generate(
                &conv_spec,
                &crate::conventional::serial_tree::program(&qt, &conv_spec),
            ),
            &lib,
        );
        let (_, module) = bespoke_serial(&qt);
        let besp = analyze(&module, &lib);
        assert!(
            besp.area < conv.area,
            "bespoke {} vs conv {}",
            besp.area,
            conv.area
        );
        assert!(besp.power < conv.power);
    }

    #[test]
    fn spec_shrinks_to_the_model() {
        let (qt, _, _) = setup(Application::Har, 4, 8);
        let spec = bespoke_spec(&qt);
        assert_eq!(spec.depth, qt.depth());
        assert_eq!(spec.n_features, qt.used_features().len());
        assert!(spec.class_bits <= 3); // 5 classes
        assert!(spec.tau_bits <= 8);
    }

    #[test]
    fn narrow_width_trees_build_and_verify() {
        let (qt, fq, test) = setup(Application::Har, 2, 4);
        let (spec, module) = bespoke_serial(&qt);
        assert_eq!(spec.width, 4);
        let mut sim = Simulator::new(&module);
        let used = qt.used_features();
        for row in test.x.iter().take(60) {
            let codes = fq.code_row(row);
            sim.reset();
            for (slot, &f) in used.iter().enumerate() {
                sim.set(&format!("f{slot}"), codes[f]);
            }
            for _ in 0..spec.depth {
                sim.step();
            }
            sim.settle();
            assert_eq!(sim.get("class") as usize, qt.predict(&codes));
        }
    }
}
