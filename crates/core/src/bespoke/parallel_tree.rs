//! Bespoke maximally parallel decision trees (§IV-A, Fig. 4b, Fig. 7).
//!
//! The trained thresholds are hardwired as constants into the node
//! comparators and the class labels as constants into the selection tree,
//! the threshold/feature registers are deleted (inputs connect straight to
//! their feature ports), and logic optimization collapses everything the
//! constants imply. This is the architecture behind the paper's headline:
//! 48.9× lower area and 75.6× lower power than conventional parallel
//! trees in EGT, and — unlike the conventional case — *strictly better*
//! than its serial sibling.

use ml::quant::{QNode, QuantizedTree};
use netlist::builder::NetlistBuilder;
use netlist::comb::unsigned_gt;
use netlist::ir::{Module, Signal};
use netlist::optimize;

fn ceil_log2(n: usize) -> usize {
    if n <= 2 {
        1
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

/// Generates the bespoke parallel tree for `tree` (post-optimization).
///
/// Ports: `f{slot}` for each *used* feature (slot order =
/// [`QuantizedTree::used_features`] order) and the `class` output.
pub fn bespoke_parallel(tree: &QuantizedTree) -> Module {
    let _span = obs::span("gen.bespoke_parallel_tree");
    crate::record_generated(optimize(&bespoke_parallel_raw(tree)))
}

/// The unoptimized bespoke parallel tree — the sign-off *reference*: the
/// `--verify` flow equivalence-checks [`bespoke_parallel`]'s rewritten
/// netlist against this structural original.
pub fn bespoke_parallel_raw(tree: &QuantizedTree) -> Module {
    let mut b = NetlistBuilder::new("bespoke_parallel_tree");
    let used = tree.used_features();
    let feature_ports: Vec<Vec<Signal>> = used
        .iter()
        .enumerate()
        .map(|(slot, _)| b.input(format!("f{slot}"), tree.bits()))
        .collect();
    let slot_of = |feature: usize| {
        used.iter()
            .position(|&f| f == feature)
            .expect("used feature")
    };
    let class_bits = ceil_log2(tree.n_classes());

    fn emit(
        b: &mut NetlistBuilder,
        tree: &QuantizedTree,
        node: usize,
        feature_ports: &[Vec<Signal>],
        slot_of: &dyn Fn(usize) -> usize,
        class_bits: usize,
    ) -> Vec<Signal> {
        match &tree.nodes()[node] {
            QNode::Leaf { class } => b.const_word(*class as u64, class_bits),
            QNode::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                let x = &feature_ports[slot_of(*feature)];
                let tau = b.const_word(*threshold, x.len());
                b.push_region("compare");
                let r = unsigned_gt(b, x, &tau);
                b.pop_region();
                let l = emit(b, tree, *left, feature_ports, slot_of, class_bits);
                let rgt = emit(b, tree, *right, feature_ports, slot_of, class_bits);
                b.push_region("select");
                let out = b.mux_word(r, &l, &rgt);
                b.pop_region();
                out
            }
        }
    }
    let class = emit(&mut b, tree, 0, &feature_ports, &slot_of, class_bits);
    b.output("class", &class);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conventional::parallel_tree::{generate as gen_conv, ParallelTreeSpec};
    use ml::quant::FeatureQuantizer;
    use ml::synth::Application;
    use ml::tree::{DecisionTree, TreeParams};
    use netlist::analyze;
    use netlist::sim::Simulator;
    use pdk::{CellLibrary, Technology};

    fn setup(
        app: Application,
        depth: usize,
        bits: usize,
    ) -> (QuantizedTree, FeatureQuantizer, ml::Dataset) {
        let data = app.generate(7);
        let (train, test) = data.split(0.7, 42);
        let tree = DecisionTree::fit(&train, TreeParams::with_depth(depth));
        let fq = FeatureQuantizer::fit(&train, bits);
        (QuantizedTree::from_tree(&tree, &fq), fq, test)
    }

    fn check_equivalence(app: Application, depth: usize, bits: usize, samples: usize) {
        let (qt, fq, test) = setup(app, depth, bits);
        let module = bespoke_parallel(&qt);
        let mut sim = Simulator::new(&module);
        let used = qt.used_features();
        for row in test.x.iter().take(samples) {
            let codes = fq.code_row(row);
            for (slot, &f) in used.iter().enumerate() {
                sim.set(&format!("f{slot}"), codes[f]);
            }
            sim.settle();
            assert_eq!(sim.get("class") as usize, qt.predict(&codes));
        }
    }

    #[test]
    fn bespoke_parallel_matches_software_tree() {
        check_equivalence(Application::Cardio, 4, 8, 150);
        check_equivalence(Application::Pendigits, 6, 8, 100);
        check_equivalence(Application::Har, 4, 4, 100);
    }

    #[test]
    fn bespoke_parallel_crushes_conventional_parallel() {
        // Fig. 7: the EGT averages are 3.9× delay, 48.9× area, 75.6×
        // power. Check we land in the right decade for one benchmark.
        let lib = CellLibrary::for_technology(Technology::Egt);
        let (qt, _, _) = setup(Application::Cardio, 4, 8);
        let conv = analyze(&gen_conv(&ParallelTreeSpec::conventional(4)), &lib);
        let besp = analyze(&bespoke_parallel(&qt), &lib);
        let area_x = conv.area.ratio(besp.area);
        let power_x = conv.power.ratio(besp.power);
        let delay_x = conv.delay.ratio(besp.delay);
        assert!(area_x > 10.0, "area improvement only {area_x}x");
        assert!(power_x > 15.0, "power improvement only {power_x}x");
        assert!(delay_x > 1.0, "delay improvement only {delay_x}x");
    }

    #[test]
    fn bespoke_parallel_beats_bespoke_serial_strictly() {
        // §IV-A: "unlike conventional counterparts, parallel bespoke trees
        // are strictly better than serial bespoke trees" (serial pays ROM
        // + mux + multi-cycle latency; parallel folds everything).
        let lib = CellLibrary::for_technology(Technology::Egt);
        let (qt, _, _) = setup(Application::Pendigits, 4, 8);
        let par = analyze(&bespoke_parallel(&qt), &lib);
        let (spec, serial) = crate::bespoke::serial_tree::bespoke_serial(&qt);
        let ser = analyze(&serial, &lib);
        assert!(par.area < ser.area);
        assert!(par.power < ser.power);
        assert!(par.latency(1) < ser.latency(spec.depth));
    }

    #[test]
    fn no_registers_survive() {
        let (qt, _, _) = setup(Application::GasId, 4, 8);
        let module = bespoke_parallel(&qt);
        assert_eq!(module.dff_count(), 0);
        assert!(module.is_combinational());
    }

    #[test]
    fn single_leaf_tree_reduces_to_constants() {
        let data = Application::Har.generate(7);
        let tree = DecisionTree::fit(&data, TreeParams::with_depth(0));
        let fq = FeatureQuantizer::fit(&data, 8);
        let qt = QuantizedTree::from_tree(&tree, &fq);
        let module = bespoke_parallel(&qt);
        assert_eq!(module.gate_count(), 0);
    }
}
