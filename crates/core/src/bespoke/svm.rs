//! Bespoke regression-SVM engines (§IV-B, Fig. 4c, Fig. 11).
//!
//! Coefficient registers are replaced by hardwired trained values
//! (flip-flops are brutally expensive in print: an EGT DFF is 1.41 mm² and
//! 121 µW), array multipliers become constant-coefficient shift-add
//! networks, and the class mapper's boundaries fold into the comparators.
//! Signed arithmetic is realized unsigned: positive- and negative-
//! coefficient terms accumulate in separate adder trees `P` and `N`, and
//! each boundary test `P − N > B` becomes `P > N + B` with the constant
//! folded in.

use ml::quant::QuantizedSvm;
use netlist::arith::{add, adder_tree, const_multiply};
use netlist::builder::NetlistBuilder;
use netlist::comb::unsigned_gt;
use netlist::ir::{Module, Signal};
use netlist::optimize;

use crate::conventional::svm::popcount;

/// Generates the bespoke SVM engine for a quantized regressor
/// (post-optimization).
///
/// Ports: `x{f}` for every feature with a non-zero trained coefficient
/// (`f` = original feature index), outputs `class` and the raw thermometer
/// bits `therm`.
pub fn bespoke_svm(svm: &QuantizedSvm) -> Module {
    let _span = obs::span("gen.bespoke_svm");
    crate::record_generated(optimize(&bespoke_svm_raw(svm)))
}

/// The unoptimized bespoke SVM engine — the sign-off *reference* the
/// `--verify` flow equivalence-checks [`bespoke_svm`]'s rewritten netlist
/// against.
pub fn bespoke_svm_raw(svm: &QuantizedSvm) -> Module {
    let mut b = NetlistBuilder::new("bespoke_svm");
    let width = svm.bits();

    // One port per live feature.
    let mut live: Vec<usize> = svm
        .pos_terms()
        .iter()
        .chain(svm.neg_terms())
        .map(|&(f, _)| f)
        .collect();
    live.sort_unstable();
    live.dedup();
    let ports: std::collections::HashMap<usize, Vec<Signal>> = live
        .iter()
        .map(|&f| (f, b.input(format!("x{f}"), width)))
        .collect();

    // Value bounds decide the common comparison width.
    let max_code: u128 = (1u128 << width) - 1;
    let max_p: u128 = svm
        .pos_terms()
        .iter()
        .map(|&(_, m)| m as u128 * max_code)
        .sum();
    let max_n: u128 = svm
        .neg_terms()
        .iter()
        .map(|&(_, m)| m as u128 * max_code)
        .sum();
    let max_b: u128 = svm
        .boundaries()
        .iter()
        .map(|&v| v.unsigned_abs() as u128)
        .max()
        .unwrap_or(0);
    let max_val = max_p.max(max_n + max_b).max(1);
    let cmp_width = (128 - max_val.leading_zeros() as usize) + 1;

    let tree_for = |b: &mut NetlistBuilder, terms: &[(usize, u64)]| -> Vec<Signal> {
        if terms.is_empty() {
            return b.const_word(0, cmp_width);
        }
        let products: Vec<Vec<Signal>> = terms
            .iter()
            .map(|&(f, m)| const_multiply(b, &ports[&f], m))
            .collect();
        let mut sum = adder_tree(b, &products);
        sum.resize(cmp_width, Signal::ZERO);
        sum
    };
    let p = tree_for(&mut b, svm.pos_terms());
    let n = tree_for(&mut b, svm.neg_terms());

    // Boundary tests: P − N > B_c, kept unsigned by moving the constant.
    let mut therm = Vec::with_capacity(svm.boundaries().len());
    for &boundary in svm.boundaries() {
        let t = if boundary >= 0 {
            let bconst = b.const_word(boundary as u64, cmp_width);
            let mut rhs = add(&mut b, &n, &bconst);
            rhs.resize(cmp_width + 1, Signal::ZERO);
            let mut lhs = p.clone();
            lhs.resize(cmp_width + 1, Signal::ZERO);
            unsigned_gt(&mut b, &lhs, &rhs)
        } else {
            let bconst = b.const_word(boundary.unsigned_abs(), cmp_width);
            let mut lhs = add(&mut b, &p, &bconst);
            lhs.resize(cmp_width + 1, Signal::ZERO);
            let mut rhs = n.clone();
            rhs.resize(cmp_width + 1, Signal::ZERO);
            unsigned_gt(&mut b, &lhs, &rhs)
        };
        therm.push(t);
    }

    let class = if therm.is_empty() {
        b.const_word(0, 1)
    } else {
        popcount(&mut b, &therm)
    };
    b.output("class", &class);
    let therm_out = if therm.is_empty() {
        vec![Signal::ZERO]
    } else {
        therm
    };
    b.output("therm", &therm_out);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conventional::svm::{generate as gen_conv, SvmSpec};
    use ml::data::Standardizer;
    use ml::quant::FeatureQuantizer;
    use ml::synth::Application;
    use ml::SvmRegressor;
    use netlist::analyze;
    use netlist::sim::Simulator;
    use pdk::{CellLibrary, Technology};

    fn setup(app: Application, bits: usize) -> (QuantizedSvm, FeatureQuantizer, ml::Dataset) {
        let data = app.generate(7);
        let (train, test) = data.split(0.7, 42);
        let s = Standardizer::fit(&train);
        let (train, test) = (s.transform(&train), s.transform(&test));
        let svm = SvmRegressor::fit(&train, 200, 1e-4);
        let fq = FeatureQuantizer::fit(&train, bits);
        (QuantizedSvm::from_svm(&svm, &fq), fq, test)
    }

    fn check_equivalence(app: Application, bits: usize, samples: usize) {
        let (qs, fq, test) = setup(app, bits);
        let module = bespoke_svm(&qs);
        let mut sim = Simulator::new(&module);
        for row in test.x.iter().take(samples) {
            let codes = fq.code_row(row);
            for &(f, _) in qs.pos_terms().iter().chain(qs.neg_terms()) {
                sim.set(&format!("x{f}"), codes[f]);
            }
            sim.settle();
            assert_eq!(
                sim.get("class") as usize,
                qs.predict(&codes),
                "row mismatch"
            );
        }
    }

    #[test]
    fn bespoke_svm_matches_software_svm() {
        check_equivalence(Application::RedWine, 8, 120);
        check_equivalence(Application::WhiteWine, 8, 80);
        check_equivalence(Application::Har, 4, 80);
    }

    #[test]
    fn bespoke_svm_is_an_order_cheaper_than_conventional() {
        // Fig. 11: 1.4× delay, 12.8× area, 12.7× power (EGT averages)
        // against the 263-feature conventional engine. A fair shape check:
        // compare against a conventional engine sized to the same feature
        // count, expecting several-fold improvements.
        let lib = CellLibrary::for_technology(Technology::Egt);
        let (qs, _, _) = setup(Application::RedWine, 8);
        let conv = analyze(
            &gen_conv(&SvmSpec {
                width: 8,
                n_features: 11,
                n_boundaries: 5,
            }),
            &lib,
        );
        let besp = analyze(&bespoke_svm(&qs), &lib);
        assert!(
            conv.area.ratio(besp.area) > 3.0,
            "area {}",
            conv.area.ratio(besp.area)
        );
        assert!(conv.power.ratio(besp.power) > 3.0);
        assert!(conv.delay >= besp.delay);
    }

    #[test]
    fn no_registers_and_no_multipliers_survive() {
        let (qs, _, _) = setup(Application::RedWine, 8);
        let module = bespoke_svm(&qs);
        assert_eq!(module.dff_count(), 0);
    }

    #[test]
    fn thermometer_output_is_monotone() {
        let (qs, fq, test) = setup(Application::WhiteWine, 8);
        let module = bespoke_svm(&qs);
        let mut sim = Simulator::new(&module);
        for row in test.x.iter().take(60) {
            let codes = fq.code_row(row);
            for &(f, _) in qs.pos_terms().iter().chain(qs.neg_terms()) {
                sim.set(&format!("x{f}"), codes[f]);
            }
            sim.settle();
            let t = sim.get("therm");
            // Thermometer: once a zero appears, no ones above it.
            let ones = t.trailing_ones() as u64;
            assert_eq!(t, (1u64 << ones) - 1, "non-thermometer pattern {t:b}");
        }
    }
}
