//! Bespoke (per-model hardwired) classifier architectures (§IV).
//!
//! Printing's negligible NRE — no masks, no lithography, sub-cent marginal
//! cost on a desktop materials printer — makes it economical to fabricate
//! a *different circuit for every trained model*. These generators bake
//! the trained parameters into the logic and let
//! [`netlist::optimize`] collapse what the constants imply.

pub mod parallel_tree;
pub mod serial_tree;
pub mod svm;

pub use parallel_tree::{bespoke_parallel, bespoke_parallel_raw};
pub use serial_tree::{bespoke_serial, bespoke_spec};
pub use svm::{bespoke_svm, bespoke_svm_raw};
