//! Per-application datapath bit-width search (§IV-A).
//!
//! Bespoke designs sweep 4/8/12/16-bit datapaths and keep the narrowest
//! width whose test accuracy matches the best width to three significant
//! digits — "e.g. for Arrhythmia DT-1, accuracy remains the same when we
//! increase the classifier width from 4 to 16, hence we pick DT-1 with
//! 4-bit comparator width".

use ml::data::Dataset;
use ml::metrics::accuracy;
use ml::quant::{FeatureQuantizer, QuantizedSvm, QuantizedTree};
use ml::tree::DecisionTree;
use ml::SvmRegressor;
use serde::{Deserialize, Serialize};

/// The candidate widths the paper sweeps.
pub const WIDTHS: [usize; 4] = [4, 8, 12, 16];

/// Outcome of a width search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WidthChoice {
    /// Chosen datapath width.
    pub bits: usize,
    /// Test accuracy at that width.
    pub accuracy: f64,
}

fn round3(a: f64) -> f64 {
    (a * 1000.0).round() / 1000.0
}

/// Picks the narrowest width preserving the best accuracy (to three
/// significant digits) for a trained tree. Returns the quantizer, the
/// quantized tree and the choice.
pub fn choose_tree_width(
    tree: &DecisionTree,
    train: &Dataset,
    test: &Dataset,
) -> (FeatureQuantizer, QuantizedTree, WidthChoice) {
    let candidates: Vec<(FeatureQuantizer, QuantizedTree, f64)> = WIDTHS
        .iter()
        .map(|&bits| {
            let fq = FeatureQuantizer::fit(train, bits);
            let qt = QuantizedTree::from_tree(tree, &fq);
            let acc = accuracy(
                test.x.iter().map(|r| qt.predict(&fq.code_row(r))),
                test.y.iter().copied(),
            )
            .expect("predictions align with test labels");
            (fq, qt, acc)
        })
        .collect();
    let best = candidates.iter().map(|c| round3(c.2)).fold(0.0, f64::max);
    let (fq, qt, acc) = candidates
        .into_iter()
        .find(|c| round3(c.2) >= best)
        .expect("at least one candidate");
    let bits = fq.bits();
    (
        fq,
        qt,
        WidthChoice {
            bits,
            accuracy: acc,
        },
    )
}

/// Width search for a trained SVM regressor, same selection rule.
pub fn choose_svm_width(
    svm: &SvmRegressor,
    train: &Dataset,
    test: &Dataset,
) -> (FeatureQuantizer, QuantizedSvm, WidthChoice) {
    let candidates: Vec<(FeatureQuantizer, QuantizedSvm, f64)> = WIDTHS
        .iter()
        .map(|&bits| {
            let fq = FeatureQuantizer::fit(train, bits);
            let qs = QuantizedSvm::from_svm(svm, &fq);
            let acc = accuracy(
                test.x.iter().map(|r| qs.predict(&fq.code_row(r))),
                test.y.iter().copied(),
            )
            .expect("predictions align with test labels");
            (fq, qs, acc)
        })
        .collect();
    let best = candidates.iter().map(|c| round3(c.2)).fold(0.0, f64::max);
    let (fq, qs, acc) = candidates
        .into_iter()
        .find(|c| round3(c.2) >= best)
        .expect("at least one candidate");
    let bits = fq.bits();
    (
        fq,
        qs,
        WidthChoice {
            bits,
            accuracy: acc,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml::data::Standardizer;
    use ml::synth::Application;
    use ml::tree::TreeParams;

    #[test]
    fn separable_data_picks_a_narrow_width() {
        // HAR's clean clusters never need the 12/16-bit datapaths.
        let data = Application::Har.generate(7);
        let (train, test) = data.split(0.7, 42);
        let tree = DecisionTree::fit(&train, TreeParams::with_depth(2));
        let (_, _, choice) = choose_tree_width(&tree, &train, &test);
        assert!(choice.bits <= 8, "chose {} bits", choice.bits);
    }

    #[test]
    fn chosen_width_never_loses_accuracy_vs_widest() {
        for app in [Application::Cardio, Application::RedWine] {
            let data = app.generate(7);
            let (train, test) = data.split(0.7, 42);
            let tree = DecisionTree::fit(&train, TreeParams::with_depth(4));
            let (_, _, choice) = choose_tree_width(&tree, &train, &test);
            let fq16 = FeatureQuantizer::fit(&train, 16);
            let qt16 = QuantizedTree::from_tree(&tree, &fq16);
            let acc16 = accuracy(
                test.x.iter().map(|r| qt16.predict(&fq16.code_row(r))),
                test.y.iter().copied(),
            )
            .unwrap();
            assert!(
                choice.accuracy >= acc16 - 0.0015,
                "{}: {} vs {}",
                app.name(),
                choice.accuracy,
                acc16
            );
        }
    }

    #[test]
    fn svm_width_search_returns_consistent_artifacts() {
        let data = Application::RedWine.generate(7);
        let (train, test) = data.split(0.7, 42);
        let s = Standardizer::fit(&train);
        let (train, test) = (s.transform(&train), s.transform(&test));
        let svm = SvmRegressor::fit(&train, 150, 1e-4);
        let (fq, qs, choice) = choose_svm_width(&svm, &train, &test);
        assert_eq!(fq.bits(), choice.bits);
        assert_eq!(qs.bits(), choice.bits);
        assert!(WIDTHS.contains(&choice.bits));
        assert!(choice.accuracy > 0.2);
    }
}
