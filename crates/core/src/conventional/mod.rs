//! Conventional (general-purpose) classifier architectures.
//!
//! These are the §III-A baselines of Tables III–V: engines sized for a
//! *shape* (tree depth, feature count, bit width) whose trained model is
//! loaded as data — ROM contents for the serial tree, register contents
//! for the parallel tree and the SVM. Nothing about the trained model is
//! baked into the logic, which is precisely why they are so much more
//! expensive than the bespoke designs of [`crate::bespoke`].

pub mod parallel_tree;
pub mod serial_tree;
pub mod svm;

pub use parallel_tree::ParallelTreeSpec;
pub use serial_tree::{program, SerialTreeProgram, SerialTreeSpec};
pub use svm::SvmSpec;
