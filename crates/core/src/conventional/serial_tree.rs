//! Conventional **serial** decision trees (§III-A.1, Fig. 2a, Table III).
//!
//! One comparator, two ROMs (thresholds + classes) and a shift register
//! tracking the working node. The architecture is *general-purpose*: it is
//! sized for a full tree of the requested depth and a fixed feature count
//! and bit width; the trained model lives entirely in ROM contents, so the
//! same silicon — or rather, the same printed sheet — serves any tree of
//! that shape.

use ml::quant::QuantizedTree;
use netlist::builder::NetlistBuilder;
use netlist::comb::unsigned_gt;
use netlist::ir::{Module, Signal};
use netlist::seq::shift_register;
use pdk::rom::RomStyle;

/// Structural parameters of a serial tree engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SerialTreeSpec {
    /// Tree depth the engine is sized for.
    pub depth: usize,
    /// Feature / threshold bit width.
    pub width: usize,
    /// Number of feature input ports (the input mux size).
    pub n_features: usize,
    /// Class-label width in bits.
    pub class_bits: usize,
    /// Threshold ROM entry width (bespoke engines shrink this to the
    /// widest trained threshold; conventional engines use `width`).
    pub tau_bits: usize,
    /// Input feature registers (conventional engines buffer their inputs).
    pub input_registers: bool,
    /// ROM implementation style.
    pub rom_style: RomStyle,
}

impl SerialTreeSpec {
    /// The paper's conventional configuration for depth `d`: 8-bit data,
    /// `min(2^d − 1, 14)` features (14 is the average unique-feature count
    /// across the benchmark datasets), 5-bit class labels, crossbar ROMs.
    /// Features feed the mux directly (Fig. 2a); input registers are an
    /// option for sensor front-ends that need them, but they add a load
    /// cycle and Table III's small logic gate counts show the paper's
    /// engine does without.
    pub fn conventional(depth: usize) -> Self {
        SerialTreeSpec {
            depth,
            width: 8,
            n_features: ((1usize << depth) - 1).clamp(1, 14),
            class_bits: 5,
            tau_bits: 8,
            input_registers: false,
            rom_style: RomStyle::Crossbar,
        }
    }
}

/// ROM contents compiled from a trained tree (or zeros for a blank
/// general-purpose engine).
#[derive(Debug, Clone, PartialEq)]
pub struct SerialTreeProgram {
    /// Threshold ROM: `2^(depth+1)` words of `[τ | feature_select]`.
    pub threshold_rom: Vec<u64>,
    /// Class ROM: `2^depth` words of class labels.
    pub class_rom: Vec<u64>,
}

/// Compiles a quantized tree onto a serial engine of `spec`.
///
/// Unbalanced trees are handled entirely in the class ROM: every address
/// whose leading path bits pass through a leaf stores that leaf's class,
/// so whatever the shift register accumulates after reaching the leaf is
/// harmless (threshold entries below a leaf are don't-care).
///
/// # Panics
/// Panics if the tree is deeper than the engine or uses a feature index
/// outside the engine's mux, or a class outside `class_bits`.
pub fn program(tree: &QuantizedTree, spec: &SerialTreeSpec) -> SerialTreeProgram {
    assert!(tree.depth() <= spec.depth, "tree deeper than engine");
    let fbits = feature_bits(spec.n_features);
    let max_tau = (1u64 << spec.tau_bits) - 1;
    let mut threshold_rom = vec![max_tau; 1 << (spec.depth + 1)];
    let (splits, leaves) = tree.heap_layout();
    // Feature indices are remapped onto the engine's mux inputs in
    // first-use order.
    let used = tree.used_features();
    let mux_slot = |feature: usize| -> u64 {
        used.iter()
            .position(|&f| f == feature)
            .expect("feature in used list") as u64
    };
    assert!(
        used.len() <= spec.n_features,
        "tree uses more features than the engine has"
    );
    for (pos, feature, tau) in &splits {
        assert!(*tau <= max_tau);
        threshold_rom[*pos] = tau | (mux_slot(*feature) << spec.tau_bits);
        let _ = fbits;
    }
    let mut class_rom = vec![0u64; 1 << spec.depth];
    for (pos, depth, class) in &leaves {
        assert!(
            (*class as u64) < (1 << spec.class_bits),
            "class exceeds class_bits"
        );
        let path = pos - (1 << depth);
        let shift = spec.depth - depth;
        // Fill the whole block reachable below this leaf.
        for junk in 0..(1usize << shift) {
            class_rom[(path << shift) | junk] = *class as u64;
        }
    }
    SerialTreeProgram {
        threshold_rom,
        class_rom,
    }
}

/// Feature-select field width.
fn feature_bits(n_features: usize) -> usize {
    if n_features <= 1 {
        1
    } else {
        (usize::BITS - (n_features - 1).leading_zeros()) as usize
    }
}

/// Generates the serial tree engine netlist.
///
/// Ports: inputs `f0..f{n-1}` (one per feature, `width` bits) and a
/// combinational output `class`; plus `done` (the shift register's MSB).
/// One inference takes `spec.depth` clock cycles after reset.
pub fn generate(spec: &SerialTreeSpec, prog: &SerialTreeProgram) -> Module {
    let _span = obs::span("gen.conv_serial_tree");
    let mut b = NetlistBuilder::new(format!("serial_tree_d{}", spec.depth));
    let fbits = feature_bits(spec.n_features);

    // Feature inputs (optionally registered).
    let mut features: Vec<Vec<Signal>> = (0..spec.n_features)
        .map(|i| b.input(format!("f{i}"), spec.width))
        .collect();
    if spec.input_registers {
        features = features.iter().map(|f| b.register(f, 0)).collect();
    }

    // Shift register: depth+1 bits, seeded with 1 at the LSB. Its stage-0
    // D is the comparison result, which itself depends on the register's Q
    // values; build the chain with a placeholder D and close the loop with
    // `set_dff_input` once the comparator exists (the DFF breaks the
    // combinational cycle).
    let sr = shift_register(&mut b, Signal::ZERO, spec.depth + 1, 1);

    // Threshold ROM addressed by the full shift-register value.
    let rom_word = b.rom(
        &sr,
        prog.threshold_rom.clone(),
        spec.tau_bits + fbits,
        spec.rom_style,
    );
    let (tau, fsel) = rom_word.split_at(spec.tau_bits);

    // Input feature mux.
    let selected = b.mux_tree(fsel, &features);

    // The single comparator: r = selected > τ (go right). A narrower τ
    // field is zero-extended with constants, which the optimizer folds in
    // bespoke builds.
    let mut tau_ext = tau.to_vec();
    tau_ext.resize(spec.width, Signal::ZERO);
    let r = unsigned_gt(&mut b, &selected, &tau_ext);

    // Close the shift-register loop: stage 0 captures r each cycle.
    b.set_dff_input(sr[0], r);

    // Class ROM addressed by the path bits (SR low `depth` bits).
    let class = b.rom(
        &sr[..spec.depth],
        prog.class_rom.clone(),
        spec.class_bits,
        spec.rom_style,
    );

    b.output("class", &class);
    b.output("done", &[sr[spec.depth]]);
    crate::record_generated(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml::quant::{FeatureQuantizer, QuantizedTree};
    use ml::synth::Application;
    use ml::tree::{DecisionTree, TreeParams};
    use netlist::analyze;
    use netlist::sim::Simulator;
    use pdk::{CellLibrary, Technology};

    fn setup(
        app: Application,
        depth: usize,
        bits: usize,
    ) -> (QuantizedTree, FeatureQuantizer, ml::Dataset) {
        let data = app.generate(7);
        let (train, test) = data.split(0.7, 42);
        let tree = DecisionTree::fit(&train, TreeParams::with_depth(depth));
        let fq = FeatureQuantizer::fit(&train, bits);
        (QuantizedTree::from_tree(&tree, &fq), fq, test)
    }

    /// Runs one inference on the engine simulator.
    fn infer(sim: &mut Simulator, qt: &QuantizedTree, codes: &[u64], depth: usize) -> u64 {
        sim.reset();
        let used = qt.used_features();
        for (slot, &f) in used.iter().enumerate() {
            sim.set(&format!("f{slot}"), codes[f]);
        }
        // Unused mux slots read zero by default (ports default to 0).
        for _ in 0..depth {
            sim.step();
        }
        sim.settle();
        assert_eq!(sim.get("done"), 1, "done must assert after depth cycles");
        sim.get("class")
    }

    #[test]
    fn serial_engine_matches_software_tree() {
        let (qt, fq, test) = setup(Application::Cardio, 4, 8);
        let spec = SerialTreeSpec::conventional(4);
        let prog = program(&qt, &spec);
        let module = generate(&spec, &prog);
        let mut sim = Simulator::new(&module);
        for row in test.x.iter().take(120) {
            let codes = fq.code_row(row);
            let hw = infer(&mut sim, &qt, &codes, 4);
            assert_eq!(hw as usize, qt.predict(&codes));
        }
    }

    #[test]
    fn unbalanced_trees_park_on_the_correct_leaf() {
        // HAR trees stop early on pure nodes: exercise the "route left
        // under a leaf" ROM filling.
        let (qt, fq, test) = setup(Application::Har, 4, 8);
        assert!(qt.comparison_count() < 15, "want an unbalanced tree");
        let spec = SerialTreeSpec::conventional(4);
        let prog = program(&qt, &spec);
        let module = generate(&spec, &prog);
        let mut sim = Simulator::new(&module);
        for row in test.x.iter().take(120) {
            let codes = fq.code_row(row);
            assert_eq!(infer(&mut sim, &qt, &codes, 4) as usize, qt.predict(&codes));
        }
    }

    #[test]
    fn deeper_engines_cost_more_in_memory() {
        let lib = CellLibrary::for_technology(Technology::Egt);
        let cost = |d: usize| {
            let spec = SerialTreeSpec::conventional(d);
            let prog = SerialTreeProgram {
                threshold_rom: vec![0; 1 << (d + 1)],
                class_rom: vec![0; 1 << d],
            };
            analyze(&generate(&spec, &prog), &lib)
        };
        let c1 = cost(1);
        let c8 = cost(8);
        assert!(c8.rom_area > c1.rom_area * 10.0);
        assert!(c8.area > c1.area);
    }

    #[test]
    fn engine_has_exactly_one_comparator_worth_of_logic() {
        // The serial architecture's defining property: logic cost is
        // dominated by a single comparator + mux regardless of depth.
        let lib = CellLibrary::for_technology(Technology::Egt);
        let logic_area = |d: usize| {
            let spec = SerialTreeSpec::conventional(d);
            let prog = SerialTreeProgram {
                threshold_rom: vec![0; 1 << (d + 1)],
                class_rom: vec![0; 1 << d],
            };
            analyze(&generate(&spec, &prog), &lib).logic_area
        };
        // Logic grows slowly with depth (wider SR + bigger mux), far from
        // the 2^d explosion of the parallel tree.
        assert!(logic_area(8).ratio(logic_area(4)) < 3.0);
    }

    #[test]
    #[should_panic(expected = "deeper than engine")]
    fn overdeep_trees_are_rejected() {
        let (qt, _, _) = setup(Application::Pendigits, 6, 8);
        assert!(qt.depth() > 2);
        program(&qt, &SerialTreeSpec::conventional(2));
    }
}
