//! Conventional **maximally parallel** decision trees (§III-A.1, Fig. 2b,
//! Table IV).
//!
//! One comparator plus two registers (threshold and input feature) per
//! node of a *full* tree of the requested depth, class-label registers for
//! every leaf, and a mux tree steered by the comparison results. All
//! comparisons evaluate concurrently — 1.32× faster than the serial tree
//! on average, at 20× the area and 8× the power in EGT.

use netlist::builder::NetlistBuilder;
use netlist::comb::unsigned_gt;
use netlist::ir::{Module, Signal};

/// Structural parameters of a conventional parallel tree engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelTreeSpec {
    /// Full-tree depth the engine is sized for.
    pub depth: usize,
    /// Feature / threshold bit width.
    pub width: usize,
    /// Number of feature input ports.
    pub n_features: usize,
    /// Class-label width in bits.
    pub class_bits: usize,
}

impl ParallelTreeSpec {
    /// The paper's conventional configuration for depth `d` (8-bit data,
    /// `min(2^d − 1, 14)` features, 5-bit class labels).
    pub fn conventional(depth: usize) -> Self {
        ParallelTreeSpec {
            depth,
            width: 8,
            n_features: ((1usize << depth) - 1).clamp(1, 14),
            class_bits: 5,
        }
    }
}

/// Generates the conventional parallel tree engine.
///
/// Ports: `f0..f{n-1}` feature inputs, `thr{node}` threshold-load inputs
/// (captured into the per-node threshold registers each cycle),
/// `cls{leaf}` class-label-load inputs, and the combinational `class`
/// output. Nodes are numbered in heap order (root = 1); leaves 0-indexed
/// left to right.
pub fn generate(spec: &ParallelTreeSpec) -> Module {
    let _span = obs::span("gen.conv_parallel_tree");
    let mut b = NetlistBuilder::new(format!("parallel_tree_d{}", spec.depth));
    let features: Vec<Vec<Signal>> = (0..spec.n_features)
        .map(|i| b.input(format!("f{i}"), spec.width))
        .collect();

    let n_nodes = (1usize << spec.depth) - 1;
    let n_leaves = 1usize << spec.depth;

    // Per node: threshold register + input feature register + comparator.
    // Node i (heap position i+1) observes feature port (i % n_features) —
    // the generic engine wires a fixed round-robin; a trained model is
    // loaded purely through the threshold/class registers.
    let mut decisions = Vec::with_capacity(n_nodes);
    for node in 0..n_nodes {
        let thr_in = b.input(format!("thr{node}"), spec.width);
        let thr = b.register(&thr_in, 0);
        let feat = b.register(&features[node % spec.n_features], 0);
        decisions.push(unsigned_gt(&mut b, &feat, &thr));
    }

    // Class-label registers.
    let classes: Vec<Vec<Signal>> = (0..n_leaves)
        .map(|leaf| {
            let d = b.input(format!("cls{leaf}"), spec.class_bits);
            b.register(&d, 0)
        })
        .collect();

    // Mux tree steered by per-node decisions: heap node p selects between
    // its left (decision 0) and right subtrees.
    fn select(
        b: &mut NetlistBuilder,
        pos: usize,
        depth_left: usize,
        decisions: &[Signal],
        classes: &[Vec<Signal>],
        first_leaf: usize,
    ) -> Vec<Signal> {
        if depth_left == 0 {
            return classes[pos - first_leaf].clone();
        }
        let d = decisions[pos - 1];
        let left = select(b, pos * 2, depth_left - 1, decisions, classes, first_leaf);
        let right = select(
            b,
            pos * 2 + 1,
            depth_left - 1,
            decisions,
            classes,
            first_leaf,
        );
        b.mux_word(d, &left, &right)
    }
    let class = select(&mut b, 1, spec.depth, &decisions, &classes, n_leaves);
    b.output("class", &class);
    crate::record_generated(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::analyze;
    use netlist::sim::Simulator;
    use pdk::{CellLibrary, Technology};

    #[test]
    fn engine_evaluates_a_loaded_tree() {
        // Depth-2 engine: nodes 1..=3, leaves 0..=3. Load a tree over
        // feature port 0 (root) and ports 1, 2 (children).
        let spec = ParallelTreeSpec {
            depth: 2,
            width: 8,
            n_features: 3,
            class_bits: 5,
        };
        let m = generate(&spec);
        let mut sim = Simulator::new(&m);
        // thresholds: root (node 0, feature 0) at 100; node 1 (feature 1)
        // at 50; node 2 (feature 2) at 150.
        sim.set("thr0", 100);
        sim.set("thr1", 50);
        sim.set("thr2", 150);
        for (leaf, class) in [(0u64, 10u64), (1, 11), (2, 12), (3, 13)] {
            sim.set(&format!("cls{leaf}"), class);
        }
        let mut check = |f0: u64, f1: u64, f2: u64, expect: u64| {
            sim.set("f0", f0);
            sim.set("f1", f1);
            sim.set("f2", f2);
            sim.step(); // load registers
            sim.settle();
            assert_eq!(sim.get("class"), expect, "f=({f0},{f1},{f2})");
        };
        // f0 <= 100 -> left subtree (node 1 on f1): f1 <= 50 -> leaf 0.
        check(80, 40, 0, 10);
        check(80, 60, 0, 11);
        // f0 > 100 -> right subtree (node 2 on f2).
        check(120, 0, 140, 12);
        check(120, 0, 160, 13);
    }

    #[test]
    fn area_explodes_with_depth() {
        // Table IV vs Table III: the parallel engine is ~20x bigger than
        // serial at the same depth because every node carries registers.
        let lib = CellLibrary::for_technology(Technology::Egt);
        let a = |d: usize| analyze(&generate(&ParallelTreeSpec::conventional(d)), &lib);
        let a2 = a(2);
        let a4 = a(4);
        let a6 = a(6);
        assert!(a4.area.ratio(a2.area) > 3.0);
        assert!(a6.area.ratio(a4.area) > 3.0);
        assert!(a4.dff_count > 15 * 16); // 2 8-bit registers per node
    }

    #[test]
    fn parallel_is_faster_than_depth_scaled_serial() {
        // The whole point of the parallel tree: single-cycle evaluation.
        use crate::conventional::serial_tree::{
            generate as gen_serial, SerialTreeProgram, SerialTreeSpec,
        };
        let lib = CellLibrary::for_technology(Technology::Egt);
        let d = 4;
        let par = analyze(&generate(&ParallelTreeSpec::conventional(d)), &lib);
        let spec = SerialTreeSpec::conventional(d);
        let prog = SerialTreeProgram {
            threshold_rom: vec![0; 1 << (d + 1)],
            class_rom: vec![0; 1 << d],
        };
        let ser = analyze(&gen_serial(&spec, &prog), &lib);
        // One combinational pass beats depth cycles of the serial engine.
        assert!(par.latency(1) < ser.latency(d));
    }

    #[test]
    fn gate_count_matches_full_tree_structure() {
        let spec = ParallelTreeSpec::conventional(3);
        let m = generate(&spec);
        // 7 comparators, 7 x 2 x 8 data DFFs + 8 x 5 class DFFs.
        assert_eq!(m.dff_count(), 7 * 2 * 8 + 8 * 5);
    }
}
