//! Conventional regression-SVM engines (§III-A.2, Fig. 2c, Table V).
//!
//! Fully parallel: one hardware multiplier per input feature (the paper
//! sizes for 263, arrhythmia's feature count), coefficient and feature
//! registers, an adder tree, and a nearest-class mapper built from
//! boundary registers, comparators and a thermometer encoder.

use netlist::arith::{adder_tree, multiply};
use netlist::builder::NetlistBuilder;
use netlist::comb::unsigned_gt;
use netlist::ir::{Module, Signal};

/// Structural parameters of a conventional SVM engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvmSpec {
    /// Feature / coefficient bit width (paper sweeps 4, 8, 12, 16).
    pub width: usize,
    /// Number of feature inputs and multipliers.
    pub n_features: usize,
    /// Number of class boundaries the mapper supports.
    pub n_boundaries: usize,
}

impl SvmSpec {
    /// The paper's conventional configuration: 263 features (the maximum
    /// across the benchmark datasets) and a 15-boundary class mapper.
    pub fn conventional(width: usize) -> Self {
        SvmSpec {
            width,
            n_features: 263,
            n_boundaries: 15,
        }
    }

    /// Width of the dot-product accumulator.
    pub fn sum_width(&self) -> usize {
        2 * self.width + ceil_log2(self.n_features.max(2))
    }
}

fn ceil_log2(n: usize) -> usize {
    (usize::BITS - (n - 1).leading_zeros()) as usize
}

/// Generates the conventional SVM engine.
///
/// Ports: `x{i}` feature inputs, `w{i}` coefficient-load inputs,
/// `b{c}` boundary-load inputs, and outputs `sum` (the raw dot product)
/// and `class` (thermometer count of crossed boundaries).
pub fn generate(spec: &SvmSpec) -> Module {
    generate_inner(spec, true)
}

/// Register-free variant of [`generate`]: the identical multiplier
/// array, adder tree and class mapper, but features, coefficients and
/// boundaries feed the datapath directly. The combinational core is the
/// workload the simulation throughput benchmark (`sim_bench`) replays,
/// since the batch kernels are combinational-only.
pub fn generate_combinational(spec: &SvmSpec) -> Module {
    generate_inner(spec, false)
}

fn generate_inner(spec: &SvmSpec, registered: bool) -> Module {
    let _span = obs::span("gen.conv_svm");
    let mut b = NetlistBuilder::new(format!(
        "svm_{}b{}",
        spec.width,
        if registered { "" } else { "_comb" }
    ));
    let sum_w = spec.sum_width();

    // Features and coefficients (registered in the full engine), one
    // multiplier per feature.
    let mut products = Vec::with_capacity(spec.n_features);
    for i in 0..spec.n_features {
        let x = b.input(format!("x{i}"), spec.width);
        let w = b.input(format!("w{i}"), spec.width);
        let xr = if registered { b.register(&x, 0) } else { x };
        let wr = if registered { b.register(&w, 0) } else { w };
        products.push(multiply(&mut b, &xr, &wr));
    }
    let mut sum = adder_tree(&mut b, &products);
    sum.truncate(sum_w);
    sum.resize(sum_w, Signal::ZERO);

    // Class mapper: boundaries (registered in the full engine), one
    // comparator each, and a population count of the thermometer bits.
    let mut thermometer = Vec::with_capacity(spec.n_boundaries);
    for c in 0..spec.n_boundaries {
        let bin = b.input(format!("b{c}"), sum_w);
        let boundary = if registered { b.register(&bin, 0) } else { bin };
        thermometer.push(unsigned_gt(&mut b, &sum, &boundary));
    }
    let class = popcount(&mut b, &thermometer);

    b.output("sum", &sum);
    b.output("class", &class);
    crate::record_generated(b.finish())
}

/// Population count over single-bit signals (balanced adder tree).
pub(crate) fn popcount(b: &mut NetlistBuilder, bits: &[Signal]) -> Vec<Signal> {
    assert!(!bits.is_empty(), "popcount over no bits");
    let words: Vec<Vec<Signal>> = bits.iter().map(|&s| vec![s]).collect();
    adder_tree(b, &words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::analyze;
    use netlist::sim::Simulator;
    use pdk::{CellLibrary, Technology};

    #[test]
    fn engine_computes_dot_product_and_class() {
        let spec = SvmSpec {
            width: 4,
            n_features: 3,
            n_boundaries: 2,
        };
        let m = generate(&spec);
        let mut sim = Simulator::new(&m);
        // sum = 3*5 + 2*7 + 1*4 = 33.
        for (i, (x, w)) in [(3u64, 5u64), (2, 7), (1, 4)].iter().enumerate() {
            sim.set(&format!("x{i}"), *x);
            sim.set(&format!("w{i}"), *w);
        }
        sim.set("b0", 30);
        sim.set("b1", 40);
        sim.step(); // load registers
        sim.settle();
        assert_eq!(sim.get("sum"), 33);
        assert_eq!(sim.get("class"), 1); // crossed b0 only
                                         // Push the sum over the second boundary.
        sim.set("x0", 5);
        sim.step();
        sim.settle();
        assert_eq!(sim.get("sum"), 43);
        assert_eq!(sim.get("class"), 2);
    }

    #[test]
    fn combinational_variant_matches_the_registered_engine() {
        let spec = SvmSpec {
            width: 4,
            n_features: 3,
            n_boundaries: 2,
        };
        let m = generate_combinational(&spec);
        assert!(m.is_combinational());
        let mut sim = Simulator::new(&m);
        for (i, (x, w)) in [(3u64, 5u64), (2, 7), (1, 4)].iter().enumerate() {
            sim.set(&format!("x{i}"), *x);
            sim.set(&format!("w{i}"), *w);
        }
        sim.set("b0", 30);
        sim.set("b1", 40);
        sim.settle(); // no load step: the datapath is unregistered
        assert_eq!(sim.get("sum"), 33);
        assert_eq!(sim.get("class"), 1);
    }

    #[test]
    fn popcount_counts() {
        let mut b = NetlistBuilder::new("pc");
        let x = b.input("x", 5);
        let c = popcount(&mut b, &x);
        b.output("c", &c);
        let m = b.finish();
        let mut sim = Simulator::new(&m);
        for v in 0..32u64 {
            sim.set("x", v);
            sim.settle();
            assert_eq!(sim.get("c"), v.count_ones() as u64);
        }
    }

    #[test]
    fn wider_engines_cost_more() {
        // Table V's sweep: area and power grow superlinearly with width.
        let lib = CellLibrary::for_technology(Technology::Egt);
        let cost = |w: usize| {
            analyze(
                &generate(&SvmSpec {
                    width: w,
                    n_features: 24,
                    n_boundaries: 5,
                }),
                &lib,
            )
        };
        let c4 = cost(4);
        let c8 = cost(8);
        assert!(c8.area.ratio(c4.area) > 2.0);
        assert!(c8.power.ratio(c4.power) > 2.0);
        assert!(c8.delay > c4.delay);
    }

    #[test]
    fn conventional_svm_dwarfs_conventional_trees() {
        // §III: "no conventional SVM can be powered by a printed battery".
        let lib = CellLibrary::for_technology(Technology::Egt);
        // A scaled-down conventional engine already exceeds Molex's 30 mW.
        let ppa = analyze(
            &generate(&SvmSpec {
                width: 4,
                n_features: 64,
                n_boundaries: 15,
            }),
            &lib,
        );
        assert!(ppa.power.as_mw() > 30.0, "got {}", ppa.power);
    }
}
