//! Flow-level equivalence sign-off (`repro_all --verify`).
//!
//! The paper signs off its bespoke and lookup rewrites with logic
//! equivalence checking before committing a design to foil. This module
//! is the flow-level analogue: every optimized/lookup architecture a
//! [`crate::flow::TreeFlow`] / [`crate::flow::SvmFlow`] can generate is
//! miter-checked against its *unoptimized reference* netlist (the raw
//! structural generator output, before [`netlist::optimize`] and ROM
//! folding), and the lookup tree is additionally cross-checked against
//! the bespoke tree — two independent generators that must implement the
//! same trained model. Port-shape mismatches are *reported* (not
//! panicked) so one bad architecture cannot abort a whole reproduction
//! run.

use exec::time;
use netlist::{check_equivalence, Equivalence, Module};
use serde::Serialize;

use crate::flow::{SvmArch, SvmFlow, TreeArch, TreeFlow};
use crate::lookup::LookupConfig;

/// How one sign-off check ended.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum SignoffStatus {
    /// The pair agreed on every tried vector.
    Pass,
    /// A distinguishing input vector was found (values per input port).
    CounterExample(Vec<u64>),
    /// The two netlists do not even share a port shape.
    PortMismatch(String),
}

/// One timed equivalence check of the sign-off stage.
#[derive(Debug, Clone, Serialize)]
pub struct SignoffRecord {
    /// Workload name (e.g. `"har-dt4"`).
    pub design: String,
    /// What was compared (e.g. `"bespoke-parallel vs raw"`).
    pub check: String,
    /// Verdict.
    pub status: SignoffStatus,
    /// True when the whole input space was enumerated.
    pub exhaustive: bool,
    /// Input vectors evaluated.
    pub vectors: usize,
    /// Wall-clock seconds of the check.
    pub seconds: f64,
    /// Throughput (`vectors / seconds`).
    pub vectors_per_sec: f64,
}

impl SignoffRecord {
    /// True unless a counter-example was found. A port mismatch also
    /// counts as a failure — the architectures could not be compared.
    pub fn passed(&self) -> bool {
        matches!(self.status, SignoffStatus::Pass)
    }
}

/// Runs one timed equivalence check between `reference` and `candidate`.
///
/// The underlying engine compiles the miter once and replays it over
/// 256-lane shards; in the observability report the one-off tape build
/// shows up under `netlist.sim.compile` and the settle volume under the
/// `netlist.sim.settles` / `netlist.sim.vectors` counters, so compile
/// time and simulation time are separable per check.
pub fn signoff_pair(
    design: &str,
    check: &str,
    reference: &Module,
    candidate: &Module,
    exhaustive_limit: u32,
    samples: usize,
) -> SignoffRecord {
    let _span = obs::span("core.signoff.pair");
    let (verdict, seconds) =
        time(|| check_equivalence(reference, candidate, exhaustive_limit, samples));
    let (status, exhaustive, vectors) = match verdict {
        Ok(Equivalence::Equivalent {
            vectors,
            exhaustive,
        }) => (SignoffStatus::Pass, exhaustive, vectors),
        Ok(Equivalence::CounterExample(v)) => (SignoffStatus::CounterExample(v), false, 0),
        Err(err) => (SignoffStatus::PortMismatch(err.to_string()), false, 0),
    };
    SignoffRecord {
        design: design.to_string(),
        check: check.to_string(),
        status,
        exhaustive,
        vectors,
        seconds,
        vectors_per_sec: if seconds > 0.0 {
            vectors as f64 / seconds
        } else {
            0.0
        },
    }
}

impl TreeFlow {
    /// Equivalence sign-off of every optimized/lookup tree architecture:
    /// each against its unoptimized reference, plus the lookup engine
    /// against the bespoke engine (independent generators, same model).
    pub fn signoff(&self, exhaustive_limit: u32, samples: usize) -> Vec<SignoffRecord> {
        let design = format!("{}-dt{}", self.app.name(), self.depth);
        let bespoke = self.module(TreeArch::BespokeParallel).expect("digital");
        let mut records = vec![signoff_pair(
            &design,
            "bespoke-parallel vs raw",
            &crate::bespoke::bespoke_parallel_raw(&self.qt),
            &bespoke,
            exhaustive_limit,
            samples,
        )];
        let mut optimized_lookup = None;
        for (tag, config) in [
            ("lookup-baseline", LookupConfig::baseline()),
            ("lookup-optimized", LookupConfig::optimized()),
        ] {
            let lookup = self.module(TreeArch::Lookup(config)).expect("digital");
            records.push(signoff_pair(
                &design,
                &format!("{tag} vs raw"),
                &crate::lookup::lookup_parallel_raw(&self.qt, config),
                &lookup,
                exhaustive_limit,
                samples,
            ));
            optimized_lookup = Some(lookup);
        }
        // The loop above ends on the optimized config; reuse that module
        // for the cross-check instead of regenerating it.
        let lookup = optimized_lookup.expect("loop ran");
        records.push(signoff_pair(
            &design,
            "lookup vs bespoke",
            &bespoke,
            &lookup,
            exhaustive_limit,
            samples,
        ));
        records
    }
}

impl SvmFlow {
    /// Equivalence sign-off of every optimized/lookup SVM architecture
    /// against its unoptimized reference.
    pub fn signoff(&self, exhaustive_limit: u32, samples: usize) -> Vec<SignoffRecord> {
        let design = format!("{}-svm", self.app.name());
        let mut records = vec![signoff_pair(
            &design,
            "bespoke vs raw",
            &crate::bespoke::bespoke_svm_raw(&self.qs),
            &self.module(SvmArch::Bespoke).expect("digital"),
            exhaustive_limit,
            samples,
        )];
        for (tag, config) in [
            ("lookup-baseline", LookupConfig::baseline()),
            ("lookup-optimized", LookupConfig::optimized()),
        ] {
            records.push(signoff_pair(
                &design,
                &format!("{tag} vs raw"),
                &crate::lookup::lookup_svm_raw(&self.qs, config),
                &self.module(SvmArch::Lookup(config)).expect("digital"),
                exhaustive_limit,
                samples,
            ));
        }
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml::synth::Application;

    #[test]
    fn tree_signoff_passes_on_a_real_workload() {
        let flow = TreeFlow::new(Application::Har, 3, 7);
        let records = flow.signoff(16, 400);
        assert_eq!(records.len(), 4);
        for r in &records {
            assert!(r.passed(), "{}: {} -> {:?}", r.design, r.check, r.status);
            assert!(r.vectors > 0);
        }
    }

    #[test]
    fn svm_signoff_passes_on_a_real_workload() {
        let flow = SvmFlow::new(Application::RedWine, 7);
        let records = flow.signoff(16, 200);
        assert_eq!(records.len(), 3);
        for r in &records {
            assert!(r.passed(), "{}: {} -> {:?}", r.design, r.check, r.status);
        }
    }

    #[test]
    fn divergent_modules_report_a_counterexample_not_a_panic() {
        use netlist::NetlistBuilder;
        let build = |tau: u64| {
            let mut b = NetlistBuilder::new("n");
            let x = b.input("x", 4);
            let t = b.const_word(tau, 4);
            let le = netlist::comb::unsigned_le(&mut b, &x, &t);
            b.output("le", &[le]);
            b.finish()
        };
        let r = signoff_pair("t", "a vs b", &build(3), &build(9), 8, 0);
        assert!(!r.passed());
        assert!(matches!(r.status, SignoffStatus::CounterExample(_)));
    }

    #[test]
    fn mismatched_shapes_are_reported_as_such() {
        use netlist::NetlistBuilder;
        let mut b1 = NetlistBuilder::new("a");
        let x = b1.input("x", 2);
        b1.output("o", &[x[0]]);
        let mut b2 = NetlistBuilder::new("b");
        let y = b2.input("x", 3);
        b2.output("o", &[y[0]]);
        let r = signoff_pair("t", "a vs b", &b1.finish(), &b2.finish(), 8, 0);
        assert!(matches!(r.status, SignoffStatus::PortMismatch(_)));
    }
}
