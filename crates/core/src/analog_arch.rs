//! Analog architectures wrapped into the common reporting interface
//! (§VI, Figs. 16 and 17).
//!
//! The analog designs live in the `analog` crate (device models, Kirchhoff
//! solvers, transient simulation); this module prices them as
//! [`DesignReport`]s so they slot into the same comparisons as the digital
//! architectures. Analog classifiers are an EGT story — the paper
//! fabricates and evaluates them in EGT only.

use analog::tree::{AnalogTree, AnalogTreeConfig};
use analog::AnalogSvm;
use ml::quant::{QuantizedSvm, QuantizedTree};
use pdk::units::{Area, Power};
use pdk::Technology;

use crate::report::DesignReport;

/// Prices an analog decision tree.
pub fn analog_tree_report(tree: &QuantizedTree, config: AnalogTreeConfig) -> DesignReport {
    let at = AnalogTree::from_tree(tree, config);
    DesignReport {
        name: format!("analog-tree-d{}", tree.depth()),
        technology: Technology::Egt,
        latency: at.latency(),
        area: at.area(),
        power: at.static_power(),
        logic_area: at.area(),
        memory_area: Area::ZERO,
        logic_power: at.static_power(),
        memory_power: Power::ZERO,
        gate_count: 0,
        cycles: 1,
        transistors: at.transistor_count(),
    }
}

/// Prices an analog SVM engine.
pub fn analog_svm_report(svm: &QuantizedSvm, n_features: usize) -> DesignReport {
    let asvm = AnalogSvm::from_svm(svm, n_features);
    DesignReport {
        name: "analog-svm".into(),
        technology: Technology::Egt,
        latency: asvm.latency(),
        area: asvm.area(),
        power: asvm.static_power(),
        logic_area: asvm.area(),
        memory_area: Area::ZERO,
        logic_power: asvm.static_power(),
        memory_power: Power::ZERO,
        gate_count: 0,
        cycles: 1,
        transistors: asvm.transistor_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bespoke::{bespoke_parallel, bespoke_svm};
    use crate::report::report_from_ppa;
    use ml::data::Standardizer;
    use ml::quant::FeatureQuantizer;
    use ml::synth::Application;
    use ml::tree::{DecisionTree, TreeParams};
    use ml::SvmRegressor;
    use netlist::analyze;
    use pdk::CellLibrary;

    #[test]
    fn analog_tree_dominates_digital_bespoke_in_area_and_power() {
        // Fig. 16: 437× area, 27× power, ~1.6× slower (EGT averages).
        // Band check: two orders of magnitude in area, one in power,
        // slower in latency.
        let data = Application::Pendigits.generate(7);
        let (train, _) = data.split(0.7, 42);
        let tree = DecisionTree::fit(&train, TreeParams::with_depth(8));
        let fq = FeatureQuantizer::fit(&train, 8);
        let qt = QuantizedTree::from_tree(&tree, &fq);
        let lib = CellLibrary::for_technology(Technology::Egt);
        let digital = report_from_ppa(
            "bespoke",
            Technology::Egt,
            &analyze(&bespoke_parallel(&qt), &lib),
            1,
        );
        let analog = analog_tree_report(&qt, AnalogTreeConfig::default());
        let imp = analog.improvement_over(&digital);
        assert!(imp.area > 50.0, "area improvement {}", imp.area);
        assert!(imp.power > 5.0, "power improvement {}", imp.power);
        assert!(
            imp.delay < 1.0,
            "analog should be slower, got {}",
            imp.delay
        );
        assert!(analog.transistors > 0);
    }

    #[test]
    fn analog_svm_dominates_digital_bespoke() {
        // Fig. 17: 490× area, 12× power, ~1.3× slower (EGT averages).
        let data = Application::RedWine.generate(7);
        let (train, _) = data.split(0.7, 42);
        let s = Standardizer::fit(&train);
        let train = s.transform(&train);
        let svm = SvmRegressor::fit(&train, 200, 1e-4);
        let fq = FeatureQuantizer::fit(&train, 8);
        let qs = QuantizedSvm::from_svm(&svm, &fq);
        let lib = CellLibrary::for_technology(Technology::Egt);
        let digital = report_from_ppa(
            "bespoke",
            Technology::Egt,
            &analyze(&bespoke_svm(&qs), &lib),
            1,
        );
        let analog = analog_svm_report(&qs, 11);
        let imp = analog.improvement_over(&digital);
        assert!(imp.area > 50.0, "area improvement {}", imp.area);
        assert!(imp.power > 3.0, "power improvement {}", imp.power);
        assert!(
            imp.delay < 1.0,
            "analog should be slower, got {}",
            imp.delay
        );
    }

    #[test]
    fn analog_designs_are_harvester_class() {
        // Fig. 19: "Harvesters are now capable of powering several
        // decision trees."
        let data = Application::Har.generate(7);
        let (train, _) = data.split(0.7, 42);
        let tree = DecisionTree::fit(&train, TreeParams::with_depth(4));
        let fq = FeatureQuantizer::fit(&train, 4);
        let qt = QuantizedTree::from_tree(&tree, &fq);
        let report = analog_tree_report(&qt, AnalogTreeConfig::default());
        let f = report.feasibility();
        assert!(f.is_powerable());
        assert!(
            f.source_name().contains("harvester") || f.source_name().contains("Harvester"),
            "expected a harvester, got {}",
            f.source_name()
        );
    }
}
