//! Power-source feasibility set assignment (Figs. 3 and 19).
//!
//! The paper places each classifier design into the set of the weakest
//! printed power source that can supply it, and draws two conclusions:
//! no conventional EGT classifier fits *any* printed source comfortably
//! (Fig. 3), while bespoke/lookup/analog designs mostly do (Fig. 19), with
//! the required source depending on the dataset.

use pdk::power_src::Feasibility;

use crate::report::DesignReport;

/// One row of a feasibility figure.
#[derive(Debug, Clone)]
pub struct PowerFitRow {
    /// Design name.
    pub design: String,
    /// Peak power demand in mW.
    pub power_mw: f64,
    /// Weakest adequate source (or unpowerable).
    pub feasibility: Feasibility,
}

/// Assigns every report to its feasibility set.
pub fn assign_sets(reports: &[DesignReport]) -> Vec<PowerFitRow> {
    reports
        .iter()
        .map(|r| PowerFitRow {
            design: r.name.clone(),
            power_mw: r.power.as_mw(),
            feasibility: r.feasibility(),
        })
        .collect()
}

/// Counts how many designs each source (by name) ends up powering, in
/// ladder order, with `"none"` last. Useful for summarizing a whole
/// figure.
pub fn summarize(rows: &[PowerFitRow]) -> Vec<(&'static str, usize)> {
    let mut order: Vec<&'static str> = pdk::PowerSource::ladder().iter().map(|s| s.name).collect();
    order.push("none");
    order
        .into_iter()
        .map(|name| {
            let count = rows
                .iter()
                .filter(|r| r.feasibility.source_name() == name)
                .count();
            (name, count)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{TreeArch, TreeFlow};
    use analog::tree::AnalogTreeConfig;
    use ml::synth::Application;
    use pdk::Technology;

    #[test]
    fn optimized_designs_are_powerable_conventional_mostly_not() {
        let flow = TreeFlow::new(Application::Cardio, 4, 7);
        let conv = flow.report(TreeArch::ConventionalParallel, Technology::Egt);
        let besp = flow.report(TreeArch::BespokeParallel, Technology::Egt);
        let analog = flow.report(
            TreeArch::Analog(AnalogTreeConfig::default()),
            Technology::Egt,
        );
        let rows = assign_sets(&[conv, besp, analog]);
        // Conventional parallel DT-4 exceeds every printed source (Fig. 3).
        assert!(!rows[0].feasibility.is_powerable(), "{:?}", rows[0]);
        // Bespoke and analog designs fit somewhere on the ladder (Fig. 19).
        assert!(rows[1].feasibility.is_powerable());
        assert!(rows[2].feasibility.is_powerable());
        let summary = summarize(&rows);
        let total: usize = summary.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 3);
    }
}
