//! Op-count based cost projection (§III's algorithm screening).
//!
//! Before generating any hardware, the paper screens classification
//! algorithms by counting their dominant operations (Table II's `#C`/`#M`)
//! and pricing them with Table I's component costs. That projection — not
//! a synthesized design — is what rules out MLPs, LR and SVM-C for printed
//! technologies ("21 to 2250 cm² and 0.078 to 8.2 W in EGT … likely
//! prohibitive").

use ml::opcount::OpCount;
use netlist::arith::{add, multiply, relu};
use netlist::builder::NetlistBuilder;
use netlist::comb::unsigned_gt;
use netlist::{analyze, Ppa};
use pdk::units::{Area, Delay, Power};
use pdk::{CellLibrary, Technology};

/// Per-component PPA in one technology (an in-code Table I row).
#[derive(Debug, Clone, Copy)]
pub struct ComponentCosts {
    /// 8-bit magnitude comparator.
    pub comparator: Ppa,
    /// 8-bit two-input multiply-accumulate.
    pub mac: Ppa,
    /// 8-bit ReLU.
    pub relu: Ppa,
}

impl ComponentCosts {
    /// Synthesizes and prices the three Table I components in `tech`.
    pub fn for_technology(tech: Technology) -> Self {
        let lib = CellLibrary::for_technology(tech);
        let comparator = {
            let mut b = NetlistBuilder::new("cmp");
            let a = b.input("a", 8);
            let bb = b.input("b", 8);
            let o = unsigned_gt(&mut b, &a, &bb);
            b.output("o", &[o]);
            analyze(&b.finish(), &lib)
        };
        let mac = {
            let mut b = NetlistBuilder::new("mac");
            let a = b.input("a", 8);
            let bb = b.input("b", 8);
            let acc = b.input("acc", 16);
            let p = multiply(&mut b, &a, &bb);
            let s = add(&mut b, &p, &acc);
            b.output("o", &s);
            analyze(&b.finish(), &lib)
        };
        let relu_ppa = {
            let mut b = NetlistBuilder::new("relu");
            let x = b.input("x", 8);
            let y = relu(&mut b, &x);
            b.output("y", &y);
            analyze(&b.finish(), &lib)
        };
        ComponentCosts {
            comparator,
            mac,
            relu: relu_ppa,
        }
    }
}

/// A projected (not synthesized) hardware cost.
#[derive(Debug, Clone, Copy)]
pub struct CostEstimate {
    /// Sum of component areas (fully parallel implementation).
    pub area: Area,
    /// Sum of component static powers.
    pub power: Power,
    /// Critical-path style latency: one comparator + one MAC + one ReLU
    /// stage, whichever are present (the paper's screening treats latency
    /// as secondary).
    pub latency: Delay,
}

impl CostEstimate {
    /// True when the projection exceeds what any printed source delivers —
    /// the paper's "likely prohibitive" verdict.
    pub fn is_prohibitive_in_print(&self) -> bool {
        !pdk::classify(self.power).is_powerable()
    }
}

/// Projects the cost of a model with `ops` dominant operations in `tech`,
/// assuming one hardware unit per operation (maximal parallelism, like the
/// paper's conventional engines).
pub fn estimate(ops: &OpCount, costs: &ComponentCosts) -> CostEstimate {
    let area = costs.comparator.area * ops.comparisons as f64
        + costs.mac.area * ops.macs as f64
        + costs.relu.area * ops.relus as f64;
    let power = costs.comparator.power * ops.comparisons as f64
        + costs.mac.power * ops.macs as f64
        + costs.relu.power * ops.relus as f64;
    let mut latency = Delay::ZERO;
    if ops.comparisons > 0 {
        latency = latency.max(costs.comparator.delay);
    }
    if ops.macs > 0 {
        // A dot product of n MACs has ~log2(n) accumulation stages.
        let stages = 1.0 + (ops.macs as f64).log2().max(0.0);
        latency += costs.mac.delay * stages;
    }
    if ops.relus > 0 {
        latency += costs.relu.delay;
    }
    CostEstimate {
        area,
        power,
        latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml::opcount::CountOps;
    use ml::synth::Application;
    use ml::{LogisticRegression, SvmRegressor};

    #[test]
    fn component_costs_reflect_table_i_ordering() {
        let egt = ComponentCosts::for_technology(Technology::Egt);
        assert!(egt.mac.area.ratio(egt.comparator.area) > 4.0);
        assert!(egt.relu.area < egt.comparator.area);
    }

    #[test]
    fn lr_on_arrhythmia_is_prohibitive_in_egt() {
        // §III: LR on arrhythmia needs 2893 MACs — "likely prohibitive".
        let data = Application::Arrhythmia.generate(7);
        let lr = LogisticRegression::fit(&data, 1, 0.1);
        let costs = ComponentCosts::for_technology(Technology::Egt);
        let est = estimate(&lr.op_count(), &costs);
        assert!(est.is_prohibitive_in_print(), "power {}", est.power);
        // "21 to 2250 cm2": arrhythmia LR sits in that band.
        assert!(est.area.as_cm2() > 100.0, "area {}", est.area);
    }

    #[test]
    fn the_same_lr_is_fine_in_silicon() {
        // §III: "even as the corresponding area and power overheads in
        // silicon … are most likely acceptable."
        let data = Application::Arrhythmia.generate(7);
        let lr = LogisticRegression::fit(&data, 1, 0.1);
        let costs = ComponentCosts::for_technology(Technology::Tsmc40);
        let est = estimate(&lr.op_count(), &costs);
        assert!(est.area.as_mm2() < 10.0, "area {}", est.area);
    }

    #[test]
    fn svm_r_projection_is_much_cheaper_than_lr() {
        // §III: "SVM-Rs have higher hardware cost than most Decision
        // Trees, but still much lower cost than other classifiers."
        let data = Application::Arrhythmia.generate(7);
        let lr = LogisticRegression::fit(&data, 1, 0.1);
        let svm = SvmRegressor::fit(&data, 1, 1e-4);
        let costs = ComponentCosts::for_technology(Technology::Egt);
        let lr_est = estimate(&lr.op_count(), &costs);
        let svm_est = estimate(&svm.op_count(), &costs);
        assert!(lr_est.area.ratio(svm_est.area) > 5.0);
    }

    #[test]
    fn empty_op_count_costs_nothing() {
        let costs = ComponentCosts::for_technology(Technology::Egt);
        let est = estimate(&OpCount::default(), &costs);
        assert!(est.area.is_zero());
        assert!(est.power.is_zero());
        assert!(est.latency.as_secs() == 0.0);
    }
}
