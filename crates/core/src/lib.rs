#![warn(missing_docs)]

//! # printed-core — the paper's contribution: printed classifier
//! architecture generators
//!
//! This crate reproduces the architecture space of *Printed Machine
//! Learning Classifiers* (MICRO 2020) on top of the `pdk`, `netlist`,
//! `ml` and `analog` substrates:
//!
//! * [`conventional`] — general-purpose serial/parallel decision trees and
//!   SVM engines (Tables III–V baselines);
//! * [`bespoke`] — per-model hardwired designs (§IV): trained thresholds,
//!   coefficients and class labels baked into logic, registers deleted,
//!   constants folded;
//! * [`lookup`] — comparators/multipliers replaced by shared-decoder
//!   crossbar LUTs, with constant-column elimination and bespoke
//!   dot-resistor arrays (§V);
//! * [`analog_arch`] — analog trees and crossbar SVMs priced through the
//!   common interface (§VI);
//! * [`bitwidth`] — the §IV-A 4/8/12/16-bit datapath search;
//! * [`flow`] — one-stop train → quantize → generate → price pipelines;
//! * [`report`] / [`powerfit`] — PPA reports, improvement ratios and the
//!   Fig. 3 / Fig. 19 power-source feasibility sets.
//!
//! ```
//! use printed_core::flow::{TreeArch, TreeFlow};
//! use ml::synth::Application;
//! use pdk::Technology;
//!
//! let flow = TreeFlow::new(Application::Har, 2, 7);
//! let conv = flow.report(TreeArch::ConventionalParallel, Technology::Egt);
//! let besp = flow.report(TreeArch::BespokeParallel, Technology::Egt);
//! let gain = besp.improvement_over(&conv);
//! assert!(gain.area > 1.0); // bespoke always wins on area
//! ```

pub mod analog_arch;
pub mod bespoke;
pub mod bitwidth;
pub mod conventional;
pub mod ensemble;
pub mod estimate;
pub mod export;
pub mod extension;
pub mod flow;
pub mod lookup;
pub mod powerfit;
pub mod report;
pub mod signoff;
pub mod system;

/// Tallies one generated module into the obs metrics registry.
///
/// Every architecture generator funnels its finished [`netlist::Module`]
/// through here so `gen.modules` / `gen.gates` count the whole run.
pub(crate) fn record_generated(m: netlist::Module) -> netlist::Module {
    obs::counter_add("gen.modules", 1);
    obs::counter_add("gen.gates", m.gates.len() as u64);
    m
}

pub use bitwidth::{choose_svm_width, choose_tree_width, WidthChoice, WIDTHS};
pub use ensemble::{bespoke_forest, forest_engine, ForestStyle};
pub use estimate::{estimate, ComponentCosts, CostEstimate};
pub use export::{export_design, ExportManifest};
pub use extension::{serial_svm, SerialSvmInfo};
pub use flow::{ForestFlow, SvmArch, SvmFlow, TreeArch, TreeFlow};
pub use lookup::LookupConfig;
pub use report::{report_from_ppa, DesignReport, Improvement};
pub use signoff::{signoff_pair, SignoffRecord, SignoffStatus};
pub use system::{Adc, ClassifierSystem, FeatureExtraction, Sensor};
