//! Lookup-based SVMs (§V-A, Figs. 8, 12, 13).
//!
//! Each constant-coefficient multiplier of the bespoke SVM becomes a ROM
//! mapping the feature code to the product `m · code`. Every feature is
//! used exactly once, so there is no decoder sharing — which is why plain
//! lookup SVMs show no benefit (Fig. 12) — but the printing-specific
//! optimizations change the picture (Fig. 13): product tables are full of
//! constant columns (trailing zeros of even coefficients, unused high
//! bits) and dot-resistor arrays only pay for set bits.

use ml::quant::QuantizedSvm;
use netlist::arith::{add, adder_tree};
use netlist::builder::NetlistBuilder;
use netlist::comb::unsigned_gt;
use netlist::ir::{Module, Signal};
use netlist::optimize;

use super::{emit_lut, LookupConfig};
use crate::conventional::svm::popcount;

/// Generates the lookup-based SVM engine (post-optimization).
///
/// Ports match [`crate::bespoke::svm::bespoke_svm`]: `x{f}` inputs,
/// `class` and `therm` outputs.
pub fn lookup_svm(svm: &QuantizedSvm, config: LookupConfig) -> Module {
    let _span = obs::span("gen.lookup_svm");
    crate::record_generated(optimize(&lookup_svm_raw(svm, config)))
}

/// The unoptimized lookup-based SVM engine — the sign-off *reference* the
/// `--verify` flow equivalence-checks [`lookup_svm`]'s rewritten netlist
/// against.
pub fn lookup_svm_raw(svm: &QuantizedSvm, config: LookupConfig) -> Module {
    let mut b = NetlistBuilder::new("lookup_svm");
    let width = svm.bits();
    let words = 1usize << width;

    let mut live: Vec<usize> = svm
        .pos_terms()
        .iter()
        .chain(svm.neg_terms())
        .map(|&(f, _)| f)
        .collect();
    live.sort_unstable();
    live.dedup();
    let ports: std::collections::HashMap<usize, Vec<Signal>> = live
        .iter()
        .map(|&f| (f, b.input(format!("x{f}"), width)))
        .collect();

    let max_code: u128 = (1u128 << width) - 1;
    let max_p: u128 = svm
        .pos_terms()
        .iter()
        .map(|&(_, m)| m as u128 * max_code)
        .sum();
    let max_n: u128 = svm
        .neg_terms()
        .iter()
        .map(|&(_, m)| m as u128 * max_code)
        .sum();
    let max_b: u128 = svm
        .boundaries()
        .iter()
        .map(|&v| v.unsigned_abs() as u128)
        .max()
        .unwrap_or(0);
    let max_val = max_p.max(max_n + max_b).max(1);
    let cmp_width = (128 - max_val.leading_zeros() as usize) + 1;

    // Product LUT per term: addr = feature code, data = m * code.
    let product_lut = |b: &mut NetlistBuilder, f: usize, m: u64| -> Vec<Signal> {
        let bits = (64 - (m * (words as u64 - 1)).leading_zeros() as usize).max(1);
        let contents: Vec<u64> = (0..words as u64).map(|code| m * code).collect();
        emit_lut(b, &ports[&f], &contents, bits, config)
    };
    let tree_for = |b: &mut NetlistBuilder, terms: &[(usize, u64)]| -> Vec<Signal> {
        if terms.is_empty() {
            return b.const_word(0, cmp_width);
        }
        let products: Vec<Vec<Signal>> = terms.iter().map(|&(f, m)| product_lut(b, f, m)).collect();
        let mut sum = adder_tree(b, &products);
        sum.resize(cmp_width, Signal::ZERO);
        sum
    };
    let p = tree_for(&mut b, svm.pos_terms());
    let n = tree_for(&mut b, svm.neg_terms());

    let mut therm = Vec::with_capacity(svm.boundaries().len());
    for &boundary in svm.boundaries() {
        let t = if boundary >= 0 {
            let bconst = b.const_word(boundary as u64, cmp_width);
            let mut rhs = add(&mut b, &n, &bconst);
            rhs.resize(cmp_width + 1, Signal::ZERO);
            let mut lhs = p.clone();
            lhs.resize(cmp_width + 1, Signal::ZERO);
            unsigned_gt(&mut b, &lhs, &rhs)
        } else {
            let bconst = b.const_word(boundary.unsigned_abs(), cmp_width);
            let mut lhs = add(&mut b, &p, &bconst);
            lhs.resize(cmp_width + 1, Signal::ZERO);
            let mut rhs = n.clone();
            rhs.resize(cmp_width + 1, Signal::ZERO);
            unsigned_gt(&mut b, &lhs, &rhs)
        };
        therm.push(t);
    }

    let class = if therm.is_empty() {
        b.const_word(0, 1)
    } else {
        popcount(&mut b, &therm)
    };
    b.output("class", &class);
    let therm_out = if therm.is_empty() {
        vec![Signal::ZERO]
    } else {
        therm
    };
    b.output("therm", &therm_out);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bespoke::svm::bespoke_svm;
    use ml::data::Standardizer;
    use ml::quant::FeatureQuantizer;
    use ml::synth::Application;
    use ml::SvmRegressor;
    use netlist::analyze;
    use netlist::sim::Simulator;
    use pdk::{CellLibrary, Technology};

    fn setup(app: Application, bits: usize) -> (QuantizedSvm, FeatureQuantizer, ml::Dataset) {
        let data = app.generate(7);
        let (train, test) = data.split(0.7, 42);
        let s = Standardizer::fit(&train);
        let (train, test) = (s.transform(&train), s.transform(&test));
        let svm = SvmRegressor::fit(&train, 200, 1e-4);
        let fq = FeatureQuantizer::fit(&train, bits);
        (QuantizedSvm::from_svm(&svm, &fq), fq, test)
    }

    fn check_equivalence(app: Application, bits: usize, config: LookupConfig) {
        let (qs, fq, test) = setup(app, bits);
        let module = lookup_svm(&qs, config);
        let mut sim = Simulator::new(&module);
        for row in test.x.iter().take(80) {
            let codes = fq.code_row(row);
            for &(f, _) in qs.pos_terms().iter().chain(qs.neg_terms()) {
                sim.set(&format!("x{f}"), codes[f]);
            }
            sim.settle();
            assert_eq!(sim.get("class") as usize, qs.predict(&codes));
        }
    }

    #[test]
    fn lookup_svm_matches_software_svm() {
        check_equivalence(Application::RedWine, 6, LookupConfig::baseline());
        check_equivalence(Application::RedWine, 6, LookupConfig::optimized());
        check_equivalence(Application::Har, 4, LookupConfig::optimized());
    }

    #[test]
    fn plain_lookup_svm_shows_no_benefit() {
        // Fig. 12: without decoder sharing, ROM multipliers lose to
        // constant shift-add multipliers.
        let lib = CellLibrary::for_technology(Technology::Egt);
        let (qs, _, _) = setup(Application::RedWine, 8);
        let besp = analyze(&bespoke_svm(&qs), &lib);
        let lut = analyze(&lookup_svm(&qs, LookupConfig::baseline()), &lib);
        assert!(
            lut.area >= besp.area,
            "baseline lookup should not beat bespoke"
        );
    }

    #[test]
    fn optimizations_recover_lookup_svm_benefits() {
        // Fig. 13: constant columns + dots bring lookup SVMs to parity or
        // better for narrow widths.
        let lib = CellLibrary::for_technology(Technology::Egt);
        let (qs, _, _) = setup(Application::Har, 4);
        let base = analyze(&lookup_svm(&qs, LookupConfig::baseline()), &lib);
        let opt = analyze(&lookup_svm(&qs, LookupConfig::optimized()), &lib);
        assert!(opt.area < base.area);
        assert!(opt.power < base.power);
    }

    #[test]
    fn product_tables_have_constant_columns_to_harvest() {
        // The optimization hook: even coefficients give constant-zero LSB
        // columns, so the optimized build must carry fewer ROM data bits.
        let (qs, _, _) = setup(Application::RedWine, 6);
        let base = lookup_svm(&qs, LookupConfig::baseline());
        let opt = lookup_svm(&qs, LookupConfig::optimized());
        let bits = |m: &netlist::Module| -> usize { m.roms.iter().map(|r| r.data.len()).sum() };
        assert!(bits(&opt) <= bits(&base));
    }
}
