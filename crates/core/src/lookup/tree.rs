//! Lookup-based maximally parallel decision trees (§V-A, Figs. 8–10).
//!
//! Every comparator of the bespoke parallel tree is replaced by one column
//! of a per-feature lookup table: all nodes that test feature `f` share a
//! single ROM addressed by `f`'s code, so the expensive decoder is paid
//! once per feature ("decoder reuse"). Shallow trees have too little
//! sharing to win; deep trees amortize beautifully — exactly Fig. 9's
//! pattern.

use std::collections::HashMap;

use ml::quant::{QNode, QuantizedTree};
use netlist::builder::NetlistBuilder;
use netlist::ir::{Module, Signal};
use netlist::optimize;

use super::{emit_lut, LookupConfig};

fn ceil_log2(n: usize) -> usize {
    if n <= 2 {
        1
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

/// Generates the lookup-based parallel tree (post-optimization).
///
/// Ports are identical to
/// [`crate::bespoke::parallel_tree::bespoke_parallel`]: `f{slot}` per used
/// feature and a `class` output.
pub fn lookup_parallel(tree: &QuantizedTree, config: LookupConfig) -> Module {
    let _span = obs::span("gen.lookup_parallel_tree");
    crate::record_generated(optimize(&lookup_parallel_raw(tree, config)))
}

/// The unoptimized lookup-based parallel tree — the sign-off *reference*
/// the `--verify` flow equivalence-checks [`lookup_parallel`]'s rewritten
/// netlist against.
pub fn lookup_parallel_raw(tree: &QuantizedTree, config: LookupConfig) -> Module {
    let mut b = NetlistBuilder::new("lookup_parallel_tree");
    let used = tree.used_features();
    let feature_ports: Vec<Vec<Signal>> = used
        .iter()
        .enumerate()
        .map(|(slot, _)| b.input(format!("f{slot}"), tree.bits()))
        .collect();
    let class_bits = ceil_log2(tree.n_classes());
    let words = 1usize << tree.bits();

    // Group split nodes by feature: (node index -> column) per feature.
    let mut groups: HashMap<usize, Vec<(usize, u64)>> = HashMap::new();
    for (i, node) in tree.nodes().iter().enumerate() {
        if let QNode::Split {
            feature, threshold, ..
        } = node
        {
            groups.entry(*feature).or_default().push((i, *threshold));
        }
    }

    // One shared-decoder LUT per feature; column j of feature f's table
    // stores `code > τ_j` for that feature's j-th node.
    let mut decision: HashMap<usize, Signal> = HashMap::new();
    let mut features_sorted: Vec<(&usize, &Vec<(usize, u64)>)> = groups.iter().collect();
    features_sorted.sort_by_key(|(f, _)| **f);
    for (feature, nodes) in features_sorted {
        let slot = used
            .iter()
            .position(|f| f == feature)
            .expect("used feature");
        // ROM words carry at most 64 columns; chunk very popular features
        // (each chunk still shares one decoder).
        for chunk in nodes.chunks(64) {
            let contents: Vec<u64> = (0..words as u64)
                .map(|code| {
                    chunk.iter().enumerate().fold(0u64, |acc, (j, &(_, tau))| {
                        acc | (((code > tau) as u64) << j)
                    })
                })
                .collect();
            let outs = emit_lut(&mut b, &feature_ports[slot], &contents, chunk.len(), config);
            for (j, &(node_idx, _)) in chunk.iter().enumerate() {
                decision.insert(node_idx, outs[j]);
            }
        }
    }

    // Class selection mux tree steered by the LUT outputs.
    fn emit(
        b: &mut NetlistBuilder,
        tree: &QuantizedTree,
        node: usize,
        decision: &HashMap<usize, Signal>,
        class_bits: usize,
    ) -> Vec<Signal> {
        match &tree.nodes()[node] {
            QNode::Leaf { class } => b.const_word(*class as u64, class_bits),
            QNode::Split { left, right, .. } => {
                let r = decision[&node];
                let l = emit(b, tree, *left, decision, class_bits);
                let rgt = emit(b, tree, *right, decision, class_bits);
                b.push_region("select");
                let out = b.mux_word(r, &l, &rgt);
                b.pop_region();
                out
            }
        }
    }
    let class = emit(&mut b, tree, 0, &decision, class_bits);
    b.output("class", &class);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bespoke::parallel_tree::bespoke_parallel;
    use ml::quant::FeatureQuantizer;
    use ml::synth::Application;
    use ml::tree::{DecisionTree, TreeParams};
    use netlist::analyze;
    use netlist::sim::Simulator;
    use pdk::{CellLibrary, Technology};

    fn setup(
        app: Application,
        depth: usize,
        bits: usize,
    ) -> (QuantizedTree, FeatureQuantizer, ml::Dataset) {
        let data = app.generate(7);
        let (train, test) = data.split(0.7, 42);
        let tree = DecisionTree::fit(&train, TreeParams::with_depth(depth));
        let fq = FeatureQuantizer::fit(&train, bits);
        (QuantizedTree::from_tree(&tree, &fq), fq, test)
    }

    fn check_equivalence(app: Application, depth: usize, bits: usize, config: LookupConfig) {
        let (qt, fq, test) = setup(app, depth, bits);
        let module = lookup_parallel(&qt, config);
        let mut sim = Simulator::new(&module);
        let used = qt.used_features();
        for row in test.x.iter().take(100) {
            let codes = fq.code_row(row);
            for (slot, &f) in used.iter().enumerate() {
                sim.set(&format!("f{slot}"), codes[f]);
            }
            sim.settle();
            assert_eq!(sim.get("class") as usize, qt.predict(&codes));
        }
    }

    #[test]
    fn lookup_tree_matches_software_tree() {
        check_equivalence(Application::Pendigits, 6, 4, LookupConfig::baseline());
        check_equivalence(Application::Pendigits, 6, 4, LookupConfig::optimized());
        check_equivalence(Application::Cardio, 4, 8, LookupConfig::optimized());
    }

    #[test]
    fn deep_trees_benefit_shallow_trees_do_not() {
        // Fig. 9's pattern: decoder reuse needs many comparisons per
        // feature.
        let lib = CellLibrary::for_technology(Technology::Egt);
        let (deep, _, _) = setup(Application::Pendigits, 8, 4);
        let (shallow, _, _) = setup(Application::Pendigits, 1, 4);
        let ratio = |qt: &QuantizedTree| {
            let besp = analyze(&bespoke_parallel(qt), &lib);
            let lut = analyze(&lookup_parallel(qt, LookupConfig::optimized()), &lib);
            besp.area.ratio(lut.area)
        };
        let deep_gain = ratio(&deep);
        let shallow_gain = ratio(&shallow);
        assert!(
            deep_gain > shallow_gain,
            "deep {deep_gain} vs shallow {shallow_gain}"
        );
        assert!(deep_gain > 1.0, "deep trees should win: {deep_gain}");
        assert!(
            shallow_gain < 1.0,
            "shallow trees should lose: {shallow_gain}"
        );
    }

    #[test]
    fn optimizations_improve_on_baseline_lookup() {
        // Fig. 10 vs Fig. 9: dots + constant columns increase the area
        // benefit.
        let lib = CellLibrary::for_technology(Technology::Egt);
        let (qt, _, _) = setup(Application::Pendigits, 8, 4);
        let base = analyze(&lookup_parallel(&qt, LookupConfig::baseline()), &lib);
        let opt = analyze(&lookup_parallel(&qt, LookupConfig::optimized()), &lib);
        assert!(opt.area < base.area, "opt {} base {}", opt.area, base.area);
        assert!(opt.power <= base.power);
    }

    #[test]
    fn cnt_lookup_saves_power_but_explodes_area() {
        // §V-A: CNT ROM bits are larger than CNT logic but cheaper in
        // power → lookup trees in CNT trade 69× area for 76% power.
        let lib = CellLibrary::for_technology(Technology::CntTft);
        let (qt, _, _) = setup(Application::Pendigits, 8, 4);
        let besp = analyze(&bespoke_parallel(&qt), &lib);
        let lut = analyze(&lookup_parallel(&qt, LookupConfig::baseline()), &lib);
        assert!(lut.area > besp.area * 2.0, "area should blow up in CNT");
        assert!(lut.power < besp.power, "power should improve in CNT");
    }
}
