//! Lookup-based classifier architectures (§V, Figs. 8–13).
//!
//! EGT crossbar ROM bits are cheaper than logic (0.05 mm² / 3.13 µW vs a
//! 0.22 mm² / 9.6 µW inverter), so computations whose inputs repeat —
//! comparisons against many thresholds of one feature, multiplications of
//! one feature by a constant — can profitably move into lookup tables, as
//! long as the expensive address decoder is *shared*.
//!
//! Two printing-specific ROM optimizations (§V-A) are modeled exactly:
//!
//! 1. **Redundant-column elimination** — LUT output bits that are identical
//!    across every word are deleted from the array and hardwired, and
//!    duplicate columns (two nodes testing the same feature against the
//!    same quantized threshold) are printed once and fanned out;
//! 2. **Bespoke dot-resistor arrays** — set bits are printed dots, clear
//!    bits simply aren't printed and cost nothing.

pub mod svm;
pub mod tree;

pub use svm::{lookup_svm, lookup_svm_raw};
pub use tree::{lookup_parallel, lookup_parallel_raw};

use netlist::builder::NetlistBuilder;
use netlist::ir::Signal;
use pdk::rom::RomStyle;

/// Knobs of the lookup generators, mirroring Fig. 9/10 and Fig. 12/13.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupConfig {
    /// Apply redundant-column elimination: constant columns are hardwired
    /// and duplicate columns share one printed column.
    pub eliminate_constant_columns: bool,
    /// Print the data array as bespoke dots instead of a full crossbar.
    pub bespoke_dots: bool,
}

impl LookupConfig {
    /// Plain lookup replacement (Figs. 9 and 12).
    pub fn baseline() -> Self {
        LookupConfig {
            eliminate_constant_columns: false,
            bespoke_dots: false,
        }
    }

    /// Both printing-specific optimizations on (Figs. 10 and 13).
    pub fn optimized() -> Self {
        LookupConfig {
            eliminate_constant_columns: true,
            bespoke_dots: true,
        }
    }
}

/// Emits a ROM for `contents`, applying the configured optimizations, and
/// returns the full `bits`-wide output (constant columns come back as
/// [`Signal::Const`], which downstream optimization folds).
pub(crate) fn emit_lut(
    b: &mut NetlistBuilder,
    addr: &[Signal],
    contents: &[u64],
    bits: usize,
    config: LookupConfig,
) -> Vec<Signal> {
    let style = if config.bespoke_dots {
        RomStyle::BespokeDots
    } else {
        RomStyle::Crossbar
    };
    if !config.eliminate_constant_columns {
        return b.rom(addr, contents.to_vec(), bits, style);
    }
    // Redundant-column elimination: constant columns become hardwired
    // rails; duplicate columns are printed once and fanned out.
    enum Column {
        Const(bool),
        Unique(usize),
    }
    let mut unique: Vec<Vec<bool>> = Vec::new();
    let columns: Vec<Column> = (0..bits)
        .map(|bit| {
            let pattern: Vec<bool> = contents.iter().map(|w| (w >> bit) & 1 == 1).collect();
            if pattern.iter().all(|&v| v == pattern[0]) {
                Column::Const(pattern[0])
            } else if let Some(j) = unique.iter().position(|p| *p == pattern) {
                Column::Unique(j)
            } else {
                unique.push(pattern);
                Column::Unique(unique.len() - 1)
            }
        })
        .collect();
    if unique.is_empty() {
        return columns
            .iter()
            .map(|c| match c {
                Column::Const(v) => Signal::Const(*v),
                Column::Unique(_) => unreachable!(),
            })
            .collect();
    }
    // Compact the surviving columns into a narrower ROM.
    let compacted: Vec<u64> = (0..contents.len())
        .map(|w| {
            unique
                .iter()
                .enumerate()
                .fold(0u64, |acc, (j, p)| acc | ((p[w] as u64) << j))
        })
        .collect();
    let outputs = b.rom(addr, compacted, unique.len(), style);
    columns
        .iter()
        .map(|c| match c {
            Column::Const(v) => Signal::Const(*v),
            Column::Unique(j) => outputs[*j],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::sim::Simulator;

    #[test]
    fn constant_columns_are_hardwired_and_correct() {
        // Contents where bit 0 is always 0 and bit 3 always 1.
        let contents: Vec<u64> = vec![0b1010, 0b1100, 0b1110, 0b1000];
        let mut b = NetlistBuilder::new("t");
        let addr = b.input("a", 2);
        let out = emit_lut(&mut b, &addr, &contents, 4, LookupConfig::optimized());
        assert_eq!(out[0], Signal::Const(false));
        assert_eq!(out[3], Signal::Const(true));
        b.output("o", &out);
        let m = b.finish();
        // The surviving ROM carries only 2 data columns.
        assert_eq!(m.roms[0].data.len(), 2);
        let mut sim = Simulator::new(&m);
        for (a, want) in contents.iter().enumerate() {
            sim.set("a", a as u64);
            sim.settle();
            assert_eq!(sim.get("o"), *want);
        }
    }

    #[test]
    fn fully_constant_tables_need_no_rom_at_all() {
        let contents = vec![0b01u64; 8];
        let mut b = NetlistBuilder::new("t");
        let addr = b.input("a", 3);
        let out = emit_lut(&mut b, &addr, &contents, 2, LookupConfig::optimized());
        assert_eq!(out, vec![Signal::ONE, Signal::ZERO]);
        assert!(b.module().roms.is_empty());
    }

    #[test]
    fn baseline_keeps_every_column() {
        let contents = vec![0b10u64, 0b10, 0b10, 0b10];
        let mut b = NetlistBuilder::new("t");
        let addr = b.input("a", 2);
        let out = emit_lut(&mut b, &addr, &contents, 2, LookupConfig::baseline());
        assert!(out.iter().all(|s| !s.is_const()));
        assert_eq!(b.module().roms[0].data.len(), 2);
    }

    #[test]
    fn dots_style_is_selected_by_config() {
        let mut b = NetlistBuilder::new("t");
        let addr = b.input("a", 2);
        let _ = emit_lut(&mut b, &addr, &[1, 2, 3, 0], 2, LookupConfig::optimized());
        assert_eq!(b.module().roms[0].style, pdk::RomStyle::BespokeDots);
    }
}
