//! End-to-end flows: dataset → trained model → quantization → architecture
//! → priced design.
//!
//! [`TreeFlow`] and [`SvmFlow`] bundle everything the benchmark harness and
//! the examples need: train on a synthetic application, run the §IV-A
//! bit-width search, then generate and price any of the paper's
//! architectures in any technology.

use std::sync::OnceLock;

use analog::tree::AnalogTreeConfig;
use analog::VariationReport;
use ml::data::{Dataset, Standardizer};
use ml::metrics::accuracy;
use ml::quant::{FeatureQuantizer, QuantizedSvm, QuantizedTree};
use ml::synth::Application;
use ml::tree::{DecisionTree, TreeParams};
use ml::SvmRegressor;
use netlist::{analyze, Module};
use pdk::{CellLibrary, Technology};
use serde::{Deserialize, Serialize};

use crate::analog_arch::{analog_svm_report, analog_tree_report};
use crate::bespoke::{bespoke_parallel, bespoke_serial, bespoke_svm};
use crate::bitwidth::{choose_svm_width, choose_tree_width, WidthChoice};
use crate::conventional::parallel_tree::{generate as gen_parallel, ParallelTreeSpec};
use crate::conventional::serial_tree::{generate as gen_serial, program, SerialTreeSpec};
use crate::conventional::svm::{generate as gen_conv_svm, SvmSpec};
use crate::lookup::{lookup_parallel, lookup_svm, LookupConfig};
use crate::report::{report_from_ppa, DesignReport};

/// Decision-tree architecture families of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TreeArch {
    /// Fig. 2a general-purpose serial engine.
    ConventionalSerial,
    /// Fig. 2b general-purpose maximally parallel engine.
    ConventionalParallel,
    /// Fig. 4a bespoke serial engine.
    BespokeSerial,
    /// Fig. 4b bespoke maximally parallel engine.
    BespokeParallel,
    /// Fig. 8 lookup-based parallel engine.
    Lookup(LookupConfig),
    /// Fig. 15b analog engine (EGT only).
    Analog(AnalogTreeConfig),
}

/// SVM architecture families of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SvmArch {
    /// Fig. 2c general-purpose engine at a given register width.
    Conventional,
    /// Fig. 4c bespoke engine.
    Bespoke,
    /// Fig. 8 lookup-based engine.
    Lookup(LookupConfig),
    /// Fig. 15a analog crossbar engine (EGT only).
    Analog,
}

/// A trained, quantized decision-tree workload.
#[derive(Debug, Clone)]
pub struct TreeFlow {
    /// Source application.
    pub app: Application,
    /// Requested depth.
    pub depth: usize,
    /// Quantized tree (bespoke width).
    pub qt: QuantizedTree,
    /// Feature quantizer (bespoke width).
    pub fq: FeatureQuantizer,
    /// Bit-width search outcome.
    pub choice: WidthChoice,
    /// Float-model test accuracy (Table II's tree rows).
    pub float_accuracy: f64,
    /// Standardized test split, for functional verification.
    pub test: Dataset,
    /// Lazily computed 8-bit requantization for the conventional engines
    /// (see [`TreeFlow::conventional_qt`]).
    conv_qt: OnceLock<QuantizedTree>,
}

impl TreeFlow {
    /// Trains a depth-`depth` tree on `app` (seeded) and runs the width
    /// search.
    pub fn new(app: Application, depth: usize, seed: u64) -> Self {
        Self::with_params(app, depth, seed, TreeParams::with_depth(depth))
    }

    /// Like [`TreeFlow::new`], but first tunes the CART stopping
    /// parameters with randomized search + k-fold CV (the paper's
    /// `RandomizedSearchCV` step, scaled down to `iters` candidates).
    pub fn with_search(app: Application, depth: usize, seed: u64, iters: usize) -> Self {
        let data = app.generate(seed);
        let (train, _) = data.split(0.7, 42);
        let s = Standardizer::fit(&train);
        let train = s.transform(&train);
        let params = ml::search::search_tree_params(&train, depth, iters, 3, seed);
        Self::with_params(app, depth, seed, params)
    }

    fn with_params(app: Application, depth: usize, seed: u64, params: TreeParams) -> Self {
        if !cache::enabled() {
            return Self::with_params_impl(app, depth, seed, params);
        }
        let mut h = cache::StableHasher::new("core.flow.tree");
        h.write_str(app.name());
        h.write_usize(depth);
        h.write_u64(seed);
        cache::Hashable::stable_hash(&params, &mut h);
        cache::get_or_compute("core.flow.tree", h.finish(), || {
            Self::with_params_impl(app, depth, seed, params)
        })
    }

    fn with_params_impl(app: Application, depth: usize, seed: u64, params: TreeParams) -> Self {
        let data = app.generate(seed);
        let (train, test) = data.split(0.7, 42);
        let s = Standardizer::fit(&train);
        let (train, test) = (s.transform(&train), s.transform(&test));
        let tree = DecisionTree::fit(&train, params);
        let float_accuracy = accuracy(
            test.x.iter().map(|r| tree.predict(r)),
            test.y.iter().copied(),
        )
        .expect("predictions align with test labels");
        let (fq, qt, choice) = choose_tree_width(&tree, &train, &test);
        TreeFlow {
            app,
            depth,
            qt,
            fq,
            choice,
            float_accuracy,
            test,
            conv_qt: OnceLock::new(),
        }
    }

    /// Generates the netlist of a digital architecture (`None` for analog).
    pub fn module(&self, arch: TreeArch) -> Option<Module> {
        match arch {
            TreeArch::ConventionalSerial => {
                let spec = SerialTreeSpec::conventional(self.depth);
                // Load the model when it fits the general-purpose engine
                // (its mux is sized for the cross-dataset average of 14
                // unique features); otherwise price a blank program — a
                // crossbar ROM costs the same regardless of contents.
                let qt = self.conventional_qt();
                let prog =
                    if qt.used_features().len() <= spec.n_features && qt.depth() <= spec.depth {
                        program(qt, &spec)
                    } else {
                        crate::conventional::serial_tree::SerialTreeProgram {
                            threshold_rom: vec![0; 1 << (spec.depth + 1)],
                            class_rom: vec![0; 1 << spec.depth],
                        }
                    };
                Some(gen_serial(&spec, &prog))
            }
            TreeArch::ConventionalParallel => {
                Some(gen_parallel(&ParallelTreeSpec::conventional(self.depth)))
            }
            TreeArch::BespokeSerial => Some(bespoke_serial(&self.qt).1),
            TreeArch::BespokeParallel => Some(bespoke_parallel(&self.qt)),
            TreeArch::Lookup(config) => Some(lookup_parallel(&self.qt, config)),
            TreeArch::Analog(_) => None,
        }
    }

    /// The first `rows` test rows quantized to feature codes — the
    /// evaluation set the variation and sign-off stages share.
    pub fn coded_rows(&self, rows: usize) -> Vec<Vec<u64>> {
        self.test
            .x
            .iter()
            .take(rows)
            .map(|r| self.fq.code_row(r))
            .collect()
    }

    /// Monte-Carlo print-variation sweep of the analog realization
    /// (§VI mismatch analysis): perturbs every printed resistance by a
    /// log-normal factor at each sigma and reports agreement with the
    /// nominal circuit over the first `rows` test rows. Runs on the
    /// compiled lane-batched engine; bit-identical at any thread count.
    pub fn variation_sweep(
        &self,
        sigmas: &[f64],
        trials: usize,
        rows: usize,
        seed: u64,
    ) -> Vec<VariationReport> {
        analog::variation_sweep(&self.qt, &self.coded_rows(rows), sigmas, trials, seed)
    }

    /// An 8-bit quantization of the same tree, as loaded into the
    /// general-purpose conventional engines. Memoized: the requantization
    /// re-trains on the source data, so repeated pricing of the
    /// conventional engines (once per technology) must not repeat it.
    fn conventional_qt(&self) -> &QuantizedTree {
        self.conv_qt.get_or_init(|| {
            // Conventional engines are fixed at 8-bit; requantize if the
            // bespoke choice differs.
            if self.fq.bits() == 8 {
                self.qt.clone()
            } else {
                // Re-derive from the same underlying thresholds: the quantized
                // tree at 8 bits is produced during width search; rebuild it.
                let data = self.app.generate(7);
                let (train, _) = data.split(0.7, 42);
                let s = Standardizer::fit(&train);
                let train = s.transform(&train);
                let tree = DecisionTree::fit(&train, TreeParams::with_depth(self.depth));
                let fq = FeatureQuantizer::fit(&train, 8);
                QuantizedTree::from_tree(&tree, &fq)
            }
        })
    }

    /// Prices `arch` in `tech`.
    ///
    /// # Panics
    /// Panics if an analog architecture is requested in a non-EGT
    /// technology (the paper's analog designs are EGT-only).
    pub fn report(&self, arch: TreeArch, tech: Technology) -> DesignReport {
        let lib = CellLibrary::for_technology(tech);
        let name = format!("{}-dt{}-{}", self.app.name(), self.depth, kind_tag(arch));
        match arch {
            TreeArch::Analog(config) => {
                assert_eq!(tech, Technology::Egt, "analog designs are EGT-only");
                let mut r = analog_tree_report(&self.qt, config);
                r.name = name;
                r
            }
            TreeArch::ConventionalSerial | TreeArch::BespokeSerial => {
                let module = self.module(arch).expect("digital architecture");
                let cycles = match arch {
                    TreeArch::ConventionalSerial => self.depth.max(1),
                    _ => self.qt.depth().max(1),
                };
                report_from_ppa(name, tech, &analyze(&module, &lib), cycles)
            }
            _ => {
                let module = self.module(arch).expect("digital architecture");
                report_from_ppa(name, tech, &analyze(&module, &lib), 1)
            }
        }
    }
}

// Manual impls: `OnceLock` has no serde support, so the memo travels as an
// `Option` and is re-seeded into a fresh cell on the way back in.
impl Serialize for TreeFlow {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("app".to_string(), self.app.to_value()),
            ("depth".to_string(), self.depth.to_value()),
            ("qt".to_string(), self.qt.to_value()),
            ("fq".to_string(), self.fq.to_value()),
            ("choice".to_string(), self.choice.to_value()),
            ("float_accuracy".to_string(), self.float_accuracy.to_value()),
            ("test".to_string(), self.test.to_value()),
            (
                "conv_qt".to_string(),
                self.conv_qt.get().cloned().to_value(),
            ),
        ])
    }
}

impl Deserialize for TreeFlow {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let fields = match v {
            serde::Value::Object(fields) => fields,
            _ => return Err(serde::Error::msg("TreeFlow: expected object")),
        };
        let field = |name: &str| -> Result<&serde::Value, serde::Error> {
            fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| serde::Error::msg(format!("TreeFlow: missing field `{name}`")))
        };
        let conv_qt = OnceLock::new();
        if let Some(qt) = Option::<QuantizedTree>::from_value(field("conv_qt")?)? {
            let _ = conv_qt.set(qt);
        }
        Ok(TreeFlow {
            app: Deserialize::from_value(field("app")?)?,
            depth: Deserialize::from_value(field("depth")?)?,
            qt: Deserialize::from_value(field("qt")?)?,
            fq: Deserialize::from_value(field("fq")?)?,
            choice: Deserialize::from_value(field("choice")?)?,
            float_accuracy: Deserialize::from_value(field("float_accuracy")?)?,
            test: Deserialize::from_value(field("test")?)?,
            conv_qt,
        })
    }
}

fn kind_tag(arch: TreeArch) -> &'static str {
    match arch {
        TreeArch::ConventionalSerial => "conv-serial",
        TreeArch::ConventionalParallel => "conv-parallel",
        TreeArch::BespokeSerial => "bespoke-serial",
        TreeArch::BespokeParallel => "bespoke-parallel",
        TreeArch::Lookup(_) => "lookup",
        TreeArch::Analog(_) => "analog",
    }
}

/// A trained, quantized SVM-regression workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SvmFlow {
    /// Source application.
    pub app: Application,
    /// Quantized SVM (bespoke width).
    pub qs: QuantizedSvm,
    /// Feature quantizer (bespoke width).
    pub fq: FeatureQuantizer,
    /// Bit-width search outcome.
    pub choice: WidthChoice,
    /// Float-model test accuracy (Table II's SVM-R row).
    pub float_accuracy: f64,
    /// Number of dataset features.
    pub n_features: usize,
    /// Standardized test split.
    pub test: Dataset,
}

impl SvmFlow {
    /// Trains an SVM regressor on `app` (seeded) and runs the width search.
    pub fn new(app: Application, seed: u64) -> Self {
        Self::with_hyper(app, seed, 200, 1e-4)
    }

    /// Like [`SvmFlow::new`], but first tunes epochs and regularization
    /// with randomized search + k-fold CV.
    pub fn with_search(app: Application, seed: u64, iters: usize) -> Self {
        let data = app.generate(seed);
        let (train, _) = data.split(0.7, 42);
        let s = Standardizer::fit(&train);
        let train = s.transform(&train);
        let (epochs, l2) = ml::search::search_svm_params(&train, iters, 3, seed);
        Self::with_hyper(app, seed, epochs, l2)
    }

    fn with_hyper(app: Application, seed: u64, epochs: usize, l2: f64) -> Self {
        if !cache::enabled() {
            return Self::with_hyper_impl(app, seed, epochs, l2);
        }
        let mut h = cache::StableHasher::new("core.flow.svm");
        h.write_str(app.name());
        h.write_u64(seed);
        h.write_usize(epochs);
        h.write_f64(l2);
        cache::get_or_compute("core.flow.svm", h.finish(), || {
            Self::with_hyper_impl(app, seed, epochs, l2)
        })
    }

    fn with_hyper_impl(app: Application, seed: u64, epochs: usize, l2: f64) -> Self {
        let data = app.generate(seed);
        let n_features = data.n_features();
        let (train, test) = data.split(0.7, 42);
        let s = Standardizer::fit(&train);
        let (train, test) = (s.transform(&train), s.transform(&test));
        let svm = SvmRegressor::fit(&train, epochs, l2);
        let float_accuracy = accuracy(
            test.x.iter().map(|r| svm.predict(r)),
            test.y.iter().copied(),
        )
        .expect("predictions align with test labels");
        let (fq, qs, choice) = choose_svm_width(&svm, &train, &test);
        SvmFlow {
            app,
            qs,
            fq,
            choice,
            float_accuracy,
            n_features,
            test,
        }
    }

    /// The first `rows` test rows quantized to feature codes — the
    /// evaluation set the variation and sign-off stages share.
    pub fn coded_rows(&self, rows: usize) -> Vec<Vec<u64>> {
        self.test
            .x
            .iter()
            .take(rows)
            .map(|r| self.fq.code_row(r))
            .collect()
    }

    /// Monte-Carlo print-variation sweep of the analog crossbar
    /// realization (§VI mismatch analysis): perturbs every printed
    /// crossbar resistance by a log-normal factor at each sigma and
    /// reports agreement with the nominal engine over the first `rows`
    /// test rows. Runs on the compiled lane-batched engine;
    /// bit-identical at any thread count.
    pub fn variation_sweep(
        &self,
        sigmas: &[f64],
        trials: usize,
        rows: usize,
        seed: u64,
    ) -> Vec<VariationReport> {
        analog::svm_variation_sweep(
            &self.qs,
            self.n_features,
            &self.coded_rows(rows),
            sigmas,
            trials,
            seed,
        )
    }

    /// Generates the netlist of a digital architecture (`None` for analog).
    ///
    /// The conventional baseline is sized to this dataset (feature count
    /// and class boundaries) at the chosen width — the per-dataset
    /// normalization of Fig. 11. Table V's fixed 263-feature engine comes
    /// from [`SvmSpec::conventional`] directly.
    pub fn module(&self, arch: SvmArch) -> Option<Module> {
        match arch {
            SvmArch::Conventional => Some(gen_conv_svm(&SvmSpec {
                width: self.qs.bits(),
                n_features: self.n_features,
                n_boundaries: (self.qs.n_classes() - 1).max(1),
            })),
            SvmArch::Bespoke => Some(bespoke_svm(&self.qs)),
            SvmArch::Lookup(config) => Some(lookup_svm(&self.qs, config)),
            SvmArch::Analog => None,
        }
    }

    /// Prices `arch` in `tech`.
    ///
    /// # Panics
    /// Panics if [`SvmArch::Analog`] is requested outside EGT.
    pub fn report(&self, arch: SvmArch, tech: Technology) -> DesignReport {
        let lib = CellLibrary::for_technology(tech);
        let name = format!("{}-svm-{}", self.app.name(), svm_tag(arch));
        match arch {
            SvmArch::Analog => {
                assert_eq!(tech, Technology::Egt, "analog designs are EGT-only");
                let mut r = analog_svm_report(&self.qs, self.n_features);
                r.name = name;
                r
            }
            _ => {
                let module = self.module(arch).expect("digital architecture");
                report_from_ppa(name, tech, &analyze(&module, &lib), 1)
            }
        }
    }
}

fn svm_tag(arch: SvmArch) -> &'static str {
    match arch {
        SvmArch::Conventional => "conv",
        SvmArch::Bespoke => "bespoke",
        SvmArch::Lookup(_) => "lookup",
        SvmArch::Analog => "analog",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_flow_produces_all_architectures() {
        let flow = TreeFlow::new(Application::Har, 4, 7);
        for arch in [
            TreeArch::ConventionalSerial,
            TreeArch::ConventionalParallel,
            TreeArch::BespokeSerial,
            TreeArch::BespokeParallel,
            TreeArch::Lookup(LookupConfig::optimized()),
            TreeArch::Analog(AnalogTreeConfig::default()),
        ] {
            let r = flow.report(arch, Technology::Egt);
            assert!(r.area.as_mm2() > 0.0, "{}", r.name);
            assert!(r.power.as_mw() > 0.0, "{}", r.name);
            assert!(r.latency.as_secs() > 0.0, "{}", r.name);
        }
    }

    #[test]
    fn bespoke_hierarchy_holds_for_a_representative_workload() {
        // conventional parallel > bespoke serial > bespoke parallel in
        // area; analog below all of them.
        let flow = TreeFlow::new(Application::Cardio, 4, 7);
        let conv = flow.report(TreeArch::ConventionalParallel, Technology::Egt);
        let bs = flow.report(TreeArch::BespokeSerial, Technology::Egt);
        let bp = flow.report(TreeArch::BespokeParallel, Technology::Egt);
        let an = flow.report(
            TreeArch::Analog(AnalogTreeConfig::default()),
            Technology::Egt,
        );
        assert!(conv.area > bs.area);
        assert!(bs.area > bp.area);
        assert!(bp.area > an.area);
    }

    #[test]
    fn svm_flow_produces_all_architectures() {
        let flow = SvmFlow::new(Application::RedWine, 7);
        for arch in [
            SvmArch::Bespoke,
            SvmArch::Lookup(LookupConfig::optimized()),
            SvmArch::Analog,
        ] {
            let r = flow.report(arch, Technology::Egt);
            assert!(r.area.as_mm2() > 0.0, "{}", r.name);
        }
    }

    #[test]
    fn reports_work_across_technologies() {
        let flow = TreeFlow::new(Application::Har, 2, 7);
        let egt = flow.report(TreeArch::BespokeParallel, Technology::Egt);
        let cnt = flow.report(TreeArch::BespokeParallel, Technology::CntTft);
        let si = flow.report(TreeArch::BespokeParallel, Technology::Tsmc40);
        assert!(egt.area > cnt.area);
        assert!(cnt.area > si.area);
        assert!(egt.latency > cnt.latency);
        assert!(cnt.latency > si.latency);
    }

    #[test]
    #[should_panic(expected = "EGT-only")]
    fn analog_outside_egt_is_rejected() {
        let flow = TreeFlow::new(Application::Har, 2, 7);
        let _ = flow.report(
            TreeArch::Analog(AnalogTreeConfig::default()),
            Technology::Tsmc40,
        );
    }
}

#[cfg(test)]
mod search_tests {
    use super::*;

    #[test]
    fn searched_tree_flow_is_at_least_as_accurate() {
        let plain = TreeFlow::new(Application::RedWine, 4, 7);
        let searched = TreeFlow::with_search(Application::RedWine, 4, 7, 4);
        assert!(
            searched.float_accuracy >= plain.float_accuracy - 0.03,
            "searched {} vs plain {}",
            searched.float_accuracy,
            plain.float_accuracy
        );
        assert_eq!(searched.depth, 4);
    }

    #[test]
    fn searched_svm_flow_produces_a_working_design() {
        let flow = SvmFlow::with_search(Application::Har, 7, 2);
        let r = flow.report(SvmArch::Bespoke, Technology::Egt);
        assert!(r.area.as_mm2() > 0.0);
        // SVM regression over HAR's *nominal* activity labels is weak by
        // nature (the paper's HAR strength comes from its ordinal-ish
        // real encoding); the search must still beat chance (1/5).
        assert!(
            flow.choice.accuracy > 0.2,
            "accuracy {}",
            flow.choice.accuracy
        );
    }
}

/// A trained, quantized random-forest workload (§III's tunable
/// accuracy/cost ensemble).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForestFlow {
    /// Source application.
    pub app: Application,
    /// Number of member trees.
    pub n_trees: usize,
    /// Quantized forest.
    pub qf: ml::quant::QuantizedForest,
    /// Feature quantizer.
    pub fq: FeatureQuantizer,
    /// Quantized-forest test accuracy.
    pub accuracy: f64,
    /// Standardized test split.
    pub test: Dataset,
}

impl ForestFlow {
    /// Trains an RF-`n_trees` ensemble (paper configuration: depth-8
    /// members) on `app` at 8-bit quantization.
    pub fn new(app: Application, n_trees: usize, seed: u64) -> Self {
        if !cache::enabled() {
            return Self::new_impl(app, n_trees, seed);
        }
        let mut h = cache::StableHasher::new("core.flow.forest");
        h.write_str(app.name());
        h.write_usize(n_trees);
        h.write_u64(seed);
        cache::get_or_compute("core.flow.forest", h.finish(), || {
            Self::new_impl(app, n_trees, seed)
        })
    }

    fn new_impl(app: Application, n_trees: usize, seed: u64) -> Self {
        let data = app.generate(seed);
        let (train, test) = data.split(0.7, 42);
        let s = Standardizer::fit(&train);
        let (train, test) = (s.transform(&train), s.transform(&test));
        let forest =
            ml::forest::RandomForest::fit(&train, ml::forest::ForestParams::paper(n_trees));
        let fq = FeatureQuantizer::fit(&train, 8);
        let qf = ml::quant::QuantizedForest::from_forest(&forest, &fq);
        let accuracy = ml::metrics::accuracy(
            test.x.iter().map(|r| qf.predict(&fq.code_row(r))),
            test.y.iter().copied(),
        )
        .expect("predictions align with test labels");
        ForestFlow {
            app,
            n_trees,
            qf,
            fq,
            accuracy,
            test,
        }
    }

    /// Generates the ensemble engine netlist.
    pub fn module(&self, style: crate::ensemble::ForestStyle) -> Module {
        crate::ensemble::forest_engine(&self.qf, style)
    }

    /// Prices the ensemble engine in `tech`.
    pub fn report(&self, style: crate::ensemble::ForestStyle, tech: Technology) -> DesignReport {
        let lib = CellLibrary::for_technology(tech);
        let name = format!("{}-rf{}", self.app.name(), self.n_trees);
        report_from_ppa(name, tech, &analyze(&self.module(style), &lib), 1)
    }
}

#[cfg(test)]
mod forest_flow_tests {
    use super::*;
    use crate::ensemble::ForestStyle;

    #[test]
    fn forest_flow_produces_verified_engines() {
        let flow = ForestFlow::new(Application::Cardio, 2, 7);
        let module = flow.module(ForestStyle::Bespoke);
        let mut sim = netlist::Simulator::new(&module);
        for row in flow.test.x.iter().take(30) {
            let codes = flow.fq.code_row(row);
            for &f in &flow.qf.used_features() {
                sim.set(&format!("f{f}"), codes[f]);
            }
            sim.settle();
            assert_eq!(sim.get("class") as usize, flow.qf.predict(&codes));
        }
        let r = flow.report(ForestStyle::Bespoke, Technology::Egt);
        assert!(r.area.as_mm2() > 0.0);
    }

    #[test]
    fn bigger_ensembles_buy_accuracy_with_area() {
        let f2 = ForestFlow::new(Application::Pendigits, 2, 7);
        let f8 = ForestFlow::new(Application::Pendigits, 8, 7);
        let a2 = f2.report(ForestStyle::Bespoke, Technology::Egt);
        let a8 = f8.report(ForestStyle::Bespoke, Technology::Egt);
        assert!(a8.area > a2.area);
        assert!(
            f8.accuracy >= f2.accuracy - 0.02,
            "{} vs {}",
            f8.accuracy,
            f2.accuracy
        );
    }
}
