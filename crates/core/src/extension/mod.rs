//! Design-space extensions beyond the paper's evaluated architectures.
//!
//! The paper evaluates serial and parallel trees but only parallel SVMs;
//! [`serial_svm()`] fills in the missing quadrant (one time-multiplexed MAC,
//! a coefficient ROM and two accumulators) so the work-efficiency /
//! latency tradeoff can be studied on SVM workloads too.

pub mod serial_svm;

pub use serial_svm::{serial_svm, SerialSvmInfo};
