//! Time-multiplexed (serial) SVM engines — a design-space extension.
//!
//! The paper's SVM engines are fully parallel ("every MAC operation is
//! assigned to its own MAC unit", §III-A.2); its trees, by contrast, come
//! in both serial and parallel flavours. This module completes the 2×2:
//! a serial SVM with **one** multiplier, an accumulator, a coefficient
//! ROM and a feature counter, trading `n_terms` cycles of latency for an
//! `n_terms`-fold reduction in multiplier hardware — the same
//! work-efficiency corner the serial tree occupies.
//!
//! Signed arithmetic stays unsigned the same way the bespoke SVM does:
//! positive- and negative-coefficient terms accumulate into separate
//! registers `P` and `N` (the coefficient ROM carries a sign bit steering
//! an enable), and the boundary comparisons `P > N + B_c` happen
//! combinationally once `done` rises.

use ml::quant::QuantizedSvm;
use netlist::arith::{add, multiply};
use netlist::builder::NetlistBuilder;
use netlist::comb::unsigned_gt;
use netlist::ir::{Module, Signal};
use netlist::optimize;
use netlist::seq::shift_register;
use pdk::rom::RomStyle;

use crate::conventional::svm::popcount;

fn ceil_log2(n: usize) -> usize {
    if n <= 2 {
        1
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

/// Dimensions of a generated serial SVM engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SerialSvmInfo {
    /// Cycles per inference (= number of non-zero coefficient terms).
    pub cycles: usize,
    /// Datapath width.
    pub width: usize,
    /// Accumulator width.
    pub acc_width: usize,
}

/// Generates a bespoke **serial** SVM engine for `svm`.
///
/// Ports: `x{f}` inputs for live features, outputs `class`, `therm` and
/// `done`. One inference takes [`SerialSvmInfo::cycles`] clock cycles
/// after reset; `class` is valid when `done` is high.
///
/// Returns the module together with its timing info.
pub fn serial_svm(svm: &QuantizedSvm) -> (Module, SerialSvmInfo) {
    let width = svm.bits();
    // Term schedule: positives first, then negatives.
    let terms: Vec<(usize, u64, bool)> = svm
        .pos_terms()
        .iter()
        .map(|&(f, m)| (f, m, true))
        .chain(svm.neg_terms().iter().map(|&(f, m)| (f, m, false)))
        .collect();
    let cycles = terms.len().max(1);

    let max_code: u128 = (1u128 << width) - 1;
    let max_p: u128 = svm
        .pos_terms()
        .iter()
        .map(|&(_, m)| m as u128 * max_code)
        .sum();
    let max_n: u128 = svm
        .neg_terms()
        .iter()
        .map(|&(_, m)| m as u128 * max_code)
        .sum();
    let max_b: u128 = svm
        .boundaries()
        .iter()
        .map(|&v| v.unsigned_abs() as u128)
        .max()
        .unwrap_or(0);
    let acc_width = (128 - (max_p.max(max_n + max_b).max(1)).leading_zeros() as usize) + 1;

    let mut b = NetlistBuilder::new("serial_svm");
    let mut live: Vec<usize> = terms.iter().map(|&(f, _, _)| f).collect();
    live.sort_unstable();
    live.dedup();
    let ports: std::collections::HashMap<usize, Vec<Signal>> = live
        .iter()
        .map(|&f| (f, b.input(format!("x{f}"), width)))
        .collect();

    // Step counter as a one-hot walking shift register (cheap decode, the
    // same trick as the serial tree's node pointer).
    b.push_region("control");
    let step = shift_register(&mut b, Signal::ZERO, cycles + 1, 1);
    // The walking one-hot leaves the register after `cycles` steps, so
    // `done` latches sticky: once the seed reaches the last stage it is
    // ORed into a set-only flip-flop.
    let done_pulse = step[cycles];
    let done_q = b.dff(Signal::ZERO, false);
    let done = b.or(done_pulse, done_q);
    b.set_dff_input(done_q, done);
    b.pop_region();

    // Coefficient ROM: one word per cycle = [magnitude | sign]; addressed
    // by the binary-encoded step (derived from the one-hot register).
    let coef_bits = terms
        .iter()
        .map(|&(_, m, _)| (64 - m.leading_zeros()) as usize)
        .max()
        .unwrap_or(1)
        .max(1);
    b.push_region("coefficients");
    // Binary step index from one-hot: OR of the one-hot lines per bit.
    let idx_bits = ceil_log2(cycles.max(2));
    let idx: Vec<Signal> = (0..idx_bits)
        .map(|bit| {
            let contributors: Vec<Signal> = (0..cycles)
                .filter(|i| (i >> bit) & 1 == 1)
                .map(|i| step[i])
                .collect();
            if contributors.is_empty() {
                Signal::ZERO
            } else {
                b.or_reduce(&contributors)
            }
        })
        .collect();
    let rom_words: Vec<u64> = terms
        .iter()
        .map(|&(_, m, positive)| m | ((positive as u64) << coef_bits))
        .collect();
    let rom_out = b.rom(&idx, rom_words, coef_bits + 1, RomStyle::Crossbar);
    let (coef, sign) = rom_out.split_at(coef_bits);
    let is_positive = sign[0];
    b.pop_region();

    // Feature mux: select the scheduled feature for this cycle.
    b.push_region("feature-mux");
    let words: Vec<Vec<Signal>> = terms.iter().map(|&(f, _, _)| ports[&f].clone()).collect();
    let x = b.mux_tree(&idx, &words);
    b.pop_region();

    // The single multiplier.
    b.push_region("mac");
    let product = multiply(&mut b, &x, coef);
    let mut product_ext = product;
    product_ext.resize(acc_width, Signal::ZERO);

    // Two accumulators; the sign bit steers which one updates.
    let p_reg: Vec<Signal> = (0..acc_width).map(|_| b.dff(Signal::ZERO, false)).collect();
    let n_reg: Vec<Signal> = (0..acc_width).map(|_| b.dff(Signal::ZERO, false)).collect();
    let p_sum = add(&mut b, &p_reg, &product_ext);
    let n_sum = add(&mut b, &n_reg, &product_ext);
    // Hold when done; accumulate into the signed side otherwise.
    let not_done = b.not(done);
    let take_p = b.and(is_positive, not_done);
    let negative = b.not(is_positive);
    let take_n = b.and(negative, not_done);
    for (i, &q) in p_reg.iter().enumerate() {
        let next = b.mux(take_p, q, p_sum[i]);
        b.set_dff_input(q, next);
    }
    for (i, &q) in n_reg.iter().enumerate() {
        let next = b.mux(take_n, q, n_sum[i]);
        b.set_dff_input(q, next);
    }
    b.pop_region();

    // Class mapper (combinational, valid when done).
    b.push_region("classmap");
    let mut therm = Vec::with_capacity(svm.boundaries().len());
    for &boundary in svm.boundaries() {
        let t = if boundary >= 0 {
            let bc = b.const_word(boundary as u64, acc_width);
            let mut rhs = add(&mut b, &n_reg, &bc);
            rhs.resize(acc_width + 1, Signal::ZERO);
            let mut lhs = p_reg.clone();
            lhs.resize(acc_width + 1, Signal::ZERO);
            unsigned_gt(&mut b, &lhs, &rhs)
        } else {
            let bc = b.const_word(boundary.unsigned_abs(), acc_width);
            let mut lhs = add(&mut b, &p_reg, &bc);
            lhs.resize(acc_width + 1, Signal::ZERO);
            let mut rhs = n_reg.clone();
            rhs.resize(acc_width + 1, Signal::ZERO);
            unsigned_gt(&mut b, &lhs, &rhs)
        };
        therm.push(t);
    }
    let class = if therm.is_empty() {
        b.const_word(0, 1)
    } else {
        popcount(&mut b, &therm)
    };
    b.pop_region();

    b.output("class", &class);
    let therm_out = if therm.is_empty() {
        vec![Signal::ZERO]
    } else {
        therm
    };
    b.output("therm", &therm_out);
    b.output("done", &[done]);
    let module = optimize(&b.finish());
    (
        module,
        SerialSvmInfo {
            cycles,
            width,
            acc_width,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bespoke::bespoke_svm;
    use ml::data::Standardizer;
    use ml::quant::FeatureQuantizer;
    use ml::synth::Application;
    use ml::SvmRegressor;
    use netlist::analyze;
    use netlist::sim::Simulator;
    use pdk::{CellLibrary, Technology};

    fn setup(app: Application, bits: usize) -> (QuantizedSvm, FeatureQuantizer, ml::Dataset) {
        let data = app.generate(7);
        let (train, test) = data.split(0.7, 42);
        let s = Standardizer::fit(&train);
        let (train, test) = (s.transform(&train), s.transform(&test));
        let svm = SvmRegressor::fit(&train, 150, 1e-4);
        let fq = FeatureQuantizer::fit(&train, bits);
        (QuantizedSvm::from_svm(&svm, &fq), fq, test)
    }

    #[test]
    fn serial_svm_matches_software_svm() {
        let (qs, fq, test) = setup(Application::RedWine, 6);
        let (module, info) = serial_svm(&qs);
        let mut sim = Simulator::new(&module);
        for row in test.x.iter().take(60) {
            let codes = fq.code_row(row);
            sim.reset();
            for &(f, _) in qs.pos_terms().iter().chain(qs.neg_terms()) {
                sim.set(&format!("x{f}"), codes[f]);
            }
            for _ in 0..info.cycles {
                sim.step();
            }
            sim.settle();
            assert_eq!(sim.get("done"), 1, "done after {} cycles", info.cycles);
            assert_eq!(sim.get("class") as usize, qs.predict(&codes));
        }
    }

    #[test]
    fn serial_svm_trades_area_for_latency() {
        let lib = CellLibrary::for_technology(Technology::Egt);
        let (qs, _, _) = setup(Application::RedWine, 8);
        let parallel = analyze(&bespoke_svm(&qs), &lib);
        let (module, info) = serial_svm(&qs);
        let serial = analyze(&module, &lib);
        // Smaller in logic area (one multiplier instead of n), slower
        // end-to-end.
        assert!(
            serial.logic_area < parallel.logic_area,
            "serial {} vs parallel {}",
            serial.logic_area,
            parallel.logic_area
        );
        assert!(serial.latency(info.cycles) > parallel.latency(1));
    }

    #[test]
    fn done_stays_high_and_class_stays_stable_after_completion() {
        let (qs, fq, test) = setup(Application::Har, 4);
        let (module, info) = serial_svm(&qs);
        let mut sim = Simulator::new(&module);
        let codes = fq.code_row(&test.x[0]);
        sim.reset();
        for &(f, _) in qs.pos_terms().iter().chain(qs.neg_terms()) {
            sim.set(&format!("x{f}"), codes[f]);
        }
        for _ in 0..info.cycles {
            sim.step();
        }
        sim.settle();
        let class = sim.get("class");
        for _ in 0..3 {
            sim.step();
            sim.settle();
            assert_eq!(sim.get("done"), 1, "done must latch");
            assert_eq!(sim.get("class"), class, "class must hold after done");
        }
    }
}
