//! Pins the hyper-parameter search winners so the parallel sharded
//! implementation stays bit-identical to the original serial scan, at
//! every thread count.
//!
//! The pinned values were captured from the serial implementation before
//! the `candidate × fold` grid was sharded over the `exec` pool.

use ml::search::{search_svm_params, search_tree_params};
use ml::synth::Application;
use ml::tree::TreeParams;

#[test]
fn winners_match_serial_scan_at_any_thread_count() {
    let wine = Application::RedWine.generate(7);
    let har = Application::Har.generate(7);
    for threads in [1, 4, 8] {
        let (tree, svm) = exec::with_threads(threads, || {
            (
                search_tree_params(&wine, 4, 4, 3, 7),
                search_svm_params(&har, 3, 3, 7),
            )
        });
        assert_eq!(
            tree,
            TreeParams {
                max_depth: 4,
                min_samples_split: 16,
                max_thresholds: 16,
            },
            "tree winner drifted at {threads} threads"
        );
        assert_eq!(svm, (100, 1e-5), "svm winner drifted at {threads} threads");
    }
}
