#![warn(missing_docs)]

//! # ml — from-scratch classifiers and synthetic sensor datasets
//!
//! The machine-learning substrate of the *Printed Machine Learning
//! Classifiers* reproduction. It replaces the paper's scikit-learn flow:
//!
//! * [`data`] — dataset container, 70/30 splits, standardization;
//! * [`synth`] — seeded synthetic stand-ins for the seven sensor
//!   applications (Arrhythmia, Cardio, GasID, HAR, Pendigits, Red/White
//!   wine) with matching shapes and difficulty;
//! * [`tree`] / [`forest`] — CART decision trees and bagged random forests
//!   with full structural introspection for hardware generation;
//! * [`linear`] — SVM regression (the hardware-candidate model), one-vs-one
//!   SVM classification, logistic regression;
//! * [`mlp`] — small ReLU perceptrons (MLP-1 / MLP-3 baselines);
//! * [`quant`] — fixed-point feature/model quantization onto 4–16-bit
//!   datapaths, in the exact arithmetic the generated hardware uses;
//! * [`opcount`] — Table II's `#C` / `#M` operation counting;
//! * [`search`] — randomized hyper-parameter search with k-fold CV.
//!
//! ```
//! use ml::synth::Application;
//! use ml::tree::{DecisionTree, TreeParams};
//! use ml::metrics::accuracy;
//!
//! let data = Application::Har.generate(7);
//! let (train, test) = data.split(0.7, 42);
//! let tree = DecisionTree::fit(&train, TreeParams::with_depth(4));
//! let acc = accuracy(test.x.iter().map(|r| tree.predict(r)), test.y.iter().copied()).unwrap();
//! assert!(acc > 0.9);
//! ```

pub mod data;

/// Keys a model fit on the dataset content plus scalar hyper-parameters —
/// the shared cache-key shape for every trainer in this crate.
pub(crate) fn fit_key(
    domain: &str,
    data: &data::Dataset,
    ints: &[u64],
    floats: &[f64],
) -> cache::Key {
    let mut h = cache::StableHasher::new(domain);
    cache::Hashable::stable_hash(data, &mut h);
    for &n in ints {
        h.write_u64(n);
    }
    for &x in floats {
        h.write_f64(x);
    }
    h.finish()
}

pub mod forest;
pub mod linear;
pub mod metrics;
pub mod mlp;
pub mod opcount;
pub mod quant;
pub mod search;
pub mod synth;
pub mod tree;

pub use data::{Dataset, Standardizer};
pub use forest::{ForestParams, RandomForest};
pub use linear::{LogisticRegression, SvmClassifier, SvmRegressor};
pub use metrics::{accuracy, class_reports, confusion_matrix, macro_f1, ClassReport, MetricsError};
pub use mlp::{Mlp, MlpParams};
pub use opcount::{CountOps, OpCount};
pub use quant::{FeatureQuantizer, QuantizedSvm, QuantizedTree};
pub use synth::Application;
pub use tree::{DecisionTree, TreeNode, TreeParams};
