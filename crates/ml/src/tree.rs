//! CART decision-tree training and introspection.
//!
//! Gini-impurity binary trees with the `x[feature] <= threshold` branch
//! convention (left on true), matching scikit-learn's `DecisionTreeClassifier`
//! that the paper trained. The trained structure is fully introspectable —
//! the hardware generators walk [`DecisionTree::nodes`] to emit comparators,
//! thresholds and class ROMs.

use serde::{Deserialize, Serialize};

use crate::data::Dataset;

/// Trained CART fits (every `fit`/`fit_subset` call).
static CART_FITS: obs::Counter = obs::Counter::new("ml.cart.fits");
/// Nodes grown across all fits.
static CART_NODES: obs::Counter = obs::Counter::new("ml.cart.nodes");
/// Candidate thresholds scored by the split search across all fits.
static CART_CANDIDATES: obs::Counter = obs::Counter::new("ml.cart.split_candidates");

/// Split-search work done by one `fit` call, tallied locally and
/// published to the [`obs`] counters once per fit (the per-candidate
/// loop is far too hot for a process-wide counter update).
#[derive(Default)]
struct SearchTally {
    nodes: u64,
    candidates: u64,
}

impl SearchTally {
    fn publish(&self) {
        CART_FITS.incr();
        CART_NODES.add(self.nodes);
        CART_CANDIDATES.add(self.candidates);
    }
}

/// A split in heap layout: `(position, feature, threshold)`.
pub type HeapSplit = (usize, usize, f64);
/// A leaf in heap layout: `(position, depth, class)`.
pub type HeapLeaf = (usize, usize, usize);

/// One node of a trained tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TreeNode {
    /// Internal decision node: `x[feature] <= threshold` goes left.
    Split {
        /// Feature index tested.
        feature: usize,
        /// Decision threshold.
        threshold: f64,
        /// Index of the left child (condition true).
        left: usize,
        /// Index of the right child (condition false).
        right: usize,
    },
    /// Leaf carrying a class label.
    Leaf {
        /// Predicted class.
        class: usize,
    },
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth (paper sweeps 1, 2, 4, 8).
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
    /// Cap on candidate thresholds evaluated per feature (quantile
    /// subsampling keeps 263-feature training fast).
    pub max_thresholds: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 4,
            min_samples_split: 2,
            max_thresholds: 32,
        }
    }
}

impl TreeParams {
    /// Parameters for a depth-`d` tree with the paper's defaults elsewhere.
    pub fn with_depth(d: usize) -> Self {
        TreeParams {
            max_depth: d,
            ..Default::default()
        }
    }
}

impl cache::Hashable for TreeParams {
    fn stable_hash(&self, h: &mut cache::StableHasher) {
        h.write_usize(self.max_depth);
        h.write_usize(self.min_samples_split);
        h.write_usize(self.max_thresholds);
    }
}

/// A trained CART classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<TreeNode>,
    n_classes: usize,
    n_features: usize,
}

impl DecisionTree {
    /// Fits a tree on `data` with `params`. A depth-0 request yields a
    /// single majority-class leaf.
    ///
    /// When the artifact cache is enabled, repeated fits on identical
    /// `(data, params)` return the stored tree instead of re-growing it.
    pub fn fit(data: &Dataset, params: TreeParams) -> Self {
        if !cache::enabled() {
            return Self::fit_impl(data, params);
        }
        let mut h = cache::StableHasher::new("ml.tree.fit");
        cache::Hashable::stable_hash(data, &mut h);
        cache::Hashable::stable_hash(&params, &mut h);
        cache::get_or_compute("ml.tree.fit", h.finish(), || Self::fit_impl(data, params))
    }

    fn fit_impl(data: &Dataset, params: TreeParams) -> Self {
        let _span = obs::span("ml.cart.fit");
        let indices: Vec<usize> = (0..data.len()).collect();
        let mut nodes = Vec::new();
        let mut tally = SearchTally::default();
        build(
            data,
            &indices,
            params.max_depth,
            &params,
            &mut nodes,
            None,
            &mut tally,
        );
        tally.publish();
        DecisionTree {
            nodes,
            n_classes: data.n_classes,
            n_features: data.n_features(),
        }
    }

    /// Fits on a subset of samples, optionally restricting candidate
    /// features per split (used by random forests).
    pub fn fit_subset(
        data: &Dataset,
        sample_indices: &[usize],
        params: TreeParams,
        feature_subset: Option<&[usize]>,
    ) -> Self {
        let _span = obs::span("ml.cart.fit");
        let mut nodes = Vec::new();
        let mut tally = SearchTally::default();
        build(
            data,
            sample_indices,
            params.max_depth,
            &params,
            &mut nodes,
            feature_subset,
            &mut tally,
        );
        tally.publish();
        DecisionTree {
            nodes,
            n_classes: data.n_classes,
            n_features: data.n_features(),
        }
    }

    /// Predicts the class of one row.
    pub fn predict(&self, row: &[f64]) -> usize {
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                TreeNode::Leaf { class } => return *class,
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// All nodes; index 0 is the root.
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// Number of classes the tree predicts over.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of input features the training data had.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of internal (comparison) nodes — Table II's `#C` for trees.
    pub fn comparison_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, TreeNode::Split { .. }))
            .count()
    }

    /// Depth of the tree (0 for a single leaf).
    pub fn depth(&self) -> usize {
        fn d(nodes: &[TreeNode], i: usize) -> usize {
            match &nodes[i] {
                TreeNode::Leaf { .. } => 0,
                TreeNode::Split { left, right, .. } => 1 + d(nodes, *left).max(d(nodes, *right)),
            }
        }
        d(&self.nodes, 0)
    }

    /// Sorted list of distinct features the tree actually tests — the
    /// quantity (≈14 on average across the paper's datasets) that sizes the
    /// serial tree's input multiplexer.
    pub fn used_features(&self) -> Vec<usize> {
        let mut f: Vec<usize> = self
            .nodes
            .iter()
            .filter_map(|n| match n {
                TreeNode::Split { feature, .. } => Some(*feature),
                TreeNode::Leaf { .. } => None,
            })
            .collect();
        f.sort_unstable();
        f.dedup();
        f
    }

    /// Flattens the tree onto full-binary-tree ("heap") positions: root at
    /// 1, children of `p` at `2p` / `2p+1` — the indexing scheme the serial
    /// architecture's shift register produces. Returns
    /// `(splits, leaves)` where splits are `(position, feature, threshold)`
    /// and leaves `(position, depth, class)`.
    pub fn heap_layout(&self) -> (Vec<HeapSplit>, Vec<HeapLeaf>) {
        let mut splits = Vec::new();
        let mut leaves = Vec::new();
        let mut stack = vec![(0usize, 1usize, 0usize)]; // (node, position, depth)
        while let Some((node, pos, depth)) = stack.pop() {
            match &self.nodes[node] {
                TreeNode::Leaf { class } => leaves.push((pos, depth, *class)),
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    splits.push((pos, *feature, *threshold));
                    // Paper convention: comparison result shifts into the
                    // LSB; we use bit 0 = "went right" (condition false).
                    stack.push((*left, pos * 2, depth + 1));
                    stack.push((*right, pos * 2 + 1, depth + 1));
                }
            }
        }
        splits.sort_unstable_by_key(|s| s.0);
        leaves.sort_unstable_by_key(|l| l.0);
        (splits, leaves)
    }
}

/// Prefix-count sweep over one feature: distinct sorted values plus, for
/// each, the cumulative per-class count of samples at or below it. Every
/// candidate threshold's left/right partition then reads off in O(classes)
/// instead of rescanning all samples.
struct Sweep {
    /// Distinct feature values, ascending.
    vals: Vec<f64>,
    /// Flattened `vals.len() x n_classes`: `cum[k*c..][..c]` counts the
    /// samples of each class with value `<= vals[k]`.
    cum: Vec<usize>,
    classes: usize,
    n: usize,
}

impl Sweep {
    fn build(data: &Dataset, indices: &[usize], f: usize) -> Sweep {
        let mut pairs: Vec<(f64, u32)> = indices
            .iter()
            .map(|&i| (data.x[i][f], data.y[i] as u32))
            .collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let classes = data.n_classes;
        let mut vals: Vec<f64> = Vec::new();
        let mut cum: Vec<usize> = Vec::new();
        let mut running = vec![0usize; classes];
        for &(v, y) in &pairs {
            if vals.last() != Some(&v) {
                if !vals.is_empty() {
                    cum.extend_from_slice(&running);
                }
                vals.push(v);
            }
            running[y as usize] += 1;
        }
        if !vals.is_empty() {
            cum.extend_from_slice(&running);
        }
        Sweep {
            vals,
            cum,
            classes,
            n: indices.len(),
        }
    }

    /// Scores the candidate threshold between `vals[w]` and `vals[w+1]`.
    /// Returns `(threshold, score)`, or `None` for a degenerate one-sided
    /// partition. The midpoint may round onto `vals[w+1]` itself (adjacent
    /// floats); `x <= thr` then takes that value's samples left, exactly as
    /// a direct scan would.
    fn eval(&self, w: usize, total: &[usize]) -> Option<(f64, f64)> {
        let c = self.classes;
        let thr = (self.vals[w] + self.vals[w + 1]) / 2.0;
        let k = if thr >= self.vals[w + 1] { w + 1 } else { w };
        let lc = &self.cum[k * c..(k + 1) * c];
        let ln: usize = lc.iter().sum();
        let rn = self.n - ln;
        if ln == 0 || rn == 0 {
            return None;
        }
        let rc: Vec<usize> = total.iter().zip(lc).map(|(&t, &l)| t - l).collect();
        let score = (ln as f64 * gini(lc, ln) + rn as f64 * gini(&rc, rn)) / self.n as f64;
        // Tie-break toward balanced partitions: when several cuts achieve
        // the same impurity (e.g. every depth-1 cut of XOR data), a balanced
        // split gives the children the most room to improve.
        let imbalance = (ln as f64 - rn as f64).abs() / self.n as f64;
        Some((thr, score + imbalance * 1e-7))
    }
}

fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / t).powi(2)).sum::<f64>()
}

fn majority(counts: &[usize]) -> usize {
    counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Recursively grows the tree; returns the new node's index.
fn build(
    data: &Dataset,
    indices: &[usize],
    depth_left: usize,
    params: &TreeParams,
    nodes: &mut Vec<TreeNode>,
    feature_subset: Option<&[usize]>,
    tally: &mut SearchTally,
) -> usize {
    tally.nodes += 1;
    let mut counts = vec![0usize; data.n_classes];
    for &i in indices {
        counts[data.y[i]] += 1;
    }
    let node_gini = gini(&counts, indices.len());
    let make_leaf = depth_left == 0
        || indices.len() < params.min_samples_split
        || node_gini == 0.0
        || indices.is_empty();
    if make_leaf {
        nodes.push(TreeNode::Leaf {
            class: majority(&counts),
        });
        return nodes.len() - 1;
    }

    let features: Vec<usize> = match feature_subset {
        Some(f) => f.to_vec(),
        None => (0..data.n_features()).collect(),
    };
    // Coarse scan with quantile-strided candidates, then a full-resolution
    // rescan around the winning position (so subsampling never misses a
    // clean cut sitting between strides). Candidate scoring uses one
    // prefix-count sweep per feature (sort once, evaluate every threshold
    // from cumulative class counts) instead of an O(n) rescan per
    // candidate — the class counts, and therefore every Gini score, are
    // the exact integers and floats the rescan produced.
    let mut best: Option<(f64, usize, f64, usize, usize)> = None; // (gini, f, thr, w, stride)
    for &f in &features {
        let sweep = Sweep::build(data, indices, f);
        if sweep.vals.len() < 2 {
            continue;
        }
        let stride = (sweep.vals.len() / params.max_thresholds).max(1);
        for w in (0..sweep.vals.len() - 1).step_by(stride) {
            tally.candidates += 1;
            if let Some((thr, score)) = sweep.eval(w, &counts) {
                if best.is_none_or(|(b, ..)| score < b - 1e-15) {
                    best = Some((score, f, thr, w, stride));
                }
            }
        }
    }
    // Local refinement of the winner.
    if let Some((_, f, _, w, stride)) = best {
        if stride > 1 {
            let sweep = Sweep::build(data, indices, f);
            let lo = w.saturating_sub(stride);
            let hi = (w + stride).min(sweep.vals.len() - 1);
            for v in lo..hi {
                tally.candidates += 1;
                if let Some((thr, score)) = sweep.eval(v, &counts) {
                    if best.is_none_or(|(b, ..)| score < b - 1e-15) {
                        best = Some((score, f, thr, v, stride));
                    }
                }
            }
        }
    }

    // Like scikit-learn's default CART, split on the best candidate even at
    // zero immediate gain (a zero-gain split can enable a perfect split one
    // level down — XOR being the canonical case).
    let Some((_, feature, threshold, _, _)) = best else {
        nodes.push(TreeNode::Leaf {
            class: majority(&counts),
        });
        return nodes.len() - 1;
    };
    let _ = node_gini;

    let (li, ri): (Vec<usize>, Vec<usize>) = indices
        .iter()
        .partition(|&&i| data.x[i][feature] <= threshold);
    let me = nodes.len();
    nodes.push(TreeNode::Leaf { class: 0 }); // placeholder
    let left = build(
        data,
        &li,
        depth_left - 1,
        params,
        nodes,
        feature_subset,
        tally,
    );
    let right = build(
        data,
        &ri,
        depth_left - 1,
        params,
        nodes,
        feature_subset,
        tally,
    );
    nodes[me] = TreeNode::Split {
        feature,
        threshold,
        left,
        right,
    };
    me
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use crate::synth::Application;

    fn xor_dataset() -> Dataset {
        // Exact 2D XOR: every depth-1 cut has zero gain, so solving it
        // requires the zero-gain split (like scikit-learn's CART) plus the
        // balanced tie-break.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let a = (i % 2) as f64;
            let b = ((i / 2) % 2) as f64;
            x.push(vec![a, b]);
            y.push((a as usize) ^ (b as usize));
        }
        Dataset::new("xor", x, y, 2)
    }

    #[test]
    fn depth_two_solves_xor_depth_one_cannot() {
        let d = xor_dataset();
        let t1 = DecisionTree::fit(&d, TreeParams::with_depth(1));
        let t2 = DecisionTree::fit(&d, TreeParams::with_depth(2));
        let acc = |t: &DecisionTree| {
            accuracy(d.x.iter().map(|r| t.predict(r)), d.y.iter().copied()).unwrap()
        };
        assert!(acc(&t1) < 0.8);
        assert!(acc(&t2) > 0.95, "depth-2 accuracy {}", acc(&t2));
        assert!(t2.depth() <= 2);
    }

    #[test]
    fn depth_zero_is_a_majority_leaf() {
        let d = xor_dataset();
        let t = DecisionTree::fit(&d, TreeParams::with_depth(0));
        assert_eq!(t.comparison_count(), 0);
        assert_eq!(t.nodes().len(), 1);
    }

    #[test]
    fn max_depth_is_respected() {
        let d = Application::Pendigits.generate(7);
        for depth in [1, 2, 4, 8] {
            let t = DecisionTree::fit(&d, TreeParams::with_depth(depth));
            assert!(
                t.depth() <= depth,
                "depth {} > requested {depth}",
                t.depth()
            );
            assert!(t.comparison_count() < (1 << depth));
        }
    }

    #[test]
    fn deeper_trees_do_not_get_less_accurate_on_train() {
        let d = Application::Cardio.generate(7);
        let acc = |depth| {
            let t = DecisionTree::fit(&d, TreeParams::with_depth(depth));
            accuracy(d.x.iter().map(|r| t.predict(r)), d.y.iter().copied()).unwrap()
        };
        let (a1, a4, a8) = (acc(1), acc(4), acc(8));
        assert!(a4 >= a1 - 1e-9);
        assert!(a8 >= a4 - 1e-9);
    }

    #[test]
    fn pure_nodes_stop_early() {
        // Perfectly separable single feature: a depth-8 request still
        // produces a tiny tree.
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let y: Vec<usize> = (0..100).map(|i| (i >= 50) as usize).collect();
        let d = Dataset::new("sep", x, y, 2);
        let t = DecisionTree::fit(&d, TreeParams::with_depth(8));
        assert_eq!(t.comparison_count(), 1);
        assert_eq!(t.used_features(), vec![0]);
    }

    #[test]
    fn heap_layout_is_consistent() {
        let d = xor_dataset();
        let t = DecisionTree::fit(&d, TreeParams::with_depth(2));
        let (splits, leaves) = t.heap_layout();
        assert_eq!(splits.len(), t.comparison_count());
        // Root is position 1.
        assert!(splits.iter().any(|s| s.0 == 1));
        // Leaf positions never collide with split positions.
        for (lp, _, _) in &leaves {
            assert!(splits.iter().all(|(sp, _, _)| sp != lp));
        }
        // Every leaf position's ancestors are split positions.
        for (lp, _, _) in &leaves {
            let mut p = lp / 2;
            while p >= 1 {
                assert!(
                    splits.iter().any(|(sp, _, _)| *sp == p),
                    "ancestor {p} of {lp}"
                );
                p /= 2;
            }
        }
    }

    #[test]
    fn predictions_follow_thresholds() {
        let d = xor_dataset();
        let t = DecisionTree::fit(&d, TreeParams::with_depth(2));
        // Hand-walk the tree for one row and compare with predict().
        let row = &d.x[3];
        let mut i = 0usize;
        let manual = loop {
            match &t.nodes()[i] {
                TreeNode::Leaf { class } => break *class,
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        };
        assert_eq!(manual, t.predict(row));
    }
}

impl DecisionTree {
    /// Renders the tree as Graphviz DOT (decision nodes as boxes, leaves
    /// as ovals) for inspection of what is about to be printed.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph tree {\n  node [fontname=\"monospace\"];\n");
        for (i, node) in self.nodes.iter().enumerate() {
            match node {
                TreeNode::Leaf { class } => {
                    let _ = writeln!(out, "  n{i} [label=\"class {class}\"];");
                }
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let _ = writeln!(
                        out,
                        "  n{i} [shape=box, label=\"x{feature} <= {threshold:.4}\"];"
                    );
                    let _ = writeln!(out, "  n{i} -> n{left} [label=\"yes\"];");
                    let _ = writeln!(out, "  n{i} -> n{right} [label=\"no\"];");
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;
    use crate::synth::Application;

    #[test]
    fn dot_output_is_well_formed() {
        let data = Application::Cardio.generate(7);
        let tree = DecisionTree::fit(&data, TreeParams::with_depth(3));
        let dot = tree.to_dot();
        assert!(dot.starts_with("digraph tree {"));
        assert!(dot.trim_end().ends_with('}'));
        // One node line per tree node, one edge pair per split.
        assert_eq!(dot.matches("shape=box").count(), tree.comparison_count());
        assert_eq!(dot.matches("-> ").count(), tree.comparison_count() * 2);
        assert!(dot.contains("class "));
    }
}
