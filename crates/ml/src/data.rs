//! Dataset container, splitting and normalization.
//!
//! Mirrors the paper's §III preprocessing: categorical features removed
//! (our synthetic generators never produce them), a 70/30 train/test split,
//! and per-feature standardization to zero mean / unit variance computed on
//! the training set only.

use exec::rng::{SliceRandom, StdRng};
use serde::{Deserialize, Serialize};

/// A labelled dataset: dense row-major features and integer class labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature rows; every row has the same length.
    pub x: Vec<Vec<f64>>,
    /// Class labels in `0..n_classes`.
    pub y: Vec<usize>,
    /// Number of distinct classes.
    pub n_classes: usize,
    /// Human-readable name (e.g. `"cardio"`).
    pub name: String,
}

impl Dataset {
    /// Creates a dataset, checking shape invariants.
    ///
    /// # Panics
    /// Panics if rows are ragged, labels are out of range, or `x` and `y`
    /// differ in length.
    pub fn new(name: impl Into<String>, x: Vec<Vec<f64>>, y: Vec<usize>, n_classes: usize) -> Self {
        assert_eq!(x.len(), y.len(), "feature/label length mismatch");
        assert!(!x.is_empty(), "empty dataset");
        let width = x[0].len();
        assert!(x.iter().all(|r| r.len() == width), "ragged feature rows");
        assert!(y.iter().all(|&l| l < n_classes), "label out of range");
        Dataset {
            x,
            y,
            n_classes,
            name: name.into(),
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when the dataset has no samples (never, per constructor).
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Number of features per sample.
    pub fn n_features(&self) -> usize {
        self.x[0].len()
    }

    /// Shuffles and splits into (train, test) with `train_fraction` of the
    /// samples in train, deterministic in `seed`.
    pub fn split(&self, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(
            (0.0..1.0).contains(&train_fraction),
            "fraction must be in [0,1)"
        );
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let cut = ((self.len() as f64) * train_fraction).round() as usize;
        let take = |ids: &[usize], tag: &str| {
            Dataset::new(
                format!("{}-{tag}", self.name),
                ids.iter().map(|&i| self.x[i].clone()).collect(),
                ids.iter().map(|&i| self.y[i]).collect(),
                self.n_classes,
            )
        };
        (take(&idx[..cut], "train"), take(&idx[cut..], "test"))
    }
}

impl cache::Hashable for Dataset {
    fn stable_hash(&self, h: &mut cache::StableHasher) {
        h.write_str(&self.name);
        h.write_usize(self.n_classes);
        h.write_seq_len(self.x.len());
        for row in &self.x {
            h.write_seq_len(row.len());
            for &v in row {
                h.write_f64(v);
            }
        }
        h.write_seq_len(self.y.len());
        for &l in &self.y {
            h.write_usize(l);
        }
    }
}

/// Per-feature affine normalization fitted on a training set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Standardizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Standardizer {
    /// Fits zero-mean / unit-variance parameters on `data`.
    pub fn fit(data: &Dataset) -> Self {
        let n = data.len() as f64;
        let d = data.n_features();
        let mut mean = vec![0.0; d];
        for row in &data.x {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; d];
        for row in &data.x {
            for ((v, x), m) in var.iter_mut().zip(row).zip(&mean) {
                *v += (x - m) * (x - m);
            }
        }
        let std = var
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Standardizer { mean, std }
    }

    /// Transforms a single row in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        for ((x, m), s) in row.iter_mut().zip(&self.mean).zip(&self.std) {
            *x = (*x - m) / s;
        }
    }

    /// Returns a standardized copy of `data`.
    pub fn transform(&self, data: &Dataset) -> Dataset {
        let mut out = data.clone();
        for row in &mut out.x {
            self.transform_row(row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let x: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![i as f64, 2.0 * i as f64 + 1.0])
            .collect();
        let y: Vec<usize> = (0..100).map(|i| i % 3).collect();
        Dataset::new("toy", x, y, 3)
    }

    #[test]
    fn split_is_deterministic_and_sized() {
        let d = toy();
        let (tr1, te1) = d.split(0.7, 42);
        let (tr2, te2) = d.split(0.7, 42);
        assert_eq!(tr1, tr2);
        assert_eq!(te1, te2);
        assert_eq!(tr1.len(), 70);
        assert_eq!(te1.len(), 30);
        let (tr3, _) = d.split(0.7, 43);
        assert_ne!(tr1, tr3, "different seed, different shuffle");
    }

    #[test]
    fn split_preserves_all_samples() {
        let d = toy();
        let (tr, te) = d.split(0.7, 1);
        let mut all: Vec<f64> = tr.x.iter().chain(&te.x).map(|r| r[0]).collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn standardizer_centers_and_scales() {
        let d = toy();
        let s = Standardizer::fit(&d);
        let t = s.transform(&d);
        for f in 0..2 {
            let mean: f64 = t.x.iter().map(|r| r[f]).sum::<f64>() / t.len() as f64;
            let var: f64 = t.x.iter().map(|r| r[f] * r[f]).sum::<f64>() / t.len() as f64;
            assert!(mean.abs() < 1e-9, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-9, "var {var}");
        }
    }

    #[test]
    fn standardizer_tolerates_constant_features() {
        let x = vec![vec![5.0, 1.0], vec![5.0, 2.0], vec![5.0, 3.0]];
        let d = Dataset::new("c", x, vec![0, 1, 0], 2);
        let s = Standardizer::fit(&d);
        let t = s.transform(&d);
        assert!(t.x.iter().all(|r| r[0] == 0.0));
        assert!(t.x.iter().all(|r| r[1].is_finite()));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_are_rejected() {
        Dataset::new("bad", vec![vec![1.0], vec![1.0, 2.0]], vec![0, 0], 1);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_labels_are_rejected() {
        Dataset::new("bad", vec![vec![1.0]], vec![5], 2);
    }
}

impl Dataset {
    /// Returns a copy with additive per-feature sensor drift applied.
    ///
    /// Chemical sensors (GasID is the canonical case) drift over weeks in
    /// the field; a classifier trained on fresh sensors sees shifted
    /// inputs. Each feature receives a fixed offset drawn from
    /// `±magnitude` (in units of that feature's training standard
    /// deviation being 1 after standardization), deterministic in `seed`.
    pub fn with_drift(&self, magnitude: f64, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let offsets: Vec<f64> = (0..self.n_features())
            .map(|_| rng.gen_range(-magnitude..=magnitude))
            .collect();
        let mut out = self.clone();
        for row in &mut out.x {
            for (v, o) in row.iter_mut().zip(&offsets) {
                *v += o;
            }
        }
        out
    }
}

#[cfg(test)]
mod drift_tests {
    use super::*;

    fn toy() -> Dataset {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, -(i as f64)]).collect();
        let y: Vec<usize> = (0..50).map(|i| i % 2).collect();
        Dataset::new("toy", x, y, 2)
    }

    #[test]
    fn zero_drift_is_identity() {
        let d = toy();
        assert_eq!(d.with_drift(0.0, 1), d);
    }

    #[test]
    fn drift_is_a_constant_per_feature_offset() {
        let d = toy();
        let shifted = d.with_drift(0.5, 9);
        let delta0 = shifted.x[0][0] - d.x[0][0];
        for (a, b) in shifted.x.iter().zip(&d.x) {
            assert!((a[0] - b[0] - delta0).abs() < 1e-12);
        }
        assert!(delta0.abs() <= 0.5);
    }

    #[test]
    fn drift_is_deterministic_in_seed() {
        let d = toy();
        assert_eq!(d.with_drift(0.3, 5), d.with_drift(0.3, 5));
        assert_ne!(d.with_drift(0.3, 5), d.with_drift(0.3, 6));
    }
}

impl Dataset {
    /// Per-class sample counts (length `n_classes`).
    pub fn class_distribution(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &l in &self.y {
            counts[l] += 1;
        }
        counts
    }

    /// Fraction of samples belonging to the most common class — the
    /// baseline accuracy of a majority-class predictor (what the paper's
    /// DT-1 numbers hover near on the imbalanced medical datasets).
    pub fn majority_fraction(&self) -> f64 {
        let counts = self.class_distribution();
        *counts.iter().max().unwrap_or(&0) as f64 / self.len() as f64
    }
}

#[cfg(test)]
mod distribution_tests {
    use crate::synth::Application;

    #[test]
    fn distribution_sums_to_sample_count() {
        let d = Application::Cardio.generate(7);
        let counts = d.class_distribution();
        assert_eq!(counts.iter().sum::<usize>(), d.len());
        assert_eq!(counts.len(), d.n_classes);
    }

    #[test]
    fn medical_datasets_are_imbalanced_as_designed() {
        // Cardio: ~78% normal; arrhythmia: ~54% normal; HAR: uniform.
        assert!(Application::Cardio.generate(7).majority_fraction() > 0.7);
        let arr = Application::Arrhythmia.generate(7).majority_fraction();
        assert!(arr > 0.45 && arr < 0.65, "arrhythmia majority {arr}");
        assert!(Application::Har.generate(7).majority_fraction() < 0.3);
    }
}
