//! Multi-layer perceptrons (paper's MLP-1 and MLP-3 baselines).
//!
//! Small ReLU networks — up to 5 nodes per hidden layer, 1 or 3 hidden
//! layers — trained with mini-batch SGD on softmax cross-entropy. They only
//! participate in the §III algorithm comparison: their MAC counts make them
//! prohibitively expensive in printed technologies.

use exec::rng::{SliceRandom, StdRng};
use serde::{Deserialize, Serialize};

use crate::data::Dataset;
use crate::fit_key;

/// One dense layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Layer {
    /// `out × in` weights.
    w: Vec<Vec<f64>>,
    b: Vec<f64>,
}

impl Layer {
    fn new(inputs: usize, outputs: usize, rng: &mut StdRng) -> Self {
        let scale = (2.0 / inputs as f64).sqrt();
        Layer {
            w: (0..outputs)
                .map(|_| (0..inputs).map(|_| rng.gen_range(-scale..scale)).collect())
                .collect(),
            b: vec![0.0; outputs],
        }
    }

    fn forward(&self, x: &[f64]) -> Vec<f64> {
        self.w
            .iter()
            .zip(&self.b)
            .map(|(row, b)| row.iter().zip(x).map(|(w, v)| w * v).sum::<f64>() + b)
            .collect()
    }
}

/// A trained MLP classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Layer>,
}

/// MLP hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpParams {
    /// Hidden layer widths (paper: `[5]` for MLP-1, `[5,5,5]` for MLP-3).
    pub hidden: Vec<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// RNG seed.
    pub seed: u64,
}

impl MlpParams {
    /// Paper configuration MLP-1: one hidden layer of up to 5 nodes.
    pub fn mlp1() -> Self {
        MlpParams {
            hidden: vec![5],
            epochs: 60,
            lr: 0.05,
            seed: 7,
        }
    }

    /// Paper configuration MLP-3: three hidden layers of up to 5 nodes.
    pub fn mlp3() -> Self {
        MlpParams {
            hidden: vec![5, 5, 5],
            epochs: 80,
            lr: 0.05,
            seed: 7,
        }
    }
}

impl Mlp {
    /// Trains with mini-batch SGD (batch 16) on softmax cross-entropy.
    /// Cached by `(data, params)` when the artifact cache is enabled.
    pub fn fit(data: &Dataset, params: &MlpParams) -> Self {
        if !cache::enabled() {
            return Self::fit_impl(data, params);
        }
        let mut ints: Vec<u64> = params.hidden.iter().map(|&w| w as u64).collect();
        ints.push(params.epochs as u64);
        ints.push(params.seed);
        let key = fit_key("ml.mlp.fit", data, &ints, &[params.lr]);
        cache::get_or_compute("ml.mlp.fit", key, || Self::fit_impl(data, params))
    }

    fn fit_impl(data: &Dataset, params: &MlpParams) -> Self {
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut dims = vec![data.n_features()];
        dims.extend(&params.hidden);
        dims.push(data.n_classes);
        let mut layers: Vec<Layer> = dims
            .windows(2)
            .map(|w| Layer::new(w[0], w[1], &mut rng))
            .collect();

        let mut order: Vec<usize> = (0..data.len()).collect();
        for _ in 0..params.epochs {
            order.shuffle(&mut rng);
            for batch in order.chunks(16) {
                // Accumulate gradients over the batch.
                let mut gw: Vec<Vec<Vec<f64>>> = layers
                    .iter()
                    .map(|l| vec![vec![0.0; l.w[0].len()]; l.w.len()])
                    .collect();
                let mut gb: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
                for &i in batch {
                    backprop(&layers, &data.x[i], data.y[i], &mut gw, &mut gb);
                }
                let scale = params.lr / batch.len() as f64;
                for (l, (gwl, gbl)) in layers.iter_mut().zip(gw.iter().zip(&gb)) {
                    for (wrow, grow) in l.w.iter_mut().zip(gwl) {
                        for (w, g) in wrow.iter_mut().zip(grow) {
                            *w -= scale * g;
                        }
                    }
                    for (b, g) in l.b.iter_mut().zip(gbl) {
                        *b -= scale * g;
                    }
                }
            }
        }
        Mlp { layers }
    }

    /// Argmax class prediction.
    pub fn predict(&self, row: &[f64]) -> usize {
        let mut act = row.to_vec();
        for (li, layer) in self.layers.iter().enumerate() {
            act = layer.forward(&act);
            if li + 1 < self.layers.len() {
                for v in &mut act {
                    *v = v.max(0.0);
                }
            }
        }
        act.iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Total multiply-accumulate count per inference — Table II's `#M`.
    pub fn mac_count(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() * l.w[0].len()).sum()
    }

    /// Total ReLU evaluations per inference.
    pub fn relu_count(&self) -> usize {
        self.layers[..self.layers.len() - 1]
            .iter()
            .map(|l| l.b.len())
            .sum()
    }
}

fn backprop(
    layers: &[Layer],
    x: &[f64],
    label: usize,
    gw: &mut [Vec<Vec<f64>>],
    gb: &mut [Vec<f64>],
) {
    // Forward with cached activations.
    let mut acts: Vec<Vec<f64>> = vec![x.to_vec()];
    for (li, layer) in layers.iter().enumerate() {
        let mut z = layer.forward(acts.last().unwrap());
        if li + 1 < layers.len() {
            for v in &mut z {
                *v = v.max(0.0);
            }
        }
        acts.push(z);
    }
    // Softmax gradient at the output.
    let out = acts.last().unwrap();
    let m = out.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = out.iter().map(|v| (v - m).exp()).collect();
    let z: f64 = exps.iter().sum();
    let mut delta: Vec<f64> = exps
        .iter()
        .enumerate()
        .map(|(c, e)| e / z - (c == label) as usize as f64)
        .collect();
    // Backward.
    for li in (0..layers.len()).rev() {
        let input = &acts[li];
        for (o, d) in delta.iter().enumerate() {
            for (g, xi) in gw[li][o].iter_mut().zip(input) {
                *g += d * xi;
            }
            gb[li][o] += d;
        }
        if li > 0 {
            let layer = &layers[li];
            let mut prev = vec![0.0; input.len()];
            for (o, d) in delta.iter().enumerate() {
                for (p, w) in prev.iter_mut().zip(&layer.w[o]) {
                    *p += d * w;
                }
            }
            // ReLU derivative on the hidden activation.
            for (p, a) in prev.iter_mut().zip(&acts[li]) {
                if *a <= 0.0 {
                    *p = 0.0;
                }
            }
            delta = prev;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Standardizer;
    use crate::metrics::accuracy;
    use crate::synth::Application;

    #[test]
    fn mlp_learns_separable_clusters() {
        let data = Application::Har.generate(7);
        let (train, test) = data.split(0.7, 42);
        let s = Standardizer::fit(&train);
        let (train, test) = (s.transform(&train), s.transform(&test));
        let m = Mlp::fit(&train, &MlpParams::mlp1());
        let acc = accuracy(test.x.iter().map(|r| m.predict(r)), test.y.iter().copied()).unwrap();
        assert!(acc > 0.9, "MLP-1 HAR accuracy {acc}");
    }

    #[test]
    fn mac_counts_match_architecture() {
        let data = Application::Har.generate(7); // 12 features, 5 classes
        let m1 = Mlp::fit(
            &data,
            &MlpParams {
                epochs: 1,
                ..MlpParams::mlp1()
            },
        );
        // 12*5 + 5*5 = 85, exactly the paper's HAR MLP-1 entry.
        assert_eq!(m1.mac_count(), 85);
        assert_eq!(m1.relu_count(), 5);
        let m3 = Mlp::fit(
            &data,
            &MlpParams {
                epochs: 1,
                ..MlpParams::mlp3()
            },
        );
        // 12*5 + 5*5 + 5*5 + 5*5 = 135.
        assert_eq!(m3.mac_count(), 135);
        assert_eq!(m3.relu_count(), 15);
    }

    #[test]
    fn training_is_deterministic() {
        let data = Application::Cardio.generate(7);
        let a = Mlp::fit(
            &data,
            &MlpParams {
                epochs: 2,
                ..MlpParams::mlp1()
            },
        );
        let b = Mlp::fit(
            &data,
            &MlpParams {
                epochs: 2,
                ..MlpParams::mlp1()
            },
        );
        assert_eq!(a, b);
    }

    #[test]
    fn predictions_are_valid_classes() {
        let data = Application::Pendigits.generate(7);
        let m = Mlp::fit(
            &data,
            &MlpParams {
                epochs: 1,
                ..MlpParams::mlp1()
            },
        );
        for row in data.x.iter().take(20) {
            assert!(m.predict(row) < data.n_classes);
        }
    }
}
