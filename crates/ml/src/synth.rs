//! Synthetic stand-ins for the paper's seven sensor datasets.
//!
//! The UCI/HAR datasets themselves are not redistributable inside this
//! repository, so each application is replaced by a seeded generator with
//! the **same feature count, class count, sample count and qualitative
//! difficulty** (see DESIGN.md §2). What the hardware conclusions depend on
//! — dimensionality, number of classes, how many features a tree actually
//! uses, whether labels are ordinal — is preserved:
//!
//! * only a small subset of features is informative (the paper's trained
//!   trees touch ~14 unique features on average across datasets);
//! * wine quality labels are *ordinal*, generated from a noisy linear
//!   latent score, which is why SVM regression is competitive there (§III);
//! * HAR's activity clusters are nearly separable, so shallow trees reach
//!   very high accuracy, matching Table II's 0.99 at depth 4;
//! * arrhythmia and the wines are intentionally noisy, capping accuracy for
//!   every algorithm.

use exec::rng::StdRng;
use serde::{Deserialize, Serialize};

use crate::data::Dataset;

/// The seven benchmark applications of the paper (§III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Application {
    /// ECG heart-rhythm classification — many features, very noisy.
    Arrhythmia,
    /// Cardiotocogram classification — 3 classes, fairly clean.
    Cardio,
    /// Chemical gas identification — high-dimensional, separable.
    GasId,
    /// Human activity recognition from accelerometers — nearly separable.
    Har,
    /// Pen-written digit recognition — 10 classes, moderately separable.
    Pendigits,
    /// Red wine quality from pH / metal-trace sensors — ordinal, noisy.
    RedWine,
    /// White wine quality — ordinal, noisy, more samples.
    WhiteWine,
}

impl Application {
    /// All applications, in Table II's row order.
    pub const ALL: [Application; 7] = [
        Application::Arrhythmia,
        Application::Cardio,
        Application::GasId,
        Application::Har,
        Application::Pendigits,
        Application::RedWine,
        Application::WhiteWine,
    ];

    /// Lower-case dataset name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Application::Arrhythmia => "arrhythmia",
            Application::Cardio => "cardio",
            Application::GasId => "gasid",
            Application::Har => "har",
            Application::Pendigits => "pendigits",
            Application::RedWine => "redwine",
            Application::WhiteWine => "whitewine",
        }
    }

    /// Generator profile: (features, informative features, classes,
    /// samples, class separation, label noise probability, ordinal labels).
    fn profile(self) -> Profile {
        match self {
            Application::Arrhythmia => Profile {
                n_features: 263,
                n_informative: 18,
                n_classes: 11,
                n_samples: 452,
                separation: 1.7,
                label_noise: 0.22,
                majority: 0.665,
                ordinal: false,
            },
            Application::Cardio => Profile {
                n_features: 19,
                n_informative: 10,
                n_classes: 3,
                n_samples: 2126,
                separation: 2.2,
                label_noise: 0.04,
                majority: 0.80,
                ordinal: false,
            },
            Application::GasId => Profile {
                n_features: 127,
                n_informative: 16,
                n_classes: 6,
                n_samples: 2000,
                separation: 2.6,
                label_noise: 0.01,
                majority: 0.0,
                ordinal: false,
            },
            Application::Har => Profile {
                n_features: 12,
                n_informative: 8,
                n_classes: 5,
                n_samples: 3000,
                separation: 3.4,
                label_noise: 0.005,
                majority: 0.0,
                ordinal: false,
            },
            Application::Pendigits => Profile {
                n_features: 16,
                n_informative: 12,
                n_classes: 10,
                n_samples: 5000,
                separation: 2.0,
                label_noise: 0.02,
                majority: 0.0,
                ordinal: false,
            },
            Application::RedWine => Profile {
                n_features: 11,
                n_informative: 6,
                n_classes: 6,
                n_samples: 1599,
                separation: 1.6,
                label_noise: 0.18,
                majority: 0.0,
                ordinal: true,
            },
            Application::WhiteWine => Profile {
                n_features: 11,
                n_informative: 6,
                n_classes: 7,
                n_samples: 4898,
                separation: 1.5,
                label_noise: 0.18,
                majority: 0.0,
                ordinal: true,
            },
        }
    }

    /// Generates the synthetic dataset for this application.
    ///
    /// Deterministic in `seed`; the benchmark harness uses seed 7 for every
    /// reproduction run.
    pub fn generate(self, seed: u64) -> Dataset {
        let p = self.profile();
        let mut rng = StdRng::seed_from_u64(seed ^ hash_name(self.name()));
        if p.ordinal {
            generate_ordinal(self.name(), &p, &mut rng)
        } else {
            generate_clusters(self.name(), &p, &mut rng)
        }
    }
}

struct Profile {
    n_features: usize,
    n_informative: usize,
    n_classes: usize,
    n_samples: usize,
    /// Distance between class centroids in units of the noise σ.
    separation: f64,
    /// Probability a sample's label is re-drawn uniformly (irreducible
    /// error, capping achievable accuracy).
    label_noise: f64,
    /// Prior probability of class 0 *before* label noise. Medical datasets
    /// are dominated by the "normal" class — ~54% for arrhythmia, ~78% for
    /// cardiotocography — so the prior is set above those targets to
    /// compensate for the uniform label-noise redraw (realized fraction ≈
    /// `majority·(1-noise) + noise/n_classes`). `0.0` means uniform priors.
    majority: f64,
    ordinal: bool,
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

/// Nominal classes: Gaussian clusters on the informative subspace, pure
/// noise elsewhere.
fn generate_clusters(name: &str, p: &Profile, rng: &mut StdRng) -> Dataset {
    // Class centroids over informative dims.
    let centroids: Vec<Vec<f64>> = (0..p.n_classes)
        .map(|_| {
            (0..p.n_informative)
                .map(|_| rng.gen_range(-1.0..1.0) * p.separation)
                .collect()
        })
        .collect();
    let mut x = Vec::with_capacity(p.n_samples);
    let mut y = Vec::with_capacity(p.n_samples);
    for _ in 0..p.n_samples {
        let true_class = if p.majority > 0.0 && rng.gen_bool(p.majority) {
            0
        } else if p.majority > 0.0 {
            rng.gen_range(1..p.n_classes)
        } else {
            rng.gen_range(0..p.n_classes)
        };
        let mut row = Vec::with_capacity(p.n_features);
        for (f, _) in (0..p.n_features).enumerate() {
            let base = centroids[true_class].get(f).copied().unwrap_or(0.0);
            row.push(base + gaussian(rng));
        }
        let label = if rng.gen_bool(p.label_noise) {
            rng.gen_range(0..p.n_classes)
        } else {
            true_class
        };
        x.push(row);
        y.push(label);
    }
    Dataset::new(name, x, y, p.n_classes)
}

/// Ordinal labels (wine quality): a linear latent score over the
/// informative features, thresholded into bands — the structure that makes
/// SVM regression competitive with trees.
fn generate_ordinal(name: &str, p: &Profile, rng: &mut StdRng) -> Dataset {
    let weights: Vec<f64> = (0..p.n_informative)
        .map(|_| rng.gen_range(-1.0..1.0))
        .collect();
    let wnorm: f64 = weights.iter().map(|w| w * w).sum::<f64>().sqrt();
    let mut x = Vec::with_capacity(p.n_samples);
    let mut scores = Vec::with_capacity(p.n_samples);
    for _ in 0..p.n_samples {
        let row: Vec<f64> = (0..p.n_features).map(|_| gaussian(rng)).collect();
        let score: f64 = weights.iter().zip(&row).map(|(w, v)| w * v).sum::<f64>() / wnorm
            * p.separation
            + gaussian(rng) * 0.6;
        scores.push(score);
        x.push(row);
    }
    // Quantile thresholds with a centre-heavy distribution, like real wine
    // quality scores (most wines are average).
    let mut sorted = scores.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let quantiles: Vec<f64> = centre_heavy_quantiles(p.n_classes)
        .into_iter()
        .map(|q| sorted[((sorted.len() - 1) as f64 * q) as usize])
        .collect();
    let y: Vec<usize> = scores
        .iter()
        .map(|s| {
            let band = quantiles.iter().filter(|q| s > q).count();
            if rng.gen_bool(p.label_noise) {
                // Ordinal noise: drift one band, not a uniform redraw.
                if rng.gen_bool(0.5) {
                    band.saturating_sub(1)
                } else {
                    (band + 1).min(p.n_classes - 1)
                }
            } else {
                band
            }
        })
        .collect();
    Dataset::new(name, x, y, p.n_classes)
}

/// Cut points concentrating mass in the middle bands.
fn centre_heavy_quantiles(n_classes: usize) -> Vec<f64> {
    let n = n_classes as f64;
    (1..n_classes)
        .map(|i| {
            let u = i as f64 / n;
            // Smoothstep-like warp pushes cuts outward so middle bands are
            // wide.
            0.5 + 0.5 * (2.0 * u - 1.0).powi(3).signum() * (2.0 * u - 1.0).abs().powf(0.6)
        })
        .map(|q| q.clamp(0.02, 0.98))
        .collect()
}

/// Box–Muller standard normal.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_the_paper() {
        let expect = [
            (Application::Arrhythmia, 263, 11, 452),
            (Application::Cardio, 19, 3, 2126),
            (Application::GasId, 127, 6, 2000),
            (Application::Har, 12, 5, 3000),
            (Application::Pendigits, 16, 10, 5000),
            (Application::RedWine, 11, 6, 1599),
            (Application::WhiteWine, 11, 7, 4898),
        ];
        for (app, feats, classes, samples) in expect {
            let d = app.generate(7);
            assert_eq!(d.n_features(), feats, "{}", app.name());
            assert_eq!(d.n_classes, classes, "{}", app.name());
            assert_eq!(d.len(), samples, "{}", app.name());
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = Application::Cardio.generate(7);
        let b = Application::Cardio.generate(7);
        assert_eq!(a, b);
        let c = Application::Cardio.generate(8);
        assert_ne!(a, c);
    }

    #[test]
    fn different_apps_differ_even_with_same_seed() {
        let red = Application::RedWine.generate(7);
        let white = Application::WhiteWine.generate(7);
        assert_ne!(red.x[0], white.x[0]);
    }

    #[test]
    fn every_class_is_represented() {
        for app in Application::ALL {
            let d = app.generate(7);
            let mut seen = vec![false; d.n_classes];
            for &l in &d.y {
                seen[l] = true;
            }
            assert!(seen.iter().all(|&s| s), "{} missing a class", app.name());
        }
    }

    #[test]
    fn ordinal_labels_correlate_with_latent_direction() {
        // Wine labels should be predictable by a linear model far above
        // chance — the property that makes SVM-R shine there.
        let d = Application::RedWine.generate(7);
        // Crude check: class means of the per-row sums of informative
        // features should be monotone-ish; verify spread of per-class means
        // of the first feature is non-trivial... simplest: chance is 1/6,
        // verify a 1-nearest-centroid on raw features beats 1.5x chance.
        let mut centroids = vec![vec![0.0; d.n_features()]; d.n_classes];
        let mut counts = vec![0usize; d.n_classes];
        for (row, &l) in d.x.iter().zip(&d.y) {
            counts[l] += 1;
            for (c, v) in centroids[l].iter_mut().zip(row) {
                *c += v;
            }
        }
        for (c, n) in centroids.iter_mut().zip(&counts) {
            if *n > 0 {
                for v in c.iter_mut() {
                    *v /= *n as f64;
                }
            }
        }
        let correct =
            d.x.iter()
                .zip(&d.y)
                .filter(|(row, &l)| {
                    let best = centroids
                        .iter()
                        .enumerate()
                        .min_by(|(_, a), (_, b)| dist(row, a).partial_cmp(&dist(row, b)).unwrap())
                        .unwrap()
                        .0;
                    best == l
                })
                .count();
        let acc = correct as f64 / d.len() as f64;
        assert!(
            acc > 0.25,
            "nearest-centroid accuracy {acc} too close to chance"
        );
    }

    fn dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }
}
