//! Evaluation metrics.

/// Fraction of predictions equal to the ground truth.
///
/// # Panics
/// Panics if the two iterators have different lengths or are empty.
///
/// ```
/// use ml::metrics::accuracy;
/// let acc = accuracy([0usize, 1, 2].into_iter(), [0usize, 1, 1].into_iter());
/// assert!((acc - 2.0 / 3.0).abs() < 1e-12);
/// ```
pub fn accuracy(
    predictions: impl Iterator<Item = usize>,
    truth: impl Iterator<Item = usize>,
) -> f64 {
    let mut correct = 0usize;
    let mut total = 0usize;
    let mut t = truth;
    for p in predictions {
        let Some(actual) = t.next() else {
            panic!("more predictions than labels")
        };
        correct += (p == actual) as usize;
        total += 1;
    }
    assert!(t.next().is_none(), "more labels than predictions");
    assert!(total > 0, "accuracy of an empty set");
    correct as f64 / total as f64
}

/// Confusion matrix: `matrix[truth][pred]` counts.
pub fn confusion_matrix(
    predictions: impl Iterator<Item = usize>,
    truth: impl Iterator<Item = usize>,
    n_classes: usize,
) -> Vec<Vec<usize>> {
    let mut m = vec![vec![0usize; n_classes]; n_classes];
    for (p, t) in predictions.zip(truth) {
        m[t][p] += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_and_zero_accuracy() {
        assert_eq!(
            accuracy([1usize, 2].into_iter(), [1usize, 2].into_iter()),
            1.0
        );
        assert_eq!(
            accuracy([0usize, 0].into_iter(), [1usize, 2].into_iter()),
            0.0
        );
    }

    #[test]
    #[should_panic(expected = "more labels")]
    fn length_mismatch_panics() {
        accuracy([0usize].into_iter(), [0usize, 1].into_iter());
    }

    #[test]
    fn confusion_matrix_diagonal_for_perfect_predictions() {
        let m = confusion_matrix([0usize, 1, 1].into_iter(), [0usize, 1, 1].into_iter(), 2);
        assert_eq!(m, vec![vec![1, 0], vec![0, 2]]);
    }
}

/// Per-class precision, recall and F1 derived from a confusion matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassReport {
    /// Class index.
    pub class: usize,
    /// True positives / predicted positives (1.0 when nothing predicted).
    pub precision: f64,
    /// True positives / actual positives (1.0 when class absent).
    pub recall: f64,
    /// Harmonic mean of precision and recall (0.0 when both are 0).
    pub f1: f64,
}

/// Computes per-class reports from a confusion matrix
/// (`matrix[truth][pred]`).
pub fn class_reports(matrix: &[Vec<usize>]) -> Vec<ClassReport> {
    let k = matrix.len();
    (0..k)
        .map(|c| {
            let tp = matrix[c][c];
            let predicted: usize = (0..k).map(|t| matrix[t][c]).sum();
            let actual: usize = matrix[c].iter().sum();
            let precision = if predicted == 0 {
                1.0
            } else {
                tp as f64 / predicted as f64
            };
            let recall = if actual == 0 {
                1.0
            } else {
                tp as f64 / actual as f64
            };
            let f1 = if precision + recall == 0.0 {
                0.0
            } else {
                2.0 * precision * recall / (precision + recall)
            };
            ClassReport {
                class: c,
                precision,
                recall,
                f1,
            }
        })
        .collect()
}

/// Unweighted mean of per-class F1 scores — robust to the class imbalance
/// of the medical datasets (arrhythmia is 54% "normal"; plain accuracy
/// over-credits majority-class classifiers).
pub fn macro_f1(matrix: &[Vec<usize>]) -> f64 {
    let reports = class_reports(matrix);
    if reports.is_empty() {
        return 0.0;
    }
    reports.iter().map(|r| r.f1).sum::<f64>() / reports.len() as f64
}

#[cfg(test)]
mod class_metric_tests {
    use super::*;

    #[test]
    fn perfect_predictions_score_one_everywhere() {
        let m = confusion_matrix([0usize, 1, 2].into_iter(), [0usize, 1, 2].into_iter(), 3);
        for r in class_reports(&m) {
            assert_eq!(r.precision, 1.0);
            assert_eq!(r.recall, 1.0);
            assert_eq!(r.f1, 1.0);
        }
        assert_eq!(macro_f1(&m), 1.0);
    }

    #[test]
    fn majority_class_predictor_has_low_macro_f1_but_decent_accuracy() {
        // 9 of class 0, 1 of class 1, everything predicted 0.
        let truth = [0usize; 9].into_iter().chain([1usize]);
        let pred = [0usize; 10].into_iter();
        let m = confusion_matrix(pred.clone(), truth.clone(), 2);
        let acc = accuracy(pred, truth);
        assert!(acc >= 0.9);
        assert!(macro_f1(&m) < 0.6, "macro f1 {}", macro_f1(&m));
    }

    #[test]
    fn absent_classes_do_not_poison_the_mean() {
        // Class 2 never occurs and is never predicted: precision and
        // recall default to 1.
        let m = confusion_matrix([0usize, 1].into_iter(), [0usize, 1].into_iter(), 3);
        let r = &class_reports(&m)[2];
        assert_eq!(r.precision, 1.0);
        assert_eq!(r.recall, 1.0);
    }

    #[test]
    fn mixed_case_matches_hand_computation() {
        // truth:  0 0 1 1
        // pred:   0 1 1 1
        let m = confusion_matrix(
            [0usize, 1, 1, 1].into_iter(),
            [0usize, 0, 1, 1].into_iter(),
            2,
        );
        let r = class_reports(&m);
        assert!((r[0].precision - 1.0).abs() < 1e-12);
        assert!((r[0].recall - 0.5).abs() < 1e-12);
        assert!((r[1].precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((r[1].recall - 1.0).abs() < 1e-12);
    }
}
