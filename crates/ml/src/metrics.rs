//! Evaluation metrics.

/// Why a metric could not be computed.
///
/// Carried as data instead of a panic so harnesses that score *generated*
/// models (the differential fuzzer, hyperparameter search over synthetic
/// folds) can distinguish "the metric rejected this input" from "two
/// engines disagree on a valid input".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsError {
    /// The prediction and label streams have different lengths.
    LengthMismatch {
        /// Number of predictions supplied.
        predictions: usize,
        /// Number of ground-truth labels supplied.
        labels: usize,
    },
    /// Both streams are empty: accuracy is 0/0.
    Empty,
}

impl std::fmt::Display for MetricsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricsError::LengthMismatch {
                predictions,
                labels,
            } => write!(
                f,
                "length mismatch: {predictions} predictions scored against {labels} labels"
            ),
            MetricsError::Empty => write!(f, "accuracy of an empty prediction set is undefined"),
        }
    }
}

impl std::error::Error for MetricsError {}

/// Fraction of predictions equal to the ground truth.
///
/// Returns [`MetricsError::LengthMismatch`] when the streams disagree on
/// length and [`MetricsError::Empty`] when both are empty (0/0 would
/// otherwise surface as `NaN` and silently poison every downstream
/// comparison).
///
/// ```
/// use ml::metrics::accuracy;
/// let acc = accuracy([0usize, 1, 2].into_iter(), [0usize, 1, 1].into_iter()).unwrap();
/// assert!((acc - 2.0 / 3.0).abs() < 1e-12);
/// ```
pub fn accuracy(
    predictions: impl Iterator<Item = usize>,
    truth: impl Iterator<Item = usize>,
) -> Result<f64, MetricsError> {
    let mut preds = predictions;
    let mut labels = truth;
    let mut correct = 0usize;
    let mut total = 0usize;
    loop {
        match (preds.next(), labels.next()) {
            (Some(p), Some(t)) => {
                correct += (p == t) as usize;
                total += 1;
            }
            (Some(_), None) => {
                return Err(MetricsError::LengthMismatch {
                    predictions: total + 1 + preds.count(),
                    labels: total,
                })
            }
            (None, Some(_)) => {
                return Err(MetricsError::LengthMismatch {
                    predictions: total,
                    labels: total + 1 + labels.count(),
                })
            }
            (None, None) => break,
        }
    }
    if total == 0 {
        return Err(MetricsError::Empty);
    }
    Ok(correct as f64 / total as f64)
}

/// Confusion matrix: `matrix[truth][pred]` counts.
pub fn confusion_matrix(
    predictions: impl Iterator<Item = usize>,
    truth: impl Iterator<Item = usize>,
    n_classes: usize,
) -> Vec<Vec<usize>> {
    let mut m = vec![vec![0usize; n_classes]; n_classes];
    for (p, t) in predictions.zip(truth) {
        m[t][p] += 1;
    }
    m
}

/// Per-class precision, recall and F1 derived from a confusion matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassReport {
    /// Class index.
    pub class: usize,
    /// True positives / predicted positives (1.0 when nothing predicted).
    pub precision: f64,
    /// True positives / actual positives (1.0 when class absent).
    pub recall: f64,
    /// Harmonic mean of precision and recall (0.0 when both are 0).
    pub f1: f64,
}

/// Computes per-class reports from a confusion matrix
/// (`matrix[truth][pred]`).
pub fn class_reports(matrix: &[Vec<usize>]) -> Vec<ClassReport> {
    let k = matrix.len();
    (0..k)
        .map(|c| {
            let tp = matrix[c][c];
            let predicted: usize = (0..k).map(|t| matrix[t][c]).sum();
            let actual: usize = matrix[c].iter().sum();
            let precision = if predicted == 0 {
                1.0
            } else {
                tp as f64 / predicted as f64
            };
            let recall = if actual == 0 {
                1.0
            } else {
                tp as f64 / actual as f64
            };
            let f1 = if precision + recall == 0.0 {
                0.0
            } else {
                2.0 * precision * recall / (precision + recall)
            };
            ClassReport {
                class: c,
                precision,
                recall,
                f1,
            }
        })
        .collect()
}

/// Unweighted mean of per-class F1 scores — robust to the class imbalance
/// of the medical datasets (arrhythmia is 54% "normal"; plain accuracy
/// over-credits majority-class classifiers).
pub fn macro_f1(matrix: &[Vec<usize>]) -> f64 {
    let reports = class_reports(matrix);
    if reports.is_empty() {
        return 0.0;
    }
    reports.iter().map(|r| r.f1).sum::<f64>() / reports.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_and_zero_accuracy() {
        assert_eq!(
            accuracy([1usize, 2].into_iter(), [1usize, 2].into_iter()).unwrap(),
            1.0
        );
        assert_eq!(
            accuracy([0usize, 0].into_iter(), [1usize, 2].into_iter()).unwrap(),
            0.0
        );
    }

    #[test]
    fn length_mismatch_is_an_error_in_both_directions() {
        assert_eq!(
            accuracy([0usize].into_iter(), [0usize, 1].into_iter()),
            Err(MetricsError::LengthMismatch {
                predictions: 1,
                labels: 2
            })
        );
        assert_eq!(
            accuracy([0usize, 1, 2].into_iter(), [0usize].into_iter()),
            Err(MetricsError::LengthMismatch {
                predictions: 3,
                labels: 1
            })
        );
    }

    #[test]
    fn empty_set_is_an_error_not_a_nan() {
        // 0/0 must surface as a typed error; a silent NaN would compare
        // false against every threshold and corrupt model selection.
        let r = accuracy(std::iter::empty(), std::iter::empty());
        assert_eq!(r, Err(MetricsError::Empty));
    }

    #[test]
    fn confusion_matrix_diagonal_for_perfect_predictions() {
        let m = confusion_matrix([0usize, 1, 1].into_iter(), [0usize, 1, 1].into_iter(), 2);
        assert_eq!(m, vec![vec![1, 0], vec![0, 2]]);
    }
}

#[cfg(test)]
mod class_metric_tests {
    use super::*;

    #[test]
    fn perfect_predictions_score_one_everywhere() {
        let m = confusion_matrix([0usize, 1, 2].into_iter(), [0usize, 1, 2].into_iter(), 3);
        for r in class_reports(&m) {
            assert_eq!(r.precision, 1.0);
            assert_eq!(r.recall, 1.0);
            assert_eq!(r.f1, 1.0);
        }
        assert_eq!(macro_f1(&m), 1.0);
    }

    #[test]
    fn majority_class_predictor_has_low_macro_f1_but_decent_accuracy() {
        // 9 of class 0, 1 of class 1, everything predicted 0.
        let truth = [0usize; 9].into_iter().chain([1usize]);
        let pred = [0usize; 10].into_iter();
        let m = confusion_matrix(pred.clone(), truth.clone(), 2);
        let acc = accuracy(pred, truth).unwrap();
        assert!(acc >= 0.9);
        assert!(macro_f1(&m) < 0.6, "macro f1 {}", macro_f1(&m));
    }

    #[test]
    fn absent_classes_do_not_poison_the_mean() {
        // Class 2 never occurs and is never predicted: precision and
        // recall default to 1.
        let m = confusion_matrix([0usize, 1].into_iter(), [0usize, 1].into_iter(), 3);
        let r = &class_reports(&m)[2];
        assert_eq!(r.precision, 1.0);
        assert_eq!(r.recall, 1.0);
    }

    #[test]
    fn mixed_case_matches_hand_computation() {
        // truth:  0 0 1 1
        // pred:   0 1 1 1
        let m = confusion_matrix(
            [0usize, 1, 1, 1].into_iter(),
            [0usize, 0, 1, 1].into_iter(),
            2,
        );
        let r = class_reports(&m);
        assert!((r[0].precision - 1.0).abs() < 1e-12);
        assert!((r[0].recall - 0.5).abs() < 1e-12);
        assert!((r[1].precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((r[1].recall - 1.0).abs() < 1e-12);
    }
}
