//! Operation counting for Table II's `#C` / `#M` columns.
//!
//! The paper estimates each algorithm's *potential hardware cost* by
//! counting its dominant operations — comparisons and two-input MACs — in
//! the trained model, then pricing them with Table I's component costs.

use serde::Serialize;

use crate::forest::RandomForest;
use crate::linear::{LogisticRegression, SvmClassifier, SvmRegressor};
use crate::mlp::Mlp;
use crate::tree::DecisionTree;

/// Dominant-operation counts of one trained model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct OpCount {
    /// Magnitude comparisons per inference (`#C`).
    pub comparisons: usize,
    /// Two-input multiply-accumulates per inference (`#M`).
    pub macs: usize,
    /// ReLU activations per inference (MLPs only).
    pub relus: usize,
}

/// Anything whose inference cost can be summarized as op counts.
pub trait CountOps {
    /// Dominant-operation counts for one inference.
    fn op_count(&self) -> OpCount;
}

impl CountOps for DecisionTree {
    fn op_count(&self) -> OpCount {
        OpCount {
            comparisons: self.comparison_count(),
            ..Default::default()
        }
    }
}

impl CountOps for RandomForest {
    fn op_count(&self) -> OpCount {
        OpCount {
            comparisons: self.comparison_count(),
            ..Default::default()
        }
    }
}

impl CountOps for SvmRegressor {
    fn op_count(&self) -> OpCount {
        OpCount {
            // One MAC per feature; nearest-label mapping costs one
            // comparison per class boundary plus the two range clamps
            // (paper's SVM-R `#C` is `classes + 1`).
            macs: self.weights().len(),
            comparisons: self.n_classes() + 1,
            ..Default::default()
        }
    }
}

impl CountOps for SvmClassifier {
    fn op_count(&self) -> OpCount {
        OpCount {
            macs: self.machine_count() * self.n_features(),
            comparisons: self.machine_count(),
            ..Default::default()
        }
    }
}

impl CountOps for LogisticRegression {
    fn op_count(&self) -> OpCount {
        OpCount {
            macs: self.n_classes() * self.n_features(),
            comparisons: self.n_classes(),
            ..Default::default()
        }
    }
}

impl CountOps for Mlp {
    fn op_count(&self) -> OpCount {
        OpCount {
            macs: self.mac_count(),
            relus: self.relu_count(),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::Application;
    use crate::tree::TreeParams;

    #[test]
    fn tree_counts_internal_nodes_only() {
        let d = Application::Cardio.generate(7);
        let t = DecisionTree::fit(&d, TreeParams::with_depth(2));
        let ops = t.op_count();
        assert!(ops.comparisons <= 3);
        assert_eq!(ops.macs, 0);
        assert_eq!(ops.relus, 0);
    }

    #[test]
    fn svm_c_counts_match_table_ii_formulas() {
        // Arrhythmia: 263 features, 11 classes → 55 machines, 14,465 MACs
        // (the paper prints "14k").
        let d = Application::Arrhythmia.generate(7);
        let m = SvmClassifier::fit(&d, 1, 1e-3, 7);
        let ops = m.op_count();
        assert_eq!(ops.comparisons, 55);
        assert_eq!(ops.macs, 55 * 263);
    }

    #[test]
    fn svm_r_counts_match_table_ii_formulas() {
        // RedWine: 11 features, 6 classes → #M = 11, #C = 7.
        let d = Application::RedWine.generate(7);
        let m = SvmRegressor::fit(&d, 1, 1e-4);
        let ops = m.op_count();
        assert_eq!(ops.macs, 11);
        assert_eq!(ops.comparisons, 7);
    }

    #[test]
    fn lr_counts_match_table_ii_formulas() {
        // Arrhythmia LR: 263 × 11 = 2893 MACs — exactly the paper's cell.
        let d = Application::Arrhythmia.generate(7);
        let m = LogisticRegression::fit(&d, 1, 0.1);
        assert_eq!(m.op_count().macs, 2893);
        assert_eq!(m.op_count().comparisons, 11);
    }
}
