//! Fixed-point quantization of features and trained models.
//!
//! Printed classifiers compute on n-bit integers (the paper sweeps
//! 4/8/12/16-bit datapaths and picks, per application, the narrowest width
//! that preserves accuracy — §IV-A). This module provides:
//!
//! * [`FeatureQuantizer`] — affine min/max mapping of sensor features onto
//!   `0 ..= 2^n - 1` codes (what an ADC in Fig. 18 would emit);
//! * [`QuantizedTree`] — integer-threshold mirror of a trained
//!   [`DecisionTree`], the exact function the digital tree hardware
//!   implements;
//! * [`QuantizedSvm`] — integer-coefficient mirror of a trained
//!   [`SvmRegressor`], decomposed into positive/negative coefficient sums
//!   so the hardware can stay unsigned (`P − N > boundary` becomes
//!   `P > N + boundary`).

use serde::{Deserialize, Serialize};

use crate::data::Dataset;
use crate::linear::SvmRegressor;
use crate::tree::{DecisionTree, TreeNode};

/// Largest representable code on a `bits`-wide datapath: `2^bits - 1`,
/// saturating to `u64::MAX` at `bits >= 64` instead of overflowing the
/// shift. This is the single source of truth for code-space bounds —
/// [`FeatureQuantizer::max_code`] and the analog variation engine both
/// delegate here, so the boundary arithmetic (the PR 8 `1 << 64`
/// overflow class) lives in exactly one place.
pub fn max_code_for_bits(bits: usize) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Per-feature affine quantizer onto `0 ..= 2^bits - 1`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureQuantizer {
    min: Vec<f64>,
    step: Vec<f64>,
    bits: usize,
}

impl FeatureQuantizer {
    /// Fits per-feature ranges on `data` for a `bits`-wide datapath.
    ///
    /// # Panics
    /// Panics unless `1 <= bits <= 16`.
    pub fn fit(data: &Dataset, bits: usize) -> Self {
        assert!((1..=16).contains(&bits), "supported widths are 1..=16 bits");
        let d = data.n_features();
        let levels = ((1u32 << bits) - 1) as f64;
        let mut min = vec![f64::INFINITY; d];
        let mut max = vec![f64::NEG_INFINITY; d];
        for row in &data.x {
            for ((mn, mx), v) in min.iter_mut().zip(&mut max).zip(row) {
                *mn = mn.min(*v);
                *mx = mx.max(*v);
            }
        }
        let step = min
            .iter()
            .zip(&max)
            .map(|(mn, mx)| {
                let range = mx - mn;
                if range < 1e-12 {
                    1.0
                } else {
                    range / levels
                }
            })
            .collect();
        FeatureQuantizer { min, step, bits }
    }

    /// Datapath width.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Highest representable code.
    pub fn max_code(&self) -> u64 {
        max_code_for_bits(self.bits)
    }

    /// Quantizes one feature value (clamped to the code range).
    pub fn code(&self, feature: usize, value: f64) -> u64 {
        let q = ((value - self.min[feature]) / self.step[feature]).round();
        (q.max(0.0) as u64).min(self.max_code())
    }

    /// Quantizes a full row.
    pub fn code_row(&self, row: &[f64]) -> Vec<u64> {
        row.iter()
            .enumerate()
            .map(|(f, &v)| self.code(f, v))
            .collect()
    }

    /// Integer threshold such that `x <= thr ⟺ code(x) <= code_thr`
    /// (up to quantization error): `floor((thr - min) / step)`.
    pub fn threshold_code(&self, feature: usize, threshold: f64) -> u64 {
        let q = ((threshold - self.min[feature]) / self.step[feature]).floor();
        (q.max(0.0) as u64).min(self.max_code())
    }

    /// The affine step (LSB size) of one feature, used when folding
    /// real-valued coefficients into the integer domain.
    pub fn step_of(&self, feature: usize) -> f64 {
        self.step[feature]
    }

    /// The affine offset of one feature.
    pub fn min_of(&self, feature: usize) -> f64 {
        self.min[feature]
    }
}

/// A quantized split in heap layout: `(position, feature, code)`.
pub type QHeapSplit = (usize, usize, u64);
/// A quantized leaf in heap layout: `(position, depth, class)`.
pub type QHeapLeaf = (usize, usize, usize);

/// Integer-threshold decision tree: the function the tree hardware computes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedTree {
    nodes: Vec<QNode>,
    n_classes: usize,
    bits: usize,
}

/// Quantized tree node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QNode {
    /// `code[feature] <= threshold` goes left.
    Split {
        /// Feature index tested.
        feature: usize,
        /// Integer threshold code.
        threshold: u64,
        /// Left child index.
        left: usize,
        /// Right child index.
        right: usize,
    },
    /// Leaf class.
    Leaf {
        /// Predicted class.
        class: usize,
    },
}

impl QuantizedTree {
    /// Quantizes a trained tree's thresholds through `fq`.
    pub fn from_tree(tree: &DecisionTree, fq: &FeatureQuantizer) -> Self {
        let nodes = tree
            .nodes()
            .iter()
            .map(|n| match n {
                TreeNode::Leaf { class } => QNode::Leaf { class: *class },
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => QNode::Split {
                    feature: *feature,
                    threshold: fq.threshold_code(*feature, *threshold),
                    left: *left,
                    right: *right,
                },
            })
            .collect();
        QuantizedTree {
            nodes,
            n_classes: tree.n_classes(),
            bits: fq.bits(),
        }
    }

    /// Predicts from quantized feature codes.
    pub fn predict(&self, codes: &[u64]) -> usize {
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                QNode::Leaf { class } => return *class,
                QNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if codes[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// All nodes; index 0 is the root.
    pub fn nodes(&self) -> &[QNode] {
        &self.nodes
    }

    /// Datapath width.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Internal-node count.
    pub fn comparison_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, QNode::Split { .. }))
            .count()
    }

    /// Tree depth.
    pub fn depth(&self) -> usize {
        fn d(nodes: &[QNode], i: usize) -> usize {
            match &nodes[i] {
                QNode::Leaf { .. } => 0,
                QNode::Split { left, right, .. } => 1 + d(nodes, *left).max(d(nodes, *right)),
            }
        }
        d(&self.nodes, 0)
    }

    /// Distinct features tested.
    pub fn used_features(&self) -> Vec<usize> {
        let mut f: Vec<usize> = self
            .nodes
            .iter()
            .filter_map(|n| match n {
                QNode::Split { feature, .. } => Some(*feature),
                _ => None,
            })
            .collect();
        f.sort_unstable();
        f.dedup();
        f
    }

    /// Heap positions as in [`DecisionTree::heap_layout`], over quantized
    /// thresholds: `(splits: (position, feature, code), leaves: (position,
    /// depth, class))`.
    pub fn heap_layout(&self) -> (Vec<QHeapSplit>, Vec<QHeapLeaf>) {
        let mut splits = Vec::new();
        let mut leaves = Vec::new();
        let mut stack = vec![(0usize, 1usize, 0usize)];
        while let Some((node, pos, depth)) = stack.pop() {
            match &self.nodes[node] {
                QNode::Leaf { class } => leaves.push((pos, depth, *class)),
                QNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    splits.push((pos, *feature, *threshold));
                    stack.push((*left, pos * 2, depth + 1));
                    stack.push((*right, pos * 2 + 1, depth + 1));
                }
            }
        }
        splits.sort_unstable_by_key(|s| s.0);
        leaves.sort_unstable_by_key(|l| l.0);
        (splits, leaves)
    }
}

/// Integer SVM regressor in positive/negative-sum form.
///
/// The real decision function `w·x + b` is folded through the feature
/// quantizer into `y ≈ c0 + s · D` with `D = Σ g_i · code_i` for integer
/// coefficients `g_i`. Splitting by coefficient sign,
/// `D = P − N`, and the class-boundary tests `D > B_c` become the unsigned
/// comparisons `P > N + B_c` the hardware implements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedSvm {
    /// `(feature, magnitude)` terms with positive integer coefficients.
    pos_terms: Vec<(usize, u64)>,
    /// `(feature, magnitude)` terms with negative integer coefficients.
    neg_terms: Vec<(usize, u64)>,
    /// Class boundaries in the integer domain, ascending: crossing
    /// `boundaries[c]` moves the prediction from class `c` to `c+1`.
    boundaries: Vec<i64>,
    n_classes: usize,
    bits: usize,
}

impl QuantizedSvm {
    /// Quantizes a trained regressor's coefficients to `bits`-wide signed
    /// magnitudes through `fq`.
    pub fn from_svm(svm: &SvmRegressor, fq: &FeatureQuantizer) -> Self {
        let bits = fq.bits();
        // Fold the affine feature mapping into the coefficients:
        // w·x = Σ w_i (min_i + step_i · code_i).
        let g: Vec<f64> = svm
            .weights()
            .iter()
            .enumerate()
            .map(|(f, w)| w * fq.step_of(f))
            .collect();
        let c0: f64 = svm
            .weights()
            .iter()
            .enumerate()
            .map(|(f, w)| w * fq.min_of(f))
            .sum::<f64>()
            + svm.bias();
        let gmax = g.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let coeff_max = ((1u64 << (bits - 1)) - 1).max(1) as f64;
        let scale = if gmax < 1e-18 { 1.0 } else { gmax / coeff_max };
        let mut pos_terms = Vec::new();
        let mut neg_terms = Vec::new();
        for (f, gi) in g.iter().enumerate() {
            let mag = (gi.abs() / scale).round() as u64;
            if mag == 0 {
                continue;
            }
            if *gi >= 0.0 {
                pos_terms.push((f, mag));
            } else {
                neg_terms.push((f, mag));
            }
        }
        // Class boundary c/c+1 sits at label value c + 0.5.
        let boundaries = (0..svm.n_classes() - 1)
            .map(|c| (((c as f64 + 0.5) - c0) / scale).round() as i64)
            .collect();
        QuantizedSvm {
            pos_terms,
            neg_terms,
            boundaries,
            n_classes: svm.n_classes(),
            bits,
        }
    }

    /// Predicts from quantized feature codes, exactly as the hardware does:
    /// unsigned sums `P` and `N`, then `P > N + B_c` per boundary.
    pub fn predict(&self, codes: &[u64]) -> usize {
        let p = self.positive_sum(codes);
        let n = self.negative_sum(codes);
        let d = p as i64 - n as i64;
        let mut class = 0usize;
        for &b in &self.boundaries {
            if d > b {
                class += 1;
            }
        }
        class.min(self.n_classes - 1)
    }

    /// `P`: sum of positive-coefficient products.
    pub fn positive_sum(&self, codes: &[u64]) -> u64 {
        self.pos_terms.iter().map(|&(f, m)| m * codes[f]).sum()
    }

    /// `N`: sum of negative-coefficient magnitudes times codes.
    pub fn negative_sum(&self, codes: &[u64]) -> u64 {
        self.neg_terms.iter().map(|&(f, m)| m * codes[f]).sum()
    }

    /// Positive terms `(feature, magnitude)`.
    pub fn pos_terms(&self) -> &[(usize, u64)] {
        &self.pos_terms
    }

    /// Negative terms `(feature, magnitude)`.
    pub fn neg_terms(&self) -> &[(usize, u64)] {
        &self.neg_terms
    }

    /// Ascending class boundaries in the integer domain.
    pub fn boundaries(&self) -> &[i64] {
        &self.boundaries
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Datapath width.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Number of multiplies per inference (non-zero integer coefficients).
    pub fn mac_count(&self) -> usize {
        self.pos_terms.len() + self.neg_terms.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Standardizer;
    use crate::metrics::accuracy;
    use crate::synth::Application;
    use crate::tree::TreeParams;

    fn wine() -> (Dataset, Dataset) {
        let data = Application::RedWine.generate(7);
        let (train, test) = data.split(0.7, 42);
        let s = Standardizer::fit(&train);
        (s.transform(&train), s.transform(&test))
    }

    #[test]
    fn max_code_boundary_widths_never_overflow() {
        // The PR 8 overflow class: `(1u64 << bits) - 1` is UB-adjacent at
        // bits = 64 and silently wrong beyond. Pin the exact boundary
        // widths against an independent formulation.
        for bits in [1usize, 31, 32, 63] {
            assert_eq!(
                max_code_for_bits(bits),
                u64::MAX >> (64 - bits),
                "width {bits}"
            );
        }
        assert_eq!(max_code_for_bits(1), 1);
        assert_eq!(max_code_for_bits(31), (1u64 << 31) - 1);
        assert_eq!(max_code_for_bits(32), u32::MAX as u64);
        assert_eq!(max_code_for_bits(63), (1u64 << 63) - 1);
        // At and past the word width the code space saturates.
        assert_eq!(max_code_for_bits(64), u64::MAX);
        assert_eq!(max_code_for_bits(65), u64::MAX);
        // Strictly monotone below saturation.
        for bits in 1..64usize {
            assert!(max_code_for_bits(bits) < max_code_for_bits(bits + 1));
        }
    }

    #[test]
    fn quantizer_round_trips_codes_at_every_supported_width() {
        // Property over the supported 1..=16-bit datapaths: every code is
        // within `max_code_for_bits`, and re-coding the decoded value
        // returns the same code (codes are fixed points of code∘decode).
        let (train, _) = wine();
        for bits in [1usize, 4, 8, 12, 16] {
            let fq = FeatureQuantizer::fit(&train, bits);
            assert_eq!(fq.max_code(), max_code_for_bits(bits), "width {bits}");
            for row in train.x.iter().take(40) {
                for (f, &v) in row.iter().enumerate() {
                    let c = fq.code(f, v);
                    assert!(c <= max_code_for_bits(bits), "width {bits}");
                    // Decode through the affine map and re-code: codes
                    // must be fixed points of code ∘ decode.
                    let decoded = fq.min_of(f) + c as f64 * fq.step_of(f);
                    assert_eq!(fq.code(f, decoded), c, "width {bits} feature {f}");
                }
            }
        }
    }

    #[test]
    fn codes_are_in_range_and_monotone() {
        let (train, _) = wine();
        let fq = FeatureQuantizer::fit(&train, 8);
        for row in train.x.iter().take(100) {
            for (f, &v) in row.iter().enumerate() {
                let c = fq.code(f, v);
                assert!(c <= fq.max_code());
                // Monotonicity: a bigger value never gets a smaller code.
                assert!(fq.code(f, v + 1.0) >= c);
            }
        }
        // Out-of-range values clamp.
        assert_eq!(fq.code(0, -1e12), 0);
        assert_eq!(fq.code(0, 1e12), fq.max_code());
    }

    #[test]
    fn quantized_tree_tracks_float_tree_at_8_bits() {
        let (train, test) = wine();
        let tree = DecisionTree::fit(&train, TreeParams::with_depth(4));
        let fq = FeatureQuantizer::fit(&train, 8);
        let qt = QuantizedTree::from_tree(&tree, &fq);
        let float_acc = accuracy(
            test.x.iter().map(|r| tree.predict(r)),
            test.y.iter().copied(),
        )
        .unwrap();
        let q_acc = accuracy(
            test.x.iter().map(|r| qt.predict(&fq.code_row(r))),
            test.y.iter().copied(),
        )
        .unwrap();
        assert!(
            (float_acc - q_acc).abs() < 0.05,
            "float {float_acc} vs quant {q_acc}"
        );
        assert_eq!(qt.comparison_count(), tree.comparison_count());
        assert_eq!(qt.depth(), tree.depth());
    }

    #[test]
    fn narrower_widths_lose_little_on_separable_data() {
        let data = Application::Har.generate(7);
        let (train, test) = data.split(0.7, 42);
        let tree = DecisionTree::fit(&train, TreeParams::with_depth(4));
        for bits in [4, 8, 12, 16] {
            let fq = FeatureQuantizer::fit(&train, bits);
            let qt = QuantizedTree::from_tree(&tree, &fq);
            let acc = accuracy(
                test.x.iter().map(|r| qt.predict(&fq.code_row(r))),
                test.y.iter().copied(),
            )
            .unwrap();
            assert!(acc > 0.85, "{bits}-bit accuracy {acc}");
        }
    }

    #[test]
    fn quantized_svm_tracks_float_svm() {
        let (train, test) = wine();
        let svm = crate::linear::SvmRegressor::fit(&train, 300, 1e-4);
        let fq = FeatureQuantizer::fit(&train, 8);
        let qs = QuantizedSvm::from_svm(&svm, &fq);
        let float_acc = accuracy(
            test.x.iter().map(|r| svm.predict(r)),
            test.y.iter().copied(),
        )
        .unwrap();
        let q_acc = accuracy(
            test.x.iter().map(|r| qs.predict(&fq.code_row(r))),
            test.y.iter().copied(),
        )
        .unwrap();
        assert!(
            (float_acc - q_acc).abs() < 0.08,
            "float {float_acc} vs quant {q_acc}"
        );
    }

    #[test]
    fn svm_boundaries_are_ascending() {
        let (train, _) = wine();
        let svm = crate::linear::SvmRegressor::fit(&train, 100, 1e-4);
        let fq = FeatureQuantizer::fit(&train, 8);
        let qs = QuantizedSvm::from_svm(&svm, &fq);
        for w in qs.boundaries().windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(qs.boundaries().len(), qs.n_classes() - 1);
    }

    #[test]
    fn svm_predict_matches_signed_reference() {
        let (train, test) = wine();
        let svm = crate::linear::SvmRegressor::fit(&train, 100, 1e-4);
        let fq = FeatureQuantizer::fit(&train, 6);
        let qs = QuantizedSvm::from_svm(&svm, &fq);
        for row in test.x.iter().take(50) {
            let codes = fq.code_row(row);
            let d = qs.positive_sum(&codes) as i64 - qs.negative_sum(&codes) as i64;
            let expect = qs
                .boundaries()
                .iter()
                .filter(|&&b| d > b)
                .count()
                .min(qs.n_classes() - 1);
            assert_eq!(qs.predict(&codes), expect);
        }
    }
}

/// Integer-threshold random forest: per-tree quantized mirrors plus a
/// majority vote, the function a printed ensemble engine computes.
///
/// Ties break toward the lowest class index (the ascending-scan argmax the
/// hardware voter implements).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedForest {
    trees: Vec<QuantizedTree>,
    n_classes: usize,
    bits: usize,
}

impl QuantizedForest {
    /// Quantizes every member tree of a trained forest through `fq`.
    pub fn from_forest(forest: &crate::forest::RandomForest, fq: &FeatureQuantizer) -> Self {
        let trees: Vec<QuantizedTree> = forest
            .trees()
            .iter()
            .map(|t| QuantizedTree::from_tree(t, fq))
            .collect();
        let n_classes = trees.first().map_or(1, |t| t.n_classes());
        QuantizedForest {
            trees,
            n_classes,
            bits: fq.bits(),
        }
    }

    /// Majority-vote prediction from quantized feature codes.
    pub fn predict(&self, codes: &[u64]) -> usize {
        let mut votes = vec![0usize; self.n_classes];
        for t in &self.trees {
            votes[t.predict(codes)] += 1;
        }
        let mut best = 0usize;
        for (c, &v) in votes.iter().enumerate() {
            if v > votes[best] {
                best = c;
            }
        }
        best
    }

    /// The member trees.
    pub fn trees(&self) -> &[QuantizedTree] {
        &self.trees
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Datapath width.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Total comparisons across the ensemble (Table II's `#C` for RFs).
    pub fn comparison_count(&self) -> usize {
        self.trees.iter().map(|t| t.comparison_count()).sum()
    }

    /// Union of features tested by any member tree.
    pub fn used_features(&self) -> Vec<usize> {
        let mut f: Vec<usize> = self.trees.iter().flat_map(|t| t.used_features()).collect();
        f.sort_unstable();
        f.dedup();
        f
    }
}

#[cfg(test)]
mod forest_tests {
    use super::*;
    use crate::forest::{ForestParams, RandomForest};
    use crate::synth::Application;

    #[test]
    fn quantized_forest_mirrors_member_trees() {
        let data = Application::Cardio.generate(7);
        let (train, test) = data.split(0.7, 42);
        let forest = RandomForest::fit(&train, ForestParams::paper(4));
        let fq = FeatureQuantizer::fit(&train, 8);
        let qf = QuantizedForest::from_forest(&forest, &fq);
        assert_eq!(qf.trees().len(), 4);
        assert_eq!(qf.n_classes(), 3);
        assert_eq!(
            qf.comparison_count(),
            qf.trees()
                .iter()
                .map(|t| t.comparison_count())
                .sum::<usize>()
        );
        // Votes are consistent with per-tree predictions.
        for row in test.x.iter().take(40) {
            let codes = fq.code_row(row);
            let mut votes = [0usize; 3];
            for t in qf.trees() {
                votes[t.predict(&codes)] += 1;
            }
            let pred = qf.predict(&codes);
            assert_eq!(votes[pred], *votes.iter().max().unwrap());
        }
    }

    #[test]
    fn ties_break_to_the_lowest_class() {
        // Two single-leaf trees voting for different classes: class 1 and
        // class 2 each get one vote; the tie must go to class 1.
        let x = vec![vec![0.0], vec![1.0]];
        let d1 = Dataset::new("a", x.clone(), vec![1, 1], 3);
        let d2 = Dataset::new("b", x.clone(), vec![2, 2], 3);
        let t1 = crate::tree::DecisionTree::fit(&d1, crate::tree::TreeParams::with_depth(0));
        let t2 = crate::tree::DecisionTree::fit(&d2, crate::tree::TreeParams::with_depth(0));
        let fq = FeatureQuantizer::fit(&d1, 4);
        let qf = QuantizedForest {
            trees: vec![
                QuantizedTree::from_tree(&t1, &fq),
                QuantizedTree::from_tree(&t2, &fq),
            ],
            n_classes: 3,
            bits: 4,
        };
        assert_eq!(qf.predict(&[0]), 1);
    }
}
