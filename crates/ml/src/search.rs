//! Randomized hyper-parameter search with k-fold cross-validation.
//!
//! A lightweight analogue of scikit-learn's `RandomizedSearchCV` used in
//! §III: sample hyper-parameter candidates, score each by k-fold CV
//! accuracy on the training set, keep the best.

use exec::rng::{SliceRandom, StdRng};

use crate::data::Dataset;
use crate::linear::SvmRegressor;
use crate::metrics::accuracy;
use crate::tree::{DecisionTree, TreeParams};

/// Deterministic k-fold index split.
///
/// Returns `k` pairs of (train indices, validation indices).
///
/// # Panics
/// Panics if `k < 2` or `k > n`.
pub fn kfold(n: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2 && k <= n, "need 2 <= k <= n");
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    (0..k)
        .map(|fold| {
            let val: Vec<usize> = idx.iter().copied().skip(fold).step_by(k).collect();
            let train: Vec<usize> = idx
                .iter()
                .copied()
                .enumerate()
                .filter(|(pos, _)| pos % k != fold)
                .map(|(_, i)| i)
                .collect();
            (train, val)
        })
        .collect()
}

fn subset(data: &Dataset, idx: &[usize]) -> Dataset {
    Dataset::new(
        data.name.clone(),
        idx.iter().map(|&i| data.x[i].clone()).collect(),
        idx.iter().map(|&i| data.y[i]).collect(),
        data.n_classes,
    )
}

/// Randomized search over CART stopping parameters for a fixed depth.
///
/// Samples `iters` candidates of `(min_samples_split, max_thresholds)` and
/// returns the parameters with the best mean CV accuracy.
pub fn search_tree_params(
    data: &Dataset,
    depth: usize,
    iters: usize,
    folds: usize,
    seed: u64,
) -> TreeParams {
    let mut rng = StdRng::seed_from_u64(seed);
    let splits = kfold(data.len(), folds, seed);
    let mut best = (f64::NEG_INFINITY, TreeParams::with_depth(depth));
    for _ in 0..iters {
        let candidate = TreeParams {
            max_depth: depth,
            min_samples_split: *[2usize, 4, 8, 16].choose(&mut rng).unwrap(),
            max_thresholds: *[16usize, 32, 64].choose(&mut rng).unwrap(),
        };
        let mut score = 0.0;
        for (tr, va) in &splits {
            let train = subset(data, tr);
            let val = subset(data, va);
            let tree = DecisionTree::fit(&train, candidate);
            score += accuracy(val.x.iter().map(|r| tree.predict(r)), val.y.iter().copied());
        }
        score /= splits.len() as f64;
        if score > best.0 {
            best = (score, candidate);
        }
    }
    best.1
}

/// Randomized search over SVM-R regularization and epochs.
///
/// Returns `(epochs, l2)` with the best mean CV accuracy.
pub fn search_svm_params(data: &Dataset, iters: usize, folds: usize, seed: u64) -> (usize, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let splits = kfold(data.len(), folds, seed);
    let mut best = (f64::NEG_INFINITY, (200usize, 1e-4));
    for _ in 0..iters {
        let cand = (
            *[100usize, 200, 300].choose(&mut rng).unwrap(),
            *[1e-5, 1e-4, 1e-3, 1e-2].choose(&mut rng).unwrap(),
        );
        let mut score = 0.0;
        for (tr, va) in &splits {
            let train = subset(data, tr);
            let val = subset(data, va);
            let svm = SvmRegressor::fit(&train, cand.0, cand.1);
            score += accuracy(val.x.iter().map(|r| svm.predict(r)), val.y.iter().copied());
        }
        score /= splits.len() as f64;
        if score > best.0 {
            best = (score, cand);
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::Application;

    #[test]
    fn kfold_partitions_exactly() {
        let folds = kfold(103, 5, 9);
        assert_eq!(folds.len(), 5);
        let mut all_val: Vec<usize> = folds.iter().flat_map(|(_, v)| v.clone()).collect();
        all_val.sort_unstable();
        assert_eq!(all_val, (0..103).collect::<Vec<_>>());
        for (tr, va) in &folds {
            assert_eq!(tr.len() + va.len(), 103);
            assert!(va.iter().all(|i| !tr.contains(i)));
        }
    }

    #[test]
    fn kfold_is_deterministic() {
        assert_eq!(kfold(50, 5, 3), kfold(50, 5, 3));
        assert_ne!(kfold(50, 5, 3), kfold(50, 5, 4));
    }

    #[test]
    fn tree_search_returns_requested_depth() {
        let d = Application::RedWine.generate(7);
        let p = search_tree_params(&d, 4, 3, 3, 7);
        assert_eq!(p.max_depth, 4);
    }

    #[test]
    fn svm_search_returns_sane_candidates() {
        let d = Application::Har.generate(7);
        let (epochs, l2) = search_svm_params(&d, 2, 3, 7);
        assert!([100, 200, 300].contains(&epochs));
        assert!(l2 > 0.0 && l2 <= 1e-2);
    }
}
