//! Randomized hyper-parameter search with k-fold cross-validation.
//!
//! A lightweight analogue of scikit-learn's `RandomizedSearchCV` used in
//! §III: sample hyper-parameter candidates, score each by k-fold CV
//! accuracy on the training set, keep the best.
//!
//! The `candidate × fold` grid is sharded over [`exec::parallel_map`]:
//! every candidate is drawn from the seeded RNG *before* any fit runs
//! (fits never touch the search RNG, so the candidate sequence matches
//! the original serial scan exactly), fold scores are summed in fold
//! order per candidate, and the winner is the first candidate whose mean
//! strictly beats all predecessors — bit-identical to the serial scan at
//! any thread count.

use exec::rng::{SliceRandom, StdRng};

use crate::data::Dataset;
use crate::fit_key;
use crate::linear::SvmRegressor;
use crate::metrics::accuracy;
use crate::tree::{DecisionTree, TreeParams};

/// Hyper-parameter searches run (one per `search_*_params` call).
static SEARCH_RUNS: obs::Counter = obs::Counter::new("ml.search.runs");
/// `(candidate, fold)` CV tasks scored across all searches.
static SEARCH_TASKS: obs::Counter = obs::Counter::new("ml.search.tasks");

/// Deterministic k-fold index split.
///
/// Returns `k` pairs of (train indices, validation indices).
///
/// # Panics
/// Panics if `k < 2` or `k > n`.
pub fn kfold(n: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2 && k <= n, "need 2 <= k <= n");
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    (0..k)
        .map(|fold| {
            let val: Vec<usize> = idx.iter().copied().skip(fold).step_by(k).collect();
            let train: Vec<usize> = idx
                .iter()
                .copied()
                .enumerate()
                .filter(|(pos, _)| pos % k != fold)
                .map(|(_, i)| i)
                .collect();
            (train, val)
        })
        .collect()
}

fn subset(data: &Dataset, idx: &[usize]) -> Dataset {
    Dataset::new(
        data.name.clone(),
        idx.iter().map(|&i| data.x[i].clone()).collect(),
        idx.iter().map(|&i| data.y[i]).collect(),
        data.n_classes,
    )
}

/// Scores every `(candidate, fold)` cell of the CV grid in parallel and
/// reduces candidate-major: fold scores are summed in fold order and the
/// first candidate strictly beating all predecessors wins — exactly the
/// reduction the original serial double loop performed.
fn grid_search<C: Copy + Sync>(
    data: &Dataset,
    splits: &[(Vec<usize>, Vec<usize>)],
    candidates: &[C],
    fit_score: impl Fn(&Dataset, &Dataset, C) -> f64 + Sync,
) -> usize {
    SEARCH_RUNS.incr();
    let _span = obs::span("ml.search");
    // Fold datasets are identical across candidates; materialize once.
    let folds: Vec<(Dataset, Dataset)> = splits
        .iter()
        .map(|(tr, va)| (subset(data, tr), subset(data, va)))
        .collect();
    let tasks: Vec<(usize, usize)> = (0..candidates.len())
        .flat_map(|c| (0..folds.len()).map(move |f| (c, f)))
        .collect();
    SEARCH_TASKS.add(tasks.len() as u64);
    let scores = exec::parallel_map(&tasks, |_, &(c, f)| {
        let (train, val) = &folds[f];
        fit_score(train, val, candidates[c])
    });
    let mut best = (f64::NEG_INFINITY, 0usize);
    for (c, chunk) in scores.chunks(folds.len()).enumerate() {
        // Sum in fold order, then divide — the serial accumulation order.
        let mut score = 0.0;
        for s in chunk {
            score += s;
        }
        score /= folds.len() as f64;
        if score > best.0 {
            best = (score, c);
        }
    }
    best.1
}

/// Randomized search over CART stopping parameters for a fixed depth.
///
/// Samples `iters` candidates of `(min_samples_split, max_thresholds)` and
/// returns the parameters with the best mean CV accuracy. The CV grid is
/// sharded over the [`exec`] pool; the winner is bit-identical at any
/// thread count, and the whole search result is cached when the artifact
/// cache is enabled.
pub fn search_tree_params(
    data: &Dataset,
    depth: usize,
    iters: usize,
    folds: usize,
    seed: u64,
) -> TreeParams {
    if !cache::enabled() {
        return search_tree_params_impl(data, depth, iters, folds, seed);
    }
    let key = fit_key(
        "ml.search.tree",
        data,
        &[depth as u64, iters as u64, folds as u64, seed],
        &[],
    );
    cache::get_or_compute("ml.search.tree", key, || {
        search_tree_params_impl(data, depth, iters, folds, seed)
    })
}

fn search_tree_params_impl(
    data: &Dataset,
    depth: usize,
    iters: usize,
    folds: usize,
    seed: u64,
) -> TreeParams {
    let mut rng = StdRng::seed_from_u64(seed);
    let splits = kfold(data.len(), folds, seed);
    // Draw all candidates up front: fitting never consumes this RNG, so
    // the sequence matches the original draw-then-fit serial loop.
    let candidates: Vec<TreeParams> = (0..iters)
        .map(|_| TreeParams {
            max_depth: depth,
            min_samples_split: *[2usize, 4, 8, 16].choose(&mut rng).unwrap(),
            max_thresholds: *[16usize, 32, 64].choose(&mut rng).unwrap(),
        })
        .collect();
    let win = grid_search(data, &splits, &candidates, |train, val, cand| {
        let tree = DecisionTree::fit(train, cand);
        accuracy(val.x.iter().map(|r| tree.predict(r)), val.y.iter().copied())
            .expect("CV folds are non-empty and aligned")
    });
    candidates
        .get(win)
        .copied()
        .unwrap_or(TreeParams::with_depth(depth))
}

/// Randomized search over SVM-R regularization and epochs.
///
/// Returns `(epochs, l2)` with the best mean CV accuracy. Sharded and
/// cached exactly like [`search_tree_params`].
pub fn search_svm_params(data: &Dataset, iters: usize, folds: usize, seed: u64) -> (usize, f64) {
    if !cache::enabled() {
        return search_svm_params_impl(data, iters, folds, seed);
    }
    let key = fit_key(
        "ml.search.svm",
        data,
        &[iters as u64, folds as u64, seed],
        &[],
    );
    cache::get_or_compute("ml.search.svm", key, || {
        search_svm_params_impl(data, iters, folds, seed)
    })
}

fn search_svm_params_impl(data: &Dataset, iters: usize, folds: usize, seed: u64) -> (usize, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let splits = kfold(data.len(), folds, seed);
    let candidates: Vec<(usize, f64)> = (0..iters)
        .map(|_| {
            (
                *[100usize, 200, 300].choose(&mut rng).unwrap(),
                *[1e-5, 1e-4, 1e-3, 1e-2].choose(&mut rng).unwrap(),
            )
        })
        .collect();
    let win = grid_search(data, &splits, &candidates, |train, val, (epochs, l2)| {
        let svm = SvmRegressor::fit(train, epochs, l2);
        accuracy(val.x.iter().map(|r| svm.predict(r)), val.y.iter().copied())
            .expect("CV folds are non-empty and aligned")
    });
    candidates.get(win).copied().unwrap_or((200, 1e-4))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::Application;

    #[test]
    fn kfold_partitions_exactly() {
        let folds = kfold(103, 5, 9);
        assert_eq!(folds.len(), 5);
        let mut all_val: Vec<usize> = folds.iter().flat_map(|(_, v)| v.clone()).collect();
        all_val.sort_unstable();
        assert_eq!(all_val, (0..103).collect::<Vec<_>>());
        for (tr, va) in &folds {
            assert_eq!(tr.len() + va.len(), 103);
            assert!(va.iter().all(|i| !tr.contains(i)));
        }
    }

    #[test]
    fn kfold_is_deterministic() {
        assert_eq!(kfold(50, 5, 3), kfold(50, 5, 3));
        assert_ne!(kfold(50, 5, 3), kfold(50, 5, 4));
    }

    #[test]
    fn tree_search_returns_requested_depth() {
        let d = Application::RedWine.generate(7);
        let p = search_tree_params(&d, 4, 3, 3, 7);
        assert_eq!(p.max_depth, 4);
    }

    #[test]
    fn svm_search_returns_sane_candidates() {
        let d = Application::Har.generate(7);
        let (epochs, l2) = search_svm_params(&d, 2, 3, 7);
        assert!([100, 200, 300].contains(&epochs));
        assert!(l2 > 0.0 && l2 <= 1e-2);
    }
}
