//! Random forests: bagged CART ensembles with per-tree feature subsets.
//!
//! The paper evaluates RF-2/4/8 (2, 4, 8 estimators, max depth 8 each) and
//! observes they trade area for accuracy; since "Decision Trees are the
//! kernel of a Random Forest ensemble", every tree-level hardware
//! optimization composes — which is why the detailed hardware study uses
//! single trees.

use exec::rng::{SliceRandom, StdRng};
use serde::{Deserialize, Serialize};

use crate::data::Dataset;
use crate::fit_key;
use crate::tree::{DecisionTree, TreeParams};

/// Random-forest hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForestParams {
    /// Number of trees (paper: 2, 4, 8).
    pub n_trees: usize,
    /// Per-tree CART parameters (paper: max depth 8).
    pub tree: TreeParams,
    /// RNG seed for bagging and feature subsets.
    pub seed: u64,
}

impl ForestParams {
    /// Paper configuration RF-`n`: `n` trees of depth ≤ 8.
    pub fn paper(n_trees: usize) -> Self {
        ForestParams {
            n_trees,
            tree: TreeParams::with_depth(8),
            seed: 7,
        }
    }
}

/// A trained random forest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// Fits `params.n_trees` bagged trees, each restricted to a random
    /// `sqrt(n_features)`-sized feature subset. Cached by
    /// `(data, params)` when the artifact cache is enabled.
    pub fn fit(data: &Dataset, params: ForestParams) -> Self {
        if !cache::enabled() {
            return Self::fit_impl(data, params);
        }
        let key = fit_key(
            "ml.forest.fit",
            data,
            &[
                params.n_trees as u64,
                params.tree.max_depth as u64,
                params.tree.min_samples_split as u64,
                params.tree.max_thresholds as u64,
                params.seed,
            ],
            &[],
        );
        cache::get_or_compute("ml.forest.fit", key, || Self::fit_impl(data, params))
    }

    fn fit_impl(data: &Dataset, params: ForestParams) -> Self {
        let mut rng = StdRng::seed_from_u64(params.seed);
        let n = data.len();
        let subset_size = ((data.n_features() as f64).sqrt().ceil() as usize)
            .max(1)
            .min(data.n_features());
        let trees = (0..params.n_trees)
            .map(|_| {
                let sample: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                let mut features: Vec<usize> = (0..data.n_features()).collect();
                features.shuffle(&mut rng);
                features.truncate(subset_size.max(2).min(data.n_features()));
                DecisionTree::fit_subset(data, &sample, params.tree, Some(&features))
            })
            .collect();
        RandomForest {
            trees,
            n_classes: data.n_classes,
        }
    }

    /// Majority-vote prediction (ties break toward the lower class index).
    pub fn predict(&self, row: &[f64]) -> usize {
        let mut votes = vec![0usize; self.n_classes];
        for t in &self.trees {
            votes[t.predict(row)] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// The ensemble members.
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Total comparison count across all member trees — Table II's `#C`.
    pub fn comparison_count(&self) -> usize {
        self.trees.iter().map(|t| t.comparison_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use crate::synth::Application;

    #[test]
    fn forest_beats_or_matches_single_tree_on_noisy_data() {
        let data = Application::Pendigits.generate(7);
        let (train, test) = data.split(0.7, 42);
        let tree = DecisionTree::fit(&train, TreeParams::with_depth(4));
        let forest = RandomForest::fit(
            &train,
            ForestParams {
                n_trees: 8,
                tree: TreeParams::with_depth(8),
                seed: 7,
            },
        );
        let ta = accuracy(
            test.x.iter().map(|r| tree.predict(r)),
            test.y.iter().copied(),
        )
        .unwrap();
        let fa = accuracy(
            test.x.iter().map(|r| forest.predict(r)),
            test.y.iter().copied(),
        )
        .unwrap();
        assert!(fa >= ta - 0.02, "forest {fa} vs tree {ta}");
    }

    #[test]
    fn more_trees_mean_more_comparisons() {
        let data = Application::Cardio.generate(7);
        let f2 = RandomForest::fit(&data, ForestParams::paper(2));
        let f8 = RandomForest::fit(&data, ForestParams::paper(8));
        assert_eq!(f2.trees().len(), 2);
        assert_eq!(f8.trees().len(), 8);
        assert!(f8.comparison_count() > f2.comparison_count());
    }

    #[test]
    fn fit_is_deterministic_in_seed() {
        let data = Application::Har.generate(7);
        let a = RandomForest::fit(&data, ForestParams::paper(4));
        let b = RandomForest::fit(&data, ForestParams::paper(4));
        assert_eq!(a, b);
    }

    #[test]
    fn predict_is_within_class_range() {
        let data = Application::GasId.generate(7);
        let f = RandomForest::fit(&data, ForestParams::paper(2));
        for row in data.x.iter().take(50) {
            assert!(f.predict(row) < data.n_classes);
        }
    }
}
