//! Linear models: SVM regression (SVM-R), one-vs-one SVM classification
//! (SVM-C) and multinomial logistic regression (LR).
//!
//! SVM-R is the architecture the paper carries through the hardware study:
//! a single linear regressor over the class labels treated as reals, whose
//! output is snapped to the nearest label at inference (§III). SVM-C and LR
//! appear only in the Table II algorithm comparison, where their MAC counts
//! disqualify them for printed implementation.

use exec::rng::{SliceRandom, StdRng};
use serde::{Deserialize, Serialize};

use crate::data::Dataset;
use crate::fit_key;

/// Linear SVM regressor over class labels (paper's SVM-R).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvmRegressor {
    weights: Vec<f64>,
    bias: f64,
    n_classes: usize,
}

impl SvmRegressor {
    /// Fits by full-batch gradient descent on L2-regularized squared loss.
    ///
    /// Squared loss is the ε=0 limit of ε-insensitive SVR loss; for the
    /// hardware study only the trained coefficient vector matters. Cached
    /// by `(data, epochs, l2)` when the artifact cache is enabled.
    pub fn fit(data: &Dataset, epochs: usize, l2: f64) -> Self {
        if !cache::enabled() {
            return Self::fit_impl(data, epochs, l2);
        }
        let key = fit_key("ml.svm.fit", data, &[epochs as u64], &[l2]);
        cache::get_or_compute("ml.svm.fit", key, || Self::fit_impl(data, epochs, l2))
    }

    fn fit_impl(data: &Dataset, epochs: usize, l2: f64) -> Self {
        let _span = obs::span("ml.svm.fit");
        obs::counter_add("ml.svm.fits", 1);
        obs::counter_add("ml.svm.epochs", epochs as u64);
        let d = data.n_features();
        let n = data.len() as f64;
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        let lr = 0.5;
        for _ in 0..epochs {
            let mut gw = vec![0.0; d];
            let mut gb = 0.0;
            for (row, &label) in data.x.iter().zip(&data.y) {
                let pred: f64 = w.iter().zip(row).map(|(wi, xi)| wi * xi).sum::<f64>() + b;
                let err = pred - label as f64;
                for (g, xi) in gw.iter_mut().zip(row) {
                    *g += err * xi;
                }
                gb += err;
            }
            for (wi, g) in w.iter_mut().zip(&gw) {
                *wi -= lr * (g / n + l2 * *wi);
            }
            b -= lr * gb / n;
        }
        SvmRegressor {
            weights: w,
            bias: b,
            n_classes: data.n_classes,
        }
    }

    /// The raw regression output `w·x + b`.
    pub fn decision(&self, row: &[f64]) -> f64 {
        self.weights
            .iter()
            .zip(row)
            .map(|(w, x)| w * x)
            .sum::<f64>()
            + self.bias
    }

    /// Nearest-label prediction (clamped to the class range).
    pub fn predict(&self, row: &[f64]) -> usize {
        let v = self.decision(row).round();
        (v.max(0.0) as usize).min(self.n_classes - 1)
    }

    /// Trained coefficients — hardwired by the bespoke SVM generator.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Trained intercept.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Number of classes the label range covers.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }
}

/// One-vs-one linear SVM classifier (paper's SVM-C).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvmClassifier {
    /// One `(class_a, class_b, weights, bias)` per unordered class pair.
    machines: Vec<(usize, usize, Vec<f64>, f64)>,
    n_classes: usize,
}

impl SvmClassifier {
    /// Fits `k(k-1)/2` pairwise hinge-loss SVMs with Pegasos-style SGD.
    pub fn fit(data: &Dataset, epochs: usize, lambda: f64, seed: u64) -> Self {
        if !cache::enabled() {
            return Self::fit_impl(data, epochs, lambda, seed);
        }
        let key = fit_key("ml.svmc.fit", data, &[epochs as u64, seed], &[lambda]);
        cache::get_or_compute("ml.svmc.fit", key, || {
            Self::fit_impl(data, epochs, lambda, seed)
        })
    }

    fn fit_impl(data: &Dataset, epochs: usize, lambda: f64, seed: u64) -> Self {
        let _span = obs::span("ml.svm.fit");
        obs::counter_add("ml.svm.fits", 1);
        obs::counter_add("ml.svm.epochs", epochs as u64);
        let mut machines = Vec::new();
        let mut rng = StdRng::seed_from_u64(seed);
        for a in 0..data.n_classes {
            for b in (a + 1)..data.n_classes {
                let idx: Vec<usize> = (0..data.len())
                    .filter(|&i| data.y[i] == a || data.y[i] == b)
                    .collect();
                let (w, bias) = if idx.is_empty() {
                    (vec![0.0; data.n_features()], 0.0)
                } else {
                    pegasos(data, &idx, a, epochs, lambda, &mut rng)
                };
                machines.push((a, b, w, bias));
            }
        }
        SvmClassifier {
            machines,
            n_classes: data.n_classes,
        }
    }

    /// Majority vote across all pairwise machines.
    pub fn predict(&self, row: &[f64]) -> usize {
        let mut votes = vec![0usize; self.n_classes];
        for (a, b, w, bias) in &self.machines {
            let score: f64 = w.iter().zip(row).map(|(wi, xi)| wi * xi).sum::<f64>() + bias;
            votes[if score >= 0.0 { *a } else { *b }] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Number of pairwise machines — Table II's `#C` for SVM-C.
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// Number of features per machine.
    pub fn n_features(&self) -> usize {
        self.machines.first().map_or(0, |(_, _, w, _)| w.len())
    }
}

/// Pegasos SGD for one binary problem; labels `+1` for `positive_class`.
fn pegasos(
    data: &Dataset,
    idx: &[usize],
    positive_class: usize,
    epochs: usize,
    lambda: f64,
    rng: &mut StdRng,
) -> (Vec<f64>, f64) {
    let d = data.n_features();
    let mut w = vec![0.0; d];
    let mut bias = 0.0;
    let mut t = 1usize;
    let mut order = idx.to_vec();
    for _ in 0..epochs {
        order.shuffle(rng);
        for &i in &order {
            let label = if data.y[i] == positive_class {
                1.0
            } else {
                -1.0
            };
            let eta = 1.0 / (lambda * t as f64);
            let margin: f64 = label
                * (w.iter()
                    .zip(&data.x[i])
                    .map(|(wi, xi)| wi * xi)
                    .sum::<f64>()
                    + bias);
            for wi in w.iter_mut() {
                *wi *= 1.0 - eta * lambda;
            }
            if margin < 1.0 {
                for (wi, xi) in w.iter_mut().zip(&data.x[i]) {
                    *wi += eta * label * xi;
                }
                bias += eta * label;
            }
            t += 1;
        }
    }
    (w, bias)
}

/// Multinomial logistic regression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    /// `n_classes × n_features` weight matrix.
    weights: Vec<Vec<f64>>,
    biases: Vec<f64>,
}

impl LogisticRegression {
    /// Fits by full-batch softmax gradient descent.
    pub fn fit(data: &Dataset, epochs: usize, lr: f64) -> Self {
        if !cache::enabled() {
            return Self::fit_impl(data, epochs, lr);
        }
        let key = fit_key("ml.lr.fit", data, &[epochs as u64], &[lr]);
        cache::get_or_compute("ml.lr.fit", key, || Self::fit_impl(data, epochs, lr))
    }

    fn fit_impl(data: &Dataset, epochs: usize, lr: f64) -> Self {
        let k = data.n_classes;
        let d = data.n_features();
        let n = data.len() as f64;
        let mut w = vec![vec![0.0; d]; k];
        let mut b = vec![0.0; k];
        for _ in 0..epochs {
            let mut gw = vec![vec![0.0; d]; k];
            let mut gb = vec![0.0; k];
            for (row, &label) in data.x.iter().zip(&data.y) {
                let probs = softmax(&scores(&w, &b, row));
                for c in 0..k {
                    let err = probs[c] - (c == label) as usize as f64;
                    for (g, xi) in gw[c].iter_mut().zip(row) {
                        *g += err * xi;
                    }
                    gb[c] += err;
                }
            }
            for c in 0..k {
                for (wi, g) in w[c].iter_mut().zip(&gw[c]) {
                    *wi -= lr * g / n;
                }
                b[c] -= lr * gb[c] / n;
            }
        }
        LogisticRegression {
            weights: w,
            biases: b,
        }
    }

    /// Argmax class prediction.
    pub fn predict(&self, row: &[f64]) -> usize {
        let s = scores(&self.weights, &self.biases, row);
        s.iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.weights.len()
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.weights.first().map_or(0, |w| w.len())
    }
}

fn scores(w: &[Vec<f64>], b: &[f64], row: &[f64]) -> Vec<f64> {
    w.iter()
        .zip(b)
        .map(|(wc, bc)| wc.iter().zip(row).map(|(wi, xi)| wi * xi).sum::<f64>() + bc)
        .collect()
}

fn softmax(s: &[f64]) -> Vec<f64> {
    let m = s.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = s.iter().map(|v| (v - m).exp()).collect();
    let z: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / z).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Standardizer;
    use crate::metrics::accuracy;
    use crate::synth::Application;

    fn prepared(app: Application) -> (Dataset, Dataset) {
        let data = app.generate(7);
        let (train, test) = data.split(0.7, 42);
        let s = Standardizer::fit(&train);
        (s.transform(&train), s.transform(&test))
    }

    #[test]
    fn svm_regressor_excels_on_ordinal_wine() {
        let (train, test) = prepared(Application::RedWine);
        let m = SvmRegressor::fit(&train, 300, 1e-4);
        let acc = accuracy(test.x.iter().map(|r| m.predict(r)), test.y.iter().copied()).unwrap();
        assert!(acc > 0.40, "SVM-R wine accuracy {acc}");
        assert_eq!(m.weights().len(), 11);
    }

    #[test]
    fn svm_regressor_struggles_on_nominal_many_class_data() {
        // The paper's SVM-R scores 0.19 on pendigits: nominal digit labels
        // have no ordinal structure for a regressor to exploit.
        let (train, test) = prepared(Application::Pendigits);
        let m = SvmRegressor::fit(&train, 300, 1e-4);
        let acc = accuracy(test.x.iter().map(|r| m.predict(r)), test.y.iter().copied()).unwrap();
        assert!(
            acc < 0.5,
            "SVM-R pendigits accuracy {acc} unexpectedly high"
        );
    }

    #[test]
    fn svm_classifier_machine_count_is_k_choose_2() {
        let (train, _) = prepared(Application::GasId);
        let m = SvmClassifier::fit(&train, 3, 1e-3, 7);
        assert_eq!(m.machine_count(), 6 * 5 / 2);
        assert_eq!(m.n_features(), 127);
    }

    #[test]
    fn svm_classifier_separates_har() {
        let (train, test) = prepared(Application::Har);
        let m = SvmClassifier::fit(&train, 8, 1e-3, 7);
        let acc = accuracy(test.x.iter().map(|r| m.predict(r)), test.y.iter().copied()).unwrap();
        assert!(acc > 0.9, "SVM-C HAR accuracy {acc}");
    }

    #[test]
    fn logistic_regression_learns_cardio() {
        let (train, test) = prepared(Application::Cardio);
        let m = LogisticRegression::fit(&train, 300, 0.5);
        let acc = accuracy(test.x.iter().map(|r| m.predict(r)), test.y.iter().copied()).unwrap();
        assert!(acc > 0.8, "LR cardio accuracy {acc}");
        assert_eq!(m.n_classes(), 3);
        assert_eq!(m.n_features(), 19);
    }

    #[test]
    fn softmax_is_a_distribution() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }
}
