//! The JSON value model: tree, printer and recursive-descent parser.
//!
//! Objects preserve insertion order (a `Vec` of pairs, not a hash map)
//! so emitted artifacts are byte-stable across runs — a property the
//! experiment harness's determinism checks rely on.

use crate::Error;

/// A parsed or built JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer written without a decimal point.
    UInt(u64),
    /// Negative integer written without a decimal point.
    Int(i64),
    /// Any number written with a decimal point or exponent.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, in insertion order.
    Object(Vec<(String, Value)>),
}

/// Shared `null` for out-of-range indexing, mirroring serde_json's
/// total `Index` behavior.
static NULL: Value = Value::Null;

impl Value {
    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True for any numeric variant.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::UInt(_) | Value::Int(_) | Value::Float(_))
    }

    /// True when the number was written in floating-point form.
    pub fn is_f64(&self) -> bool {
        matches!(self, Value::Float(_))
    }

    /// True for strings.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::Str(_))
    }

    /// True for arrays.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// True for objects.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// The value as `u64`, for integer-form numbers that fit.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as `i64`, for integer-form numbers that fit.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::UInt(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as `f64`, for any numeric form.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::UInt(n) => Some(*n as f64),
            Value::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as `&str`, for strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object member lookup that yields `null` when absent — the shape
    /// the derive macros deserialize through (`Option` fields treat a
    /// missing key as `None`).
    pub fn field(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }

    /// Compact (single-line) JSON.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty JSON with two-space indentation, matching serde_json's
    /// `to_string_pretty` layout.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::UInt(n) => out.push_str(&n.to_string()),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Float(x) => {
                if x.is_finite() {
                    // `{:?}` prints the shortest string that round-trips
                    // and always keeps a float marker ("1.0", "1e30").
                    out.push_str(&format!("{x:?}"));
                } else {
                    // JSON has no Infinity/NaN; serde_json emits null.
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Value::Object(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, d| {
                    write_escaped(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
/// Returns an error describing the first syntax problem, with its byte
/// offset.
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::msg(format!(
                "unexpected character '{}' at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::msg("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    // ASCII fast path: swallow the whole run in one go
                    // (validating from `pos` to the closing quote per
                    // character is quadratic over large documents).
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' || b >= 0x80 {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
                Some(_) => {
                    // Multi-byte UTF-8 scalar: decode just this sequence
                    // (at most four bytes), not the rest of the input.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let window = &self.bytes[self.pos..end];
                    let c = match std::str::from_utf8(window) {
                        Ok(s) => s.chars().next().unwrap(),
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&window[..e.valid_up_to()])
                                .unwrap()
                                .chars()
                                .next()
                                .unwrap()
                        }
                        Err(_) => return Err(Error::msg("invalid UTF-8 in string")),
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("bad number '{text}'")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .ok()
                .and_then(|n| i64::try_from(n).ok().map(|n| Value::Int(-n)))
                .ok_or_else(|| Error::msg(format!("bad number '{text}'")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::msg(format!("bad number '{text}'")))
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.field(key)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render_compact())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in [
            "null", "true", "false", "0", "42", "-17", "3.25", "1e3", "\"hi\"",
        ] {
            let v = parse(text).unwrap();
            let back = parse(&v.render_compact()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn numbers_classify_by_written_form() {
        assert!(parse("1").unwrap().as_u64().is_some());
        assert!(!parse("1").unwrap().is_f64());
        assert!(parse("1.0").unwrap().is_f64());
        assert_eq!(parse("-5").unwrap().as_i64(), Some(-5));
        assert_eq!(
            parse("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX)
        );
    }

    #[test]
    fn floats_keep_their_marker_through_printing() {
        let v = Value::Float(1.0);
        assert_eq!(v.render_compact(), "1.0");
        assert!(parse(&v.render_compact()).unwrap().is_f64());
    }

    #[test]
    fn nested_structures_round_trip_pretty_and_compact() {
        let text = r#"{"a": [1, 2.5, {"b": "x\ny"}], "c": null, "d": true}"#;
        let v = parse(text).unwrap();
        assert_eq!(parse(&v.render_pretty()).unwrap(), v);
        assert_eq!(parse(&v.render_compact()).unwrap(), v);
        assert_eq!(v["a"][2]["b"].as_str(), Some("x\ny"));
        assert!(v["c"].is_null());
        assert!(v["missing"].is_null());
    }

    #[test]
    fn object_order_is_preserved() {
        let v = parse(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        assert_eq!(v.render_compact(), r#"{"z":1,"a":2,"m":3}"#);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Value::Str("tab\there \"quoted\" back\\slash\nline\u{1}".to_string());
        let back = parse(&original.render_compact()).unwrap();
        assert_eq!(original, back);
    }

    #[test]
    fn unicode_text_round_trips() {
        let v = parse("\"caf\u{e9} \u{2603}\"").unwrap();
        assert_eq!(v.as_str(), Some("café ☃"));
        assert_eq!(parse(&v.render_compact()).unwrap(), v);
    }

    #[test]
    fn syntax_errors_are_reported() {
        for bad in [
            "{",
            "[1,",
            "tru",
            "\"unterminated",
            "{\"a\" 1}",
            "01a",
            "[1 2]",
        ] {
            assert!(parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    // The String comparison is the point: it exercises the PartialEq
    // impl serde_json callers rely on.
    #[allow(clippy::cmp_owned)]
    fn comparison_against_strings_works() {
        let v = parse(r#"{"technology": "Egt"}"#).unwrap();
        assert!(v["technology"] == "Egt");
        assert!(v["technology"] == *"Egt");
        assert!(v["technology"] == "Egt".to_string());
    }
}
