#![warn(missing_docs)]

//! # serde — in-repo stand-in
//!
//! This workspace builds in offline/air-gapped environments with no
//! crate registry, so the small slice of `serde`/`serde_json` it used is
//! reimplemented here on `std` alone: a JSON [`Value`] model with parser
//! and printer, [`Serialize`]/[`Deserialize`] traits expressed directly
//! over [`Value`], and derive macros (from the sibling `serde_derive`
//! proc-macro crate) covering the shapes this codebase uses — named
//! structs, tuple structs, unit enums and enums with tuple or struct
//! variants.
//!
//! It is intentionally **not** API-compatible with the full serde data
//! model (no zero-copy, no custom serializers, no attributes); it is
//! compatible with every call site in this repository and with
//! serde_json's JSON *encoding* conventions for those shapes, so
//! artifacts like `report.json` keep their schema.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;

/// A serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

/// Types that can render themselves as a JSON [`Value`].
pub trait Serialize {
    /// Converts `self` to a JSON value.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` out of a JSON value.
    ///
    /// # Errors
    /// Returns an error when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::msg(format!("expected unsigned integer, got {v:?}")))?;
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::msg(format!("expected integer, got {v:?}")))?;
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::msg(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|got| Error::msg(format!("expected {N}-element array, got {}", got.len())))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::msg(format!(
                "expected 2-element array, got {other:?}"
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(Error::msg(format!(
                "expected 3-element array, got {other:?}"
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
            self.3.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize, D: Deserialize> Deserialize for (A, B, C, D) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 4 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
                D::from_value(&items[3])?,
            )),
            other => Err(Error::msg(format!(
                "expected 4-element array, got {other:?}"
            ))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
