//! End-to-end check of the `repro_all` orchestrator in smoke mode: the
//! binary must exit cleanly, its `--json` report must parse and cover
//! every one of the 17 experiments, and the `--verify` sign-off section
//! must record zero counter-examples. This is the same contract the CI
//! smoke job enforces on the release binary.

use std::process::Command;

const EXPECTED: [&str; 17] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "fig3",
    "fig6",
    "fig7",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig16",
    "fig17",
    "fig19",
    "ablations",
];

#[test]
fn smoke_report_parses_and_covers_every_experiment() {
    let out_path = std::env::temp_dir().join("printed_ml_repro_smoke.json");
    // Isolate the default-on artifact cache: the test must not seed the
    // repo-relative store with debug-run artifacts.
    let cache_dir = std::env::temp_dir().join(format!(
        "printed_ml_repro_smoke_cache_{}",
        std::process::id()
    ));
    let output = Command::new(env!("CARGO_BIN_EXE_repro_all"))
        .env("PRINTED_ML_CACHE_DIR", &cache_dir)
        .args(["--smoke", "--threads", "2", "--verify", "--json"])
        .arg(&out_path)
        .output()
        .expect("run repro_all");
    std::fs::remove_dir_all(&cache_dir).ok();
    assert!(
        output.status.success(),
        "repro_all failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );

    let body = std::fs::read_to_string(&out_path).expect("read report");
    std::fs::remove_file(&out_path).ok();
    let report: serde_json::Value = serde_json::from_str(&body).expect("parse report");
    assert_eq!(report.get("smoke").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(report.get("threads").and_then(|v| v.as_u64()), Some(2));
    let experiments = report
        .get("experiments")
        .and_then(|v| v.as_array())
        .expect("experiments array");
    let names: Vec<&str> = experiments
        .iter()
        .map(|e| e.get("name").and_then(|v| v.as_str()).expect("name"))
        .collect();
    assert_eq!(names, EXPECTED, "experiment list drifted");
    for e in experiments {
        // The deprecated per-experiment `seconds` mirror is gone; timing
        // lives in the `report` span tree.
        assert!(e.get("seconds").is_none(), "deprecated key is back: {e}");
        let tables = e.get("tables").and_then(|v| v.as_array()).expect("tables");
        assert!(!tables.is_empty(), "experiment produced no tables");
    }
    assert!(
        report.get("optimizer").is_none(),
        "deprecated optimizer section is back"
    );

    // The --verify sign-off section: every equivalence check passed and
    // both throughput metrics were recorded.
    let verify = report.get("verify").expect("verify section");
    assert_eq!(
        verify.get("counter_examples").and_then(|v| v.as_u64()),
        Some(0),
        "sign-off found counter-examples: {verify}"
    );
    let equivalence = verify
        .get("equivalence")
        .and_then(|v| v.as_array())
        .expect("equivalence records");
    assert!(!equivalence.is_empty());
    let fault_grading = verify
        .get("fault_grading")
        .and_then(|v| v.as_array())
        .expect("fault grading records");
    assert!(!fault_grading.is_empty());
    for key in ["vectors_per_sec", "faults_per_sec"] {
        let rate = verify.get(key).and_then(|v| v.as_f64()).expect(key);
        assert!(rate > 0.0, "{key} not recorded");
    }
}

#[test]
fn unknown_flags_are_rejected() {
    let output = Command::new(env!("CARGO_BIN_EXE_repro_all"))
        .arg("--frobnicate")
        .output()
        .expect("run repro_all");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("usage"));
}
