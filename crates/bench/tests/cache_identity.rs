//! Cold-vs-warm bit-identity of the artifact cache.
//!
//! Populates a throwaway store with one cold pass over a cheap subset of
//! the experiment suite, then replays it warm (disk tier only) at 1, 4
//! and 8 worker threads. Every rendered table must be byte-identical to
//! the cold pass — the cache may only skip recomputation, never change
//! a result, and neither may the worker count.

use bench::experiments as e;

type Experiment = (&'static str, fn() -> Vec<bench::Table>);

/// Cheap experiments only: this runs in debug CI, and the identity
/// property does not depend on workload size.
const CHEAP: [Experiment; 4] = [
    ("fig3", e::fig3),
    ("table3", e::table3),
    ("table4", e::table4),
    ("fig6", e::fig6),
];

fn render() -> String {
    let finished = exec::parallel_map(&CHEAP, |_, &(_, f)| f());
    let mut out = String::new();
    for tables in &finished {
        for t in tables {
            out.push_str(&t.to_string());
        }
    }
    out
}

#[test]
fn warm_replay_is_bit_identical_at_any_thread_count() {
    bench::workloads::set_smoke(true);
    let dir =
        std::env::temp_dir().join(format!("printed_ml_cache_identity_{}", std::process::id()));
    cache::set_disk_root(Some(dir.clone()));
    cache::set_enabled(true);
    cache::clear().expect("wipe test cache");

    let cold = exec::with_threads(2, render);
    let populated: u64 = cache::disk_stats()
        .expect("store exists after cold pass")
        .iter()
        .map(|d| d.entries)
        .sum();
    assert!(populated > 0, "cold pass stored nothing");

    for threads in [1usize, 4, 8] {
        // Drop the memo tier so this pass replays from disk, like a
        // fresh process over a populated cache directory.
        cache::clear_memory();
        let warm = exec::with_threads(threads, render);
        assert_eq!(
            cold, warm,
            "warm tables diverge from cold at {threads} thread(s)"
        );
    }
    // The replays must not have re-stored anything: every artifact was
    // served from disk.
    let after: u64 = cache::disk_stats()
        .expect("store exists")
        .iter()
        .map(|d| d.entries)
        .sum();
    assert_eq!(populated, after, "warm replay wrote new entries");

    cache::set_enabled(false);
    cache::set_disk_root(None);
    std::fs::remove_dir_all(&dir).ok();
}
