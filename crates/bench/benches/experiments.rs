//! Micro-benchmarks: one per table/figure kernel plus the core
//! generator-pipeline stages, on a std-only harness (`harness = false`;
//! the previous Criterion harness lived on an unreachable registry).
//!
//! These measure the *reproduction machinery* (training, netlist
//! generation, logic optimization, PPA analysis, simulation) on reduced
//! workloads; the full-fidelity table/figure outputs come from the
//! `bench` binaries (`cargo run --release -p bench --bin repro_all`).
//!
//! Each kernel is warmed up once, then run for a fixed minimum wall
//! time; the reported figure is the mean wall-clock time per iteration.
//! Pass a substring argument to run matching kernels only, e.g.
//! `cargo bench -p bench -- lookup`.

use std::hint::black_box;
use std::time::{Duration, Instant};

use analog::tree::{AnalogTree, AnalogTreeConfig};
use bench::workloads::quick_apps;
use ml::quant::{FeatureQuantizer, QuantizedTree};
use ml::synth::Application;
use ml::tree::{DecisionTree, TreeParams};
use netlist::{analyze, optimize, Simulator};
use pdk::{CellLibrary, Technology};
use printed_core::bespoke::{bespoke_parallel, bespoke_svm};
use printed_core::conventional::parallel_tree::{generate as gen_parallel, ParallelTreeSpec};
use printed_core::conventional::serial_tree::{
    generate as gen_serial, SerialTreeProgram, SerialTreeSpec,
};
use printed_core::conventional::svm::{generate as gen_svm, SvmSpec};
use printed_core::flow::{SvmArch, SvmFlow, TreeArch, TreeFlow};
use printed_core::lookup::{lookup_parallel, LookupConfig};

/// Runs `f` repeatedly for at least `MIN_RUN` after one warmup call and
/// prints mean time per iteration.
fn bench(filter: &str, name: &str, mut f: impl FnMut()) {
    const MIN_RUN: Duration = Duration::from_millis(300);
    if !name.contains(filter) {
        return;
    }
    f(); // warmup
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < MIN_RUN {
        f();
        iters += 1;
    }
    let per_iter = start.elapsed().as_secs_f64() / iters as f64;
    let formatted = if per_iter >= 1.0 {
        format!("{per_iter:.3} s")
    } else if per_iter >= 1e-3 {
        format!("{:.3} ms", per_iter * 1e3)
    } else {
        format!("{:.3} µs", per_iter * 1e6)
    };
    println!("{name:<40} {formatted:>12}/iter  ({iters} iters)");
}

fn fitted_tree(app: Application, depth: usize, bits: usize) -> (QuantizedTree, FeatureQuantizer) {
    let data = app.generate(7);
    let (train, _) = data.split(0.7, 42);
    let tree = DecisionTree::fit(&train, TreeParams::with_depth(depth));
    let fq = FeatureQuantizer::fit(&train, bits);
    (QuantizedTree::from_tree(&tree, &fq), fq)
}

fn main() {
    // Cargo invokes bench targets with `--bench`; anything else is a
    // name filter.
    let filter = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .unwrap_or_default();
    let lib = CellLibrary::for_technology(Technology::Egt);

    bench(&filter, "table1_component_ppa", || {
        black_box(bench::experiments::table1());
    });

    bench(&filter, "table2_training_kernel", || {
        for app in quick_apps() {
            let data = app.generate(7);
            let (train, _) = data.split(0.7, 42);
            let t = DecisionTree::fit(&train, TreeParams::with_depth(4));
            black_box(t.comparison_count());
        }
    });

    bench(&filter, "table3_serial_engine", || {
        let spec = SerialTreeSpec::conventional(4);
        let prog = SerialTreeProgram {
            threshold_rom: vec![0; 1 << 5],
            class_rom: vec![0; 1 << 4],
        };
        black_box(analyze(&gen_serial(&spec, &prog), &lib));
    });

    bench(&filter, "table4_parallel_engine", || {
        black_box(analyze(
            &gen_parallel(&ParallelTreeSpec::conventional(4)),
            &lib,
        ));
    });

    bench(&filter, "table5_svm_engine", || {
        let spec = SvmSpec {
            width: 8,
            n_features: 32,
            n_boundaries: 5,
        };
        black_box(analyze(&gen_svm(&spec), &lib));
    });

    {
        let flow = TreeFlow::new(Application::Har, 2, 7);
        let report = flow.report(TreeArch::BespokeParallel, Technology::Egt);
        bench(&filter, "fig3_fig19_feasibility", || {
            black_box(report.feasibility());
        });
    }

    {
        let (qt, _) = fitted_tree(Application::Cardio, 4, 8);
        bench(&filter, "fig6_bespoke_serial", || {
            black_box(printed_core::bespoke::bespoke_serial(&qt));
        });
        bench(&filter, "fig7_bespoke_parallel", || {
            black_box(bespoke_parallel(&qt));
        });
    }

    {
        let (qt, _) = fitted_tree(Application::Pendigits, 6, 4);
        bench(&filter, "fig9_lookup_tree_baseline", || {
            black_box(lookup_parallel(&qt, LookupConfig::baseline()));
        });
        bench(&filter, "fig10_lookup_tree_optimized", || {
            black_box(lookup_parallel(&qt, LookupConfig::optimized()));
        });
    }

    {
        let flow = SvmFlow::new(Application::RedWine, 7);
        bench(&filter, "fig11_bespoke_svm", || {
            black_box(bespoke_svm(&flow.qs));
        });
        bench(&filter, "fig12_fig13_lookup_svm", || {
            black_box(
                flow.module(SvmArch::Lookup(LookupConfig::optimized()))
                    .unwrap(),
            );
        });
    }

    {
        let (qt, fq) = fitted_tree(Application::Har, 4, 6);
        let data = Application::Har.generate(7);
        let codes = fq.code_row(&data.x[0]);
        bench(&filter, "fig16_analog_tree", || {
            let at = AnalogTree::from_tree(&qt, AnalogTreeConfig::default());
            black_box(at.predict(&codes));
        });
        let svm = SvmFlow::new(Application::RedWine, 7);
        bench(&filter, "fig17_analog_svm", || {
            black_box(svm.report(SvmArch::Analog, Technology::Egt));
        });
    }

    {
        let (qt, fq) = fitted_tree(Application::Har, 4, 4);
        let module = bespoke_parallel(&qt);
        let data = Application::Har.generate(7);
        let used = qt.used_features();
        let vectors: Vec<Vec<u64>> = data
            .x
            .iter()
            .take(128)
            .map(|row| {
                let codes = fq.code_row(row);
                used.iter().map(|&f| codes[f]).collect()
            })
            .collect();
        bench(&filter, "verify_batch_simulate_128_vectors", || {
            let mut sim = netlist::BatchSimulator::new(&module);
            for chunk in vectors.chunks(64) {
                for (pi, port) in module.inputs.iter().enumerate() {
                    let lanes: Vec<u64> = chunk.iter().map(|v| v[pi]).collect();
                    sim.set_lanes(&port.name, &lanes);
                }
                sim.settle();
                black_box(sim.lanes("class", chunk.len()));
            }
        });
        bench(&filter, "verify_fault_coverage", || {
            black_box(netlist::fault_coverage(&module, &vectors[..32]));
        });
        let optimized = optimize(&module);
        bench(&filter, "verify_equivalence_sampled", || {
            black_box(netlist::check_equivalence(&module, &optimized, 8, 128).expect("ports"));
        });
    }

    {
        let (qt, fq) = fitted_tree(Application::Pendigits, 6, 8);
        let module = bespoke_parallel(&qt);
        bench(&filter, "pipeline_optimize", || {
            black_box(optimize(&module));
        });
        bench(&filter, "pipeline_analyze", || {
            black_box(analyze(&module, &lib));
        });
        let data = Application::Pendigits.generate(7);
        let used = qt.used_features();
        bench(&filter, "pipeline_simulate_100_inferences", || {
            let mut sim = Simulator::new(&module);
            for row in data.x.iter().take(100) {
                let codes = fq.code_row(row);
                for (slot, &f) in used.iter().enumerate() {
                    sim.set(&format!("f{slot}"), codes[f]);
                }
                sim.settle();
                black_box(sim.get("class"));
            }
        });
    }
}
