//! Criterion benchmarks: one per table/figure kernel plus the core
//! generator-pipeline stages.
//!
//! These measure the *reproduction machinery* (training, netlist
//! generation, logic optimization, PPA analysis, simulation) on reduced
//! workloads; the full-fidelity table/figure outputs come from the
//! `bench` binaries (`cargo run --release -p bench --bin repro_all`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use analog::tree::{AnalogTree, AnalogTreeConfig};
use bench::workloads::quick_apps;
use ml::quant::{FeatureQuantizer, QuantizedTree};
use ml::synth::Application;
use ml::tree::{DecisionTree, TreeParams};
use netlist::{analyze, optimize, Simulator};
use pdk::{CellLibrary, Technology};
use printed_core::bespoke::{bespoke_parallel, bespoke_svm};
use printed_core::conventional::parallel_tree::{generate as gen_parallel, ParallelTreeSpec};
use printed_core::conventional::serial_tree::{
    generate as gen_serial, SerialTreeProgram, SerialTreeSpec,
};
use printed_core::conventional::svm::{generate as gen_svm, SvmSpec};
use printed_core::flow::{SvmArch, SvmFlow, TreeArch, TreeFlow};
use printed_core::lookup::{lookup_parallel, LookupConfig};

fn fitted_tree(app: Application, depth: usize, bits: usize) -> (QuantizedTree, FeatureQuantizer) {
    let data = app.generate(7);
    let (train, _) = data.split(0.7, 42);
    let tree = DecisionTree::fit(&train, TreeParams::with_depth(depth));
    let fq = FeatureQuantizer::fit(&train, bits);
    (QuantizedTree::from_tree(&tree, &fq), fq)
}

/// Table I kernel: price the three components in all technologies.
fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_component_ppa", |b| {
        b.iter(|| black_box(bench::experiments::table1()))
    });
}

/// Table II kernel: train + evaluate one tree per quick dataset.
fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2_training_kernel", |b| {
        b.iter(|| {
            for app in quick_apps() {
                let data = app.generate(7);
                let (train, _) = data.split(0.7, 42);
                let t = DecisionTree::fit(&train, TreeParams::with_depth(4));
                black_box(t.comparison_count());
            }
        })
    });
}

/// Table III kernel: conventional serial engine generation + analysis.
fn bench_table3(c: &mut Criterion) {
    let lib = CellLibrary::for_technology(Technology::Egt);
    c.bench_function("table3_serial_engine", |b| {
        b.iter(|| {
            let spec = SerialTreeSpec::conventional(4);
            let prog = SerialTreeProgram {
                threshold_rom: vec![0; 1 << 5],
                class_rom: vec![0; 1 << 4],
            };
            black_box(analyze(&gen_serial(&spec, &prog), &lib))
        })
    });
}

/// Table IV kernel: conventional parallel engine generation + analysis.
fn bench_table4(c: &mut Criterion) {
    let lib = CellLibrary::for_technology(Technology::Egt);
    c.bench_function("table4_parallel_engine", |b| {
        b.iter(|| black_box(analyze(&gen_parallel(&ParallelTreeSpec::conventional(4)), &lib)))
    });
}

/// Table V kernel: conventional SVM engine (reduced feature count).
fn bench_table5(c: &mut Criterion) {
    let lib = CellLibrary::for_technology(Technology::Egt);
    c.bench_function("table5_svm_engine", |b| {
        b.iter(|| {
            let spec = SvmSpec { width: 8, n_features: 32, n_boundaries: 5 };
            black_box(analyze(&gen_svm(&spec), &lib))
        })
    });
}

/// Fig. 3 / Fig. 19 kernel: feasibility classification.
fn bench_fig3_fig19(c: &mut Criterion) {
    let flow = TreeFlow::new(Application::Har, 2, 7);
    let report = flow.report(TreeArch::BespokeParallel, Technology::Egt);
    c.bench_function("fig3_fig19_feasibility", |b| {
        b.iter(|| black_box(report.feasibility()))
    });
}

/// Fig. 6 kernel: bespoke serial generation (includes optimization).
fn bench_fig6(c: &mut Criterion) {
    let (qt, _) = fitted_tree(Application::Cardio, 4, 8);
    c.bench_function("fig6_bespoke_serial", |b| {
        b.iter(|| black_box(printed_core::bespoke::bespoke_serial(&qt)))
    });
}

/// Fig. 7 kernel: bespoke parallel generation + optimization.
fn bench_fig7(c: &mut Criterion) {
    let (qt, _) = fitted_tree(Application::Cardio, 4, 8);
    c.bench_function("fig7_bespoke_parallel", |b| {
        b.iter(|| black_box(bespoke_parallel(&qt)))
    });
}

/// Figs. 9/10 kernel: lookup tree generation at both optimization levels.
fn bench_fig9_fig10(c: &mut Criterion) {
    let (qt, _) = fitted_tree(Application::Pendigits, 6, 4);
    c.bench_function("fig9_lookup_tree_baseline", |b| {
        b.iter(|| black_box(lookup_parallel(&qt, LookupConfig::baseline())))
    });
    c.bench_function("fig10_lookup_tree_optimized", |b| {
        b.iter(|| black_box(lookup_parallel(&qt, LookupConfig::optimized())))
    });
}

/// Figs. 11/12/13 kernel: bespoke + lookup SVM generation.
fn bench_fig11_12_13(c: &mut Criterion) {
    let flow = SvmFlow::new(Application::RedWine, 7);
    c.bench_function("fig11_bespoke_svm", |b| {
        b.iter(|| black_box(bespoke_svm(&flow.qs)))
    });
    c.bench_function("fig12_fig13_lookup_svm", |b| {
        b.iter(|| {
            black_box(flow.module(SvmArch::Lookup(LookupConfig::optimized())).unwrap())
        })
    });
}

/// Figs. 16/17 kernel: analog construction + functional evaluation.
fn bench_fig16_fig17(c: &mut Criterion) {
    let (qt, fq) = fitted_tree(Application::Har, 4, 6);
    let data = Application::Har.generate(7);
    let codes = fq.code_row(&data.x[0]);
    c.bench_function("fig16_analog_tree", |b| {
        b.iter(|| {
            let at = AnalogTree::from_tree(&qt, AnalogTreeConfig::default());
            black_box(at.predict(&codes))
        })
    });
    let svm = SvmFlow::new(Application::RedWine, 7);
    c.bench_function("fig17_analog_svm", |b| {
        b.iter(|| black_box(svm.report(SvmArch::Analog, Technology::Egt)))
    });
}

/// Verification machinery: batch simulation, equivalence checking and
/// fault coverage on a representative bespoke tree.
fn bench_verification(c: &mut Criterion) {
    let (qt, fq) = fitted_tree(Application::Har, 4, 4);
    let module = bespoke_parallel(&qt);
    let data = Application::Har.generate(7);
    let used = qt.used_features();
    let vectors: Vec<Vec<u64>> = data
        .x
        .iter()
        .take(128)
        .map(|row| {
            let codes = fq.code_row(row);
            used.iter().map(|&f| codes[f]).collect()
        })
        .collect();
    c.bench_function("verify_batch_simulate_128_vectors", |b| {
        let mut sim = netlist::BatchSimulator::new(&module);
        b.iter(|| {
            for chunk in vectors.chunks(64) {
                for (pi, port) in module.inputs.iter().enumerate() {
                    let lanes: Vec<u64> = chunk.iter().map(|v| v[pi]).collect();
                    sim.set_lanes(&port.name, &lanes);
                }
                sim.settle();
                black_box(sim.lanes("class", chunk.len()));
            }
        })
    });
    c.bench_function("verify_fault_coverage", |b| {
        b.iter(|| black_box(netlist::fault_coverage(&module, &vectors[..32])))
    });
    let optimized = optimize(&module);
    c.bench_function("verify_equivalence_sampled", |b| {
        b.iter(|| black_box(netlist::check_equivalence(&module, &optimized, 8, 128)))
    });
}

/// Pipeline stages in isolation: optimize, analyze, simulate.
fn bench_pipeline(c: &mut Criterion) {
    let (qt, fq) = fitted_tree(Application::Pendigits, 6, 8);
    let module = bespoke_parallel(&qt);
    let lib = CellLibrary::for_technology(Technology::Egt);
    c.bench_function("pipeline_optimize", |b| {
        b.iter(|| black_box(optimize(&module)))
    });
    c.bench_function("pipeline_analyze", |b| {
        b.iter(|| black_box(analyze(&module, &lib)))
    });
    let data = Application::Pendigits.generate(7);
    let used = qt.used_features();
    c.bench_function("pipeline_simulate_100_inferences", |b| {
        let mut sim = Simulator::new(&module);
        b.iter(|| {
            for row in data.x.iter().take(100) {
                let codes = fq.code_row(row);
                for (slot, &f) in used.iter().enumerate() {
                    sim.set(&format!("f{slot}"), codes[f]);
                }
                sim.settle();
                black_box(sim.get("class"));
            }
        })
    });
}

criterion_group! {
    name = experiments;
    config = Criterion::default().sample_size(10);
    targets =
        bench_table1,
        bench_table2,
        bench_table3,
        bench_table4,
        bench_table5,
        bench_fig3_fig19,
        bench_fig6,
        bench_fig7,
        bench_fig9_fig10,
        bench_fig11_12_13,
        bench_fig16_fig17,
        bench_verification,
        bench_pipeline
}
criterion_main!(experiments);
