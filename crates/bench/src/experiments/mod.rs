//! One regenerator function per table and figure of the paper.

pub mod ablations;
pub mod figures;
pub mod tables;

pub use ablations::ablations;
pub use figures::{fig10, fig11, fig12, fig13, fig16, fig17, fig19, fig3, fig6, fig7, fig9};
pub use tables::{table1, table2, table3, table4, table5};
